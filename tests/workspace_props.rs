//! Workspace-level property tests exercising the public API exactly as a downstream
//! user would: through the umbrella crate's re-exports, mixing workload generation,
//! filter construction and join-style querying.

use conditional_cuckoo_filters::ccf::sizing::VariantKind;
use conditional_cuckoo_filters::ccf::{AnyCcf, CcfParams, ConditionalFilter, Predicate};
use conditional_cuckoo_filters::workloads::multiset::{DuplicateDistribution, MultisetStream};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated multiset workloads round-trip through every variant: every generated
    /// row is queryable afterwards, for any seed and duplicate level the generator
    /// supports at this size.
    #[test]
    fn generated_workloads_round_trip(
        seed in any::<u64>(),
        mean_dupes in 1.0f64..10.0,
        zipf in any::<bool>(),
    ) {
        let dist = if zipf {
            DuplicateDistribution::zipf_with_mean(mean_dupes)
        } else {
            DuplicateDistribution::Constant(mean_dupes as u64)
        };
        let rows = MultisetStream::new(dist, 2, seed).generate(1500);
        let params = CcfParams {
            num_buckets: 1 << 10,
            entries_per_bucket: 6,
            num_attrs: 2,
            seed,
            ..CcfParams::default()
        };
        for kind in [VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
            let mut filter = AnyCcf::new(kind, params);
            for row in &rows {
                filter.insert_row(row.key, &row.attrs).unwrap();
            }
            for row in &rows {
                let pred = Predicate::any(2).and_eq(0, row.attrs[0]).and_eq(1, row.attrs[1]);
                prop_assert!(filter.query(row.key, &pred), "{kind:?} lost a row");
            }
        }
    }

    /// Key-only false positive rates stay within a small multiple of the §7.1 bound for
    /// every variant, across seeds.
    #[test]
    fn key_only_fpr_stays_near_bound(seed in any::<u64>()) {
        let rows = MultisetStream::new(DuplicateDistribution::Constant(2), 1, seed).generate(2500);
        let params = CcfParams {
            num_buckets: 1 << 10,
            entries_per_bucket: 6,
            fingerprint_bits: 12,
            num_attrs: 1,
            seed,
            ..CcfParams::default()
        };
        for kind in [VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
            let mut filter = AnyCcf::new(kind, params);
            for row in &rows {
                filter.insert_row(row.key, &row.attrs).unwrap();
            }
            let bound = ccf_core::fpr::key_only_fpr(
                2.0 * filter.load_factor() * 6.0,
                12,
            );
            let probes = 30_000u64;
            let fps = (0..probes)
                .filter(|i| filter.contains_key(5_000_000_000 + i))
                .count();
            let measured = fps as f64 / probes as f64;
            prop_assert!(
                measured <= bound * 3.0 + 0.002,
                "{kind:?}: measured key FPR {measured} vs bound {bound}"
            );
        }
    }
}
