//! Cross-crate acceptance tests for the growth subsystem and the batched query API:
//! an auto-growing filter sized for `n` must accept `4n` unique keys with zero insert
//! failures and zero false negatives, batched probes must be bit-identical to per-key
//! loops on a large mixed hit/miss stream, and the join-side reduction pipeline (which
//! now probes in batches) must keep its exactness invariants.

use conditional_cuckoo_filters::ccf::sizing::{size_for_profile_growable, VariantKind};
use conditional_cuckoo_filters::ccf::{
    AnyCcf, CcfParams, ChainedCcf, ConditionalFilter, Predicate,
};
use conditional_cuckoo_filters::cuckoo::{CuckooFilter, CuckooFilterParams};

#[test]
fn auto_grow_accepts_4n_unique_keys_without_failures_or_false_negatives() {
    let n = 10_000usize;
    let mut filter =
        CuckooFilter::new(CuckooFilterParams::for_capacity(n, 12, 0xACCE97).with_auto_grow());
    let mut failures = 0usize;
    for key in 0..(4 * n) as u64 {
        if filter.insert(key).is_err() {
            failures += 1;
        }
    }
    assert_eq!(failures, 0, "auto-grow must absorb 4n unique keys");
    let false_negatives = (0..(4 * n) as u64).filter(|&k| !filter.contains(k)).count();
    assert_eq!(false_negatives, 0);
    assert!(
        filter.growth_bits() >= 2,
        "4n keys require at least two doublings"
    );
    // The geometry stays queryable for absent keys at a sane FPR after growth.
    let fps = (10_000_000..10_050_000u64)
        .filter(|&k| filter.contains(k))
        .count();
    assert!((fps as f64 / 50_000.0) < 0.02);
}

#[test]
fn contains_batch_is_bit_identical_on_a_million_mixed_probes() {
    let mut filter = CuckooFilter::new(CuckooFilterParams::for_capacity(100_000, 12, 0xBA7C4));
    for key in 0..100_000u64 {
        filter.insert(key).unwrap();
    }
    // 1M probes, alternating inserted keys and absent keys.
    let probes: Vec<u64> = (0..1_000_000u64)
        .map(|i| {
            if i % 2 == 0 {
                i / 2 % 100_000
            } else {
                5_000_000 + i
            }
        })
        .collect();
    let batched = filter.contains_batch(&probes);
    for (i, &key) in probes.iter().enumerate() {
        assert_eq!(batched[i], filter.contains(key), "mismatch at probe {i}");
    }
}

#[test]
fn growable_ccf_variants_survive_4n_rows_through_the_uniform_interface() {
    for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Mixed] {
        let mut filter = AnyCcf::new(
            kind,
            CcfParams {
                num_buckets: 1 << 8,
                num_attrs: 2,
                seed: 0x640,
                ..CcfParams::default()
            }
            .with_auto_grow(),
        );
        let four_n = 4 * (filter.params().num_buckets * filter.params().entries_per_bucket) as u64;
        for key in 0..four_n {
            filter
                .insert_row(key, &[key % 13, key % 17])
                .unwrap_or_else(|e| panic!("{kind:?}: insert of {key} failed: {e}"));
        }
        let pred_hits = filter.query_batch(
            &(0..four_n).collect::<Vec<_>>(),
            &Predicate::any(2).and_eq(0, 5),
        );
        for (key, hit) in (0..four_n).zip(pred_hits) {
            assert_eq!(
                hit,
                filter.query(key, &Predicate::any(2).and_eq(0, 5)),
                "{kind:?}: batch/per-key divergence for {key}"
            );
            if key % 13 == 5 {
                assert!(hit, "{kind:?}: false negative for {key}");
            }
        }
    }
}

#[test]
fn growable_sizing_profile_absorbs_an_underestimated_stream() {
    // A filter deliberately sized for a quarter of the (badly forecast) profile grows
    // to fit the real stream; chained semantics (no-false-negative across chains)
    // survive the doublings.
    let profile =
        conditional_cuckoo_filters::ccf::sizing::DuplicationProfile::from_counts(vec![4; 2000]);
    let params = size_for_profile_growable(
        VariantKind::Chained,
        &profile,
        CcfParams {
            num_attrs: 1,
            seed: 9,
            ..CcfParams::default()
        },
        0.25,
    );
    let mut filter = ChainedCcf::new(params);
    for key in 0..2000u64 {
        for i in 0..8u64 {
            // Twice the forecast rows per key.
            filter
                .insert_row(key, &[1000 + i])
                .expect("growable filter absorbs the underestimated stream");
        }
    }
    assert!(
        filter.growth_bits() >= 1,
        "undersized filter must have grown"
    );
    for key in 0..2000u64 {
        for i in 0..8u64 {
            assert!(
                filter.query(key, &Predicate::any(1).and_eq(0, 1000 + i)),
                "false negative for key {key} row {i}"
            );
        }
    }
}
