//! The typed-key / fallible-builder redesign's cross-crate contract tests.
//!
//! Three pillars:
//!
//! 1. **Golden bit-identity.** The digests hardcoded below were captured on the
//!    pre-redesign code (u64-only API) for every variant and for the sharded service.
//!    The redesigned generic API must reproduce them bit-for-bit for `u64` keys —
//!    identity lowering means the u64 hot path never changed.
//! 2. **Lowering agreement.** Property tests check every `FilterKey` impl agrees with
//!    the prehashed-u64 core across variants and the sharded service.
//! 3. **End-to-end string keys.** A string-keyed workload flows through `AnyCcf`
//!    (via the builder), `ShardedCcf`, and the join-bank probes.

use conditional_cuckoo_filters::ccf::sizing::VariantKind;
use conditional_cuckoo_filters::ccf::{
    AnyCcf, CcfError, CcfParams, ConditionalFilter, FilterKey, InsertFailure, ParamsError,
    Predicate,
};
use conditional_cuckoo_filters::join::filters::{FilterBank, FilterConfig};
use conditional_cuckoo_filters::shard::ShardedCcf;
use conditional_cuckoo_filters::workloads::imdb::{SyntheticImdb, TableId};
use conditional_cuckoo_filters::workloads::multiset::DuplicateDistribution;
use conditional_cuckoo_filters::workloads::strkeys::StringKeyStream;
use proptest::prelude::*;

const ALL_VARIANTS: [VariantKind; 4] = [
    VariantKind::Plain,
    VariantKind::Chained,
    VariantKind::Bloom,
    VariantKind::Mixed,
];

// --- 1. Golden bit-identity -------------------------------------------------------

fn fold(digest: &mut u64, bit: bool) {
    *digest = digest.wrapping_mul(0x100000001B3).wrapping_add(if bit {
        0x9E3779B97F4A7C15
    } else {
        0x2545F4914F6CDD1D
    });
}

fn golden_params() -> CcfParams {
    CcfParams {
        num_buckets: 1 << 9,
        num_attrs: 2,
        seed: 0xC0FFEE,
        ..CcfParams::default()
    }
}

/// Duplicate-heavy stream: key i/5 appears 5 times with distinct attribute vectors,
/// so chaining, Bloom merging and mixed conversion all engage.
fn golden_rows() -> Vec<(u64, [u64; 2])> {
    (0..900u64)
        .map(|i| {
            (
                (i / 5).wrapping_mul(0x9E3779B97F4A7C15) >> 17,
                [1000 + i % 7 + 10 * (i % 5), 2000 + i % 13],
            )
        })
        .collect()
}

fn golden_probes() -> Vec<u64> {
    let rows = golden_rows();
    (0..3000u64)
        .map(|i| {
            if i % 2 == 0 {
                rows[(i as usize / 2) % 900].0
            } else {
                i.wrapping_mul(0xA24BAED4963EE407)
            }
        })
        .collect()
}

/// Digests captured on the pre-redesign code (u64-only API, commit 16d11f1): the
/// insert outcomes, 3000 predicate-query results and 3000 contains results folded
/// FNV-style, per variant.
const GOLDEN_VARIANT_DIGESTS: [(VariantKind, u64); 4] = [
    (VariantKind::Plain, 0x2E551D3840882AED),
    (VariantKind::Chained, 0x2E551D3840882AED),
    (VariantKind::Bloom, 0x77F2C80F283FC725),
    (VariantKind::Mixed, 0x2E551D3840882AED),
];

/// As above for a 4-shard chained `ShardedCcf` (batch insert, batch probes, and the
/// shard-routing of the first 64 probe keys).
const GOLDEN_SHARDED_DIGEST: u64 = 0xDF59F9387029BD0D;

#[test]
fn u64_keys_are_bit_identical_to_the_pre_redesign_behavior() {
    let pred = Predicate::any(2).and_eq(0, 1013);
    let probes = golden_probes();
    for (kind, expected) in GOLDEN_VARIANT_DIGESTS {
        let mut f = AnyCcf::new(kind, golden_params());
        let mut digest = 0xCBF29CE484222325u64;
        for (k, attrs) in golden_rows() {
            fold(&mut digest, f.insert_row(k, &attrs).is_ok());
        }
        for q in f.query_batch(&probes, &pred) {
            fold(&mut digest, q);
        }
        for c in f.contains_key_batch(&probes) {
            fold(&mut digest, c);
        }
        assert_eq!(
            digest, expected,
            "{kind:?}: the u64 hot path diverged from the pre-redesign behavior"
        );
    }
}

#[test]
fn sharded_u64_keys_are_bit_identical_to_the_pre_redesign_behavior() {
    let pred = Predicate::any(2).and_eq(0, 1013);
    let probes = golden_probes();
    let service = ShardedCcf::new(VariantKind::Chained, golden_params(), 4);
    let mut digest = 0xCBF29CE484222325u64;
    for o in service.insert_batch(&golden_rows()) {
        fold(&mut digest, o.is_ok());
    }
    for q in service.query_batch(&probes, &pred) {
        fold(&mut digest, q);
    }
    for c in service.contains_key_batch(&probes) {
        fold(&mut digest, c);
    }
    for k in probes.iter().take(64) {
        fold(&mut digest, service.shard_of(*k) == 0);
    }
    assert_eq!(
        digest, GOLDEN_SHARDED_DIGEST,
        "sharded routing or probing diverged from the pre-redesign behavior"
    );
}

// --- 2. Lowering agreement (property tests) ---------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every `FilterKey` impl agrees with the prehashed-u64 core: inserting typed keys
    /// and querying them generically gives exactly the answers the prehashed core
    /// gives on the lowered material — u64 keys being the identity — for all four
    /// variants.
    #[test]
    fn every_key_type_agrees_with_the_prehashed_core(seed in any::<u64>()) {
        let params = CcfParams {
            num_buckets: 1 << 8,
            num_attrs: 1,
            seed,
            ..CcfParams::default()
        };
        for kind in ALL_VARIANTS {
            let mut f = AnyCcf::new(kind, params);
            let h = f.key_lower_hasher();
            let strings: Vec<String> = (0..200).map(|i| format!("key-{seed:x}-{i}")).collect();
            let composites: Vec<(u64, u64)> = (0..200).map(|i| (seed, i)).collect();
            let raw: Vec<u64> = (0..200u64).map(|i| seed.wrapping_add(i * 0x9E37)).collect();
            for i in 0..200usize {
                f.insert_row(strings[i].as_str(), &[i as u64 % 7]).unwrap();
                f.insert_row(composites[i], &[i as u64 % 7]).unwrap();
                f.insert_row(raw[i], &[i as u64 % 7]).unwrap();
            }
            // u64 lowering is the identity.
            for &k in raw.iter().take(32) {
                prop_assert_eq!(k.lower(&h), k);
            }
            let pred = f.predicate().and_eq(0, 3);
            for i in (0..200usize).step_by(7) {
                let s = strings[i].as_str();
                let c = composites[i];
                let k = raw[i];
                prop_assert_eq!(f.contains_key(s), f.contains_key_prehashed(s.lower(&h)));
                prop_assert_eq!(f.contains_key(c), f.contains_key_prehashed(c.lower(&h)));
                prop_assert_eq!(f.contains_key(k), f.contains_key_prehashed(k));
                prop_assert_eq!(f.query(s, &pred), f.query_prehashed(s.lower(&h), &pred));
                prop_assert_eq!(f.query(c, &pred), f.query_prehashed(c.lower(&h), &pred));
                prop_assert_eq!(f.query(k, &pred), f.query_prehashed(k, &pred));
                // String forms agree with each other.
                prop_assert_eq!(f.contains_key(s), f.contains_key(strings[i].clone()));
                prop_assert_eq!(f.contains_key(s), f.contains_key(s.as_bytes()));
            }
            // Batch layers agree with their prehashed cores.
            let str_refs: Vec<&str> = strings.iter().map(String::as_str).collect();
            let lowered: Vec<u64> = str_refs.iter().map(|s| s.lower(&h)).collect();
            prop_assert_eq!(
                f.contains_key_batch(&str_refs),
                f.contains_key_batch_prehashed(&lowered)
            );
            prop_assert_eq!(
                f.query_batch(&str_refs, &pred),
                f.query_batch_prehashed(&lowered, &pred)
            );
            prop_assert_eq!(
                f.contains_key_batch(&raw),
                f.contains_key_batch_prehashed(&raw)
            );
        }
    }

    /// The sharded service agrees with a single-filter reference on every key type:
    /// routing consumes the same lowered material as probing, so a key inserted
    /// through the service is found on exactly the shard its lowered material routes
    /// to, and batch results match per-key loops.
    #[test]
    fn sharded_service_agrees_with_single_filter_for_typed_keys(seed in any::<u64>()) {
        let params = CcfParams {
            num_buckets: 1 << 7,
            num_attrs: 1,
            seed,
            ..CcfParams::default()
        };
        let service = ShardedCcf::new(VariantKind::Chained, params, 3);
        let mut reference = AnyCcf::new(VariantKind::Chained, params);
        let keys: Vec<String> = (0..300).map(|i| format!("u-{seed:x}-{i}")).collect();
        for (i, k) in keys.iter().enumerate() {
            service.insert(k.as_str(), &[i as u64 % 5]).unwrap();
            reference.insert_row(k.as_str(), &[i as u64 % 5]).unwrap();
        }
        // No false negatives through the service, and point == batch.
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let batch = service.contains_key_batch(&refs);
        for (i, k) in refs.iter().enumerate() {
            prop_assert!(batch[i], "service lost {k}");
            prop_assert_eq!(batch[i], service.contains_key(*k));
        }
        // Absent probes: the service can only answer true if the single-filter
        // reference sees a fingerprint collision on the same lowered material in the
        // shard's smaller table — but both must agree with their own prehashed path.
        let h = service.key_lower_hasher();
        for i in 0..100 {
            let probe = format!("absent-{seed:x}-{i}");
            let lowered = probe.as_str().lower(&h);
            let shard = service.shard_of(probe.as_str());
            prop_assert_eq!(
                service.contains_key(probe.as_str()),
                service.with_shard(shard, |f| f.contains_key_prehashed(lowered))
            );
        }
    }
}

// --- 3. End-to-end string keys ----------------------------------------------------

#[test]
fn string_workload_flows_through_builder_sharded_service_and_join_bank() -> Result<(), CcfError> {
    let stream = StringKeyStream::new("user", DuplicateDistribution::zipf_with_mean(2.5), 2, 0xA11);
    let rows = stream.generate(4_000);

    // Builder-constructed AnyCcf.
    let mut filter = AnyCcf::builder()
        .variant(VariantKind::Mixed)
        .num_attrs(2)
        .expected_rows(rows.len())
        .auto_grow()
        .seed(3)
        .build()?;
    for r in &rows {
        filter.insert_row(r.key.as_str(), &r.attrs)?;
    }

    // Sharded service over the same stream.
    let service = ShardedCcf::try_new(
        VariantKind::Mixed,
        CcfParams {
            num_attrs: 2,
            seed: 3,
            auto_grow: true,
            ..CcfParams::default()
        }
        .try_sized_for_entries(rows.len() / 4, 0.85)?,
        4,
    )?;
    let row_refs: Vec<(&str, &[u64])> = rows
        .iter()
        .map(|r| (r.key.as_str(), r.attrs.as_slice()))
        .collect();
    for outcome in service.insert_batch(&row_refs) {
        outcome?;
    }

    // No false negatives anywhere, with full predicates.
    for r in &rows {
        let pred = filter
            .predicate()
            .and_eq(0, r.attrs[0])
            .and_eq(1, r.attrs[1]);
        assert!(filter.query(r.key.as_str(), &pred), "AnyCcf lost {}", r.key);
        assert!(
            service.query(r.key.as_str(), &pred),
            "ShardedCcf lost {}",
            r.key
        );
    }

    // Probe stream: single filter and sharded service agree on hits (both have every
    // inserted key; misses may differ only through each geometry's own collisions).
    let probes = stream.probes(1_000, 2_000);
    let probe_refs: Vec<&str> = probes.iter().map(String::as_str).collect();
    let single = filter.contains_key_batch(&probe_refs);
    let sharded = service.contains_key_batch(&probe_refs);
    for (i, p) in probe_refs.iter().enumerate() {
        if i % 2 == 0 {
            assert!(single[i] && sharded[i], "present probe {p} missed");
        }
    }

    // Join bank: probe a table's CCF with string keys through the typed-key bridge
    // (u64 join keys rendered as strings on the client side).
    let db = SyntheticImdb::generate(256, 5);
    let bank = FilterBank::build(&db, FilterConfig::small(VariantKind::Chained));
    let table = db.table(TableId::MovieCompanies);
    let string_keys: Vec<String> = table
        .join_keys
        .iter()
        .map(|k| format!("movie-{k}"))
        .collect();
    let hits = bank.contains_key_batch(TableId::MovieCompanies, &string_keys);
    // String keys were never inserted (the bank is keyed by u64 movie ids), so these
    // are pure FPR probes: the typed path must answer, and mostly with "no".
    let fp_rate = hits.iter().filter(|&&h| h).count() as f64 / hits.len() as f64;
    assert!(
        fp_rate < 0.05,
        "string-key probes against a u64-keyed bank should mostly miss: {fp_rate}"
    );
    // And u64 probes through the same typed entry point still hit every join key.
    let u64_hits = bank.contains_key_batch(TableId::MovieCompanies, &table.join_keys);
    assert!(u64_hits.iter().all(|&h| h), "u64 typed path lost join keys");
    Ok(())
}

// --- ParamsError / CcfError surface ------------------------------------------------

#[test]
fn construction_and_hot_paths_report_errors_as_values() {
    // Constructors: every variant plus the sharded service.
    for kind in ALL_VARIANTS {
        assert!(matches!(
            AnyCcf::try_new(
                kind,
                CcfParams {
                    max_dupes: 0,
                    ..CcfParams::default()
                }
            ),
            Err(ParamsError::ZeroMaxDupes)
        ));
    }
    assert!(matches!(
        ShardedCcf::try_new(VariantKind::Chained, CcfParams::default(), 0),
        Err(ParamsError::ZeroShards)
    ));
    // Builder.
    assert!(matches!(
        AnyCcf::builder().entries_per_bucket(0).build(),
        Err(ParamsError::ZeroEntriesPerBucket)
    ));
    // Hot path: arity mismatches are values, not panics, on every variant and the
    // sharded service.
    for kind in ALL_VARIANTS {
        let mut f = AnyCcf::new(
            kind,
            CcfParams {
                num_attrs: 2,
                ..CcfParams::default()
            },
        );
        assert_eq!(
            f.insert_row("k", &[1]),
            Err(InsertFailure::AttrArityMismatch {
                expected: 2,
                got: 1
            }),
            "{kind:?}"
        );
    }
    let service = ShardedCcf::new(
        VariantKind::Chained,
        CcfParams {
            num_attrs: 2,
            ..CcfParams::default()
        },
        2,
    );
    assert_eq!(
        service.insert("k", &[1, 2, 3]),
        Err(InsertFailure::AttrArityMismatch {
            expected: 2,
            got: 3
        })
    );
    // Everything converges on CcfError.
    let as_ccf: CcfError = ParamsError::ZeroShards.into();
    assert!(as_ccf.to_string().contains("shard"));
    let as_ccf: CcfError = InsertFailure::AttrArityMismatch {
        expected: 2,
        got: 1,
    }
    .into();
    assert!(as_ccf.to_string().contains("attributes"));
}
