//! Cross-crate acceptance tests for the deletion work: deletes must work on the
//! Plain/Chained/Mixed variants through every layer (`ConditionalFilter` trait
//! objects, `AnyCcf`, the builder, `ShardedCcf`, the join banks), sharded batch
//! deletes must be bit-identical to sequential loops, deletes must find copies
//! relocated by (auto-)growth, and the Bloom variant must refuse with a typed error
//! everywhere.

use conditional_cuckoo_filters::ccf::{
    AnyCcf, CcfParams, ConditionalFilter, DeleteFailure, Predicate, VariantKind,
};
use conditional_cuckoo_filters::shard::ShardedCcf;
use conditional_cuckoo_filters::workloads::churn::{ChurnOp, SlidingWindowChurn};

fn params(seed: u64) -> CcfParams {
    CcfParams {
        num_buckets: 1 << 8,
        num_attrs: 2,
        seed,
        ..CcfParams::default()
    }
}

#[test]
fn deletes_compose_with_auto_growth_across_variants() {
    // Fill far past the initial geometry so several doublings happen, then delete
    // every other row: each delete must find its relocated copy under the grown
    // split geometry, and the survivors must keep their guarantee.
    for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Mixed] {
        let mut filter = AnyCcf::new(
            kind,
            CcfParams {
                num_buckets: 1 << 5,
                ..params(0xDE1)
            }
            .with_auto_grow(),
        );
        let n = 4 * 32 * 6u64;
        for k in 0..n {
            filter.insert_row(k, &[k % 11, k % 13]).unwrap();
        }
        assert!(
            filter.params().num_buckets > 1 << 5,
            "{kind:?}: the workload must actually have grown the filter"
        );
        for k in (0..n).step_by(2) {
            assert_eq!(
                filter.delete_row(k, &[k % 11, k % 13]),
                Ok(true),
                "{kind:?}: delete of {k} missed its relocated copy"
            );
        }
        for k in (1..n).step_by(2) {
            let pred = Predicate::any(2).and_eq(0, k % 11).and_eq(1, k % 13);
            assert!(filter.query(k, &pred), "{kind:?}: survivor {k} lost");
        }
    }
}

#[test]
fn dyn_conditional_filter_supports_the_full_delete_surface() {
    let mut filters: Vec<(VariantKind, Box<dyn ConditionalFilter>)> = vec![
        (
            VariantKind::Plain,
            Box::new(conditional_cuckoo_filters::ccf::PlainCcf::new(params(1))),
        ),
        (
            VariantKind::Chained,
            Box::new(conditional_cuckoo_filters::ccf::ChainedCcf::new(params(1))),
        ),
        (
            VariantKind::Bloom,
            Box::new(conditional_cuckoo_filters::ccf::BloomCcf::new(params(1))),
        ),
        (
            VariantKind::Mixed,
            Box::new(conditional_cuckoo_filters::ccf::MixedCcf::new(params(1))),
        ),
    ];
    for (kind, filter) in &mut filters {
        for k in 0..50u64 {
            filter.insert_row_prehashed(k, &[k % 3, k % 5]).unwrap();
        }
        let arrays: Vec<(u64, [u64; 2])> = (0..50u64).map(|k| (k, [k % 3, k % 5])).collect();
        let rows: Vec<(u64, &[u64])> = arrays.iter().map(|(k, a)| (*k, a.as_slice())).collect();
        let results = filter.delete_row_batch_prehashed(&rows);
        if kind.supports_deletion() {
            assert_eq!(results, vec![Ok(true); 50], "{kind:?}");
            assert_eq!(filter.occupied_entries(), 0, "{kind:?}");
            assert_eq!(filter.delete_key_prehashed(7), Ok(false), "{kind:?}");
        } else {
            assert_eq!(
                results,
                vec![Err(DeleteFailure::Unsupported); 50],
                "{kind:?}"
            );
            assert_eq!(filter.occupied_entries(), 50, "{kind:?}");
        }
    }
}

#[test]
fn sharded_batch_deletes_are_bit_identical_to_sequential_loops() {
    for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Mixed] {
        let rows: Vec<(u64, [u64; 2])> = (0..500u64)
            .map(|k| (k.wrapping_mul(0x9E37_79B9), [k % 7, k % 9]))
            .collect();
        let build = || {
            let s = ShardedCcf::new(kind, params(0x5E0), 4);
            s.insert_batch(&rows);
            s
        };
        let victims: Vec<(u64, [u64; 2])> = rows.iter().step_by(3).cloned().collect();
        let parallel = build().with_threads(4);
        let batched = parallel.delete_row_batch(&victims);
        let sequential = build().with_threads(1);
        let looped: Vec<_> = victims
            .iter()
            .map(|(k, a)| sequential.delete_row(*k, a))
            .collect();
        assert_eq!(batched, looped, "{kind:?}");
        let probes: Vec<u64> = rows.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            parallel.contains_key_batch(&probes),
            sequential.contains_key_batch(&probes),
            "{kind:?}: batch and sequential deletes built different filters"
        );
        assert_eq!(
            parallel.occupied_entries(),
            sequential.occupied_entries(),
            "{kind:?}"
        );
    }
}

#[test]
fn sliding_window_churn_stays_bounded_through_the_sharded_service() {
    // End-to-end: a churn stream through the sharded service keeps the service's
    // occupancy pinned to the window and loses no live row.
    let window = 600usize;
    let service = ShardedCcf::new(VariantKind::Chained, params(0xC00F), 4);
    let ops = SlidingWindowChurn::new(window, 2, 64, 0xC00F).ops(6000);
    for op in &ops {
        match op {
            ChurnOp::Insert(row) => {
                service.insert(row.key, &row.attrs).unwrap();
            }
            ChurnOp::Delete(row) => {
                assert_eq!(service.delete_row(row.key, &row.attrs), Ok(true));
            }
        }
        assert!(service.occupied_entries() <= window + 1);
    }
    assert_eq!(service.occupied_entries(), window);
    let live = SlidingWindowChurn::new(window, 2, 64, 0xC00F).live_after(6000);
    for row in &live {
        let pred = service
            .predicate()
            .and_eq(0, row.attrs[0])
            .and_eq(1, row.attrs[1]);
        assert!(service.query(row.key, &pred), "live row {row:?} lost");
    }
}

#[test]
fn builder_to_sharded_churn_pipeline_round_trips() {
    // The full construction path a churn service would use: builder-validated
    // params, a deletable variant, sharded deployment, typed keys.
    let shard_params = AnyCcf::builder()
        .variant(VariantKind::Chained)
        .num_attrs(2)
        .expected_rows(500)
        .seed(42)
        .build_params()
        .unwrap();
    let service = ShardedCcf::new(VariantKind::Chained, shard_params, 3);
    let sessions: Vec<(String, [u64; 2])> = (0..300)
        .map(|i| (format!("sess-{i:05}"), [i % 5, i % 7]))
        .collect();
    service.insert_batch(&sessions);
    let evicted: Vec<(String, [u64; 2])> = sessions.iter().take(150).cloned().collect();
    assert_eq!(
        service.delete_row_batch(&evicted),
        vec![Ok(true); 150],
        "typed-key sharded deletes must find every inserted row"
    );
    for (i, (key, _)) in sessions.iter().enumerate() {
        assert_eq!(
            service.contains_key(key.as_str()),
            i >= 150,
            "{key} in the wrong state"
        );
    }
}
