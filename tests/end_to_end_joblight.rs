//! End-to-end integration test: the full JOB-light pipeline at small scale.
//!
//! Generates the synthetic IMDB dataset, generates the query workload, builds filter
//! banks for every CCF variant, evaluates reduction factors, and checks the invariants
//! the paper's evaluation relies on: no strategy beats the exact semijoin, CCFs beat the
//! predicate-blind cuckoo-filter baseline in aggregate, and the whole bank is an order
//! of magnitude smaller than the raw data.

use conditional_cuckoo_filters::ccf::sizing::VariantKind;
use conditional_cuckoo_filters::join::filters::{FilterBank, FilterConfig};
use conditional_cuckoo_filters::join::reduction::{evaluate_workload, WorkloadSummary};
use conditional_cuckoo_filters::workloads::imdb::SyntheticImdb;
use conditional_cuckoo_filters::workloads::joblight::JobLightWorkload;

fn small_context() -> (SyntheticImdb, JobLightWorkload) {
    let db = SyntheticImdb::generate(1024, 2024);
    let mut wl = JobLightWorkload::generate(&db, 2024);
    wl.queries.truncate(15); // keep the integration test fast
    (db, wl)
}

#[test]
fn reduction_factor_pipeline_respects_all_orderings() {
    let (db, wl) = small_context();
    let mut aggregate_rf = Vec::new();
    for variant in [VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
        let bank = FilterBank::build(&db, FilterConfig::small(variant));
        assert_eq!(
            bank.total_failed_rows(),
            0,
            "{variant:?}: bank dropped rows"
        );
        let results = evaluate_workload(&db, &wl, &bank);
        assert!(!results.is_empty());
        for r in &results {
            assert!(
                r.m_exact <= r.m_ccf,
                "{variant:?}: CCF lost a true match in {r:?}"
            );
            assert!(
                r.m_ccf <= r.m_predicate,
                "{variant:?}: CCF passed more rows than exist"
            );
            assert!(r.m_exact <= r.m_key_filter);
            assert!(r.m_exact <= r.m_exact_binned);
        }
        let summary = WorkloadSummary::from_instances(&results);
        assert!(summary.rf_exact <= summary.rf_ccf + 1e-9);
        assert!(
            summary.rf_ccf <= summary.rf_key_filter + 1e-9,
            "{variant:?}: CCF worse than key-only filters"
        );
        aggregate_rf.push((variant, summary.rf_ccf, summary.rf_key_filter));
    }
    // The headline claim: predicates make the pre-built filters substantially better.
    for (variant, rf_ccf, rf_key) in aggregate_rf {
        assert!(
            rf_ccf < rf_key,
            "{variant:?}: CCF RF {rf_ccf} not better than key-only RF {rf_key}"
        );
    }
}

#[test]
fn filter_banks_are_an_order_of_magnitude_smaller_than_raw_data() {
    let (db, _) = small_context();
    let raw_bits: usize = db.tables.iter().map(|t| t.raw_size_bits()).sum();
    let bank = FilterBank::build(&db, FilterConfig::small(VariantKind::Bloom));
    assert!(
        bank.total_ccf_bits() * 4 < raw_bits,
        "Bloom CCF bank ({}) should be several times smaller than raw data ({})",
        bank.total_ccf_bits(),
        raw_bits
    );
    // And the large chained bank still stays clearly below the raw data.
    let large = FilterBank::build(&db, FilterConfig::large(VariantKind::Chained));
    assert!(large.total_ccf_bits() < raw_bits);
}

#[test]
fn larger_filters_have_lower_fpr() {
    let (db, wl) = small_context();
    let small = FilterBank::build(&db, FilterConfig::small(VariantKind::Chained));
    let large = FilterBank::build(&db, FilterConfig::large(VariantKind::Chained));
    let s = WorkloadSummary::from_instances(&evaluate_workload(&db, &wl, &small));
    let l = WorkloadSummary::from_instances(&evaluate_workload(&db, &wl, &large));
    assert!(
        l.fpr_vs_exact <= s.fpr_vs_exact + 0.02,
        "large filters should not have a (meaningfully) higher FPR: large {} vs small {}",
        l.fpr_vs_exact,
        s.fpr_vs_exact
    );
    assert!(large.total_ccf_bits() > small.total_ccf_bits());
}
