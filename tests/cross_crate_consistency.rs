//! Cross-crate integration tests tying the substrates together: the CCF variants built
//! from real (synthetic-IMDB) table data, Algorithm 2's derived filters compared
//! against ground truth, and the sizing machinery driving filter construction.

use conditional_cuckoo_filters::ccf::sizing::{
    attainable_load_factor, predicted_entries, size_for_profile, DuplicationProfile, VariantKind,
};
use conditional_cuckoo_filters::ccf::{AnyCcf, BloomCcf, CcfParams, ConditionalFilter, Predicate};
use conditional_cuckoo_filters::join::bridge::ccf_attrs_for_row;
use conditional_cuckoo_filters::workloads::imdb::{SyntheticImdb, TableId};

#[test]
fn sized_filters_absorb_real_tables_at_predicted_load() {
    let db = SyntheticImdb::generate(1024, 77);
    for &table_id in &[
        TableId::MovieKeyword,
        TableId::CastInfo,
        TableId::MovieCompanies,
    ] {
        let table = db.table(table_id);
        let profile = DuplicationProfile::from_counts(table.distinct_attr_vectors_per_key());
        for variant in [VariantKind::Chained, VariantKind::Mixed, VariantKind::Bloom] {
            let params = size_for_profile(
                variant,
                &profile,
                CcfParams {
                    num_attrs: table.spec().columns.len(),
                    seed: 77,
                    ..CcfParams::default()
                },
            );
            let mut filter = AnyCcf::new(variant, params);
            let mut failures = 0;
            for row in 0..table.num_rows() {
                let attrs = ccf_attrs_for_row(table, row);
                if filter.insert_row(table.join_keys[row], &attrs).is_err() {
                    failures += 1;
                }
            }
            assert_eq!(
                failures, 0,
                "{table_id:?}/{variant:?}: sized filter dropped rows"
            );
            // The filter's occupancy stays at or below the predicted entries and the
            // load factor stays below the empirical attainable target.
            let predicted = predicted_entries(variant, &profile, &params);
            assert!(filter.occupied_entries() <= predicted);
            assert!(
                filter.load_factor() <= attainable_load_factor(params.entries_per_bucket) + 0.02,
                "{table_id:?}/{variant:?}: load factor {} above target",
                filter.load_factor()
            );
        }
    }
}

#[test]
fn derived_predicate_filter_matches_ground_truth_on_imdb_data() {
    let db = SyntheticImdb::generate(1024, 78);
    let table = db.table(TableId::MovieInfoIdx); // single predicate column, cardinality 5
    let profile = DuplicationProfile::from_counts(table.distinct_attr_vectors_per_key());
    let params = size_for_profile(
        VariantKind::Bloom,
        &profile,
        CcfParams {
            num_attrs: 1,
            bloom_bits: 16,
            seed: 78,
            ..CcfParams::default()
        },
    );
    let mut ccf = BloomCcf::new(params);
    for row in 0..table.num_rows() {
        ccf.insert_row(table.join_keys[row], &[table.columns[0][row]])
            .unwrap();
    }
    // Ground truth: movie ids having info_type_id = 2.
    let truth: std::collections::HashSet<u64> = (0..table.num_rows())
        .filter(|&r| table.columns[0][r] == 2)
        .map(|r| table.join_keys[r])
        .collect();
    let derived = ccf.predicate_filter(&Predicate::any(1).and_eq(0, 2));
    // No false negatives, and the surviving key count is in the right ballpark (some
    // false positives are expected from Bloom collisions).
    for &k in &truth {
        assert!(derived.contains(k), "derived filter lost movie {k}");
    }
    let survivors = (1..=db.num_movies).filter(|&m| derived.contains(m)).count();
    assert!(survivors >= truth.len());
    assert!(
        survivors <= table.distinct_keys(),
        "derived filter kept more keys than the table has"
    );
}

#[test]
fn variants_agree_on_key_membership_for_identical_data() {
    // Whatever the attribute machinery does, key-only membership must behave like a
    // cuckoo filter for every variant: no inserted key is ever lost.
    let db = SyntheticImdb::generate(2048, 79);
    let table = db.table(TableId::MovieCompanies);
    let params = CcfParams {
        num_buckets: 1 << 13,
        entries_per_bucket: 6,
        num_attrs: 2,
        seed: 79,
        ..CcfParams::default()
    };
    let mut filters: Vec<AnyCcf> = [VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed]
        .iter()
        .map(|&k| AnyCcf::new(k, params))
        .collect();
    for row in 0..table.num_rows() {
        let attrs = ccf_attrs_for_row(table, row);
        for f in &mut filters {
            f.insert_row(table.join_keys[row], &attrs).unwrap();
        }
    }
    for &key in table.join_keys.iter().step_by(17) {
        for f in &filters {
            assert!(f.contains_key(key));
        }
    }
}
