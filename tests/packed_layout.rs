//! Golden bit-identity tests for the bit-packed bucket layout.
//!
//! The digests hardcoded below were captured on the pre-packing, word-sized
//! `Vec<Bucket>`-of-`Vec<u16>` layout (seed commit 56b46c8). The packed contiguous
//! fingerprint array must reproduce them bit-for-bit: every insert outcome, every
//! point and batched query, every delete result and every growth decision. Together
//! with the occupancy-drift proptests in `ccf-cuckoo`, this is the contract that the
//! storage refactor changed the *layout* of the filters and nothing about their
//! observable behavior.
//!
//! The streams deliberately exercise the paths the layout touches: duplicate-heavy
//! inserts (kick loops and rollback), predicate and key-only batches (the
//! hash→prefetch→probe kernel), point deletes (lane clearing), auto-growth mid-stream
//! (the keyless packed remap) and explicit `grow()` calls.

use conditional_cuckoo_filters::ccf::sizing::VariantKind;
use conditional_cuckoo_filters::ccf::{
    AnyCcf, CcfParams, ConditionalFilter, DeleteFailure, InsertOutcome, Predicate,
};
use conditional_cuckoo_filters::cuckoo::{
    CuckooFilter, CuckooFilterParams, StorageKind, MAX_KICKS,
};
use conditional_cuckoo_filters::shard::ShardedCcf;

/// FNV-style fold of one event bit into the stream digest.
fn fold(digest: &mut u64, bit: bool) {
    *digest = digest.wrapping_mul(0x100000001B3).wrapping_add(if bit {
        0x9E3779B97F4A7C15
    } else {
        0x2545F4914F6CDD1D
    });
}

/// Fold an arbitrary value (lengths, counters, growth bits) into the digest.
fn fold_u64(digest: &mut u64, value: u64) {
    *digest = (*digest ^ value).wrapping_mul(0x100000001B3);
}

fn fold_insert(digest: &mut u64, outcome: &Result<InsertOutcome, impl std::fmt::Debug>) {
    let code = match outcome {
        Ok(InsertOutcome::Inserted) => 1,
        Ok(InsertOutcome::Deduplicated) => 2,
        Ok(InsertOutcome::Merged) => 3,
        Ok(InsertOutcome::Converted) => 4,
        Ok(InsertOutcome::DroppedChainCap) => 5,
        Err(_) => 6,
    };
    fold_u64(digest, code);
}

fn fold_delete(digest: &mut u64, outcome: &Result<bool, DeleteFailure>) {
    let code = match outcome {
        Ok(true) => 1,
        Ok(false) => 2,
        Err(DeleteFailure::Unsupported) => 3,
        Err(DeleteFailure::ConvertedGroup) => 4,
        Err(DeleteFailure::AttrArityMismatch { .. }) => 5,
    };
    fold_u64(digest, code);
}

/// Duplicate-heavy row stream: key i/6 appears 6 times with distinct attribute
/// vectors, so chaining, Bloom merging and mixed conversion all engage, and the volume
/// (3× the filters' sized capacity) forces auto-growth mid-stream.
fn rows() -> Vec<(u64, [u64; 2])> {
    (0..3000u64)
        .map(|i| {
            (
                (i / 6).wrapping_mul(0x9E3779B97F4A7C15) >> 13,
                [1000 + i % 7 + 10 * (i % 6), 2000 + i % 13],
            )
        })
        .collect()
}

/// Probe stream: half present keys, half absent material.
fn probes() -> Vec<u64> {
    let rows = rows();
    (0..6000u64)
        .map(|i| {
            if i % 2 == 0 {
                rows[(i as usize / 2) % rows.len()].0
            } else {
                i.wrapping_mul(0xA24BAED4963EE407)
            }
        })
        .collect()
}

fn variant_params() -> CcfParams {
    CcfParams {
        num_buckets: 1 << 7,
        num_attrs: 2,
        seed: 0xBEEF,
        auto_grow: true,
        ..CcfParams::default()
    }
}

/// Full insert/query/delete/grow/batch stream digest for one CCF variant.
fn variant_digest(kind: VariantKind) -> u64 {
    let pred = Predicate::any(2).and_eq(0, 1013);
    let mut f = AnyCcf::new(kind, variant_params());
    let mut digest = 0xCBF29CE484222325u64;
    for (k, attrs) in rows() {
        fold_insert(&mut digest, &f.insert_row(k, &attrs));
    }
    let probes = probes();
    for q in f.query_batch(&probes, &pred) {
        fold(&mut digest, q);
    }
    for c in f.contains_key_batch(&probes) {
        fold(&mut digest, c);
    }
    // Point queries agree with batches by construction; fold a sample anyway so the
    // scalar path is covered by the same digest.
    for (k, attrs) in rows().iter().step_by(17) {
        fold(
            &mut digest,
            f.query(*k, &Predicate::any(2).and_eq(0, attrs[0])),
        );
    }
    // Deletes: every 3rd row as a row delete, every 11th key as a key delete.
    for (k, attrs) in rows().iter().step_by(3) {
        fold_delete(&mut digest, &f.delete_row(*k, attrs));
    }
    for (k, _) in rows().iter().step_by(11) {
        fold_delete(&mut digest, &f.delete_key(*k));
    }
    // Post-delete batch probes over the same stream.
    for q in f.query_batch(&probes, &pred) {
        fold(&mut digest, q);
    }
    for c in f.contains_key_batch(&probes) {
        fold(&mut digest, c);
    }
    // Structural counters: occupancy and growth must match exactly.
    let occ = f.occupancy();
    fold_u64(&mut digest, f.occupied_entries() as u64);
    fold_u64(&mut digest, occ.occupied as u64);
    fold_u64(&mut digest, occ.full_buckets as u64);
    fold_u64(&mut digest, occ.empty_buckets as u64);
    fold_u64(&mut digest, u64::from(f.growth_stats().growth_bits));
    digest
}

/// Digests captured on the pre-packing word-sized layout (seed commit 56b46c8).
const GOLDEN_VARIANT_DIGESTS: [(VariantKind, u64); 4] = [
    (VariantKind::Plain, 0x4F8EB2933A4F2590),
    (VariantKind::Chained, 0x327BDE9E669FA1E4),
    (VariantKind::Bloom, 0x2D0BBE16397C0C3B),
    (VariantKind::Mixed, 0x0041C2E5FA69E533),
];

#[test]
fn variant_streams_are_bit_identical_to_the_word_sized_layout() {
    let mismatches: Vec<String> = GOLDEN_VARIANT_DIGESTS
        .iter()
        .filter_map(|&(kind, expected)| {
            let digest = variant_digest(kind);
            (digest != expected).then(|| format!("{kind:?}: {digest:#X} != {expected:#X}"))
        })
        .collect();
    assert!(
        mismatches.is_empty(),
        "stream digests diverged from the word-sized layout: {mismatches:?}"
    );
}

/// Digest captured on the pre-packing word-sized layout (seed commit 56b46c8).
const GOLDEN_CUCKOO_DIGEST: u64 = 0xE5FA896E29FD7FAA;

#[test]
fn cuckoo_filter_stream_is_bit_identical_to_the_word_sized_layout() {
    // Storage is pinned to packed regardless of the `CCF_STORAGE` matrix: the golden
    // digest folds *per-bucket* occupancy (full/empty bucket counts), and while both
    // backends answer every membership question identically, their kick loops evict
    // different victims (semisort buckets re-canonicalize slot order), so bucket-level
    // occupancy distributions legitimately differ between backends.
    let mut f = CuckooFilter::new(CuckooFilterParams {
        num_buckets: 1 << 9,
        entries_per_bucket: 4,
        fingerprint_bits: 12,
        seed: 0xBEEF,
        auto_grow: false,
        storage: StorageKind::Packed,
        max_kicks: MAX_KICKS,
    });
    let mut digest = 0xCBF29CE484222325u64;
    // Fill to ~90 % load, with duplicates sprinkled in.
    for k in 0..1800u64 {
        fold(&mut digest, f.insert(k % 1700).is_ok());
    }
    let probes: Vec<u64> = (0..6000u64).map(|i| i.wrapping_mul(0x9E3779B1)).collect();
    for hit in f.contains_batch(&probes) {
        fold(&mut digest, hit);
    }
    for k in (0..1700u64).step_by(3) {
        fold(&mut digest, f.delete(k));
    }
    // Explicit doubling: the packed remap must move exactly the same fingerprints.
    f.grow();
    for hit in f.contains_batch(&probes) {
        fold(&mut digest, hit);
    }
    for k in (0..1700u64).step_by(41) {
        fold_u64(&mut digest, f.count(k) as u64);
    }
    let occ = f.occupancy();
    fold_u64(&mut digest, f.len() as u64);
    fold_u64(&mut digest, occ.occupied as u64);
    fold_u64(&mut digest, occ.full_buckets as u64);
    fold_u64(&mut digest, occ.empty_buckets as u64);
    fold_u64(&mut digest, f.num_buckets() as u64);
    assert_eq!(
        digest, GOLDEN_CUCKOO_DIGEST,
        "cuckoo filter stream digest {digest:#X} diverged from the word-sized layout"
    );
}

/// Digest captured on the pre-packing word-sized layout (seed commit 56b46c8).
const GOLDEN_SHARDED_DIGEST: u64 = 0x9BD92C47B2E4F18F;

#[test]
fn sharded_stream_is_bit_identical_to_the_word_sized_layout() {
    let pred = Predicate::any(2).and_eq(0, 1013);
    let probes = probes();
    let service = ShardedCcf::new(VariantKind::Chained, variant_params(), 4);
    let mut digest = 0xCBF29CE484222325u64;
    for o in service.insert_batch(&rows()) {
        fold_insert(&mut digest, &o);
    }
    for q in service.query_batch(&probes, &pred) {
        fold(&mut digest, q);
    }
    for c in service.contains_key_batch(&probes) {
        fold(&mut digest, c);
    }
    let victims: Vec<(u64, [u64; 2])> = rows().iter().step_by(3).copied().collect();
    for d in service.delete_row_batch(&victims) {
        fold_delete(&mut digest, &d);
    }
    for c in service.contains_key_batch(&probes) {
        fold(&mut digest, c);
    }
    for k in probes.iter().take(64) {
        fold(&mut digest, service.shard_of(*k) == 0);
    }
    fold_u64(&mut digest, service.occupied_entries() as u64);
    assert_eq!(
        digest, GOLDEN_SHARDED_DIGEST,
        "sharded stream digest {digest:#X} diverged from the word-sized layout"
    );
}
