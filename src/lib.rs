//! Umbrella crate re-exporting the Conditional Cuckoo Filter workspace.
//!
//! Most users will depend on [`ccf_core`] directly; this crate exists so the runnable
//! examples in `examples/` and the cross-crate integration tests in `tests/` have a
//! single package exposing the whole public API surface.

pub use ccf_bloom as bloom;
pub use ccf_core as ccf;
pub use ccf_cuckoo as cuckoo;
pub use ccf_hash as hash;
pub use ccf_join as join;
pub use ccf_shard as shard;
pub use ccf_telemetry as telemetry;
pub use ccf_workloads as workloads;
