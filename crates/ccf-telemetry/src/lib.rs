//! Event telemetry for the conditional-cuckoo-filter stack.
//!
//! The rest of the workspace can report point-in-time *state* (occupancy, growth
//! history, shard balance) but was blind to *events*: kick-loop depth distributions,
//! grow/rollback frequency, delete outcomes, batch latencies, per-shard op mix. This
//! crate provides the missing layer with nothing beyond `std::sync::atomic`:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — cheap handles around relaxed-ordering
//!   atomics. A handle is an `Option<Arc<…>>` internally, so a **disabled** instrument
//!   (the default everywhere) costs exactly one branch per operation and allocates
//!   nothing.
//! * [`Registry`] — named instruments with label support (`variant`, `shard`,
//!   `storage`, …), deduplicated by `(name, labels)` so independently attached
//!   components share series.
//! * [`Snapshot`] — a plain-data capture of every registered series with
//!   [`Snapshot::diff`] semantics for before/after measurements.
//! * Prometheus-style text exposition ([`Telemetry::render_text`]) plus a compact
//!   human table ([`Telemetry::render_table`]).
//!
//! The filter crates thread a [`Telemetry`] handle (a clone-cheap `Arc`) through their
//! constructors and `attach_telemetry` methods; `Telemetry::disabled()` is the
//! always-available no-op default.
//!
//! # Example
//!
//! ```
//! use ccf_telemetry::{buckets, Telemetry};
//!
//! let telemetry = Telemetry::enabled();
//! let inserts = telemetry.counter("ccf_inserts_total", "Rows inserted", &[("variant", "plain")]);
//! let depth = telemetry.histogram(
//!     "ccf_kick_depth",
//!     "Kick rounds per insert",
//!     &buckets::log2(512),
//!     &[],
//! );
//! inserts.inc();
//! depth.observe(3);
//! let text = telemetry.render_text();
//! assert!(text.contains("ccf_inserts_total{variant=\"plain\"} 1"));
//! assert!(text.contains("ccf_kick_depth_bucket{le=\"4\"} 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buckets;
pub mod instruments;
pub mod registry;
pub mod render;
pub mod snapshot;

pub use instruments::{Counter, Gauge, Histogram, Timer};
pub use registry::{Registry, Telemetry};
pub use snapshot::{HistogramSnapshot, MetricEntry, MetricValue, Snapshot};
