//! Standard bucket layouts for the stack's histograms.
//!
//! Fixed layouts keep recording allocation-free and make series from different
//! components directly comparable. Two families cover every current use:
//!
//! * [`log2`] — powers of two, for small structural quantities (kick depth per insert,
//!   chain walk length, fan-out batch size). A `0` bucket leads so the common
//!   "no kicks at all" case is its own bin.
//! * [`latency_ns`] — coarse decimal nanosecond bounds (1 µs … 1 s), for wall-clock
//!   timings recorded via [`crate::Histogram::start_timer`].
//! * [`frame_bytes`] — byte-size bounds for wire frames and snapshot images
//!   (64 B … 16 MiB), used by the `ccf-service` daemon.

/// `[0, 1, 2, 4, …]` up to the first power of two `≥ max`.
///
/// # Panics
/// Panics if `max == 0` (the layout would collapse to the single `0` bucket).
pub fn log2(max: u64) -> Vec<u64> {
    assert!(max > 0, "log2 bucket layout needs max > 0");
    let mut bounds = vec![0, 1];
    let mut b = 2u64;
    while b < max {
        bounds.push(b);
        b = b.saturating_mul(2);
    }
    bounds.push(b.min(max.next_power_of_two()));
    bounds.dedup();
    bounds
}

/// Coarse nanosecond latency bounds: `1-5-10` steps from 1 µs to 1 s.
pub fn latency_ns() -> Vec<u64> {
    vec![
        1_000,         // 1 µs
        5_000,         // 5 µs
        10_000,        // 10 µs
        50_000,        // 50 µs
        100_000,       // 100 µs
        500_000,       // 500 µs
        1_000_000,     // 1 ms
        5_000_000,     // 5 ms
        10_000_000,    // 10 ms
        50_000_000,    // 50 ms
        100_000_000,   // 100 ms
        500_000_000,   // 500 ms
        1_000_000_000, // 1 s
    ]
}

/// Byte-size bounds for wire frames and snapshot images: powers of four from 64 B up
/// to 16 MiB (the service's frame cap), so request, response and persistence sizes
/// from different daemons land in comparable bins.
pub fn frame_bytes() -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut b = 64u64;
    while b <= 16 * 1024 * 1024 {
        bounds.push(b);
        b *= 4;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_covers_zero_through_max() {
        assert_eq!(log2(1), vec![0, 1]);
        assert_eq!(log2(2), vec![0, 1, 2]);
        assert_eq!(log2(500), vec![0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512]);
        assert_eq!(log2(512).last(), Some(&512));
    }

    #[test]
    fn layouts_are_strictly_increasing() {
        for bounds in [log2(500), log2(7), latency_ns(), frame_bytes()] {
            assert!(bounds.windows(2).all(|w| w[0] < w[1]), "{bounds:?}");
        }
    }

    #[test]
    fn frame_bytes_spans_tiny_frames_to_the_frame_cap() {
        let bounds = frame_bytes();
        assert_eq!(bounds.first(), Some(&64));
        assert_eq!(bounds.last(), Some(&(16 * 1024 * 1024)));
    }

    #[test]
    #[should_panic(expected = "max > 0")]
    fn log2_rejects_zero() {
        let _ = log2(0);
    }
}
