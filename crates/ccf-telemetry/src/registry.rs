//! The instrument registry and the [`Telemetry`] handle threaded through the stack.

use std::sync::{Arc, Mutex};

use crate::instruments::{Counter, CounterCore, Gauge, GaugeCore, Histogram, HistogramCore};
use crate::snapshot::{MetricEntry, MetricValue, Snapshot};

/// Owned label pairs, kept in registration order (callers pass them pre-sorted by
/// convention: identity labels like `variant` before topology labels like `shard`).
pub(crate) type Labels = Vec<(String, String)>;

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[derive(Debug)]
enum InstrumentCore {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

impl InstrumentCore {
    fn kind_name(&self) -> &'static str {
        match self {
            InstrumentCore::Counter(_) => "counter",
            InstrumentCore::Gauge(_) => "gauge",
            InstrumentCore::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Labels,
    core: InstrumentCore,
}

/// A collection of named, labelled instruments.
///
/// Registration deduplicates by `(name, labels)`: two components that resolve the same
/// series get handles onto the same underlying atomics, which is what lets a filter and
/// the shard service that owns it contribute to one exposition. Registering an existing
/// series with a different instrument kind (or different histogram bounds) is a
/// programming error and panics.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (registering on first use) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = owned_labels(labels);
        let mut entries = self.entries.lock().expect("telemetry registry poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            match &entry.core {
                InstrumentCore::Counter(core) => return Counter::from_core(Arc::clone(core)),
                other => panic!(
                    "telemetry series {name} already registered as a {}",
                    other.kind_name()
                ),
            }
        }
        let core = Arc::new(CounterCore::default());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            core: InstrumentCore::Counter(Arc::clone(&core)),
        });
        Counter::from_core(core)
    }

    /// Resolve (registering on first use) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = owned_labels(labels);
        let mut entries = self.entries.lock().expect("telemetry registry poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            match &entry.core {
                InstrumentCore::Gauge(core) => return Gauge::from_core(Arc::clone(core)),
                other => panic!(
                    "telemetry series {name} already registered as a {}",
                    other.kind_name()
                ),
            }
        }
        let core = Arc::new(GaugeCore::default());
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            core: InstrumentCore::Gauge(Arc::clone(&core)),
        });
        Gauge::from_core(core)
    }

    /// Resolve (registering on first use) a histogram series with the given finite
    /// bucket bounds (see [`crate::buckets`] for the standard layouts).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        let labels = owned_labels(labels);
        let mut entries = self.entries.lock().expect("telemetry registry poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            match &entry.core {
                InstrumentCore::Histogram(core) => {
                    assert_eq!(
                        core.bounds, bounds,
                        "telemetry histogram {name} re-registered with different buckets"
                    );
                    return Histogram::from_core(Arc::clone(core));
                }
                other => panic!(
                    "telemetry series {name} already registered as a {}",
                    other.kind_name()
                ),
            }
        }
        let core = Arc::new(HistogramCore::new(bounds));
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            core: InstrumentCore::Histogram(Arc::clone(&core)),
        });
        Histogram::from_core(core)
    }

    /// Capture every registered series as plain data, in registration order.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("telemetry registry poisoned");
        Snapshot {
            entries: entries
                .iter()
                .map(|e| MetricEntry {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: match &e.core {
                        InstrumentCore::Counter(c) => MetricValue::Counter(c.get()),
                        InstrumentCore::Gauge(g) => MetricValue::Gauge(g.get()),
                        InstrumentCore::Histogram(h) => {
                            MetricValue::Histogram(crate::snapshot::HistogramSnapshot {
                                bounds: h.bounds.clone(),
                                counts: h.counts(),
                                sum: h.sum(),
                            })
                        }
                    },
                })
                .collect(),
        }
    }
}

/// The handle the filter stack threads around: either a live registry behind an `Arc`
/// or the disabled default.
///
/// Cloning is one `Arc` clone (or a copy of `None`). Every instrument resolved from a
/// disabled handle is itself disabled, so downstream code holds plain instrument
/// structs and never branches on the telemetry mode beyond the instruments' own
/// internal `Option` check.
#[derive(Debug, Default, Clone)]
pub struct Telemetry {
    registry: Option<Arc<Registry>>,
}

impl Telemetry {
    /// The no-op handle: instruments resolved from it record nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Self {
            registry: Some(Arc::new(Registry::new())),
        }
    }

    /// Whether instruments resolved from this handle record anywhere.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The backing registry, if enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_deref()
    }

    /// Resolve a counter (disabled handle ⇒ disabled counter).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.registry {
            Some(r) => r.counter(name, help, labels),
            None => Counter::disabled(),
        }
    }

    /// Resolve a gauge (disabled handle ⇒ disabled gauge).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.registry {
            Some(r) => r.gauge(name, help, labels),
            None => Gauge::disabled(),
        }
    }

    /// Resolve a histogram (disabled handle ⇒ disabled histogram).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match &self.registry {
            Some(r) => r.histogram(name, help, bounds, labels),
            None => Histogram::disabled(),
        }
    }

    /// Snapshot every registered series (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        self.registry
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// Render the Prometheus-style text exposition (empty string when disabled).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    /// Render the compact human-readable table (empty string when disabled).
    pub fn render_table(&self) -> String {
        self.snapshot().render_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buckets;

    #[test]
    fn series_deduplicate_by_name_and_labels() {
        let t = Telemetry::enabled();
        let a = t.counter("ops_total", "ops", &[("shard", "0")]);
        let b = t.counter("ops_total", "ops", &[("shard", "0")]);
        let other = t.counter("ops_total", "ops", &[("shard", "1")]);
        a.inc();
        b.inc();
        other.inc();
        assert_eq!(a.get(), 2, "same (name, labels) must share a series");
        assert_eq!(other.get(), 1);
        let snap = t.snapshot();
        assert_eq!(snap.entries.len(), 2);
    }

    #[test]
    fn histograms_share_series_when_bounds_match() {
        let t = Telemetry::enabled();
        let h1 = t.histogram("depth", "d", &buckets::log2(8), &[]);
        let h2 = t.histogram("depth", "d", &buckets::log2(8), &[]);
        h1.observe(3);
        h2.observe(5);
        assert_eq!(h1.count(), 2);
    }

    #[test]
    #[should_panic(expected = "different buckets")]
    fn histogram_bound_mismatch_panics() {
        let t = Telemetry::enabled();
        let _ = t.histogram("depth", "d", &buckets::log2(8), &[]);
        let _ = t.histogram("depth", "d", &buckets::log2(16), &[]);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let t = Telemetry::enabled();
        let _ = t.counter("x", "x", &[]);
        let _ = t.gauge("x", "x", &[]);
    }

    #[test]
    fn disabled_handle_resolves_disabled_instruments() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(t.registry().is_none());
        let c = t.counter("a", "a", &[]);
        let g = t.gauge("b", "b", &[]);
        let h = t.histogram("c", "c", &buckets::log2(4), &[]);
        c.inc();
        g.set(1);
        h.observe(1);
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        assert!(t.snapshot().entries.is_empty());
        assert!(t.render_text().is_empty());
        assert!(t.render_table().is_empty());
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.counter("a", "a", &[]).inc();
        assert_eq!(t2.snapshot().counter("a", &[]), Some(1));
    }

    #[test]
    fn registration_from_many_threads_is_safe() {
        let t = Telemetry::enabled();
        std::thread::scope(|scope| {
            for i in 0..8 {
                let t = t.clone();
                scope.spawn(move || {
                    let shard = (i % 2).to_string();
                    let c = t.counter("ops_total", "ops", &[("shard", shard.as_str())]);
                    for _ in 0..100 {
                        c.inc();
                    }
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.counter("ops_total", &[("shard", "0")]), Some(400));
        assert_eq!(snap.counter("ops_total", &[("shard", "1")]), Some(400));
    }
}
