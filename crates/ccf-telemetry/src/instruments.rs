//! The three instrument kinds: counters, gauges, and fixed-bucket histograms.
//!
//! Every handle wraps an `Option<Arc<…Core>>`. A handle created from a disabled
//! [`crate::Telemetry`] (or via `Default`) holds `None`, so the per-operation cost of
//! unused telemetry is a single branch — no allocation, no atomics, and for latency
//! timers not even a clock read. All atomic traffic uses `Ordering::Relaxed`: the
//! instruments count events, they do not synchronize them.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    value: AtomicU64,
}

impl CounterCore {
    pub(crate) fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing event counter.
///
/// Cloning is cheap and clones share the underlying series. The `Default` handle is
/// disabled: every method is a no-op costing one branch.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    pub(crate) core: Option<Arc<CounterCore>>,
}

impl Counter {
    /// A no-op counter (what every instrument field starts as).
    pub fn disabled() -> Self {
        Self::default()
    }

    pub(crate) fn from_core(core: Arc<CounterCore>) -> Self {
        Self { core: Some(core) }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.core {
            core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.get())
    }
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCore {
    value: AtomicI64,
}

impl GaugeCore {
    pub(crate) fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (live entries, open shards, …).
#[derive(Debug, Default, Clone)]
pub struct Gauge {
    pub(crate) core: Option<Arc<GaugeCore>>,
}

impl Gauge {
    /// A no-op gauge.
    pub fn disabled() -> Self {
        Self::default()
    }

    pub(crate) fn from_core(core: Arc<GaugeCore>) -> Self {
        Self { core: Some(core) }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(core) = &self.core {
            core.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (negative values subtract).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(core) = &self.core {
            core.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.core.as_ref().map_or(0, |c| c.get())
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Inclusive upper bounds of the finite buckets, strictly increasing. Observations
    /// above the last bound land in the implicit `+Inf` bucket.
    pub(crate) bounds: Vec<u64>,
    /// One count per finite bound plus the `+Inf` overflow bucket (not cumulative;
    /// cumulation happens at snapshot/render time, the Prometheus convention).
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn observe(&self, value: u64) {
        // partition_point is a branch-light binary search over a handful of bounds.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    pub(crate) fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `u64` observations (kick depths, chain lengths, batch
/// sizes, nanosecond latencies).
///
/// Bucket layouts come from [`crate::buckets`]; the layout is fixed at registration so
/// recording is a small binary search plus two relaxed atomic adds.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    pub(crate) core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A no-op histogram.
    pub fn disabled() -> Self {
        Self::default()
    }

    pub(crate) fn from_core(core: Arc<HistogramCore>) -> Self {
        Self { core: Some(core) }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(core) = &self.core {
            core.observe(value);
        }
    }

    /// Record a `usize` observation (saturating into `u64`, which cannot actually
    /// truncate on any supported platform).
    #[inline]
    pub fn observe_len(&self, value: usize) {
        self.observe(value as u64);
    }

    /// Start a wall-clock timer whose drop records elapsed **nanoseconds** into this
    /// histogram. When the histogram is disabled the timer holds nothing and never
    /// touches the clock — `Instant::now()` is skipped entirely.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer {
            inner: self
                .core
                .as_ref()
                .map(|core| (Arc::clone(core), Instant::now())),
        }
    }

    /// Total number of observations (0 when disabled).
    pub fn count(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |c| c.counts().iter().sum::<u64>())
    }

    /// Sum of all observed values (0 when disabled).
    pub fn sum(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.sum())
    }
}

/// Records the elapsed time since [`Histogram::start_timer`] when dropped (or
/// explicitly via [`Timer::observe_duration`]).
#[derive(Debug)]
pub struct Timer {
    inner: Option<(Arc<HistogramCore>, Instant)>,
}

impl Timer {
    /// Stop the timer now and record the elapsed nanoseconds.
    pub fn observe_duration(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some((core, start)) = self.inner.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            core.observe(ns);
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instruments_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());

        let g = Gauge::disabled();
        g.set(5);
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 0);

        let h = Histogram::disabled();
        h.observe(99);
        h.start_timer().observe_duration();
        drop(h.start_timer());
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn counter_accumulates_across_clones() {
        let c = Counter::from_core(Arc::new(CounterCore::default()));
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c2.get(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::from_core(Arc::new(GaugeCore::default()));
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn histogram_buckets_observations_by_upper_bound() {
        let core = Arc::new(HistogramCore::new(&[1, 2, 4]));
        let h = Histogram::from_core(core.clone());
        for v in [0, 1, 2, 3, 4, 5, 100] {
            h.observe(v);
        }
        // Non-cumulative per-bucket counts: ≤1 → {0,1}, ≤2 → {2}, ≤4 → {3,4}, +Inf →
        // {5,100}.
        assert_eq!(core.counts(), vec![2, 1, 2, 2]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 115);
    }

    #[test]
    fn timer_records_nanoseconds() {
        let core = Arc::new(HistogramCore::new(&crate::buckets::latency_ns()));
        let h = Histogram::from_core(core);
        h.start_timer().observe_duration();
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 2, "both explicit stop and drop must record");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = HistogramCore::new(&[4, 2]);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Counter::from_core(Arc::new(CounterCore::default()));
        let h = Histogram::from_core(Arc::new(HistogramCore::new(&[8, 64])));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(t * 31 + i % 100);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
