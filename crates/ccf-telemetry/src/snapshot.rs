//! Plain-data captures of a registry with before/after diff semantics.

/// A captured histogram: finite bucket bounds, per-bucket (non-cumulative) counts with
/// the trailing `+Inf` overflow bucket, and the sum of observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` per-bucket counts; the last is the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean observed value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }
}

/// The captured value of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Point-in-time level.
    Gauge(i64),
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// One series: name, help text, label pairs and captured value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Metric name (Prometheus conventions: `snake_case`, counters end `_total`).
    pub name: String,
    /// One-line description, rendered as `# HELP`.
    pub help: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: MetricValue,
}

impl MetricEntry {
    fn matches(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        self.name == name
            && self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|((k, v), (qk, qv))| k == qk && v == qv)
    }
}

/// Every registered series at one instant, in registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// The captured series.
    pub entries: Vec<MetricEntry>,
}

impl Snapshot {
    /// Value of a counter series, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.matches(name, labels))
            .and_then(|e| match &e.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// Value of a gauge series, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.entries
            .iter()
            .find(|e| e.matches(name, labels))
            .and_then(|e| match &e.value {
                MetricValue::Gauge(v) => Some(*v),
                _ => None,
            })
    }

    /// Captured histogram of a series, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.entries
            .iter()
            .find(|e| e.matches(name, labels))
            .and_then(|e| match &e.value {
                MetricValue::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Sum of every counter series with this name, across all label sets (how a
    /// per-shard op mix rolls up to a service total).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// The change since `earlier`: counters and histograms subtract (saturating, so a
    /// series born after `earlier` reports its full value), gauges keep their later
    /// level. Series present only in `self` are kept whole; series that vanished are
    /// dropped.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let labels: Vec<(&str, &str)> = e
                    .labels
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let before = earlier.entries.iter().find(|b| b.matches(&e.name, &labels));
                let value = match (&e.value, before.map(|b| &b.value)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then)))
                        if now.bounds == then.bounds =>
                    {
                        MetricValue::Histogram(HistogramSnapshot {
                            bounds: now.bounds.clone(),
                            counts: now
                                .counts
                                .iter()
                                .zip(&then.counts)
                                .map(|(n, t)| n.saturating_sub(*t))
                                .collect(),
                            sum: now.sum.saturating_sub(then.sum),
                        })
                    }
                    (value, _) => value.clone(),
                };
                MetricEntry {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value,
                }
            })
            .collect();
        Snapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use crate::{buckets, Telemetry};

    fn sample() -> Telemetry {
        let t = Telemetry::enabled();
        t.counter("ops_total", "ops", &[("shard", "0")]).add(7);
        t.counter("ops_total", "ops", &[("shard", "1")]).add(3);
        t.gauge("live", "live rows", &[]).set(42);
        let h = t.histogram("depth", "kick depth", &buckets::log2(4), &[]);
        h.observe(0);
        h.observe(3);
        t
    }

    #[test]
    fn lookups_match_by_name_and_labels() {
        let snap = sample().snapshot();
        assert_eq!(snap.counter("ops_total", &[("shard", "0")]), Some(7));
        assert_eq!(snap.counter("ops_total", &[("shard", "2")]), None);
        assert_eq!(snap.counter_sum("ops_total"), 10);
        assert_eq!(snap.gauge("live", &[]), Some(42));
        let h = snap.histogram("depth", &[]).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 3);
        assert!((h.mean() - 1.5).abs() < 1e-12);
        // Kind-mismatched lookups return None instead of lying.
        assert_eq!(snap.counter("live", &[]), None);
        assert_eq!(snap.gauge("ops_total", &[("shard", "0")]), None);
    }

    #[test]
    fn diff_subtracts_counters_and_histograms_but_keeps_gauge_levels() {
        let t = sample();
        let before = t.snapshot();
        t.counter("ops_total", "ops", &[("shard", "0")]).add(5);
        t.gauge("live", "live rows", &[]).set(40);
        t.histogram("depth", "kick depth", &buckets::log2(4), &[])
            .observe(4);
        t.counter("new_total", "born later", &[]).add(2);
        let delta = t.snapshot().diff(&before);
        assert_eq!(delta.counter("ops_total", &[("shard", "0")]), Some(5));
        assert_eq!(delta.counter("ops_total", &[("shard", "1")]), Some(0));
        assert_eq!(delta.gauge("live", &[]), Some(40));
        assert_eq!(delta.counter("new_total", &[]), Some(2));
        let h = delta.histogram("depth", &[]).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum, 4);
    }
}
