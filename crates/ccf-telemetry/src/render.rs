//! Text renderings of a [`Snapshot`]: the Prometheus exposition format and a compact
//! human table.

use std::fmt::Write as _;

use crate::snapshot::{MetricValue, Snapshot};

fn format_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Snapshot {
    /// Render the Prometheus text exposition format: one `# HELP` / `# TYPE` header
    /// per metric name (first-appearance order), then every series. Histograms emit
    /// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for entry in &self.entries {
            if !seen.contains(&entry.name.as_str()) {
                seen.push(&entry.name);
                let kind = match &entry.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", entry.name, entry.help);
                let _ = writeln!(out, "# TYPE {} {}", entry.name, kind);
                // Emit every series of this name here so a metric's series stay
                // grouped under one header even if registrations interleaved.
                for series in self.entries.iter().filter(|e| e.name == entry.name) {
                    match &series.value {
                        MetricValue::Counter(v) => {
                            let _ = writeln!(
                                out,
                                "{}{} {v}",
                                series.name,
                                format_labels(&series.labels, None)
                            );
                        }
                        MetricValue::Gauge(v) => {
                            let _ = writeln!(
                                out,
                                "{}{} {v}",
                                series.name,
                                format_labels(&series.labels, None)
                            );
                        }
                        MetricValue::Histogram(h) => {
                            let mut cumulative = 0u64;
                            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                                cumulative += count;
                                let le = bound.to_string();
                                let _ = writeln!(
                                    out,
                                    "{}_bucket{} {cumulative}",
                                    series.name,
                                    format_labels(&series.labels, Some(("le", &le)))
                                );
                            }
                            cumulative += h.counts.last().copied().unwrap_or(0);
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {cumulative}",
                                series.name,
                                format_labels(&series.labels, Some(("le", "+Inf")))
                            );
                            let _ = writeln!(
                                out,
                                "{}_sum{} {}",
                                series.name,
                                format_labels(&series.labels, None),
                                h.sum
                            );
                            let _ = writeln!(
                                out,
                                "{}_count{} {cumulative}",
                                series.name,
                                format_labels(&series.labels, None)
                            );
                        }
                    }
                }
            }
        }
        out
    }

    /// Render a compact aligned table for humans: one row per series with a value
    /// summary (histograms show `count / mean / max-bucket`).
    pub fn render_table(&self) -> String {
        if self.entries.is_empty() {
            return String::new();
        }
        let rows: Vec<(String, String)> = self
            .entries
            .iter()
            .map(|e| {
                let series = format!("{}{}", e.name, format_labels(&e.labels, None));
                let value = match &e.value {
                    MetricValue::Counter(v) => v.to_string(),
                    MetricValue::Gauge(v) => v.to_string(),
                    MetricValue::Histogram(h) => {
                        let max_bucket = if h.counts.last().copied().unwrap_or(0) > 0 {
                            "+Inf".to_string()
                        } else {
                            h.bounds
                                .iter()
                                .zip(&h.counts)
                                .filter(|(_, c)| **c > 0)
                                .map(|(b, _)| format!("≤{b}"))
                                .next_back()
                                .unwrap_or_else(|| "-".to_string())
                        };
                        format!("count={} mean={:.1} max{}", h.count(), h.mean(), max_bucket)
                    }
                };
                (series, value)
            })
            .collect();
        let width = rows.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (series, value) in rows {
            let _ = writeln!(out, "{series:<width$}  {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{buckets, Telemetry};

    fn sample() -> Telemetry {
        let t = Telemetry::enabled();
        t.counter(
            "ccf_inserts_total",
            "Rows inserted",
            &[("variant", "plain")],
        )
        .add(5);
        t.gauge("ccf_live_rows", "Live rows", &[]).set(-2);
        let h = t.histogram(
            "ccf_kick_depth",
            "Kick rounds per insert",
            &buckets::log2(4),
            &[("variant", "plain")],
        );
        h.observe(0);
        h.observe(1);
        h.observe(9);
        t
    }

    #[test]
    fn text_exposition_follows_prometheus_conventions() {
        let text = sample().render_text();
        assert!(text.contains("# HELP ccf_inserts_total Rows inserted"));
        assert!(text.contains("# TYPE ccf_inserts_total counter"));
        assert!(text.contains("ccf_inserts_total{variant=\"plain\"} 5"));
        assert!(text.contains("# TYPE ccf_live_rows gauge"));
        assert!(text.contains("ccf_live_rows -2"));
        assert!(text.contains("# TYPE ccf_kick_depth histogram"));
        // Cumulative buckets: ≤0 → 1, ≤1 → 2, ≤2 → 2, ≤4 → 2, +Inf → 3.
        assert!(text.contains("ccf_kick_depth_bucket{variant=\"plain\",le=\"0\"} 1"));
        assert!(text.contains("ccf_kick_depth_bucket{variant=\"plain\",le=\"1\"} 2"));
        assert!(text.contains("ccf_kick_depth_bucket{variant=\"plain\",le=\"+Inf\"} 3"));
        assert!(text.contains("ccf_kick_depth_sum{variant=\"plain\"} 10"));
        assert!(text.contains("ccf_kick_depth_count{variant=\"plain\"} 3"));
    }

    #[test]
    fn headers_are_emitted_once_per_name() {
        let t = Telemetry::enabled();
        t.counter("ops_total", "ops", &[("shard", "0")]).inc();
        t.counter("other_total", "other", &[]).inc();
        t.counter("ops_total", "ops", &[("shard", "1")]).inc();
        let text = t.render_text();
        assert_eq!(text.matches("# TYPE ops_total counter").count(), 1);
        // Both series render even though their registrations interleaved.
        assert!(text.contains("ops_total{shard=\"0\"} 1"));
        assert!(text.contains("ops_total{shard=\"1\"} 1"));
    }

    #[test]
    fn label_values_are_escaped() {
        let t = Telemetry::enabled();
        t.counter("x_total", "x", &[("q", "say \"hi\"")]).inc();
        assert!(t.render_text().contains("x_total{q=\"say \\\"hi\\\"\"} 1"));
    }

    #[test]
    fn table_is_aligned_and_summarizes_histograms() {
        let table = sample().render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("ccf_inserts_total{variant=\"plain\"}"));
        assert!(lines[2].contains("count=3"));
        assert!(lines[2].contains("max+Inf"));
    }
}
