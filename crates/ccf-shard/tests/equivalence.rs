//! Property tests for the sharded service's equivalence and growth contracts.
//!
//! * **Sequential-vs-sharded equivalence** — for any key set and shard count, a
//!   [`ShardedCcf`]'s (batched, multi-threaded) query results equal a reference run
//!   against `N` standalone filters fed shard-by-shard through the same router. This
//!   pins down the whole routing + partition + fan-out + scatter pipeline, not just
//!   the per-shard batch kernels PR 2 already verified.
//! * **Zero false negatives across growth** — with tiny `auto_grow` shards and
//!   multi-threaded batch inserts, every inserted row stays queryable after the
//!   per-shard doublings the overload forces.

use ccf_core::{AnyCcf, CcfParams, ConditionalFilter, Predicate, VariantKind};
use ccf_shard::{ShardRouter, ShardedCcf};
use proptest::prelude::*;

fn variant_of(ix: u8) -> VariantKind {
    match ix % 4 {
        0 => VariantKind::Plain,
        1 => VariantKind::Chained,
        2 => VariantKind::Bloom,
        _ => VariantKind::Mixed,
    }
}

fn shard_params(seed: u64) -> CcfParams {
    CcfParams {
        num_buckets: 1 << 7,
        num_attrs: 2,
        seed,
        ..CcfParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded query results are bit-identical to a reference single-filter run
    /// shard-by-shard: the same rows routed by the same router into standalone
    /// `AnyCcf`s must answer every probe exactly like the service does.
    #[test]
    fn sharded_queries_equal_shard_by_shard_reference(
        seed in any::<u64>(),
        num_shards in 1usize..=6,
        threads in 1usize..=4,
        variant_ix in any::<u8>(),
        num_rows in 1usize..=400,
    ) {
        let kind = variant_of(variant_ix);
        let params = shard_params(seed);
        let service = ShardedCcf::new(kind, params, num_shards).with_threads(threads);
        let router = ShardRouter::new(seed, num_shards);
        prop_assert_eq!(*service.router(), router);
        let mut reference: Vec<AnyCcf> = (0..num_shards).map(|_| AnyCcf::new(kind, params)).collect();

        let rows: Vec<(u64, [u64; 2])> = (0..num_rows as u64)
            .map(|i| {
                let key = i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) ^ seed;
                (key, [key % 7, key % 13])
            })
            .collect();
        let outcomes = service.insert_batch(&rows);
        for (i, (key, attrs)) in rows.iter().enumerate() {
            let reference_outcome = reference[router.shard_of(*key)].insert_row(*key, attrs);
            prop_assert_eq!(outcomes[i], reference_outcome, "insert outcomes diverged");
        }

        // Probe with a mixed hit/miss stream under a predicate and key-only.
        let probes: Vec<u64> = rows
            .iter()
            .map(|(k, _)| *k)
            .chain((0..200u64).map(|i| seed ^ (i.wrapping_mul(0xD1B54A32D192ED03))))
            .collect();
        let pred = Predicate::any(2).and_eq(0, 3);
        let queried = service.query_batch(&probes, &pred);
        let contained = service.contains_key_batch(&probes);
        for (i, &key) in probes.iter().enumerate() {
            let shard = &reference[router.shard_of(key)];
            prop_assert_eq!(queried[i], shard.query(key, &pred), "query diverged for {}", key);
            prop_assert_eq!(contained[i], shard.contains_key(key), "contains diverged for {}", key);
        }
    }

    /// Per-shard growth keeps the zero-false-negative contract under concurrent
    /// (multi-threaded, batched) inserts overloading every shard past its capacity.
    #[test]
    fn growth_keeps_zero_false_negatives_under_concurrent_inserts(
        seed in any::<u64>(),
        num_shards in 1usize..=4,
        overload in 2usize..=6,
    ) {
        let params = CcfParams {
            num_buckets: 1 << 4,
            num_attrs: 1,
            seed,
            ..CcfParams::default()
        }
        .with_auto_grow();
        let service = ShardedCcf::new(VariantKind::Chained, params, num_shards)
            .with_threads(num_shards);
        let total = overload * num_shards * (1 << 4) * params.entries_per_bucket;
        let rows: Vec<(u64, [u64; 1])> = (0..total as u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) ^ seed, [i % 5]))
            .collect();
        let outcomes = service.insert_batch(&rows);
        prop_assert!(outcomes.iter().all(|o| o.is_ok()), "auto-grow shard refused a row");
        if overload >= 2 {
            prop_assert!(service.stats().total_doublings() >= 1, "overload never grew a shard");
        }
        let checks = service.contains_key_batch(&rows.iter().map(|(k, _)| *k).collect::<Vec<_>>());
        let lost = checks.iter().filter(|&&c| !c).count();
        prop_assert_eq!(lost, 0, "false negatives after concurrent growth");
        for (key, attrs) in rows.iter().take(500) {
            let pred = Predicate::any(1).and_eq(0, attrs[0]);
            prop_assert!(service.query(*key, &pred), "row lost under its own predicate");
        }
    }
}
