//! Service-wide metrics aggregation over shards.
//!
//! Each shard is an ordinary [`ccf_core::AnyCcf`], so per-shard metrics come in the
//! existing [`ccf_cuckoo::metrics`] vocabulary ([`OccupancyStats`], [`GrowthStats`]).
//! [`ShardStats`] merges them into one service-wide summary plus the per-shard
//! breakdown an operator needs to spot imbalance (a hot shard growing ahead of the
//! others is the sharded analogue of a filter nearing kick exhaustion).

use ccf_cuckoo::{GrowthStats, OccupancyStats};

/// One shard's metrics snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSnapshot {
    /// Bucket occupancy of the shard.
    pub occupancy: OccupancyStats,
    /// Resize history of the shard.
    pub growth: GrowthStats,
    /// Serialized size of the shard in bits.
    pub size_bits: usize,
    /// The shard's expected key-only false-positive rate at its current load (§7.1).
    pub expected_key_fpr: f64,
}

/// Aggregated metrics for a sharded filter service.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Per-shard snapshots, in shard order.
    pub shards: Vec<ShardSnapshot>,
    /// Occupancy merged across all shards (field-wise sums over disjoint buckets).
    /// With heterogeneous shard widths its `capacity()` is an upper bound; the exact
    /// service-wide slot count is [`ShardStats::total_capacity`].
    pub occupancy: OccupancyStats,
    /// Exact total slot capacity: the sum of per-shard capacities, correct even when
    /// shards use different `entries_per_bucket` (heterogeneous banks built via
    /// `ShardedCcf::from_shards`).
    pub total_capacity: usize,
    /// Total serialized size in bits.
    pub total_size_bits: usize,
}

impl ShardStats {
    /// Aggregate per-shard snapshots into service-wide stats.
    pub fn aggregate(shards: Vec<ShardSnapshot>) -> Self {
        assert!(
            !shards.is_empty(),
            "a sharded filter has at least one shard"
        );
        let occupancy = shards
            .iter()
            .skip(1)
            .fold(shards[0].occupancy, |acc, s| acc.merge(&s.occupancy));
        let total_capacity = shards.iter().map(|s| s.occupancy.capacity()).sum();
        let total_size_bits = shards.iter().map(|s| s.size_bits).sum();
        Self {
            shards,
            occupancy,
            total_capacity,
            total_size_bits,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Service-wide load factor: occupied slots over the exact summed capacity.
    pub fn load_factor(&self) -> f64 {
        if self.total_capacity == 0 {
            0.0
        } else {
            self.occupancy.occupied as f64 / self.total_capacity as f64
        }
    }

    /// Total occupied entries across shards.
    pub fn occupied_entries(&self) -> usize {
        self.occupancy.occupied
    }

    /// Total capacity doublings applied across shards.
    pub fn total_doublings(&self) -> u32 {
        self.shards.iter().map(|s| s.growth.growth_bits).sum()
    }

    /// Load factor of the fullest shard.
    pub fn max_shard_load(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.occupancy.load_factor())
            .fold(0.0, f64::max)
    }

    /// Load factor of the emptiest shard.
    pub fn min_shard_load(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.occupancy.load_factor())
            .fold(f64::INFINITY, f64::min)
    }

    /// Ratio of the fullest shard's load to the mean load (1.0 = perfectly balanced).
    /// Routing by an independent hash keeps this near 1 for non-adversarial keys.
    pub fn load_imbalance(&self) -> f64 {
        let mean = self.load_factor();
        if mean == 0.0 {
            1.0
        } else {
            self.max_shard_load() / mean
        }
    }

    /// Expected key-only FPR of the whole service: the mean of per-shard rates. Shard
    /// routing is uniform, so a random absent key probes each shard with equal
    /// probability and the service FPR is the unweighted mean.
    pub fn expected_key_fpr(&self) -> f64 {
        self.shards.iter().map(|s| s.expected_key_fpr).sum::<f64>() / self.shards.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(counts: Vec<usize>, b: usize, growth_bits: u32, fpr: f64) -> ShardSnapshot {
        // Pretend each shard stores 2 heap bytes per slot so aggregation of the
        // heap estimate is observable in the tests below.
        let occupancy = OccupancyStats::from_counts(counts, b);
        let occupancy = occupancy.with_heap_bytes(occupancy.capacity() * 2);
        ShardSnapshot {
            occupancy,
            growth: GrowthStats {
                base_buckets: occupancy.num_buckets >> growth_bits,
                current_buckets: occupancy.num_buckets,
                growth_bits,
            },
            size_bits: occupancy.capacity() * 16,
            expected_key_fpr: fpr,
        }
    }

    #[test]
    fn aggregate_merges_occupancy_and_sums_sizes() {
        let stats = ShardStats::aggregate(vec![
            snapshot(vec![4, 4, 0, 2], 4, 1, 0.01),
            snapshot(vec![1, 1, 1, 1], 4, 0, 0.03),
        ]);
        assert_eq!(stats.num_shards(), 2);
        assert_eq!(stats.occupancy.num_buckets, 8);
        assert_eq!(stats.occupied_entries(), 14);
        assert_eq!(stats.total_size_bits, 2 * 16 * 16);
        assert_eq!(stats.total_doublings(), 1);
        assert!((stats.load_factor() - 14.0 / 32.0).abs() < 1e-12);
        assert!((stats.expected_key_fpr() - 0.02).abs() < 1e-12);
        // Heap bytes sum across shards through `OccupancyStats::merge`.
        assert_eq!(stats.occupancy.heap_bytes, 2 * 16 * 2);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let stats = ShardStats::aggregate(vec![
            snapshot(vec![4, 4], 4, 0, 0.0),
            snapshot(vec![0, 0], 4, 0, 0.0),
        ]);
        assert!((stats.max_shard_load() - 1.0).abs() < 1e-12);
        assert_eq!(stats.min_shard_load(), 0.0);
        assert!((stats.load_imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_service_is_balanced_by_definition() {
        let stats = ShardStats::aggregate(vec![snapshot(vec![0, 0], 4, 0, 0.0)]);
        assert_eq!(stats.load_imbalance(), 1.0);
    }

    #[test]
    fn all_empty_shards_stay_finite() {
        // Every shard empty: mean load is 0, so the imbalance ratio must short-circuit
        // to 1.0 (balanced by definition) instead of dividing by zero, and the
        // min/max loads are plain zeros — no NaN or infinity anywhere.
        let stats = ShardStats::aggregate(vec![
            snapshot(vec![0, 0], 4, 0, 0.0),
            snapshot(vec![0, 0, 0], 4, 0, 0.0),
            snapshot(vec![0], 8, 0, 0.0),
        ]);
        assert_eq!(stats.load_factor(), 0.0);
        assert_eq!(stats.load_imbalance(), 1.0);
        assert_eq!(stats.min_shard_load(), 0.0);
        assert_eq!(stats.max_shard_load(), 0.0);
        assert!(stats.load_imbalance().is_finite());
    }

    #[test]
    fn single_shard_service_is_its_own_mean() {
        // One shard: max load == mean load, so imbalance is exactly 1 and min == max,
        // at any occupancy.
        for counts in [vec![0, 0], vec![4, 0], vec![4, 4]] {
            let stats = ShardStats::aggregate(vec![snapshot(counts.clone(), 4, 0, 0.01)]);
            assert_eq!(stats.num_shards(), 1);
            assert!(
                (stats.load_imbalance() - 1.0).abs() < 1e-12,
                "single shard {counts:?} must be balanced, got {}",
                stats.load_imbalance()
            );
            assert_eq!(stats.min_shard_load(), stats.max_shard_load());
            assert_eq!(stats.min_shard_load(), stats.load_factor());
        }
    }

    #[test]
    fn min_shard_load_tracks_the_emptiest_shard() {
        let stats = ShardStats::aggregate(vec![
            snapshot(vec![4, 4], 4, 0, 0.0), // load 1.0
            snapshot(vec![2, 0], 4, 0, 0.0), // load 0.25
            snapshot(vec![4, 0], 4, 0, 0.0), // load 0.5
        ]);
        assert!((stats.min_shard_load() - 0.25).abs() < 1e-12);
        assert!((stats.max_shard_load() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn aggregate_rejects_zero_shards() {
        let _ = ShardStats::aggregate(Vec::new());
    }

    #[test]
    fn heterogeneous_bucket_widths_use_exact_capacity() {
        // One shard with b = 4 (2 buckets, 6 occupied), one with b = 8 (2 buckets,
        // 8 occupied): the exact capacity is 2·4 + 2·8 = 24, not 4·8 = 32.
        let stats = ShardStats::aggregate(vec![
            snapshot(vec![4, 2], 4, 0, 0.01),
            snapshot(vec![8, 0], 8, 0, 0.01),
        ]);
        assert_eq!(stats.total_capacity, 24);
        assert_eq!(stats.occupied_entries(), 14);
        assert!((stats.load_factor() - 14.0 / 24.0).abs() < 1e-12);
        // The merged OccupancyStats capacity is only an upper bound here.
        assert!(stats.occupancy.capacity() >= stats.total_capacity);
        // Imbalance stays finite and >= 1 (per-shard loads 0.75 and 0.5).
        assert!(stats.load_imbalance() >= 1.0);
    }
}
