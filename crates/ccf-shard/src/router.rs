//! Hash routing of keys to shards.
//!
//! The router draws its hasher from the same [`HashFamily`] as the in-shard filters
//! but at the dedicated [`purpose::SHARD`] index, so the shard a key lands on is
//! independent of its bucket ℓ, fingerprint κ, alternate-bucket offset, chain hash and
//! growth bits inside that shard. This matters: routing by (say) the bucket hash would
//! hand every shard a *bucket range* instead of a uniform keyspace slice, skewing
//! per-shard load and correlating shard membership with in-shard placement.

use ccf_hash::salted::purpose;
use ccf_hash::{HashFamily, SaltedHasher};

/// Routes keys to one of `num_shards` shards by an independent salted hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    hasher: SaltedHasher,
    seed: u64,
    num_shards: usize,
}

/// A batch of keys partitioned into per-shard chunks, remembering where each key came
/// from so per-shard results can be scattered back into input order.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Per shard, the keys routed to it, in their original relative order. Preserving
    /// relative order is what makes per-shard batch results bit-identical to a
    /// sequential per-key loop over the whole input.
    pub chunks: Vec<Vec<u64>>,
    /// Per shard, the original input index of each chunk element.
    pub positions: Vec<Vec<usize>>,
}

impl Partition {
    /// Scatter per-shard results back to input order. `results[s][i]` must correspond
    /// to `chunks[s][i]`.
    pub fn scatter<T: Copy + Default>(&self, results: &[Vec<T>], total: usize) -> Vec<T> {
        let mut out = vec![T::default(); total];
        for (shard, shard_results) in results.iter().enumerate() {
            for (i, &r) in shard_results.iter().enumerate() {
                out[self.positions[shard][i]] = r;
            }
        }
        out
    }
}

impl ShardRouter {
    /// Create a router for `num_shards` shards from the given hash-family seed (the
    /// same seed the shard filters use; the purposes are disjoint).
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn new(seed: u64, num_shards: usize) -> Self {
        assert!(num_shards > 0, "a sharded filter needs at least one shard");
        Self {
            hasher: HashFamily::new(seed).hasher(purpose::SHARD),
            seed,
            num_shards,
        }
    }

    /// Number of shards routed over.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The hash-family seed this router was derived from — what a snapshot must
    /// persist to rebuild an identically-routing service.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard a key belongs to.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        // Lemire multiply-shift reduction: unbiased for non-power-of-two shard counts.
        self.hasher.bucket_of(key, self.num_shards)
    }

    /// Partition a key batch into per-shard chunks, preserving relative input order
    /// within each shard.
    pub fn partition(&self, keys: &[u64]) -> Partition {
        let mut chunks = vec![Vec::new(); self.num_shards];
        let mut positions = vec![Vec::new(); self.num_shards];
        if self.num_shards == 1 {
            chunks[0] = keys.to_vec();
            positions[0] = (0..keys.len()).collect();
            return Partition { chunks, positions };
        }
        for (i, &key) in keys.iter().enumerate() {
            let s = self.shard_of(key);
            chunks[s].push(key);
            positions[s].push(i);
        }
        Partition { chunks, positions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = ShardRouter::new(42, 7);
        for key in 0..10_000u64 {
            let s = r.shard_of(key);
            assert!(s < 7);
            assert_eq!(s, ShardRouter::new(42, 7).shard_of(key));
        }
    }

    #[test]
    fn routing_is_roughly_uniform() {
        let r = ShardRouter::new(9, 8);
        let mut counts = [0usize; 8];
        for key in 0..80_000u64 {
            counts[r.shard_of(key)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "skewed shard loads: {counts:?}"
            );
        }
    }

    #[test]
    fn routing_is_independent_of_the_bucket_hash() {
        // Keys landing in the same shard must not share in-shard buckets more than
        // chance allows; sample the bucket hash the filters use (purpose KEY_BUCKET)
        // over one shard's keys and check the spread.
        let r = ShardRouter::new(7, 4);
        let bucket_hasher = HashFamily::new(7).hasher(purpose::KEY_BUCKET);
        let m = 64usize;
        let mut bucket_counts = vec![0usize; m];
        let mut shard0_keys = 0usize;
        for key in 0..40_000u64 {
            if r.shard_of(key) == 0 {
                shard0_keys += 1;
                bucket_counts[bucket_hasher.bucket_of(key, m)] += 1;
            }
        }
        let expected = shard0_keys as f64 / m as f64;
        for &c in &bucket_counts {
            assert!(
                (c as f64) > expected * 0.5 && (c as f64) < expected * 1.5,
                "shard routing correlates with bucket placement: {bucket_counts:?}"
            );
        }
    }

    #[test]
    fn partition_preserves_relative_order_and_scatters_back() {
        let r = ShardRouter::new(1, 5);
        let keys: Vec<u64> = (0..1000).map(|i| i * 17 + 3).collect();
        let part = r.partition(&keys);
        assert_eq!(part.chunks.iter().map(Vec::len).sum::<usize>(), keys.len());
        for (shard, chunk) in part.chunks.iter().enumerate() {
            for (i, &k) in chunk.iter().enumerate() {
                assert_eq!(r.shard_of(k), shard);
                assert_eq!(keys[part.positions[shard][i]], k);
            }
            // Positions within a shard are strictly increasing = relative input order.
            assert!(part.positions[shard].windows(2).all(|w| w[0] < w[1]));
        }
        // Round-trip: scattering each chunk's own keys reproduces the input.
        let scattered = part.scatter(
            &part.chunks.iter().map(|c| c.to_vec()).collect::<Vec<_>>(),
            keys.len(),
        );
        assert_eq!(scattered, keys);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRouter::new(0, 0);
    }

    #[test]
    fn single_shard_fast_path_matches_general_path() {
        let keys: Vec<u64> = (0..100).collect();
        let part = ShardRouter::new(3, 1).partition(&keys);
        assert_eq!(part.chunks[0], keys);
        assert_eq!(part.positions[0], (0..100).collect::<Vec<_>>());
    }
}
