//! Sharded, thread-safe conditional-cuckoo-filter service layer.
//!
//! The paper evaluates its filters single-threaded; this crate is the concurrent
//! front end a production deployment needs (in the spirit of partitioned designs like
//! Cuckoo-GPU's massive-batch partitioned probing). A [`ShardedCcf`] hash-partitions
//! the keyspace over `N` independent [`ccf_core::AnyCcf`] shards — any variant, any
//! predicate configuration — each behind its own `RwLock`, with per-shard `auto_grow`:
//!
//! * [`router`] — key → shard routing by the dedicated `purpose::SHARD` salt, disjoint
//!   from every in-shard hash so routing never correlates with in-shard placement.
//! * [`service`] — [`ShardedCcf`]: concurrent point ops plus parallel
//!   `insert_batch` / `query_batch` / `contains_key_batch` that fan per-shard chunks
//!   out over `std::thread::scope` workers while staying bit-identical to a
//!   sequential per-key loop.
//! * [`stats`] — [`ShardStats`]: per-shard occupancy / growth / FPR metrics merged
//!   into the service-wide summary, in the `ccf_cuckoo::metrics` vocabulary.
//! * [`fanout`] — the shared scoped-thread round-robin fan-out primitive every
//!   parallel path (batch ops here, bank builds in `ccf-join`) runs on.
//!
//! # Thread-safety contract
//!
//! `ShardedCcf` shares shards across scoped worker threads by reference, which is
//! sound only because every filter type is `Send + Sync` (no interior mutability, no
//! `Rc`, no thread affinity: the RNG state and hash family live inline in each
//! filter). That contract is enforced *at compile time* below — if a future change
//! gave a filter non-`Send` internals, this crate would stop compiling rather than
//! become unsound or silently serialise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fanout;
pub mod router;
pub mod service;
pub mod stats;

pub use fanout::fan_out_indexed;
pub use router::{Partition, ShardRouter};
pub use service::{ShardedCcf, SHARD_SNAPSHOT_MAGIC, SHARD_SNAPSHOT_VERSION};
pub use stats::{ShardSnapshot, ShardStats};

/// Compile-time `Send + Sync` witness: instantiating this in a `const` fails to
/// compile unless `T` is safe to share across the service's worker threads.
pub const fn assert_send_sync<T: Send + Sync>() {}

// The thread-safety contract ccf-shard relies on, checked at compile time for every
// filter type a shard (or a derived predicate filter handed to another thread) can be.
const _: () = {
    assert_send_sync::<ccf_core::AnyCcf>();
    assert_send_sync::<ccf_core::PlainCcf>();
    assert_send_sync::<ccf_core::ChainedCcf>();
    assert_send_sync::<ccf_core::BloomCcf>();
    assert_send_sync::<ccf_core::MixedCcf>();
    assert_send_sync::<ccf_core::ChainedPredicateFilter>();
    assert_send_sync::<ccf_cuckoo::CuckooFilter>();
    assert_send_sync::<ccf_cuckoo::CuckooHashTable<u64>>();
    assert_send_sync::<ShardedCcf>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_ccf_is_shareable_and_sendable() {
        // The const block above is the real (compile-time) test; this keeps a runtime
        // trace of the contract in the test listing and exercises the helper.
        assert_send_sync::<ShardedCcf>();
        assert_send_sync::<ShardStats>();
        assert_send_sync::<ShardRouter>();
    }
}
