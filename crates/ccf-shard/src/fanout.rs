//! The one scoped-thread fan-out primitive every parallel path in the service layer
//! shares.
//!
//! Batch queries, batch inserts and the join-side bank build all need the same
//! shape: `n` independent items, up to `W` workers, worker `w` deterministically
//! handling items `w, w + W, w + 2W, ...` (round-robin keeps the assignment
//! independent of timing, so runs are reproducible), results tagged with their item
//! index so the caller can scatter them back. Keeping the load-bearing concurrency
//! in one function means one place to reason about panics, worker counts and the
//! sequential fast path.

/// Run `work(item)` for every item in `0..num_items` on up to `workers` scoped
/// threads and return the produced results tagged by item index, in unspecified
/// order. Items for which `work` returns `None` (e.g. empty per-shard chunks)
/// produce nothing. With `workers <= 1` everything runs on the calling thread, in
/// item order, with no spawn overhead.
///
/// `work` runs concurrently on multiple threads; a panicking `work` call propagates
/// as a panic here (after the scope joins the remaining workers).
pub fn fan_out_indexed<T: Send>(
    num_items: usize,
    workers: usize,
    work: impl Fn(usize) -> Option<T> + Sync,
) -> Vec<(usize, T)> {
    let workers = workers.clamp(1, num_items.max(1));
    if workers <= 1 {
        return (0..num_items)
            .filter_map(|i| work(i).map(|r| (i, r)))
            .collect();
    }
    let mut out = Vec::with_capacity(num_items);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let work = &work;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    let mut i = w;
                    while i < num_items {
                        if let Some(r) = work(i) {
                            produced.push((i, r));
                        }
                        i += workers;
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("fan-out worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_item_exactly_once() {
        for workers in [1, 2, 3, 8, 100] {
            let mut results = fan_out_indexed(17, workers, |i| Some(i * i));
            results.sort_unstable();
            assert_eq!(results.len(), 17, "workers = {workers}");
            for (i, (idx, sq)) in results.iter().enumerate() {
                assert_eq!((*idx, *sq), (i, i * i));
            }
        }
    }

    #[test]
    fn none_items_are_skipped() {
        let results = fan_out_indexed(10, 4, |i| (i % 2 == 0).then_some(i));
        assert_eq!(results.len(), 5);
        assert!(results.iter().all(|(i, v)| i == v && i % 2 == 0));
    }

    #[test]
    fn zero_items_is_a_no_op() {
        assert!(fan_out_indexed(0, 4, |_| Some(())).is_empty());
    }

    #[test]
    fn sequential_path_preserves_item_order() {
        let results = fan_out_indexed(6, 1, Some);
        assert_eq!(results, (0..6).map(|i| (i, i)).collect::<Vec<_>>());
    }
}
