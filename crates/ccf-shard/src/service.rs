//! The sharded conditional-filter service.
//!
//! A [`ShardedCcf`] partitions the keyspace over `N` independent [`AnyCcf`] shards by
//! the dedicated shard hash ([`crate::router::ShardRouter`]). Each shard sits behind
//! its own [`RwLock`], so:
//!
//! * point reads (`query`, `contains_key`) on different shards never contend;
//! * writers block only the one shard they touch, and per-shard `auto_grow` doublings
//!   happen under that single shard's write lock while the other `N − 1` shards keep
//!   serving;
//! * batch operations route keys to per-shard chunks and fan the chunks out over
//!   [`std::thread::scope`] workers — no dependencies, no global stop-the-world.
//!
//! **Determinism contract.** Partitioning preserves each key's relative order within
//! its shard, shards share no state, and every shard runs the PR 2 chunked two-pass
//! batch kernels. Batch results are therefore *bit-identical* to a sequential per-key
//! loop over the same `ShardedCcf`, regardless of shard count, worker count, or how
//! the scheduler interleaves workers. Inserts are deterministic too: the state after
//! `insert_batch` equals the state after inserting the same rows one by one.

use std::sync::RwLock;

use ccf_core::{
    AnyCcf, CcfParams, ConditionalFilter, DeleteFailure, FilterKey, InsertFailure, InsertOutcome,
    ParamsError, Predicate, VariantKind,
};
use ccf_cuckoo::{ByteReader, ByteWriter, SnapshotError};
use ccf_hash::salted::purpose;
use ccf_hash::{HashFamily, SaltedHasher};
use ccf_telemetry::{buckets, Histogram, Telemetry};

use crate::fanout::fan_out_indexed;
use crate::router::ShardRouter;
use crate::stats::{ShardSnapshot, ShardStats};

/// Largest batch size the `ccf_shard_batch_keys` histogram resolves exactly;
/// bigger batches land in the `+Inf` bucket.
const BATCH_KEYS_BUCKET_MAX: u64 = 1 << 20;

/// Magic of a [`ShardedCcf`] snapshot image: `"CSHS"`.
pub const SHARD_SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"CSHS");
/// Current [`ShardedCcf`] snapshot format version.
pub const SHARD_SNAPSHOT_VERSION: u8 = 1;

/// Latency + size histograms for one batch entry point (`op` label fixed at resolve
/// time). Disabled by default — each batch call then costs two branches and no clock
/// read.
#[derive(Debug, Default, Clone)]
struct BatchInstruments {
    /// `ccf_shard_batch_latency_ns{op=…}`: wall-clock ns per batch call, including
    /// key lowering, routing, and the fan-out join.
    latency: Histogram,
    /// `ccf_shard_batch_keys{op=…}`: number of keys/rows per batch call.
    keys: Histogram,
}

/// Service-level instruments for [`ShardedCcf`]: one latency/size histogram pair per
/// batch entry point. Per-shard *op* counters are not duplicated here — attaching
/// telemetry labels every shard's own [`ccf_core::CcfInstruments`] with
/// `shard="<idx>"`, so the existing `ccf_*_total` series already break down by shard.
#[derive(Debug, Default, Clone)]
struct ServiceInstruments {
    query_batch: BatchInstruments,
    contains_key_batch: BatchInstruments,
    insert_batch: BatchInstruments,
    delete_row_batch: BatchInstruments,
    delete_key_batch: BatchInstruments,
}

impl ServiceInstruments {
    fn resolve(telemetry: &Telemetry, extra: &[(&str, &str)]) -> Self {
        let op = |name| {
            let mut labels = extra.to_vec();
            labels.push(("op", name));
            BatchInstruments {
                latency: telemetry.histogram(
                    "ccf_shard_batch_latency_ns",
                    "Wall-clock nanoseconds per sharded batch call",
                    &buckets::latency_ns(),
                    &labels,
                ),
                keys: telemetry.histogram(
                    "ccf_shard_batch_keys",
                    "Keys (or rows) per sharded batch call",
                    &buckets::log2(BATCH_KEYS_BUCKET_MAX),
                    &labels,
                ),
            }
        };
        Self {
            query_batch: op("query"),
            contains_key_batch: op("contains_key"),
            insert_batch: op("insert"),
            delete_row_batch: op("delete_row"),
            delete_key_batch: op("delete_key"),
        }
    }
}

/// A sharded, thread-safe conditional cuckoo filter service.
///
/// All operations take `&self`; interior locking is per shard. See the module docs for
/// the determinism contract.
///
/// **Typed keys.** Every entry point is generic over [`FilterKey`]. A key is lowered
/// *once* — with the same `KEY_LOWER` hasher the shard filters use, since router and
/// shards share a seed — and that single lowered `u64` is consumed by both the shard
/// routing hash and the shard's prehashed filter core. `u64` keys lower to
/// themselves, so the u64 path routes and probes bit-identically to the pre-typed-key
/// service.
#[derive(Debug)]
pub struct ShardedCcf {
    router: ShardRouter,
    key_lower: SaltedHasher,
    shards: Vec<RwLock<AnyCcf>>,
    threads: usize,
    instruments: ServiceInstruments,
}

/// Read guard errors are invariant violations (a worker panicked while holding the
/// write lock); surface them with context instead of a bare unwrap.
const POISONED: &str = "shard lock poisoned: a writer panicked mid-mutation";

impl ShardedCcf {
    /// Build a service of `num_shards` identical shards of the given variant. Each
    /// shard gets `shard_params` verbatim (so `num_buckets` etc. are *per shard*);
    /// use [`CcfParams::sized_for_entries`] on the per-shard expected entry count, or
    /// [`ShardedCcf::sized_for_entries`] to size from a service-wide total. Enable
    /// `shard_params.auto_grow` to let each shard double independently under load.
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or the params are invalid; use
    /// [`ShardedCcf::try_new`] to get a [`ParamsError`] instead.
    pub fn new(kind: VariantKind, shard_params: CcfParams, num_shards: usize) -> Self {
        Self::try_new(kind, shard_params, num_shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`ShardedCcf::new`], reporting a zero shard count or impossible shard
    /// parameters as a [`ParamsError`] — so a serving process can reject a bad
    /// configuration request instead of aborting.
    pub fn try_new(
        kind: VariantKind,
        shard_params: CcfParams,
        num_shards: usize,
    ) -> Result<Self, ParamsError> {
        if num_shards == 0 {
            return Err(ParamsError::ZeroShards);
        }
        let shards = (0..num_shards)
            .map(|_| AnyCcf::try_new(kind, shard_params).map(RwLock::new))
            .collect::<Result<_, _>>()?;
        Ok(Self {
            router: ShardRouter::new(shard_params.seed, num_shards),
            key_lower: HashFamily::new(shard_params.seed).hasher(purpose::KEY_LOWER),
            shards,
            threads: num_shards,
            instruments: ServiceInstruments::default(),
        })
    }

    /// Build a service sized for a *service-wide* expected entry count at the target
    /// per-shard load factor: each shard is sized for its `1/num_shards` slice.
    pub fn sized_for_entries(
        kind: VariantKind,
        shard_params: CcfParams,
        num_shards: usize,
        total_entries: usize,
        target_load_factor: f64,
    ) -> Self {
        let per_shard = total_entries.div_ceil(num_shards.max(1));
        Self::new(
            kind,
            shard_params.sized_for_entries(per_shard.max(1), target_load_factor),
            num_shards,
        )
    }

    /// Build a service from pre-constructed shards (heterogeneous variants or
    /// per-shard configs are allowed). `router_seed` must be the seed the keys were —
    /// or will be — routed with; pass the same seed used by [`ShardedCcf::new`]
    /// (`shard_params.seed`) to stay compatible.
    ///
    /// **Typed-key caveat.** The service lowers non-`u64` keys with the `KEY_LOWER`
    /// hasher derived from `router_seed`. If you pre-populated the shards *directly*
    /// with typed keys, those filters must have been built with `seed == router_seed`
    /// — a shard built on a different seed lowered the same string to different
    /// material, and point queries through the service would miss it (a silent
    /// false negative). `u64` keys are unaffected (identity lowering), and keys
    /// inserted *through* the service are always consistent.
    pub fn from_shards(filters: Vec<AnyCcf>, router_seed: u64) -> Self {
        let num_shards = filters.len();
        Self {
            router: ShardRouter::new(router_seed, num_shards),
            key_lower: HashFamily::new(router_seed).hasher(purpose::KEY_LOWER),
            shards: filters.into_iter().map(RwLock::new).collect(),
            threads: num_shards.max(1),
            instruments: ServiceInstruments::default(),
        }
    }

    /// Attach a telemetry registry to the service: every shard's filter resolves its
    /// [`ccf_core::CcfInstruments`] with a `shard="<idx>"` label (on top of `extra`),
    /// giving per-shard insert/query/delete/kick series, and the service itself
    /// registers batch latency/size histograms (`ccf_shard_batch_latency_ns`,
    /// `ccf_shard_batch_keys`, one `op` label per batch entry point). Attaching a
    /// [`Telemetry::disabled()`] handle detaches everything. Takes `&mut self` (no
    /// locking): wire telemetry up before the service starts serving.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, extra: &[(&str, &str)]) {
        self.instruments = if telemetry.is_enabled() {
            ServiceInstruments::resolve(telemetry, extra)
        } else {
            ServiceInstruments::default()
        };
        for (idx, shard) in self.shards.iter_mut().enumerate() {
            let shard_label = idx.to_string();
            let mut labels = extra.to_vec();
            labels.push(("shard", shard_label.as_str()));
            shard
                .get_mut()
                .expect(POISONED)
                .attach_telemetry(telemetry, &labels);
        }
    }

    /// Builder-style [`ShardedCcf::attach_telemetry`] with no extra labels.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.attach_telemetry(telemetry, &[]);
        self
    }

    /// The hasher typed keys are lowered with before routing and probing
    /// ([`FilterKey::lower`]); the same lowered material the shard filters consume.
    pub fn key_lower_hasher(&self) -> SaltedHasher {
        self.key_lower
    }

    /// An unconstrained predicate spanning the shards' attribute columns — the
    /// arity-safe starting point for query predicates (see
    /// [`ccf_core::Predicate::for_params`]).
    pub fn predicate(&self) -> Predicate {
        self.with_shard(0, |f| Predicate::for_params(f.params()))
    }

    /// Cap the number of worker threads batch operations fan out over (default: one
    /// per shard). A cap of 1 makes every batch operation run sequentially on the
    /// calling thread — useful as the reference in equivalence tests.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Set the worker-thread cap (see [`ShardedCcf::with_threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.clamp(1, self.shards.len());
    }

    /// The worker-thread cap for batch operations.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The key router (e.g. for building a shard-by-shard reference in tests).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard index a key is served by.
    pub fn shard_of<K: FilterKey>(&self, key: K) -> usize {
        self.router.shard_of(key.lower(&self.key_lower))
    }

    /// Run a closure against a read-locked shard.
    pub fn with_shard<T>(&self, shard: usize, f: impl FnOnce(&AnyCcf) -> T) -> T {
        f(&self.shards[shard].read().expect(POISONED))
    }

    /// Insert a row, write-locking only the key's shard. The key is lowered once;
    /// routing and the shard's filter consume the same material.
    pub fn insert<K: FilterKey>(
        &self,
        key: K,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        let key = key.lower(&self.key_lower);
        self.shards[self.router.shard_of(key)]
            .write()
            .expect(POISONED)
            .insert_row_prehashed(key, attrs)
    }

    /// Delete one stored copy of a row, write-locking only the key's shard. Same
    /// result contract as the per-variant `delete_row`: `Ok(true)` removed a copy,
    /// `Ok(false)` found no match, and undeletable variants refuse with a typed
    /// [`DeleteFailure`] leaving the shard unchanged.
    pub fn delete_row<K: FilterKey>(&self, key: K, attrs: &[u64]) -> Result<bool, DeleteFailure> {
        let key = key.lower(&self.key_lower);
        self.shards[self.router.shard_of(key)]
            .write()
            .expect(POISONED)
            .delete_row_prehashed(key, attrs)
    }

    /// Delete one stored entry carrying the key's fingerprint, write-locking only the
    /// key's shard.
    pub fn delete_key<K: FilterKey>(&self, key: K) -> Result<bool, DeleteFailure> {
        let key = key.lower(&self.key_lower);
        self.shards[self.router.shard_of(key)]
            .write()
            .expect(POISONED)
            .delete_key_prehashed(key)
    }

    /// Query a key under a predicate, read-locking only the key's shard.
    pub fn query<K: FilterKey>(&self, key: K, pred: &Predicate) -> bool {
        let key = key.lower(&self.key_lower);
        self.shards[self.router.shard_of(key)]
            .read()
            .expect(POISONED)
            .query_prehashed(key, pred)
    }

    /// Key-only membership, read-locking only the key's shard.
    pub fn contains_key<K: FilterKey>(&self, key: K) -> bool {
        let key = key.lower(&self.key_lower);
        self.shards[self.router.shard_of(key)]
            .read()
            .expect(POISONED)
            .contains_key_prehashed(key)
    }

    /// How many workers a batch over the given per-shard chunk sizes should use.
    fn workers_for(&self, non_empty_chunks: usize) -> usize {
        self.threads.min(non_empty_chunks).max(1)
    }

    /// Fan per-shard chunks out over [`fan_out_indexed`] workers, read-locking each
    /// shard once per chunk. Returns per-shard results.
    fn fan_out_read<T: Send>(
        &self,
        chunks: &[Vec<u64>],
        probe: impl Fn(&AnyCcf, &[u64]) -> Vec<T> + Sync,
    ) -> Vec<Vec<T>> {
        let non_empty = chunks.iter().filter(|c| !c.is_empty()).count();
        let produced = fan_out_indexed(chunks.len(), self.workers_for(non_empty), |s| {
            (!chunks[s].is_empty())
                .then(|| probe(&self.shards[s].read().expect(POISONED), &chunks[s]))
        });
        let mut results: Vec<Vec<T>> = Vec::new();
        results.resize_with(chunks.len(), Vec::new);
        for (s, shard_results) in produced {
            results[s] = shard_results;
        }
        results
    }

    /// Batched predicate query. Bit-identical to a per-key [`ShardedCcf::query`] loop
    /// (see the module docs); runs shards on up to [`ShardedCcf::threads`] workers.
    /// Keys are lowered once up front (`u64` batches copy-free); partitioning and the
    /// per-shard prehashed batch kernels consume the lowered material.
    pub fn query_batch<K: FilterKey>(&self, keys: &[K], pred: &Predicate) -> Vec<bool> {
        let _timer = self.instruments.query_batch.latency.start_timer();
        self.instruments.query_batch.keys.observe_len(keys.len());
        let lowered = K::lower_batch(keys, &self.key_lower);
        let part = self.router.partition(&lowered);
        let results = self.fan_out_read(&part.chunks, |filter, chunk| {
            filter.query_batch_prehashed(chunk, pred)
        });
        part.scatter(&results, lowered.len())
    }

    /// Batched key-only membership. Bit-identical to a per-key
    /// [`ShardedCcf::contains_key`] loop.
    pub fn contains_key_batch<K: FilterKey>(&self, keys: &[K]) -> Vec<bool> {
        let _timer = self.instruments.contains_key_batch.latency.start_timer();
        self.instruments
            .contains_key_batch
            .keys
            .observe_len(keys.len());
        let lowered = K::lower_batch(keys, &self.key_lower);
        let part = self.router.partition(&lowered);
        let results = self.fan_out_read(&part.chunks, |filter, chunk| {
            filter.contains_key_batch_prehashed(chunk)
        });
        part.scatter(&results, lowered.len())
    }

    /// Route already-lowered keys to their shards and apply `op` per key, each shard
    /// processing its keys in relative input order under one write-lock acquisition,
    /// fanned out over up to [`ShardedCcf::threads`] workers. Per-key results come
    /// back in input order, and because shards share no state and per-shard order is
    /// preserved, the resulting filter state (and every result) is identical to a
    /// sequential per-key loop — the scaffolding shared by batched inserts and
    /// deletes.
    fn fan_out_write<T: Send>(
        &self,
        lowered: &[u64],
        op: impl Fn(&mut AnyCcf, usize) -> T + Sync,
    ) -> Vec<T> {
        let mut row_indices: Vec<Vec<usize>> = vec![Vec::new(); self.num_shards()];
        for (i, &key) in lowered.iter().enumerate() {
            row_indices[self.router.shard_of(key)].push(i);
        }
        let non_empty = row_indices.iter().filter(|c| !c.is_empty()).count();
        let produced = fan_out_indexed(row_indices.len(), self.workers_for(non_empty), |s| {
            let indices = &row_indices[s];
            (!indices.is_empty()).then(|| {
                let mut guard = self.shards[s].write().expect(POISONED);
                indices
                    .iter()
                    .map(|&i| (i, op(&mut guard, i)))
                    .collect::<Vec<_>>()
            })
        });
        let mut results: Vec<Option<T>> = Vec::new();
        results.resize_with(lowered.len(), || None);
        for (_, shard_outcomes) in produced {
            for (i, outcome) in shard_outcomes {
                results[i] = Some(outcome);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every row is routed to exactly one shard"))
            .collect()
    }

    /// Batched insert: rows are routed to their shards and each shard absorbs its
    /// rows in their relative input order under one write-lock acquisition, fanned out
    /// over up to [`ShardedCcf::threads`] workers. Per-row outcomes come back in input
    /// order, and the resulting filter state is identical to a sequential per-row
    /// [`ShardedCcf::insert`] loop.
    pub fn insert_batch<K, A>(&self, rows: &[(K, A)]) -> Vec<Result<InsertOutcome, InsertFailure>>
    where
        K: FilterKey + Sync,
        A: AsRef<[u64]> + Sync,
    {
        let _timer = self.instruments.insert_batch.latency.start_timer();
        self.instruments.insert_batch.keys.observe_len(rows.len());
        // Lower every key once; routing and the per-shard inserts share the material.
        let lowered: Vec<u64> = rows.iter().map(|(k, _)| k.lower(&self.key_lower)).collect();
        self.fan_out_write(&lowered, |filter, i| {
            filter.insert_row_prehashed(lowered[i], rows[i].1.as_ref())
        })
    }

    /// Batched row deletion: rows are routed to their shards and deleted in relative
    /// input order under per-shard write locks (same fan-out as
    /// [`ShardedCcf::insert_batch`]). Results and resulting state are bit-identical
    /// to a sequential per-row [`ShardedCcf::delete_row`] loop for any shard/thread
    /// count.
    pub fn delete_row_batch<K, A>(&self, rows: &[(K, A)]) -> Vec<Result<bool, DeleteFailure>>
    where
        K: FilterKey + Sync,
        A: AsRef<[u64]> + Sync,
    {
        let _timer = self.instruments.delete_row_batch.latency.start_timer();
        self.instruments
            .delete_row_batch
            .keys
            .observe_len(rows.len());
        let lowered: Vec<u64> = rows.iter().map(|(k, _)| k.lower(&self.key_lower)).collect();
        self.fan_out_write(&lowered, |filter, i| {
            filter.delete_row_prehashed(lowered[i], rows[i].1.as_ref())
        })
    }

    /// Batched key deletion: bit-identical to a sequential per-key
    /// [`ShardedCcf::delete_key`] loop (see [`ShardedCcf::delete_row_batch`]).
    pub fn delete_key_batch<K: FilterKey + Sync>(
        &self,
        keys: &[K],
    ) -> Vec<Result<bool, DeleteFailure>> {
        let _timer = self.instruments.delete_key_batch.latency.start_timer();
        self.instruments
            .delete_key_batch
            .keys
            .observe_len(keys.len());
        let lowered = K::lower_batch(keys, &self.key_lower);
        self.fan_out_write(&lowered, |filter, i| {
            filter.delete_key_prehashed(lowered[i])
        })
    }

    /// Total occupied entries across shards.
    pub fn occupied_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect(POISONED).occupied_entries())
            .sum()
    }

    /// Total serialized size in bits.
    pub fn size_bits(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect(POISONED).size_bits())
            .sum()
    }

    /// Service-wide load factor.
    pub fn load_factor(&self) -> f64 {
        self.stats().load_factor()
    }

    /// Serialize the whole service into a sealed snapshot image: a `"CSHS"` header
    /// carrying the router seed, shard count and worker-thread cap, followed by each
    /// shard's own sealed [`AnyCcf::to_snapshot_bytes`] image, length-prefixed, in
    /// shard order. Reloading with [`ShardedCcf::from_snapshot_bytes`] yields a
    /// bit-identical service: same routing, same per-shard filters, same RNG streams.
    /// Shards are read-locked one at a time — quiesce writers first (the `ccf-service`
    /// daemon snapshots after it stops accepting work) if a globally atomic cut is
    /// required.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new(SHARD_SNAPSHOT_MAGIC, SHARD_SNAPSHOT_VERSION);
        w.put_u64(self.router.seed());
        w.put_usize(self.threads);
        w.put_usize(self.shards.len());
        for shard in &self.shards {
            let image = shard.read().expect(POISONED).to_snapshot_bytes();
            w.put_len_bytes(&image);
        }
        w.seal()
    }

    /// Rebuild a service from a [`ShardedCcf::to_snapshot_bytes`] image. The envelope
    /// checksum is verified before any field is read, every nested shard image goes
    /// through the full [`AnyCcf::from_snapshot_bytes`] validation, and corruption
    /// anywhere yields a typed [`SnapshotError`] — never a panic or a silently
    /// misrouting service. Telemetry is process state and starts detached.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::open(bytes, SHARD_SNAPSHOT_MAGIC, SHARD_SNAPSHOT_VERSION)?;
        let router_seed = r.get_u64()?;
        let threads = r.get_usize()?;
        let num_shards = r.get_usize()?;
        if num_shards == 0 {
            return Err(SnapshotError::Invalid(
                "sharded snapshot with zero shards".into(),
            ));
        }
        let mut filters = Vec::new();
        for _ in 0..num_shards {
            filters.push(AnyCcf::from_snapshot_bytes(r.get_len_bytes()?)?);
        }
        r.finish()?;
        let mut service = Self::from_shards(filters, router_seed);
        service.set_threads(threads);
        Ok(service)
    }

    /// Snapshot service-wide metrics: merged occupancy, per-shard growth history and
    /// expected key-only FPRs (§7.1), aggregated via [`ShardStats`]. Shards are
    /// snapshotted one at a time, so the result is per-shard consistent but not a
    /// global atomic cut — fine for monitoring, which is its purpose.
    pub fn stats(&self) -> ShardStats {
        let snapshots = self
            .shards
            .iter()
            .map(|lock| {
                let f = lock.read().expect(POISONED);
                let p = f.params();
                ShardSnapshot {
                    occupancy: f.occupancy(),
                    growth: f.growth_stats(),
                    size_bits: f.size_bits(),
                    expected_key_fpr: ccf_core::fpr::key_only_fpr(
                        2.0 * f.load_factor() * p.entries_per_bucket as f64,
                        p.fingerprint_bits,
                    ),
                }
            })
            .collect();
        ShardStats::aggregate(snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_params(seed: u64) -> CcfParams {
        CcfParams {
            num_buckets: 1 << 7,
            num_attrs: 2,
            seed,
            ..CcfParams::default()
        }
    }

    fn rows(n: u64) -> Vec<(u64, [u64; 2])> {
        (0..n)
            .map(|k| (k.wrapping_mul(0x9E37), [k % 5, k % 9]))
            .collect()
    }

    #[test]
    fn point_ops_route_and_round_trip() {
        let service = ShardedCcf::new(VariantKind::Chained, shard_params(3), 4);
        for (key, attrs) in rows(500) {
            service.insert(key, &attrs).unwrap();
        }
        for (key, attrs) in rows(500) {
            assert!(service.contains_key(key));
            let pred = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
            assert!(service.query(key, &pred), "false negative for {key}");
            assert!(service.shard_of(key) < 4);
        }
    }

    #[test]
    fn batch_results_are_bit_identical_to_per_key_loops() {
        for threads in [1, 2, 4] {
            for shards in [1, 3, 4] {
                let service = ShardedCcf::new(
                    VariantKind::Chained,
                    CcfParams {
                        num_buckets: 1 << 8,
                        ..shard_params(11)
                    },
                    shards,
                )
                .with_threads(threads);
                let data = rows(800);
                let outcomes = service.insert_batch(&data);
                assert!(outcomes.iter().all(|o| o.is_ok()));
                // Mixed hit/miss probe stream.
                let keys: Vec<u64> = (0..2000u64)
                    .map(|i| {
                        if i % 2 == 0 {
                            data[(i as usize / 2) % data.len()].0
                        } else {
                            u64::MAX - i
                        }
                    })
                    .collect();
                let pred = Predicate::any(2).and_eq(0, 2);
                let batched = service.query_batch(&keys, &pred);
                let contained = service.contains_key_batch(&keys);
                for (i, &k) in keys.iter().enumerate() {
                    assert_eq!(batched[i], service.query(k, &pred), "{shards}x{threads}");
                    assert_eq!(contained[i], service.contains_key(k), "{shards}x{threads}");
                }
            }
        }
    }

    #[test]
    fn insert_batch_state_matches_sequential_inserts() {
        let data = rows(600);
        let parallel = ShardedCcf::new(VariantKind::Chained, shard_params(5), 4).with_threads(4);
        parallel.insert_batch(&data);
        let sequential = ShardedCcf::new(VariantKind::Chained, shard_params(5), 4).with_threads(1);
        for (key, attrs) in &data {
            sequential.insert(*key, attrs).unwrap();
        }
        assert_eq!(parallel.occupied_entries(), sequential.occupied_entries());
        let probes: Vec<u64> = (0..5000).collect();
        assert_eq!(
            parallel.contains_key_batch(&probes),
            sequential.contains_key_batch(&probes),
            "parallel and sequential inserts must build identical filters"
        );
    }

    #[test]
    fn per_shard_auto_grow_under_batch_inserts() {
        let params = CcfParams {
            num_buckets: 1 << 4,
            num_attrs: 1,
            seed: 17,
            ..CcfParams::default()
        }
        .with_auto_grow();
        let service = ShardedCcf::new(VariantKind::Chained, params, 4).with_threads(4);
        // 4x the total sized capacity forces every shard to double at least once.
        let total = 4 * 4 * (1 << 4) * 6;
        let data: Vec<(u64, [u64; 1])> = (0..total as u64).map(|k| (k, [k % 3])).collect();
        let outcomes = service.insert_batch(&data);
        assert!(
            outcomes.iter().all(|o| o.is_ok()),
            "auto-grow shards must absorb the whole stream"
        );
        let stats = service.stats();
        assert!(
            stats.total_doublings() >= 4,
            "expected growth in every shard"
        );
        for (key, _) in &data {
            assert!(service.contains_key(*key), "key {key} lost after growth");
        }
    }

    #[test]
    fn point_deletes_route_to_the_owning_shard() {
        let service = ShardedCcf::new(VariantKind::Chained, shard_params(41), 4);
        let data = rows(400);
        for (key, attrs) in &data {
            service.insert(*key, attrs).unwrap();
        }
        for (key, attrs) in data.iter().step_by(2) {
            assert_eq!(service.delete_row(*key, attrs), Ok(true), "delete {key}");
        }
        for (i, (key, attrs)) in data.iter().enumerate() {
            let pred = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
            if i % 2 == 0 {
                assert!(
                    !service.query(*key, &pred),
                    "deleted row {key} still matches"
                );
            } else {
                assert!(service.query(*key, &pred), "surviving row {key} lost");
            }
        }
        // delete_key drains the remaining copies.
        for (key, _) in data.iter().skip(1).step_by(2) {
            assert_eq!(service.delete_key(*key), Ok(true));
        }
        assert_eq!(service.occupied_entries(), 0);
    }

    #[test]
    fn batch_deletes_are_bit_identical_to_sequential_loops() {
        for threads in [1, 4] {
            for shards in [1, 3, 4] {
                let data = rows(700);
                let make = || {
                    let s = ShardedCcf::new(VariantKind::Chained, shard_params(51), shards);
                    s.insert_batch(&data);
                    s
                };
                // Mix of present rows, already-deleted rows and absent keys.
                let victims: Vec<(u64, [u64; 2])> = (0..900u64)
                    .map(|i| {
                        if i % 3 == 0 {
                            (u64::MAX - i, [0, 0])
                        } else {
                            data[(i as usize * 7) % data.len()]
                        }
                    })
                    .collect();
                let parallel = make().with_threads(threads);
                let batched = parallel.delete_row_batch(&victims);
                let sequential = make();
                let looped: Vec<_> = victims
                    .iter()
                    .map(|(k, a)| sequential.delete_row(*k, a))
                    .collect();
                assert_eq!(batched, looped, "{shards}x{threads}: delete results differ");
                assert_eq!(
                    parallel.occupied_entries(),
                    sequential.occupied_entries(),
                    "{shards}x{threads}: post-delete state differs"
                );
                let probes: Vec<u64> = (0..4000).collect();
                assert_eq!(
                    parallel.contains_key_batch(&probes),
                    sequential.contains_key_batch(&probes),
                    "{shards}x{threads}: post-delete filters answer differently"
                );
                // Key-batch form: same contract.
                let keys: Vec<u64> = data.iter().map(|(k, _)| *k).step_by(3).collect();
                assert_eq!(
                    parallel.delete_key_batch(&keys),
                    keys.iter()
                        .map(|&k| sequential.delete_key(k))
                        .collect::<Vec<_>>(),
                    "{shards}x{threads}: key-delete results differ"
                );
            }
        }
    }

    #[test]
    fn bloom_shards_refuse_deletion_with_a_typed_error() {
        let service = ShardedCcf::new(VariantKind::Bloom, shard_params(61), 2);
        service.insert(1u64, &[2, 3]).unwrap();
        assert_eq!(
            service.delete_row(1u64, &[2, 3]),
            Err(DeleteFailure::Unsupported)
        );
        assert_eq!(service.delete_key(1u64), Err(DeleteFailure::Unsupported));
        assert_eq!(
            service.delete_key_batch(&[1u64, 9u64]),
            vec![Err(DeleteFailure::Unsupported); 2]
        );
        assert!(service.contains_key(1u64));
    }

    #[test]
    fn typed_key_deletes_reach_the_same_material_as_inserts() {
        let service = ShardedCcf::new(VariantKind::Mixed, shard_params(71), 3);
        let rows: Vec<(String, [u64; 2])> = (0..120)
            .map(|i| (format!("sess-{i:04}"), [i % 5, i % 9]))
            .collect();
        service.insert_batch(&rows);
        let victims: Vec<(String, [u64; 2])> = rows.iter().take(60).cloned().collect();
        let results = service.delete_row_batch(&victims);
        assert!(results.iter().all(|r| *r == Ok(true)), "{results:?}");
        for (i, (key, _)) in rows.iter().enumerate() {
            assert_eq!(
                service.contains_key(key.as_str()),
                i >= 60,
                "key {key} in the wrong state after typed deletes"
            );
        }
    }

    #[test]
    fn stats_aggregate_shard_metrics() {
        let service = ShardedCcf::new(VariantKind::Chained, shard_params(23), 8);
        let data = rows(1000);
        service.insert_batch(&data);
        let stats = service.stats();
        assert_eq!(stats.num_shards(), 8);
        assert_eq!(stats.occupied_entries(), service.occupied_entries());
        assert_eq!(stats.total_size_bits, service.size_bits());
        assert!(stats.load_factor() > 0.0);
        assert!(stats.expected_key_fpr() > 0.0);
        assert!(stats.load_imbalance() >= 1.0);
        // Uniform routing keeps shards reasonably balanced even at this small scale.
        assert!(
            stats.load_imbalance() < 2.0,
            "shards look skewed: {:?}",
            stats
                .shards
                .iter()
                .map(|s| s.occupancy.occupied)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn heterogeneous_shards_via_from_shards() {
        // Different variants AND different bucket widths per shard: stats() must
        // aggregate with exact per-shard capacities, not a merged width.
        let filters = vec![
            AnyCcf::new(VariantKind::Chained, shard_params(31)),
            AnyCcf::new(VariantKind::Bloom, shard_params(31)),
            AnyCcf::new(
                VariantKind::Mixed,
                CcfParams {
                    entries_per_bucket: 4,
                    max_dupes: 2,
                    ..shard_params(31)
                },
            ),
        ];
        let service = ShardedCcf::from_shards(filters, 31);
        assert_eq!(service.num_shards(), 3);
        for (key, attrs) in rows(300) {
            service.insert(key, &attrs).unwrap();
        }
        for (key, _) in rows(300) {
            assert!(service.contains_key(key));
        }
        assert_eq!(service.with_shard(1, |f| f.kind()), VariantKind::Bloom);
        let stats = service.stats();
        let exact_capacity: usize = (0..3)
            .map(|s| service.with_shard(s, |f| f.occupancy().capacity()))
            .sum();
        assert_eq!(stats.total_capacity, exact_capacity);
        assert!(stats.load_factor() > 0.0 && stats.load_factor() <= 1.0);
    }

    #[test]
    fn typed_keys_route_and_round_trip_through_the_service() {
        let service = ShardedCcf::new(VariantKind::Mixed, shard_params(9), 4);
        let rows: Vec<(String, [u64; 2])> = (0..400)
            .map(|i| (format!("user-{i:05}"), [i % 5, i % 9]))
            .collect();
        let outcomes = service.insert_batch(&rows);
        assert!(outcomes.iter().all(|o| o.is_ok()));
        for (key, attrs) in &rows {
            assert!(service.contains_key(key.as_str()), "lost {key}");
            let pred = service.predicate().and_eq(0, attrs[0]).and_eq(1, attrs[1]);
            assert!(
                service.query(key.as_str(), &pred),
                "false negative on {key}"
            );
        }
        // Point and batch paths agree on typed keys, and the service agrees with the
        // owning shard probed directly (same lowered material end to end).
        let probe: Vec<&str> = rows.iter().map(|(k, _)| k.as_str()).collect();
        let batched = service.contains_key_batch(&probe);
        let h = service.key_lower_hasher();
        for (i, (key, _)) in rows.iter().enumerate() {
            assert_eq!(batched[i], service.contains_key(key.as_str()));
            let lowered = key.as_str().lower(&h);
            let shard = service.shard_of(key.as_str());
            assert_eq!(shard, service.router().shard_of(lowered));
            assert!(service.with_shard(shard, |f| f.contains_key_prehashed(lowered)));
        }
        // Composite keys work too and are order-sensitive.
        service.insert((1u64, 2u64), &[0, 0]).unwrap();
        assert!(service.contains_key((1u64, 2u64)));
    }

    #[test]
    fn try_new_reports_bad_configs_as_values() {
        use ccf_core::ParamsError;
        assert_eq!(
            ShardedCcf::try_new(VariantKind::Chained, shard_params(1), 0).unwrap_err(),
            ParamsError::ZeroShards
        );
        let bad = CcfParams {
            fingerprint_bits: 0,
            ..shard_params(1)
        };
        assert_eq!(
            ShardedCcf::try_new(VariantKind::Chained, bad, 4).unwrap_err(),
            ParamsError::FingerprintBitsOutOfRange { got: 0 }
        );
        assert!(ShardedCcf::try_new(VariantKind::Chained, shard_params(1), 4).is_ok());
    }

    #[test]
    fn thread_cap_is_clamped() {
        let mut service = ShardedCcf::new(VariantKind::Chained, shard_params(1), 3);
        service.set_threads(100);
        assert_eq!(service.threads(), 3);
        service.set_threads(0);
        assert_eq!(service.threads(), 1);
    }

    #[test]
    fn telemetry_labels_ops_by_shard_and_times_batches() {
        let telemetry = Telemetry::enabled();
        let service =
            ShardedCcf::new(VariantKind::Chained, shard_params(77), 4).with_telemetry(&telemetry);
        let data = rows(400);
        service.insert_batch(&data);
        let keys: Vec<u64> = data.iter().map(|(k, _)| *k).collect();
        let hits = service.contains_key_batch(&keys);
        assert!(hits.iter().all(|&h| h));
        service.query_batch(&keys, &service.predicate());
        service.delete_key_batch(&keys[..10]);
        service.delete_row_batch(&data[10..20]);
        // A point op lands on exactly one shard's series.
        service.query(data[30].0, &service.predicate());

        let snap = telemetry.snapshot();
        // Per-shard op counters: every op was recorded under some shard label, and
        // the shard-labelled series sum to the service-wide totals.
        let per_shard: Vec<u64> = (0..4)
            .map(|s| {
                let shard = s.to_string();
                ["inserted", "deduplicated", "merged", "converted"]
                    .iter()
                    .filter_map(|o| {
                        snap.counter(
                            "ccf_inserts_total",
                            &[
                                ("variant", "chained"),
                                ("shard", shard.as_str()),
                                ("outcome", o),
                            ],
                        )
                    })
                    .sum()
            })
            .collect();
        assert_eq!(
            per_shard.iter().sum::<u64>(),
            data.len() as u64,
            "per-shard insert counters must cover the whole batch: {per_shard:?}"
        );
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "uniform routing should touch every shard: {per_shard:?}"
        );
        assert_eq!(
            snap.counter_sum("ccf_queries_total"),
            keys.len() as u64 + 1,
            "one query_batch plus one point query; contains_key is not a predicate query"
        );
        assert_eq!(snap.counter_sum("ccf_deletes_total"), 20);

        // Service-level batch histograms: one observation per batch call, labelled
        // by op, recording both the batch size and a wall-clock latency.
        for (op, calls, keys_seen) in [
            ("insert", 1, 400),
            ("contains_key", 1, 400),
            ("query", 1, 400),
            ("delete_key", 1, 10),
            ("delete_row", 1, 10),
        ] {
            let labels = [("op", op)];
            let sizes = snap
                .histogram("ccf_shard_batch_keys", &labels)
                .unwrap_or_else(|| panic!("missing batch-keys series for op={op}"));
            assert_eq!(sizes.count(), calls, "op={op}: one observation per call");
            assert_eq!(
                sizes.sum, keys_seen,
                "op={op}: batch sizes recorded exactly"
            );
            let latency = snap
                .histogram("ccf_shard_batch_latency_ns", &labels)
                .unwrap_or_else(|| panic!("missing latency series for op={op}"));
            assert_eq!(
                latency.count(),
                calls,
                "op={op}: every batch call must record exactly one latency"
            );
        }
    }

    #[test]
    fn snapshot_round_trip_rebuilds_a_bit_identical_service() {
        let service = ShardedCcf::new(VariantKind::Mixed, shard_params(29), 4).with_threads(2);
        let data = rows(900);
        service.insert_batch(&data);
        let image = service.to_snapshot_bytes();
        let reloaded = ShardedCcf::from_snapshot_bytes(&image).expect("reload");
        assert_eq!(reloaded.num_shards(), 4);
        assert_eq!(reloaded.threads(), 2);
        // Routing, membership and predicate answers all survive the round trip.
        let probes: Vec<u64> = (0..6000u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        assert_eq!(
            service.contains_key_batch(&probes),
            reloaded.contains_key_batch(&probes)
        );
        let pred = Predicate::any(2).and_eq(0, 3);
        assert_eq!(
            service.query_batch(&probes, &pred),
            reloaded.query_batch(&probes, &pred)
        );
        for key in probes.iter().take(200) {
            assert_eq!(service.shard_of(*key), reloaded.shard_of(*key));
        }
        // Continued mutation stays in lockstep: same inserts land identically, so the
        // next snapshot images are byte-equal.
        let more = rows(1200);
        assert_eq!(service.insert_batch(&more), reloaded.insert_batch(&more));
        assert_eq!(service.to_snapshot_bytes(), reloaded.to_snapshot_bytes());
    }

    #[test]
    fn snapshot_rejects_corruption_with_typed_errors() {
        let service = ShardedCcf::new(VariantKind::Chained, shard_params(31), 2);
        service.insert_batch(&rows(200));
        let image = service.to_snapshot_bytes();
        // Any bit flip trips the outer checksum.
        let mut flipped = image.clone();
        flipped[image.len() / 3] ^= 0x10;
        assert!(matches!(
            ShardedCcf::from_snapshot_bytes(&flipped),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // Truncation anywhere is typed, never a panic.
        for len in [0, 4, 12, image.len() / 2, image.len() - 1] {
            assert!(ShardedCcf::from_snapshot_bytes(&image[..len]).is_err());
        }
        // A foreign image (a bare AnyCcf snapshot) is refused by magic.
        let inner = service.with_shard(0, |f| f.to_snapshot_bytes());
        assert!(matches!(
            ShardedCcf::from_snapshot_bytes(&inner),
            Err(SnapshotError::WrongMagic { .. })
        ));
    }

    #[test]
    fn disabled_telemetry_detaches_instruments() {
        let telemetry = Telemetry::enabled();
        let mut service =
            ShardedCcf::new(VariantKind::Chained, shard_params(78), 2).with_telemetry(&telemetry);
        service.insert_batch(&rows(50));
        let before = telemetry.snapshot();
        assert_eq!(before.counter_sum("ccf_inserts_total"), 50);
        // Re-attaching a disabled handle stops all recording (service and shards).
        service.attach_telemetry(&Telemetry::disabled(), &[]);
        service.insert_batch(&rows(50));
        let after = telemetry.snapshot();
        assert_eq!(after.counter_sum("ccf_inserts_total"), 50);
        assert_eq!(
            after
                .histogram("ccf_shard_batch_keys", &[("op", "insert")])
                .unwrap()
                .count(),
            1
        );
    }
}
