//! String-keyed workloads for the typed-key API.
//!
//! The paper's motivating deployment is join pushdown inside Tableau's query engine
//! (§1), where join keys are whatever the schema provides — strings, composite keys,
//! arbitrary tuples — not the `u64` surrogates the multiset experiments use. This
//! module generates a string-keyed counterpart of [`crate::multiset`]: rows keyed by
//! synthetic identifiers like `"user-000042"` (with a configurable entity prefix),
//! duplicated per key by the same constant / Zipf-Mandelbrot machinery, shuffled, and
//! paired with a hit/miss probe stream. It exercises the `FilterKey` lowering path
//! (lookup3 over the key bytes) end-to-end through `AnyCcf`, `ShardedCcf` and the
//! join-bank probes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::multiset::DuplicateDistribution;

/// One row of a string-keyed workload: an owned string key plus its attribute vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringRow {
    /// Join key, e.g. `"user-000042"`.
    pub key: String,
    /// Attribute values (one per attribute column).
    pub attrs: Vec<u64>,
}

/// Generator for string-keyed insertion streams and probe sets.
#[derive(Debug, Clone)]
pub struct StringKeyStream {
    /// Identifier prefix (`"user"` produces keys `user-000000`, `user-000001`, ...).
    pub prefix: String,
    /// Distribution of distinct duplicates per key.
    pub duplicates: DuplicateDistribution,
    /// Number of attribute columns per row.
    pub num_attrs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl StringKeyStream {
    /// Create a stream generator.
    pub fn new(
        prefix: impl Into<String>,
        duplicates: DuplicateDistribution,
        num_attrs: usize,
        seed: u64,
    ) -> Self {
        assert!(num_attrs >= 1, "need at least one attribute column");
        Self {
            prefix: prefix.into(),
            duplicates,
            num_attrs,
            seed,
        }
    }

    /// The `i`-th key of this stream (stable, so probe generation and ground truth
    /// can re-derive any key without storing the rows).
    pub fn key(&self, i: u64) -> String {
        format!("{}-{:06}", self.prefix, i)
    }

    /// Generate approximately `target_rows` rows: keys are taken in order, each with
    /// its sampled number of *distinct* duplicate rows (different attribute vectors),
    /// and the concatenation is shuffled — mirroring [`crate::multiset`]'s §10.1
    /// setup, with string keys.
    pub fn generate(&self, target_rows: usize) -> Vec<StringRow> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rows = Vec::with_capacity(target_rows + 16);
        let mut next_key = 0u64;
        while rows.len() < target_rows {
            let key = self.key(next_key);
            let dupes = d_sample(&self.duplicates, &mut rng);
            for dup in 0..dupes {
                // Distinct attribute vectors per duplicate: column 0 carries the
                // duplicate index (small values stay exactly representable under the
                // §9 small-value optimisation); later columns are random.
                let mut attrs = Vec::with_capacity(self.num_attrs);
                attrs.push(dup);
                for _ in 1..self.num_attrs {
                    attrs.push(rng.gen_range(0..1000));
                }
                rows.push(StringRow {
                    key: key.clone(),
                    attrs,
                });
            }
            next_key += 1;
        }
        rows.truncate(target_rows);
        rows.shuffle(&mut rng);
        rows
    }

    /// A probe stream of `count` keys alternating present keys (drawn from the first
    /// `present_keys` identifiers) and absent keys (identifiers far past the
    /// insertion range), for FPR / throughput measurements.
    pub fn probes(&self, present_keys: u64, count: usize) -> Vec<String> {
        (0..count as u64)
            .map(|i| {
                if i % 2 == 0 {
                    self.key((i / 2) % present_keys.max(1))
                } else {
                    self.key(1_000_000_000 + i)
                }
            })
            .collect()
    }
}

fn d_sample<R: Rng + ?Sized>(d: &DuplicateDistribution, rng: &mut R) -> u64 {
    match d {
        DuplicateDistribution::Constant(c) => (*c).max(1),
        DuplicateDistribution::Zipf(z) => z.sample(rng),
    }
}

/// Number of distinct keys in a generated stream.
pub fn distinct_keys(rows: &[StringRow]) -> usize {
    let mut keys: Vec<&str> = rows.iter().map(|r| r.key.as_str()).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> StringKeyStream {
        StringKeyStream::new("user", DuplicateDistribution::zipf_with_mean(3.0), 2, 11)
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = stream().generate(5_000);
        let b = stream().generate(5_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        assert!(a.iter().all(|r| r.attrs.len() == 2));
        assert!(a.iter().all(|r| r.key.starts_with("user-")));
    }

    #[test]
    fn duplicates_have_distinct_attribute_vectors() {
        let rows = stream().generate(3_000);
        let mut seen = std::collections::HashSet::new();
        for r in &rows {
            assert!(
                seen.insert((r.key.clone(), r.attrs.clone())),
                "exact duplicate row generated for {}",
                r.key
            );
        }
        let mean = rows.len() as f64 / distinct_keys(&rows) as f64;
        assert!(mean > 1.5, "zipf(3.0) stream should duplicate keys: {mean}");
    }

    #[test]
    fn probes_alternate_hits_and_misses() {
        let s = stream();
        let probes = s.probes(100, 50);
        assert_eq!(probes.len(), 50);
        for (i, p) in probes.iter().enumerate() {
            if i % 2 == 0 {
                let n: u64 = p.trim_start_matches("user-").parse().unwrap();
                assert!(n < 100);
            } else {
                let n: u64 = p.trim_start_matches("user-").parse().unwrap();
                assert!(n >= 1_000_000_000);
            }
        }
    }

    #[test]
    fn keys_are_stable() {
        assert_eq!(stream().key(42), "user-000042");
        assert_eq!(
            StringKeyStream::new("movie", DuplicateDistribution::Constant(1), 1, 0).key(7),
            "movie-000007"
        );
    }
}
