//! Sliding-window churn workloads: sustained insert **and delete** traffic.
//!
//! The paper's evaluation builds filters once and only queries them, but the
//! deployments it motivates — streaming joins over rolling windows, caches of recent
//! rows, session stores — retire old rows as fast as new ones arrive. A
//! [`SlidingWindowChurn`] generates that traffic pattern deterministically: every
//! arrival inserts a fresh (key, attribute-vector) row, and once more than `window`
//! rows are live the oldest row is deleted (FIFO), so a correctly maintained filter's
//! occupancy is *bounded by the window size* no matter how many rows stream through.
//!
//! Rows are constructed so the stream is exactly replayable against a filter:
//!
//! * keys are drawn uniformly from `keyspace`, so hot windows hold several live rows
//!   per key (exercising chains and conversion pressure);
//! * attribute values are small (< 2⁸, stored exactly under the small-value
//!   optimisation) and encode the key in column 0 and a per-key sequence number in
//!   the remaining columns — every live row of a key is attribute-distinct, so a
//!   delete matches exactly the row it targets rather than an arbitrary duplicate.
//!
//! The harnesses in `ccf-bench` (the `churn` binary and bench) replay these ops and
//! assert the churn contracts: no false negatives for live rows, exact occupancy
//! accounting, and bounded filter size.

use crate::multiset::Row;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Base for the per-column attribute encoding: values stay below 2⁸ so filters with
/// `attr_bits ≥ 8` and the small-value optimisation store them exactly.
const ATTR_BASE: u64 = 251;

/// One operation of a churn stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    /// A new row arrives.
    Insert(Row),
    /// The oldest live row leaves the window.
    Delete(Row),
}

/// Deterministic generator for sliding-window insert/delete streams.
#[derive(Debug, Clone, Copy)]
pub struct SlidingWindowChurn {
    /// Maximum number of live rows; every arrival beyond it evicts the oldest row.
    pub window: usize,
    /// Attribute columns per row (at least 2: one pins the key, the rest the per-key
    /// sequence number, which is what makes deletes target exact rows).
    pub num_attrs: usize,
    /// Keys are drawn uniformly from `0..keyspace`; a keyspace smaller than the
    /// window keeps several rows per key live at once.
    pub keyspace: u64,
    /// RNG seed; equal seeds reproduce the stream exactly.
    pub seed: u64,
}

impl SlidingWindowChurn {
    /// Create a generator.
    ///
    /// # Panics
    /// Panics if `window` or `keyspace` is zero, or `num_attrs < 2` (a single column
    /// cannot make a key's rows distinct, so deletes would not be exactly targeted).
    pub fn new(window: usize, num_attrs: usize, keyspace: u64, seed: u64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(keyspace > 0, "keyspace must be positive");
        assert!(
            num_attrs >= 2,
            "need ≥ 2 attribute columns for exactly-targeted deletes"
        );
        Self {
            window,
            num_attrs,
            keyspace,
            seed,
        }
    }

    /// The row for a key's `seq`-th arrival: column 0 pins the key, later columns the
    /// per-key sequence in base-[`ATTR_BASE`] digits — all values exact under the
    /// small-value optimisation, so rows of one key are attribute-distinct for
    /// `ATTR_BASE^(num_attrs-1)` consecutive arrivals.
    fn row(&self, key: u64, seq: u64) -> Row {
        let mut attrs = Vec::with_capacity(self.num_attrs);
        attrs.push(key % ATTR_BASE);
        let mut rest = seq;
        for _ in 1..self.num_attrs {
            attrs.push(rest % ATTR_BASE);
            rest /= ATTR_BASE;
        }
        Row { key, attrs }
    }

    /// Generate the operation stream for `total_inserts` arrivals: inserts
    /// interleaved with the FIFO deletes that keep at most `window` rows live.
    /// Applying the ops in order leaves exactly `min(window, total_inserts)` live
    /// rows ([`SlidingWindowChurn::live_after`] reconstructs them).
    pub fn ops(&self, total_inserts: usize) -> Vec<ChurnOp> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC4_0112);
        let mut per_key_seq: HashMap<u64, u64> = HashMap::new();
        let mut live: std::collections::VecDeque<Row> = Default::default();
        let mut ops = Vec::with_capacity(2 * total_inserts);
        for _ in 0..total_inserts {
            let key = rng.gen_range(0..self.keyspace);
            let seq = per_key_seq.entry(key).or_insert(0);
            let row = self.row(key, *seq);
            *seq += 1;
            live.push_back(row.clone());
            ops.push(ChurnOp::Insert(row));
            if live.len() > self.window {
                if let Some(evicted) = live.pop_front() {
                    ops.push(ChurnOp::Delete(evicted));
                }
            }
        }
        ops
    }

    /// The rows still live after applying [`SlidingWindowChurn::ops`]`(total_inserts)`
    /// in order — the reference set churn harnesses check for false negatives.
    pub fn live_after(&self, total_inserts: usize) -> Vec<Row> {
        let mut live: std::collections::VecDeque<Row> = Default::default();
        for op in self.ops(total_inserts) {
            match op {
                ChurnOp::Insert(row) => live.push_back(row),
                ChurnOp::Delete(row) => {
                    debug_assert_eq!(live.front(), Some(&row), "deletes are FIFO");
                    live.pop_front();
                }
            }
        }
        live.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_keep_the_live_set_bounded_and_fifo() {
        let gen = SlidingWindowChurn::new(100, 2, 32, 7);
        let ops = gen.ops(1000);
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, ChurnOp::Insert(_)))
            .count();
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, ChurnOp::Delete(_)))
            .count();
        assert_eq!(inserts, 1000);
        assert_eq!(deletes, 900);
        // Replay: every delete targets the oldest live row, live size never exceeds
        // the window (transiently window + 1 between an insert and its paired
        // delete never appears in the op stream order).
        let mut live: std::collections::VecDeque<Row> = Default::default();
        for op in &ops {
            match op {
                ChurnOp::Insert(row) => live.push_back(row.clone()),
                ChurnOp::Delete(row) => assert_eq!(live.pop_front().as_ref(), Some(row)),
            }
            assert!(live.len() <= 101);
        }
        assert_eq!(live.len(), 100);
        assert_eq!(gen.live_after(1000), Vec::from(live));
    }

    #[test]
    fn live_rows_of_a_key_are_attribute_distinct_and_small() {
        let gen = SlidingWindowChurn::new(500, 3, 16, 21);
        let live = gen.live_after(5000);
        let mut seen = std::collections::HashSet::new();
        for row in &live {
            assert!(row.attrs.iter().all(|&v| v < 256), "non-small value");
            assert_eq!(row.attrs.len(), 3);
            assert!(
                seen.insert((row.key, row.attrs.clone())),
                "duplicate live row {row:?}"
            );
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a = SlidingWindowChurn::new(64, 2, 8, 3).ops(300);
        let b = SlidingWindowChurn::new(64, 2, 8, 3).ops(300);
        let c = SlidingWindowChurn::new(64, 2, 8, 4).ops(300);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "attribute columns")]
    fn single_column_streams_are_rejected() {
        let _ = SlidingWindowChurn::new(10, 1, 4, 0);
    }
}
