//! A synthetic IMDB dataset matching the statistics the paper's JOB-light experiments
//! depend on (Tables 2 and 3).
//!
//! The paper evaluates on a pre-2017 IMDB snapshot (the Join Order Benchmark data).
//! That dataset is not redistributable here and is far larger than a laptop-scale
//! reproduction needs, so this module generates tables whose *relevant statistics*
//! match the paper's: the six tables with their predicate columns, the per-column
//! cardinalities of Table 2, and the per-join-key duplicate structure of Table 3
//! (average and maximum number of distinct duplicate predicate values per `movie_id`,
//! with Zipf-skewed duplication so the heavy tails — `movie_keyword.keyword_id` going
//! up to hundreds of distinct values for one movie — are exercised). Row counts scale
//! with a configurable `scale` denominator so the full experiment sweep runs in
//! seconds; the *ratios* between tables match Table 2.
//!
//! Reduction factors, filter sizes relative to raw data, and FPR behaviour — the
//! quantities Figures 6–10 report — are driven by exactly these statistics (join-key
//! overlap, predicate selectivity, duplicate skew), which is why the substitution
//! preserves the shape of the paper's results.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::ZipfMandelbrot;

/// Identifier for the six JOB-light tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TableId {
    /// `cast_info` — cast membership rows.
    CastInfo,
    /// `movie_companies` — production/distribution company rows.
    MovieCompanies,
    /// `movie_info` — assorted per-movie facts.
    MovieInfo,
    /// `movie_info_idx` — indexed per-movie facts.
    MovieInfoIdx,
    /// `movie_keyword` — keyword tags.
    MovieKeyword,
    /// `title` — one row per movie (the join key's home table).
    Title,
}

impl TableId {
    /// All six tables, in the order of Table 2.
    pub const ALL: [TableId; 6] = [
        TableId::CastInfo,
        TableId::MovieCompanies,
        TableId::MovieInfo,
        TableId::MovieInfoIdx,
        TableId::MovieKeyword,
        TableId::Title,
    ];

    /// The table's name as it appears in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            TableId::CastInfo => "cast_info",
            TableId::MovieCompanies => "movie_companies",
            TableId::MovieInfo => "movie_info",
            TableId::MovieInfoIdx => "movie_info_idx",
            TableId::MovieKeyword => "movie_keyword",
            TableId::Title => "title",
        }
    }
}

/// Static description of one predicate column (one row of Tables 2–3).
#[derive(Debug, Clone, Copy)]
pub struct ColumnSpec {
    /// Column name as in the paper.
    pub name: &'static str,
    /// Number of distinct values in the real data (Table 2, "Column Cardinality").
    pub cardinality: u64,
    /// Average number of distinct values per join key (Table 3, "Avg Dupes").
    pub avg_dupes: f64,
    /// Maximum number of distinct values per join key (Table 3, "Max Dupes").
    pub max_dupes: u64,
    /// Whether values are drawn from a skewed (Zipf) distribution over the domain.
    pub skewed: bool,
}

/// Static description of one table (row counts from Table 2 of the paper).
#[derive(Debug, Clone, Copy)]
pub struct TableSpec {
    /// Which table this is.
    pub id: TableId,
    /// Row count in the real snapshot (Table 2, "Number of Rows").
    pub full_rows: u64,
    /// Fraction of all movies that appear in this table at least once.
    pub movie_coverage: f64,
    /// Predicate columns.
    pub columns: &'static [ColumnSpec],
}

/// Number of rows in the real `title` table — the size of the movie-id universe.
pub const FULL_NUM_MOVIES: u64 = 2_528_312;

/// The Table 2 / Table 3 specification of the six tables.
pub const TABLE_SPECS: [TableSpec; 6] = [
    TableSpec {
        id: TableId::CastInfo,
        full_rows: 36_244_344,
        movie_coverage: 0.75,
        columns: &[ColumnSpec {
            name: "role_id",
            cardinality: 11,
            avg_dupes: 4.70,
            max_dupes: 11,
            skewed: true,
        }],
    },
    TableSpec {
        id: TableId::MovieCompanies,
        full_rows: 2_609_129,
        movie_coverage: 0.45,
        columns: &[
            ColumnSpec {
                name: "company_id",
                cardinality: 234_997,
                avg_dupes: 2.14,
                max_dupes: 87,
                skewed: true,
            },
            ColumnSpec {
                name: "company_type_id",
                cardinality: 2,
                avg_dupes: 1.54,
                max_dupes: 2,
                skewed: false,
            },
        ],
    },
    TableSpec {
        id: TableId::MovieInfo,
        full_rows: 14_835_720,
        movie_coverage: 0.80,
        columns: &[ColumnSpec {
            name: "info_type_id",
            cardinality: 71,
            avg_dupes: 4.17,
            max_dupes: 68,
            skewed: true,
        }],
    },
    TableSpec {
        id: TableId::MovieInfoIdx,
        full_rows: 1_380_035,
        movie_coverage: 0.30,
        columns: &[ColumnSpec {
            name: "info_type_id",
            cardinality: 5,
            avg_dupes: 3.00,
            max_dupes: 4,
            skewed: false,
        }],
    },
    TableSpec {
        id: TableId::MovieKeyword,
        full_rows: 4_523_930,
        movie_coverage: 0.35,
        columns: &[ColumnSpec {
            name: "keyword_id",
            cardinality: 134_170,
            avg_dupes: 9.48,
            max_dupes: 539,
            skewed: true,
        }],
    },
    TableSpec {
        id: TableId::Title,
        full_rows: 2_528_312,
        movie_coverage: 1.0,
        columns: &[
            ColumnSpec {
                name: "kind_id",
                cardinality: 6,
                avg_dupes: 1.00,
                max_dupes: 1,
                skewed: true,
            },
            ColumnSpec {
                name: "production_year",
                cardinality: 132,
                avg_dupes: 1.00,
                max_dupes: 1,
                skewed: true,
            },
        ],
    },
];

/// Range of `production_year` in the data (§10.3: "an integer ranging from 1880 to
/// 2019").
pub const PRODUCTION_YEAR_RANGE: (u64, u64) = (1880, 2019);

/// A generated table: column-oriented rows of (join key, predicate column values).
#[derive(Debug, Clone)]
pub struct SyntheticTable {
    /// Which table this is.
    pub id: TableId,
    /// `movie_id` per row.
    pub join_keys: Vec<u64>,
    /// One value vector per predicate column, aligned with [`TableSpec::columns`].
    pub columns: Vec<Vec<u64>>,
}

impl SyntheticTable {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.join_keys.len()
    }

    /// The static spec for this table.
    pub fn spec(&self) -> &'static TableSpec {
        spec_of(self.id)
    }

    /// The attribute vector of a row (one value per predicate column).
    pub fn row_attrs(&self, row: usize) -> Vec<u64> {
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// Number of distinct join keys.
    pub fn distinct_keys(&self) -> usize {
        let mut keys: Vec<u64> = self.join_keys.clone();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Per-key counts of distinct attribute vectors (the `A` statistic of §8 / the
    /// "dupes" of Table 3 when the table has a single predicate column).
    pub fn distinct_attr_vectors_per_key(&self) -> Vec<usize> {
        use std::collections::{HashMap, HashSet};
        let mut per_key: HashMap<u64, HashSet<Vec<u64>>> = HashMap::new();
        for row in 0..self.num_rows() {
            per_key
                .entry(self.join_keys[row])
                .or_default()
                .insert(self.row_attrs(row));
        }
        per_key.into_values().map(|s| s.len()).collect()
    }

    /// Raw size of the data summarized by a CCF over this table, in bits, using the
    /// §10.7 accounting: join keys and high-cardinality attributes (cardinality > 256)
    /// take 32 bits, low-cardinality attributes take 8 bits.
    pub fn raw_size_bits(&self) -> usize {
        let spec = self.spec();
        let per_row: usize = 32
            + spec
                .columns
                .iter()
                .map(|c| if c.cardinality > 256 { 32 } else { 8 })
                .sum::<usize>();
        self.num_rows() * per_row
    }
}

/// The full synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticImdb {
    /// Scale denominator used for generation.
    pub scale: u64,
    /// Number of movies (the join-key universe is `1..=num_movies`).
    pub num_movies: u64,
    /// The six tables, in [`TableId::ALL`] order.
    pub tables: Vec<SyntheticTable>,
}

/// Look up the static spec of a table.
pub fn spec_of(id: TableId) -> &'static TableSpec {
    TABLE_SPECS
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("no spec for table {id:?}"))
}

impl SyntheticImdb {
    /// Generate the dataset at `1/scale` of the real row counts.
    ///
    /// `scale = 64` (the experiment default) yields ≈ 40 k movies and ≈ 950 k total
    /// rows; `scale = 512` is comfortable for unit tests.
    pub fn generate(scale: u64, seed: u64) -> Self {
        assert!(scale >= 1, "scale must be at least 1");
        let num_movies = (FULL_NUM_MOVIES / scale).max(1000);
        let mut tables = Vec::with_capacity(6);
        for (i, spec) in TABLE_SPECS.iter().enumerate() {
            tables.push(Self::generate_table(
                spec,
                num_movies,
                seed ^ ((i as u64 + 1) << 32),
            ));
        }
        Self {
            scale,
            num_movies,
            tables,
        }
    }

    /// The generated table for `id`.
    pub fn table(&self, id: TableId) -> &SyntheticTable {
        self.tables
            .iter()
            .find(|t| t.id == id)
            .unwrap_or_else(|| panic!("table {id:?} was not generated"))
    }

    fn generate_table(spec: &'static TableSpec, num_movies: u64, seed: u64) -> SyntheticTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut join_keys = Vec::new();
        let mut columns: Vec<Vec<u64>> = vec![Vec::new(); spec.columns.len()];

        if spec.id == TableId::Title {
            // Exactly one row per movie: kind_id skewed over 6 kinds, production_year
            // skewed towards recent years.
            let kind_dist = ZipfMandelbrot::new(1.2, 1.0, 6);
            for movie in 1..=num_movies {
                join_keys.push(movie);
                columns[0].push(kind_dist.sample(&mut rng));
                // Year: triangular-ish skew toward the recent end of 1880..=2019.
                let (lo, hi) = PRODUCTION_YEAR_RANGE;
                let span = hi - lo;
                let u: f64 = rng.gen::<f64>().max(rng.gen::<f64>());
                columns[1].push(lo + (u * span as f64) as u64);
            }
            return SyntheticTable {
                id: spec.id,
                join_keys,
                columns,
            };
        }

        // Duplicate structure: distinct values per key ~ Zipf-Mandelbrot with the
        // Table 3 mean, truncated at the Table 3 maximum.
        let lead = spec.columns[0];
        let dupes_dist = if lead.max_dupes <= 1 {
            None
        } else {
            let alpha = ZipfMandelbrot::solve_alpha_for_mean_with(
                lead.avg_dupes.max(1.0),
                ZipfMandelbrot::PAPER_OFFSET,
                lead.max_dupes,
            );
            Some(ZipfMandelbrot::new(
                alpha,
                ZipfMandelbrot::PAPER_OFFSET,
                lead.max_dupes,
            ))
        };

        // Value distributions per column: skewed columns draw from a Zipf over the
        // cardinality, uniform ones uniformly.
        let value_dists: Vec<Option<ZipfMandelbrot>> = spec
            .columns
            .iter()
            .map(|c| {
                if c.skewed && c.cardinality > 1 {
                    Some(ZipfMandelbrot::new(1.05, 2.7, c.cardinality))
                } else {
                    None
                }
            })
            .collect();

        // Row budget: keep the per-table ratios of Table 2. Rows per included movie is
        // derived from the duplicate structure; extra repetitions model the fact that
        // the same (movie, value) pair occurs in multiple raw rows.
        let target_rows =
            (spec.full_rows as f64 * num_movies as f64 / FULL_NUM_MOVIES as f64) as usize;

        for movie in 1..=num_movies {
            if !rng.gen_bool(spec.movie_coverage) {
                continue;
            }
            let distinct = dupes_dist
                .as_ref()
                .map(|d| d.sample(&mut rng))
                .unwrap_or(1)
                .max(1);
            for dup in 0..distinct {
                // Lead column: `distinct` different values for this movie.
                let lead_value = match &value_dists[0] {
                    Some(dist) => {
                        // Re-draw until distinct from previous picks is overkill for a
                        // synthetic workload; offsetting by the duplicate index keeps
                        // values distinct while preserving the marginal skew.
                        let v = dist.sample(&mut rng);
                        ((v + dup) % spec.columns[0].cardinality.max(1)) + 1
                    }
                    None => (dup % spec.columns[0].cardinality.max(1)) + 1,
                };
                join_keys.push(movie);
                columns[0].push(lead_value);
                for (ci, col) in spec.columns.iter().enumerate().skip(1) {
                    let v = match &value_dists[ci] {
                        Some(dist) => dist.sample(&mut rng),
                        None => rng.gen_range(1..=col.cardinality.max(1)),
                    };
                    columns[ci].push(v);
                }
            }
        }

        // Repeat rows (uniformly at random) until the Table-2 row budget is met, so
        // row-count ratios between tables are preserved without changing the distinct
        // (movie, value) structure.
        if join_keys.len() < target_rows && !join_keys.is_empty() {
            let missing = target_rows - join_keys.len();
            for _ in 0..missing {
                let i = rng.gen_range(0..join_keys.len());
                join_keys.push(join_keys[i]);
                for col in &mut columns {
                    let v = col[i];
                    col.push(v);
                }
            }
        }

        SyntheticTable {
            id: spec.id,
            join_keys,
            columns,
        }
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.num_rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SyntheticImdb {
        SyntheticImdb::generate(512, 7)
    }

    #[test]
    fn all_six_tables_are_generated_with_spec_columns() {
        let db = small();
        assert_eq!(db.tables.len(), 6);
        for id in TableId::ALL {
            let t = db.table(id);
            assert_eq!(t.id, id);
            assert_eq!(t.columns.len(), spec_of(id).columns.len());
            for col in &t.columns {
                assert_eq!(col.len(), t.join_keys.len());
            }
            assert!(t.num_rows() > 0, "{} is empty", id.name());
        }
    }

    #[test]
    fn title_has_one_row_per_movie() {
        let db = small();
        let title = db.table(TableId::Title);
        assert_eq!(title.num_rows() as u64, db.num_movies);
        assert_eq!(title.distinct_keys() as u64, db.num_movies);
        // production_year stays in range.
        let (lo, hi) = PRODUCTION_YEAR_RANGE;
        assert!(title.columns[1].iter().all(|&y| (lo..=hi).contains(&y)));
        // kind_id stays within its cardinality.
        assert!(title.columns[0].iter().all(|&k| (1..=6).contains(&k)));
    }

    #[test]
    fn row_count_ratios_follow_table_2() {
        let db = small();
        // cast_info must be the largest table and movie_info_idx among the smallest,
        // with cast_info ≈ 14× title as in the real data.
        let cast = db.table(TableId::CastInfo).num_rows() as f64;
        let title = db.table(TableId::Title).num_rows() as f64;
        let mii = db.table(TableId::MovieInfoIdx).num_rows() as f64;
        assert!(cast / title > 8.0, "cast_info/title ratio {}", cast / title);
        assert!(mii < title, "movie_info_idx should be smaller than title");
    }

    #[test]
    fn duplicate_statistics_track_table_3() {
        let db = SyntheticImdb::generate(256, 3);
        // movie_keyword: mean ≈ 9.48 distinct values per movie, max well above d = 3.
        let mk = db.table(TableId::MovieKeyword);
        let counts = mk.distinct_attr_vectors_per_key();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(
            (4.0..16.0).contains(&mean),
            "movie_keyword mean dupes {mean}"
        );
        assert!(*counts.iter().max().unwrap() > 30, "missing heavy tail");
        // cast_info: mean ≈ 4.7, max ≤ 11 (cardinality bound).
        let ci = db.table(TableId::CastInfo);
        let counts = ci.distinct_attr_vectors_per_key();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((2.5..7.5).contains(&mean), "cast_info mean dupes {mean}");
        assert!(*counts.iter().max().unwrap() as u64 <= 11);
        // title: exactly one per key.
        let t = db.table(TableId::Title);
        assert!(t.distinct_attr_vectors_per_key().iter().all(|&c| c == 1));
    }

    #[test]
    fn column_values_respect_cardinalities() {
        let db = small();
        for id in TableId::ALL {
            let t = db.table(id);
            let spec = spec_of(id);
            for (ci, col_spec) in spec.columns.iter().enumerate() {
                if col_spec.name == "production_year" {
                    continue; // years use the 1880–2019 range, not 1..=cardinality
                }
                let max = *t.columns[ci].iter().max().unwrap();
                assert!(
                    max <= col_spec.cardinality,
                    "{}.{} exceeds cardinality: {max} > {}",
                    id.name(),
                    col_spec.name,
                    col_spec.cardinality
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed_and_scale() {
        let a = SyntheticImdb::generate(512, 9);
        let b = SyntheticImdb::generate(512, 9);
        assert_eq!(a.num_movies, b.num_movies);
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.join_keys, tb.join_keys);
            assert_eq!(ta.columns, tb.columns);
        }
        let c = SyntheticImdb::generate(512, 10);
        assert_ne!(
            a.table(TableId::CastInfo).join_keys,
            c.table(TableId::CastInfo).join_keys
        );
    }

    #[test]
    fn raw_size_accounting_distinguishes_cardinalities() {
        let db = small();
        let mk = db.table(TableId::MovieKeyword); // high-cardinality attribute: 32 + 32
        let ci = db.table(TableId::CastInfo); // low-cardinality attribute: 32 + 8
        assert_eq!(mk.raw_size_bits(), mk.num_rows() * 64);
        assert_eq!(ci.raw_size_bits(), ci.num_rows() * 40);
    }

    #[test]
    fn join_keys_stay_within_movie_universe() {
        let db = small();
        for id in TableId::ALL {
            let t = db.table(id);
            assert!(t.join_keys.iter().all(|&k| k >= 1 && k <= db.num_movies));
        }
    }
}
