//! Multiset insertion streams for the Figure 4 / Figure 5 experiments (§10.1).
//!
//! The setup: "For each filter type and each setting for the average number of
//! duplicates per key in the input data, we generate a dataset that is approximately
//! 20 % larger than the capacity of the sketch and measure the number of items
//! processed before the first failed insertion and the load factor at that point. ...
//! The order of items is randomly permuted."
//!
//! A [`MultisetStream`] generates the (key, attribute-vector) rows: each key gets a
//! number of *distinct* duplicate rows drawn from either a constant or a truncated
//! Zipf-Mandelbrot distribution, every duplicate of a key carrying a different
//! attribute value, and the concatenated rows are shuffled before insertion.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::zipf::ZipfMandelbrot;

/// One row of a multiset workload: a key plus its attribute vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Join key.
    pub key: u64,
    /// Attribute values (one per attribute column).
    pub attrs: Vec<u64>,
}

/// How the number of duplicates per key is drawn (§10.1 evaluates both).
#[derive(Debug, Clone)]
pub enum DuplicateDistribution {
    /// Every key has exactly this many distinct duplicate rows.
    Constant(u64),
    /// Duplicates per key follow a truncated Zipf-Mandelbrot distribution.
    Zipf(ZipfMandelbrot),
}

impl DuplicateDistribution {
    /// The paper's Zipf-Mandelbrot configuration tuned to a target mean number of
    /// duplicates (offset 2.7, truncated to [1, 500]).
    pub fn zipf_with_mean(mean: f64) -> Self {
        let alpha = ZipfMandelbrot::solve_alpha_for_mean(mean);
        DuplicateDistribution::Zipf(ZipfMandelbrot::paper(alpha))
    }

    /// Expected number of duplicates per key.
    pub fn mean(&self) -> f64 {
        match self {
            DuplicateDistribution::Constant(c) => *c as f64,
            DuplicateDistribution::Zipf(z) => z.mean(),
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            DuplicateDistribution::Constant(c) => (*c).max(1),
            DuplicateDistribution::Zipf(z) => z.sample(rng),
        }
    }
}

/// Generator for multiset insertion streams.
#[derive(Debug, Clone)]
pub struct MultisetStream {
    /// Distribution of distinct duplicates per key.
    pub duplicates: DuplicateDistribution,
    /// Number of attribute columns per row.
    pub num_attrs: usize,
    /// RNG seed (the experiments average over seeds / "random salts").
    pub seed: u64,
}

impl MultisetStream {
    /// Create a stream generator.
    pub fn new(duplicates: DuplicateDistribution, num_attrs: usize, seed: u64) -> Self {
        assert!(num_attrs >= 1, "need at least one attribute column");
        Self {
            duplicates,
            num_attrs,
            seed,
        }
    }

    /// Generate approximately `target_rows` rows (the last key's duplicates may
    /// overshoot slightly), shuffled into random order.
    ///
    /// Keys are consecutive integers starting at 1; the i-th duplicate of a key has
    /// attribute vector `[base + i, base + 2i, ...]` with `base = 1 << 20` so that
    /// attribute values are distinct, non-small (exercising hashing rather than the
    /// small-value optimisation), and deterministic.
    pub fn generate(&self, target_rows: usize) -> Vec<Row> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rows = Vec::with_capacity(target_rows + 512);
        let mut key = 0u64;
        const BASE: u64 = 1 << 20;
        while rows.len() < target_rows {
            key += 1;
            let dupes = self.duplicates.sample(&mut rng);
            for i in 0..dupes {
                let attrs: Vec<u64> = (0..self.num_attrs as u64)
                    .map(|c| BASE + i * (c + 1) + c * 7919)
                    .collect();
                rows.push(Row { key, attrs });
            }
        }
        rows.shuffle(&mut rng);
        rows
    }

    /// Generate a dataset sized "approximately 20 % larger than the capacity of the
    /// sketch", as in §10.1.
    pub fn generate_for_capacity(&self, sketch_capacity: usize) -> Vec<Row> {
        self.generate((sketch_capacity as f64 * 1.2).ceil() as usize)
    }
}

/// Per-key duplicate counts of a generated stream (useful for Table-1-style entry
/// predictions and test assertions).
pub fn duplicate_counts(rows: &[Row]) -> Vec<usize> {
    use std::collections::HashMap;
    let mut per_key: HashMap<u64, std::collections::HashSet<&[u64]>> = HashMap::new();
    for row in rows {
        per_key.entry(row.key).or_default().insert(&row.attrs);
    }
    per_key.into_values().map(|s| s.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_distribution_gives_exact_duplicates() {
        let s = MultisetStream::new(DuplicateDistribution::Constant(4), 2, 1);
        let rows = s.generate(1000);
        assert!(rows.len() >= 1000);
        let counts = duplicate_counts(&rows);
        // Every key except possibly the last has exactly 4 distinct rows.
        let full_keys = counts.iter().filter(|&&c| c == 4).count();
        assert!(full_keys >= counts.len() - 1);
    }

    #[test]
    fn zipf_distribution_mean_is_respected() {
        let s = MultisetStream::new(DuplicateDistribution::zipf_with_mean(6.0), 1, 2);
        let rows = s.generate(60_000);
        let counts = duplicate_counts(&rows);
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(
            (mean - 6.0).abs() < 0.8,
            "mean duplicates {mean}, wanted ≈ 6"
        );
        // Skew: some keys should have far more duplicates than the mean.
        assert!(*counts.iter().max().unwrap() > 20);
    }

    #[test]
    fn rows_are_shuffled() {
        let s = MultisetStream::new(DuplicateDistribution::Constant(3), 1, 3);
        let rows = s.generate(5000);
        // If unshuffled, keys would be non-decreasing; count inversions.
        let inversions = rows.windows(2).filter(|w| w[0].key > w[1].key).count();
        assert!(
            inversions > 100,
            "stream does not look shuffled ({inversions} inversions)"
        );
    }

    #[test]
    fn duplicates_of_a_key_have_distinct_attributes() {
        let s = MultisetStream::new(DuplicateDistribution::Constant(8), 2, 4);
        let rows = s.generate(4000);
        let counts = duplicate_counts(&rows);
        assert!(counts.iter().all(|&c| c <= 8));
        let full = counts.iter().filter(|&&c| c == 8).count();
        assert!(full >= counts.len() - 1, "duplicates must be distinct rows");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = MultisetStream::new(DuplicateDistribution::zipf_with_mean(3.0), 2, 42);
        assert_eq!(s.generate(2000), s.generate(2000));
        let other = MultisetStream::new(DuplicateDistribution::zipf_with_mean(3.0), 2, 43);
        assert_ne!(s.generate(2000), other.generate(2000));
    }

    #[test]
    fn capacity_sizing_overshoots_by_twenty_percent() {
        let s = MultisetStream::new(DuplicateDistribution::Constant(1), 1, 5);
        let rows = s.generate_for_capacity(10_000);
        assert!(rows.len() >= 12_000);
        assert!(rows.len() < 12_600);
    }
}
