//! Workload generators for the Conditional Cuckoo Filter experiments.
//!
//! Two families of workloads appear in the paper's evaluation (§10):
//!
//! * **Multiset experiments** (§10.1–10.2, Figures 4–5): synthetic streams of
//!   (key, attribute) rows where the number of duplicates per key follows either a
//!   constant or a truncated Zipf-Mandelbrot distribution. [`zipf`] implements the
//!   distribution (with a solver that finds the exponent α achieving a target mean
//!   number of duplicates); [`multiset`] turns it into the insertion streams the
//!   experiments consume.
//! * **JOB-light experiments** (§10.3–10.7, Figures 6–10, Tables 2–3): a join workload
//!   over the IMDB dataset. The original snapshot is not redistributable and far larger
//!   than a laptop-scale reproduction needs, so [`imdb`] generates a *synthetic* IMDB
//!   whose per-table statistics match Tables 2 and 3 (row counts at a configurable
//!   scale, predicate-column cardinalities, and the distribution of distinct duplicate
//!   attribute values per join key), and [`joblight`] generates a 70-query workload
//!   with the same structure as JOB-light (star joins of 2–5 tables on `movie_id`,
//!   equality predicates plus inequality predicates on `title.production_year`).
//!
//! A third family, [`strkeys`], generates **string-keyed** streams (synthetic
//! identifiers with Zipf duplication) for exercising the typed-key (`FilterKey`)
//! API end-to-end — the paper's deployments join on strings and composite keys, not
//! only `u64` surrogates.
//!
//! A fourth family, [`churn`], generates **sliding-window insert/delete** streams for
//! the deletion work: a bounded live set under sustained traffic, with deletes that
//! target exact rows so churn harnesses can assert no-false-negative and occupancy
//! contracts precisely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod imdb;
pub mod joblight;
pub mod multiset;
pub mod strkeys;
pub mod zipf;

pub use churn::{ChurnOp, SlidingWindowChurn};
pub use imdb::{SyntheticImdb, TableId, TableSpec};
pub use joblight::{JobLightQuery, JobLightWorkload, QueryPredicate, QueryTable};
pub use multiset::{DuplicateDistribution, MultisetStream, Row};
pub use strkeys::{StringKeyStream, StringRow};
pub use zipf::ZipfMandelbrot;
