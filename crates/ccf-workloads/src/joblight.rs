//! A JOB-light-style query workload (§10.3).
//!
//! JOB-light consists of 70 queries derived from the Join Order Benchmark: each query
//! star-joins `title` with between 1 and 4 of the other five tables on `movie_id` and
//! applies equality predicates on the tables' predicate columns, plus inequality
//! (range) predicates on `title.production_year` in 55 of the 70 queries. The original
//! query text accompanies the IMDB snapshot; this module generates a workload with the
//! same structure deterministically from a seed, against the synthetic dataset of
//! [`crate::imdb`].
//!
//! The paper reports 237 (query, base-table) instances that qualify for semijoin
//! reduction across the 70 queries; the generated workload lands in the same range (a
//! query with `t` tables contributes `t` instances).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::imdb::{spec_of, SyntheticImdb, TableId, PRODUCTION_YEAR_RANGE};

/// A predicate of a JOB-light query on one column of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryPredicate {
    /// Equality on a predicate column (column index within the table's spec).
    Eq {
        /// Column index within the table's predicate columns.
        column: usize,
        /// The literal value.
        value: u64,
    },
    /// Inclusive range on a predicate column (used for `title.production_year`).
    Range {
        /// Column index within the table's predicate columns.
        column: usize,
        /// Lower bound (inclusive).
        lo: u64,
        /// Upper bound (inclusive).
        hi: u64,
    },
}

/// One table occurrence in a query, with the predicates applied to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTable {
    /// Which table.
    pub table: TableId,
    /// Predicates on this table (possibly empty).
    pub predicates: Vec<QueryPredicate>,
}

/// One JOB-light-style query: a star join of the listed tables on `movie_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobLightQuery {
    /// Query number (0-based).
    pub id: usize,
    /// Tables involved (always includes `title`).
    pub tables: Vec<QueryTable>,
}

impl JobLightQuery {
    /// Number of joins in the query (tables − 1).
    pub fn num_joins(&self) -> usize {
        self.tables.len().saturating_sub(1)
    }

    /// The tables other than `base` (the CCF providers when `base` is scanned).
    pub fn other_tables(&self, base: TableId) -> Vec<&QueryTable> {
        self.tables.iter().filter(|t| t.table != base).collect()
    }
}

/// The whole workload.
#[derive(Debug, Clone)]
pub struct JobLightWorkload {
    /// The queries, in id order.
    pub queries: Vec<JobLightQuery>,
}

impl JobLightWorkload {
    /// Number of queries in JOB-light.
    pub const NUM_QUERIES: usize = 70;
    /// Number of queries with an inequality predicate on `title.production_year`.
    pub const NUM_YEAR_RANGE_QUERIES: usize = 55;

    /// Generate the workload against a synthetic dataset. Predicate literals are drawn
    /// from values that actually occur in the data (so predicates are selective but not
    /// vacuously empty), and the mix of join counts / year ranges follows §10.3.
    pub fn generate(db: &SyntheticImdb, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x10B_1167);
        let joinable = [
            TableId::CastInfo,
            TableId::MovieCompanies,
            TableId::MovieInfo,
            TableId::MovieInfoIdx,
            TableId::MovieKeyword,
        ];
        // 55 of 70 queries carry a production_year range predicate.
        let mut has_year_range = [true; Self::NUM_QUERIES];
        for slot in has_year_range
            .iter_mut()
            .take(Self::NUM_QUERIES)
            .skip(Self::NUM_YEAR_RANGE_QUERIES)
        {
            *slot = false;
        }
        has_year_range.shuffle(&mut rng);

        let queries = (0..Self::NUM_QUERIES)
            .map(|id| {
                // 1 to 4 joined tables besides title (JOB-light queries join 2–5 tables
                // in total).
                let num_others = rng.gen_range(1..=4usize);
                let mut others = joinable.to_vec();
                others.shuffle(&mut rng);
                others.truncate(num_others);

                let mut tables = Vec::with_capacity(num_others + 1);
                // title: always present; kind_id equality on most queries, year range
                // on the designated ones.
                let mut title_preds = Vec::new();
                if rng.gen_bool(0.8) {
                    title_preds.push(QueryPredicate::Eq {
                        column: 0,
                        value: Self::pick_value(db, TableId::Title, 0, &mut rng),
                    });
                }
                if has_year_range[id] {
                    let (lo_bound, hi_bound) = PRODUCTION_YEAR_RANGE;
                    let lo = rng.gen_range(lo_bound..=hi_bound - 10);
                    let hi = rng.gen_range(lo..=hi_bound);
                    title_preds.push(QueryPredicate::Range { column: 1, lo, hi });
                }
                tables.push(QueryTable {
                    table: TableId::Title,
                    predicates: title_preds,
                });

                for other in others {
                    let spec = spec_of(other);
                    let mut predicates = Vec::new();
                    // Most table occurrences carry one equality predicate on one of
                    // their predicate columns (that is what makes CCFs useful); some
                    // are bare joins.
                    if rng.gen_bool(0.85) {
                        let column = rng.gen_range(0..spec.columns.len());
                        predicates.push(QueryPredicate::Eq {
                            column,
                            value: Self::pick_value(db, other, column, &mut rng),
                        });
                    }
                    tables.push(QueryTable {
                        table: other,
                        predicates,
                    });
                }
                JobLightQuery { id, tables }
            })
            .collect();
        Self { queries }
    }

    /// Pick a predicate literal that occurs in the data (biased towards common values,
    /// like the hand-written JOB-light predicates).
    fn pick_value(db: &SyntheticImdb, table: TableId, column: usize, rng: &mut StdRng) -> u64 {
        let col = &db.table(table).columns[column];
        col[rng.gen_range(0..col.len())]
    }

    /// Total number of (query, base-table) instances — each table occurrence in each
    /// query is one scan that other tables' CCFs can reduce. The paper reports 237 such
    /// instances for the original workload.
    pub fn num_instances(&self) -> usize {
        self.queries.iter().map(|q| q.tables.len()).sum()
    }

    /// Queries grouped by number of joins (for the Figure 9 breakdown).
    pub fn by_num_joins(&self) -> std::collections::BTreeMap<usize, Vec<&JobLightQuery>> {
        let mut map: std::collections::BTreeMap<usize, Vec<&JobLightQuery>> =
            std::collections::BTreeMap::new();
        for q in &self.queries {
            map.entry(q.num_joins()).or_default().push(q);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload() -> (SyntheticImdb, JobLightWorkload) {
        let db = SyntheticImdb::generate(512, 5);
        let wl = JobLightWorkload::generate(&db, 5);
        (db, wl)
    }

    #[test]
    fn seventy_queries_with_title_in_each() {
        let (_, wl) = workload();
        assert_eq!(wl.queries.len(), 70);
        for q in &wl.queries {
            assert!(q.tables.iter().any(|t| t.table == TableId::Title));
            assert!((1..=4).contains(&q.num_joins()));
            // No table appears twice in one query.
            let mut ids: Vec<TableId> = q.tables.iter().map(|t| t.table).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), q.tables.len());
        }
    }

    #[test]
    fn year_range_predicates_on_55_queries() {
        let (_, wl) = workload();
        let with_range = wl
            .queries
            .iter()
            .filter(|q| {
                q.tables.iter().any(|t| {
                    t.table == TableId::Title
                        && t.predicates
                            .iter()
                            .any(|p| matches!(p, QueryPredicate::Range { .. }))
                })
            })
            .count();
        assert_eq!(with_range, 55);
    }

    #[test]
    fn instance_count_is_in_the_papers_ballpark() {
        let (_, wl) = workload();
        let n = wl.num_instances();
        assert!(
            (200..=320).contains(&n),
            "instances = {n}, paper reports 237"
        );
    }

    #[test]
    fn equality_literals_occur_in_the_data() {
        let (db, wl) = workload();
        for q in &wl.queries {
            for t in &q.tables {
                for p in &t.predicates {
                    if let QueryPredicate::Eq { column, value } = p {
                        assert!(
                            db.table(t.table).columns[*column].contains(value),
                            "literal {value} not present in {}.{}",
                            t.table.name(),
                            spec_of(t.table).columns[*column].name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn range_bounds_are_ordered_and_in_domain() {
        let (_, wl) = workload();
        for q in &wl.queries {
            for t in &q.tables {
                for p in &t.predicates {
                    if let QueryPredicate::Range { lo, hi, .. } = p {
                        assert!(lo <= hi);
                        assert!(*lo >= PRODUCTION_YEAR_RANGE.0 && *hi <= PRODUCTION_YEAR_RANGE.1);
                    }
                }
            }
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let db = SyntheticImdb::generate(512, 5);
        let a = JobLightWorkload::generate(&db, 1);
        let b = JobLightWorkload::generate(&db, 1);
        assert_eq!(a.queries, b.queries);
        let c = JobLightWorkload::generate(&db, 2);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn join_count_grouping_covers_all_queries() {
        let (_, wl) = workload();
        let grouped = wl.by_num_joins();
        let total: usize = grouped.values().map(|v| v.len()).sum();
        assert_eq!(total, 70);
        assert!(grouped.keys().all(|&k| (1..=4).contains(&k)));
    }

    #[test]
    fn other_tables_excludes_the_base() {
        let (_, wl) = workload();
        let q = &wl.queries[0];
        let others = q.other_tables(TableId::Title);
        assert_eq!(others.len(), q.tables.len() - 1);
        assert!(others.iter().all(|t| t.table != TableId::Title));
    }
}
