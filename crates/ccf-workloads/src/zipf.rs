//! Truncated Zipf-Mandelbrot distribution (§10.1).
//!
//! The multiset experiments draw key frequencies from "a truncated Zipf-Mandelbrot
//! distribution ... with a mass function of the form p(x) ∝ (c + x)^{-α}", with the
//! offset fixed at c = 2.7 and the range truncated to [1, 500]; α is varied to obtain a
//! desired average number of duplicates per key. This module implements the
//! distribution, sampling, and the solver that recovers α from a target mean.

use rand::Rng;

/// A truncated Zipf-Mandelbrot distribution over `{1, ..., max_value}` with mass
/// `p(x) ∝ (c + x)^{-α}`.
#[derive(Debug, Clone)]
pub struct ZipfMandelbrot {
    alpha: f64,
    offset: f64,
    max_value: u64,
    /// Cumulative distribution, `cdf[i]` = P(X ≤ i + 1).
    cdf: Vec<f64>,
}

impl ZipfMandelbrot {
    /// The offset c = 2.7 used throughout §10.1.
    pub const PAPER_OFFSET: f64 = 2.7;
    /// The truncation range [1, 500] used throughout §10.1.
    pub const PAPER_MAX: u64 = 500;

    /// Create a distribution with explicit parameters.
    ///
    /// # Panics
    /// Panics if `max_value == 0`, `offset <= -1.0`, or `alpha` is not finite.
    pub fn new(alpha: f64, offset: f64, max_value: u64) -> Self {
        assert!(max_value >= 1, "max_value must be at least 1");
        assert!(offset > -1.0, "offset must exceed -1");
        assert!(alpha.is_finite(), "alpha must be finite");
        let weights: Vec<f64> = (1..=max_value)
            .map(|x| (offset + x as f64).powf(-alpha))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(max_value as usize);
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point drift.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self {
            alpha,
            offset,
            max_value,
            cdf,
        }
    }

    /// The paper's configuration: offset 2.7, range [1, 500], explicit α.
    pub fn paper(alpha: f64) -> Self {
        Self::new(alpha, Self::PAPER_OFFSET, Self::PAPER_MAX)
    }

    /// The exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The offset c.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The truncation bound.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// The exact mean of the distribution.
    pub fn mean(&self) -> f64 {
        let weights: Vec<f64> = (1..=self.max_value)
            .map(|x| (self.offset + x as f64).powf(-self.alpha))
            .collect();
        let total: f64 = weights.iter().sum();
        weights
            .iter()
            .enumerate()
            .map(|(i, w)| (i as f64 + 1.0) * w / total)
            .sum()
    }

    /// Probability mass at `x` (0 outside `[1, max_value]`).
    pub fn pmf(&self, x: u64) -> f64 {
        if x == 0 || x > self.max_value {
            return 0.0;
        }
        let prev = if x == 1 {
            0.0
        } else {
            self.cdf[(x - 2) as usize]
        };
        self.cdf[(x - 1) as usize] - prev
    }

    /// Draw one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // Binary search the CDF.
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) | Err(i) => (i as u64 + 1).min(self.max_value),
        }
    }

    /// Find the α for which the paper's distribution (c = 2.7, range [1, 500]) has the
    /// requested mean, by bisection. The mean is monotonically decreasing in α; means
    /// must lie in the attainable range (≈ 1.0 .. ≈ 112 for the paper's truncation).
    pub fn solve_alpha_for_mean(target_mean: f64) -> f64 {
        Self::solve_alpha_for_mean_with(target_mean, Self::PAPER_OFFSET, Self::PAPER_MAX)
    }

    /// As [`Self::solve_alpha_for_mean`] with explicit offset and truncation.
    ///
    /// Target means at (or marginally beyond) the attainable boundary — e.g. exactly
    /// 1.0, where the distribution degenerates to a point mass at 1 — clamp to the
    /// nearest attainable α instead of failing.
    pub fn solve_alpha_for_mean_with(target_mean: f64, offset: f64, max_value: u64) -> f64 {
        assert!(
            target_mean >= 1.0,
            "mean duplicates below 1 is unattainable"
        );
        let mean_at = |alpha: f64| ZipfMandelbrot::new(alpha, offset, max_value).mean();
        let (mut lo, mut hi) = (-10.0f64, 40.0f64);
        if target_mean >= mean_at(lo) {
            return lo;
        }
        if target_mean <= mean_at(hi) {
            return hi;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if mean_at(mid) > target_mean {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_is_decreasing() {
        let z = ZipfMandelbrot::paper(1.2);
        let total: f64 = (1..=500).map(|x| z.pmf(x)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for x in 1..500u64 {
            assert!(
                z.pmf(x) >= z.pmf(x + 1),
                "pmf must be non-increasing at {x}"
            );
        }
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(501), 0.0);
    }

    #[test]
    fn sample_mean_tracks_exact_mean() {
        let z = ZipfMandelbrot::paper(1.5);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| z.sample(&mut rng)).sum();
        let sample_mean = sum as f64 / n as f64;
        let exact = z.mean();
        assert!(
            (sample_mean - exact).abs() / exact < 0.05,
            "sample mean {sample_mean} vs exact {exact}"
        );
    }

    #[test]
    fn samples_stay_in_truncation_range() {
        let z = ZipfMandelbrot::new(0.5, 2.7, 37);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = z.sample(&mut rng);
            assert!((1..=37).contains(&x));
        }
    }

    #[test]
    fn mean_is_monotone_in_alpha() {
        let means: Vec<f64> = [-1.0, 0.0, 0.5, 1.0, 2.0, 4.0]
            .iter()
            .map(|&a| ZipfMandelbrot::paper(a).mean())
            .collect();
        for w in means.windows(2) {
            assert!(w[0] > w[1], "mean must decrease with alpha: {means:?}");
        }
    }

    #[test]
    fn alpha_solver_recovers_target_means() {
        for target in [1.5f64, 2.0, 4.0, 8.0, 12.0, 50.0] {
            let alpha = ZipfMandelbrot::solve_alpha_for_mean(target);
            let mean = ZipfMandelbrot::paper(alpha).mean();
            assert!(
                (mean - target).abs() / target < 0.01,
                "target {target}: alpha {alpha} gives mean {mean}"
            );
        }
    }

    #[test]
    fn alpha_solver_clamps_boundary_means() {
        // Mean exactly 1.0 is the degenerate "all mass at 1" limit: the solver clamps
        // to its largest α instead of failing, and the resulting mean is ≈ 1.
        let alpha = ZipfMandelbrot::solve_alpha_for_mean(1.0);
        assert!(ZipfMandelbrot::paper(alpha).mean() < 1.01);
        // A mean at the top of the attainable range clamps to the smallest α.
        let alpha = ZipfMandelbrot::solve_alpha_for_mean(10_000.0);
        assert!(ZipfMandelbrot::paper(alpha).mean() > 400.0);
    }

    #[test]
    fn extreme_alphas_concentrate_or_flatten() {
        // Very large α: essentially all mass at 1.
        let concentrated = ZipfMandelbrot::paper(30.0);
        assert!(concentrated.pmf(1) > 0.99);
        // α = 0: uniform over [1, 500], mean ≈ 250.5.
        let flat = ZipfMandelbrot::paper(0.0);
        assert!((flat.mean() - 250.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "unattainable")]
    fn solver_rejects_sub_one_means() {
        let _ = ZipfMandelbrot::solve_alpha_for_mean(0.5);
    }
}
