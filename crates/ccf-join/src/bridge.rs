//! Bridging JOB-light query predicates to raw-row evaluation and CCF predicates.
//!
//! A query predicate on a table is used in two ways:
//!
//! * evaluated *exactly* on the table's raw rows (to compute `M_predicate`, the exact
//!   semijoin baselines, and ground truth for FPR accounting);
//! * translated into a [`ccf_core::Predicate`] over the table's CCF attribute columns,
//!   with `production_year` ranges converted to bin in-lists per §9.1/§10.3 (the CCF
//!   stores the binned year, except that a scan *on* `title` itself evaluates the year
//!   predicate directly and needs no binning).

use ccf_core::predicate::binning::Binning;
use ccf_core::{ColumnPredicate, Predicate};
use ccf_workloads::imdb::{spec_of, SyntheticTable, TableId};
use ccf_workloads::joblight::{QueryPredicate, QueryTable};

/// Why a query predicate could not be bridged to a table's columns. The serving
/// paths (`try_*` functions, used by the sharded service layer) report these as
/// values; the experiment harness keeps the infallible wrappers, whose only failure
/// mode is a workload-generator bug surfaced as an `unreachable!` with this message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeError {
    /// A predicate referenced a column the table does not have.
    ColumnOutOfRange {
        /// The table being scanned.
        table: TableId,
        /// The referenced column index.
        column: usize,
        /// How many predicate columns the table actually has.
        num_columns: usize,
    },
    /// A predicate was paired with a row index past the end of the table.
    RowOutOfRange {
        /// The table being scanned.
        table: TableId,
        /// The referenced row.
        row: usize,
        /// Number of rows in the table.
        num_rows: usize,
    },
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::ColumnOutOfRange {
                table,
                column,
                num_columns,
            } => write!(
                f,
                "predicate references column {column} of {table:?}, which has only \
                 {num_columns} predicate columns"
            ),
            BridgeError::RowOutOfRange {
                table,
                row,
                num_rows,
            } => write!(f, "row {row} out of range for {table:?} ({num_rows} rows)"),
        }
    }
}

impl std::error::Error for BridgeError {}

/// Fold into the workspace-level error, so service paths composing construction,
/// insertion and predicate bridging can bubble one error type
/// (`Result<_, CcfError>`) with `?`.
impl From<BridgeError> for ccf_core::CcfError {
    fn from(e: BridgeError) -> Self {
        ccf_core::CcfError::Bridge(e.to_string())
    }
}

/// Validate that a predicate's column exists on the table.
fn check_column(table: &SyntheticTable, column: usize) -> Result<(), BridgeError> {
    if column >= table.columns.len() {
        return Err(BridgeError::ColumnOutOfRange {
            table: table.id,
            column,
            num_columns: table.columns.len(),
        });
    }
    Ok(())
}

/// Validate that a row index exists on the table.
fn check_row(table: &SyntheticTable, row: usize) -> Result<(), BridgeError> {
    if row >= table.num_rows() {
        return Err(BridgeError::RowOutOfRange {
            table: table.id,
            row,
            num_rows: table.num_rows(),
        });
    }
    Ok(())
}

/// The binning used for `title.production_year` (16 bins over 1880–2019, §10.3).
pub fn production_year_binning() -> Binning {
    Binning::production_year()
}

/// Index of the `production_year` column within `title`'s predicate columns.
pub const PRODUCTION_YEAR_COLUMN: usize = 1;

/// Whether a table column stores binned values inside the CCF.
pub fn column_is_binned(table: TableId, column: usize) -> bool {
    table == TableId::Title && column == PRODUCTION_YEAR_COLUMN
}

/// The attribute vector a CCF stores for one row of a table: the raw predicate-column
/// values, with `production_year` replaced by its bin id.
pub fn ccf_attrs_for_row(table: &SyntheticTable, row: usize) -> Vec<u64> {
    let binning = production_year_binning();
    table
        .columns
        .iter()
        .enumerate()
        .map(|(ci, col)| {
            if column_is_binned(table.id, ci) {
                binning.bin_of(col[row])
            } else {
                col[row]
            }
        })
        .collect()
}

/// Evaluate a single query predicate against one raw row of a table, reporting
/// out-of-range columns/rows as a typed error instead of an index panic.
pub fn try_row_matches_predicate(
    table: &SyntheticTable,
    row: usize,
    pred: &QueryPredicate,
) -> Result<bool, BridgeError> {
    check_row(table, row)?;
    match pred {
        QueryPredicate::Eq { column, value } => {
            check_column(table, *column)?;
            Ok(table.columns[*column][row] == *value)
        }
        QueryPredicate::Range { column, lo, hi } => {
            check_column(table, *column)?;
            let v = table.columns[*column][row];
            Ok(v >= *lo && v <= *hi)
        }
    }
}

/// Evaluate a single query predicate against one raw row of a table.
pub fn row_matches_predicate(table: &SyntheticTable, row: usize, pred: &QueryPredicate) -> bool {
    try_row_matches_predicate(table, row, pred)
        .unwrap_or_else(|e| unreachable!("generated JOB-light predicates are in-spec: {e}"))
}

/// Evaluate all of a query-table's predicates against one raw row (conjunction),
/// with malformed predicates reported as a typed error.
pub fn try_row_matches_table_predicates(
    table: &SyntheticTable,
    row: usize,
    qt: &QueryTable,
) -> Result<bool, BridgeError> {
    debug_assert_eq!(table.id, qt.table);
    // Check the row up front so a nonexistent row is reported even when the
    // predicate list is empty (an empty conjunction is trivially true, but only for
    // rows that exist).
    check_row(table, row)?;
    for p in &qt.predicates {
        if !try_row_matches_predicate(table, row, p)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Evaluate all of a query-table's predicates against one raw row (conjunction).
pub fn row_matches_table_predicates(table: &SyntheticTable, row: usize, qt: &QueryTable) -> bool {
    try_row_matches_table_predicates(table, row, qt)
        .unwrap_or_else(|e| unreachable!("generated JOB-light predicates are in-spec: {e}"))
}

/// Evaluate a query-table's predicates against one raw row *after binning* range
/// predicates: a row matches if its value falls in a bin that overlaps the range. This
/// is the "Exact Semijoin After Binning" baseline of Figure 7 / §10.6 — the error
/// introduced by binning, with no sketching error on top.
pub fn row_matches_table_predicates_binned(
    table: &SyntheticTable,
    row: usize,
    qt: &QueryTable,
) -> bool {
    try_row_matches_table_predicates_binned(table, row, qt)
        .unwrap_or_else(|e| unreachable!("generated JOB-light predicates are in-spec: {e}"))
}

/// As [`row_matches_table_predicates_binned`], with malformed predicates reported as a
/// typed error.
pub fn try_row_matches_table_predicates_binned(
    table: &SyntheticTable,
    row: usize,
    qt: &QueryTable,
) -> Result<bool, BridgeError> {
    debug_assert_eq!(table.id, qt.table);
    check_row(table, row)?;
    let binning = production_year_binning();
    for p in &qt.predicates {
        let matched = match p {
            QueryPredicate::Eq { .. } => try_row_matches_predicate(table, row, p)?,
            QueryPredicate::Range { column, lo, hi } => {
                if column_is_binned(table.id, *column) {
                    check_column(table, *column)?;
                    let bin = binning.bin_of(table.columns[*column][row]);
                    match binning.range_to_bins(*lo, *hi) {
                        ColumnPredicate::Any => true,
                        cond => cond.matches_value(bin),
                    }
                } else {
                    try_row_matches_predicate(table, row, p)?
                }
            }
        };
        if !matched {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Translate a query-table's predicates into a [`Predicate`] over the table's CCF
/// attribute columns (equality stays equality; ranges on binned columns become bin
/// in-lists; unconstrained columns stay unconstrained).
pub fn ccf_predicate_for(qt: &QueryTable) -> Predicate {
    try_ccf_predicate_for(qt)
        .unwrap_or_else(|e| unreachable!("generated JOB-light predicates are in-spec: {e}"))
}

/// As [`ccf_predicate_for`], reporting predicates on nonexistent columns as a typed
/// error instead of an index panic — the form the sharded serving path uses, so a
/// malformed client predicate cannot abort the process.
pub fn try_ccf_predicate_for(qt: &QueryTable) -> Result<Predicate, BridgeError> {
    let spec = spec_of(qt.table);
    let binning = production_year_binning();
    let mut conditions = vec![ColumnPredicate::Any; spec.columns.len()];
    let check = |column: usize| -> Result<(), BridgeError> {
        if column >= spec.columns.len() {
            return Err(BridgeError::ColumnOutOfRange {
                table: qt.table,
                column,
                num_columns: spec.columns.len(),
            });
        }
        Ok(())
    };
    for p in &qt.predicates {
        match p {
            QueryPredicate::Eq { column, value } => {
                check(*column)?;
                let literal = if column_is_binned(qt.table, *column) {
                    binning.bin_of(*value)
                } else {
                    *value
                };
                conditions[*column] = ColumnPredicate::Eq(literal);
            }
            QueryPredicate::Range { column, lo, hi } => {
                check(*column)?;
                conditions[*column] = if column_is_binned(qt.table, *column) {
                    binning.range_to_bins(*lo, *hi)
                } else {
                    // Ranges on non-binned columns do not occur in JOB-light, but are
                    // handled by enumerating the (small) value range.
                    ColumnPredicate::InList((*lo..=*hi).collect())
                };
            }
        }
    }
    Ok(Predicate::new(conditions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccf_workloads::imdb::SyntheticImdb;
    use ccf_workloads::joblight::JobLightWorkload;

    fn db() -> SyntheticImdb {
        SyntheticImdb::generate(512, 11)
    }

    #[test]
    fn ccf_attrs_bin_the_production_year() {
        let db = db();
        let title = db.table(TableId::Title);
        let binning = production_year_binning();
        for row in 0..50 {
            let attrs = ccf_attrs_for_row(title, row);
            assert_eq!(attrs.len(), 2);
            assert_eq!(attrs[0], title.columns[0][row]);
            assert_eq!(attrs[1], binning.bin_of(title.columns[1][row]));
            assert!(attrs[1] < 16);
        }
        // Non-title tables keep raw values.
        let ci = db.table(TableId::CastInfo);
        for row in 0..50 {
            assert_eq!(ccf_attrs_for_row(ci, row), vec![ci.columns[0][row]]);
        }
    }

    #[test]
    fn raw_predicate_evaluation() {
        let db = db();
        let title = db.table(TableId::Title);
        let qt = QueryTable {
            table: TableId::Title,
            predicates: vec![
                QueryPredicate::Eq {
                    column: 0,
                    value: title.columns[0][0],
                },
                QueryPredicate::Range {
                    column: 1,
                    lo: title.columns[1][0],
                    hi: title.columns[1][0],
                },
            ],
        };
        assert!(row_matches_table_predicates(title, 0, &qt));
        // A row with a different year must fail the range.
        let other = (0..title.num_rows())
            .find(|&r| title.columns[1][r] != title.columns[1][0])
            .unwrap();
        let matches = row_matches_table_predicates(title, other, &qt);
        assert!(!matches || title.columns[0][other] == title.columns[0][0]);
    }

    #[test]
    fn binned_evaluation_is_a_superset_of_exact() {
        // Binning can only add rows (bins overlap the range boundary), never drop rows
        // that match exactly.
        let db = db();
        let title = db.table(TableId::Title);
        let qt = QueryTable {
            table: TableId::Title,
            predicates: vec![QueryPredicate::Range {
                column: 1,
                lo: 1950,
                hi: 1983,
            }],
        };
        for row in 0..title.num_rows() {
            if row_matches_table_predicates(title, row, &qt) {
                assert!(
                    row_matches_table_predicates_binned(title, row, &qt),
                    "binned evaluation dropped an exactly-matching row"
                );
            }
        }
        let exact = (0..title.num_rows())
            .filter(|&r| row_matches_table_predicates(title, r, &qt))
            .count();
        let binned = (0..title.num_rows())
            .filter(|&r| row_matches_table_predicates_binned(title, r, &qt))
            .count();
        assert!(binned >= exact);
    }

    #[test]
    fn ccf_predicate_translation_covers_all_shapes() {
        let qt = QueryTable {
            table: TableId::Title,
            predicates: vec![
                QueryPredicate::Eq {
                    column: 0,
                    value: 3,
                },
                QueryPredicate::Range {
                    column: 1,
                    lo: 1990,
                    hi: 2005,
                },
            ],
        };
        let pred = ccf_predicate_for(&qt);
        assert_eq!(pred.num_attrs(), 2);
        assert_eq!(pred.conditions()[0], ColumnPredicate::Eq(3));
        match &pred.conditions()[1] {
            ColumnPredicate::InList(bins) => {
                let binning = production_year_binning();
                for year in 1990..=2005u64 {
                    assert!(bins.contains(&binning.bin_of(year)));
                }
            }
            other => panic!("expected bin in-list, got {other:?}"),
        }
        // A table occurrence without predicates translates to an unconstrained
        // predicate (key-only behaviour).
        let bare = QueryTable {
            table: TableId::CastInfo,
            predicates: vec![],
        };
        assert!(ccf_predicate_for(&bare).is_unconstrained());
    }

    #[test]
    fn malformed_predicates_become_typed_errors_not_panics() {
        let db = db();
        let title = db.table(TableId::Title);
        // title has 2 predicate columns; column 9 is malformed client input.
        let bad_eq = QueryPredicate::Eq {
            column: 9,
            value: 1,
        };
        let err = try_row_matches_predicate(title, 0, &bad_eq).unwrap_err();
        assert_eq!(
            err,
            BridgeError::ColumnOutOfRange {
                table: TableId::Title,
                column: 9,
                num_columns: 2
            }
        );
        assert!(err.to_string().contains("column 9"));

        let bad_qt = QueryTable {
            table: TableId::Title,
            predicates: vec![QueryPredicate::Range {
                column: 7,
                lo: 0,
                hi: 10,
            }],
        };
        assert!(try_ccf_predicate_for(&bad_qt).is_err());
        assert!(try_row_matches_table_predicates(title, 0, &bad_qt).is_err());
        assert!(try_row_matches_table_predicates_binned(title, 0, &bad_qt).is_err());

        // Row past the end of the table is also a value, not a panic.
        let ok_qt = QueryTable {
            table: TableId::Title,
            predicates: vec![QueryPredicate::Eq {
                column: 0,
                value: 1,
            }],
        };
        let err = try_row_matches_table_predicates(title, usize::MAX, &ok_qt).unwrap_err();
        assert!(matches!(err, BridgeError::RowOutOfRange { .. }));
        // ... even with an empty predicate list, which is trivially true only for
        // rows that exist.
        let empty_qt = QueryTable {
            table: TableId::Title,
            predicates: vec![],
        };
        assert!(matches!(
            try_row_matches_table_predicates(title, usize::MAX, &empty_qt),
            Err(BridgeError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            try_row_matches_table_predicates_binned(title, usize::MAX, &empty_qt),
            Err(BridgeError::RowOutOfRange { .. })
        ));
        assert_eq!(
            try_row_matches_table_predicates(title, 0, &empty_qt),
            Ok(true)
        );

        // Well-formed predicates agree with the infallible wrappers.
        for row in 0..20 {
            assert_eq!(
                try_row_matches_table_predicates(title, row, &ok_qt).unwrap(),
                row_matches_table_predicates(title, row, &ok_qt)
            );
        }
    }

    #[test]
    fn bridge_errors_fold_into_the_workspace_error() {
        use ccf_core::CcfError;
        fn serve() -> Result<Predicate, CcfError> {
            let bad = QueryTable {
                table: TableId::Title,
                predicates: vec![QueryPredicate::Eq {
                    column: 9,
                    value: 1,
                }],
            };
            Ok(try_ccf_predicate_for(&bad)?)
        }
        match serve() {
            Err(CcfError::Bridge(msg)) => assert!(msg.contains("column 9")),
            other => panic!("expected a bridge error, got {other:?}"),
        }
    }

    #[test]
    fn workload_predicates_translate_without_panicking() {
        let db = db();
        let wl = JobLightWorkload::generate(&db, 1);
        for q in &wl.queries {
            for qt in &q.tables {
                let pred = ccf_predicate_for(qt);
                assert_eq!(pred.num_attrs(), spec_of(qt.table).columns.len());
            }
        }
    }
}
