//! Bridging JOB-light query predicates to raw-row evaluation and CCF predicates.
//!
//! A query predicate on a table is used in two ways:
//!
//! * evaluated *exactly* on the table's raw rows (to compute `M_predicate`, the exact
//!   semijoin baselines, and ground truth for FPR accounting);
//! * translated into a [`ccf_core::Predicate`] over the table's CCF attribute columns,
//!   with `production_year` ranges converted to bin in-lists per §9.1/§10.3 (the CCF
//!   stores the binned year, except that a scan *on* `title` itself evaluates the year
//!   predicate directly and needs no binning).

use ccf_core::predicate::binning::Binning;
use ccf_core::{ColumnPredicate, Predicate};
use ccf_workloads::imdb::{spec_of, SyntheticTable, TableId};
use ccf_workloads::joblight::{QueryPredicate, QueryTable};

/// The binning used for `title.production_year` (16 bins over 1880–2019, §10.3).
pub fn production_year_binning() -> Binning {
    Binning::production_year()
}

/// Index of the `production_year` column within `title`'s predicate columns.
pub const PRODUCTION_YEAR_COLUMN: usize = 1;

/// Whether a table column stores binned values inside the CCF.
pub fn column_is_binned(table: TableId, column: usize) -> bool {
    table == TableId::Title && column == PRODUCTION_YEAR_COLUMN
}

/// The attribute vector a CCF stores for one row of a table: the raw predicate-column
/// values, with `production_year` replaced by its bin id.
pub fn ccf_attrs_for_row(table: &SyntheticTable, row: usize) -> Vec<u64> {
    let binning = production_year_binning();
    table
        .columns
        .iter()
        .enumerate()
        .map(|(ci, col)| {
            if column_is_binned(table.id, ci) {
                binning.bin_of(col[row])
            } else {
                col[row]
            }
        })
        .collect()
}

/// Evaluate a single query predicate against one raw row of a table.
pub fn row_matches_predicate(table: &SyntheticTable, row: usize, pred: &QueryPredicate) -> bool {
    match pred {
        QueryPredicate::Eq { column, value } => table.columns[*column][row] == *value,
        QueryPredicate::Range { column, lo, hi } => {
            let v = table.columns[*column][row];
            v >= *lo && v <= *hi
        }
    }
}

/// Evaluate all of a query-table's predicates against one raw row (conjunction).
pub fn row_matches_table_predicates(table: &SyntheticTable, row: usize, qt: &QueryTable) -> bool {
    debug_assert_eq!(table.id, qt.table);
    qt.predicates
        .iter()
        .all(|p| row_matches_predicate(table, row, p))
}

/// Evaluate a query-table's predicates against one raw row *after binning* range
/// predicates: a row matches if its value falls in a bin that overlaps the range. This
/// is the "Exact Semijoin After Binning" baseline of Figure 7 / §10.6 — the error
/// introduced by binning, with no sketching error on top.
pub fn row_matches_table_predicates_binned(
    table: &SyntheticTable,
    row: usize,
    qt: &QueryTable,
) -> bool {
    debug_assert_eq!(table.id, qt.table);
    let binning = production_year_binning();
    qt.predicates.iter().all(|p| match p {
        QueryPredicate::Eq { .. } => row_matches_predicate(table, row, p),
        QueryPredicate::Range { column, lo, hi } => {
            if column_is_binned(table.id, *column) {
                let bin = binning.bin_of(table.columns[*column][row]);
                match binning.range_to_bins(*lo, *hi) {
                    ColumnPredicate::Any => true,
                    cond => cond.matches_value(bin),
                }
            } else {
                row_matches_predicate(table, row, p)
            }
        }
    })
}

/// Translate a query-table's predicates into a [`Predicate`] over the table's CCF
/// attribute columns (equality stays equality; ranges on binned columns become bin
/// in-lists; unconstrained columns stay unconstrained).
pub fn ccf_predicate_for(qt: &QueryTable) -> Predicate {
    let spec = spec_of(qt.table);
    let binning = production_year_binning();
    let mut conditions = vec![ColumnPredicate::Any; spec.columns.len()];
    for p in &qt.predicates {
        match p {
            QueryPredicate::Eq { column, value } => {
                let literal = if column_is_binned(qt.table, *column) {
                    binning.bin_of(*value)
                } else {
                    *value
                };
                conditions[*column] = ColumnPredicate::Eq(literal);
            }
            QueryPredicate::Range { column, lo, hi } => {
                conditions[*column] = if column_is_binned(qt.table, *column) {
                    binning.range_to_bins(*lo, *hi)
                } else {
                    // Ranges on non-binned columns do not occur in JOB-light, but are
                    // handled by enumerating the (small) value range.
                    ColumnPredicate::InList((*lo..=*hi).collect())
                };
            }
        }
    }
    Predicate::new(conditions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccf_workloads::imdb::SyntheticImdb;
    use ccf_workloads::joblight::JobLightWorkload;

    fn db() -> SyntheticImdb {
        SyntheticImdb::generate(512, 11)
    }

    #[test]
    fn ccf_attrs_bin_the_production_year() {
        let db = db();
        let title = db.table(TableId::Title);
        let binning = production_year_binning();
        for row in 0..50 {
            let attrs = ccf_attrs_for_row(title, row);
            assert_eq!(attrs.len(), 2);
            assert_eq!(attrs[0], title.columns[0][row]);
            assert_eq!(attrs[1], binning.bin_of(title.columns[1][row]));
            assert!(attrs[1] < 16);
        }
        // Non-title tables keep raw values.
        let ci = db.table(TableId::CastInfo);
        for row in 0..50 {
            assert_eq!(ccf_attrs_for_row(ci, row), vec![ci.columns[0][row]]);
        }
    }

    #[test]
    fn raw_predicate_evaluation() {
        let db = db();
        let title = db.table(TableId::Title);
        let qt = QueryTable {
            table: TableId::Title,
            predicates: vec![
                QueryPredicate::Eq {
                    column: 0,
                    value: title.columns[0][0],
                },
                QueryPredicate::Range {
                    column: 1,
                    lo: title.columns[1][0],
                    hi: title.columns[1][0],
                },
            ],
        };
        assert!(row_matches_table_predicates(title, 0, &qt));
        // A row with a different year must fail the range.
        let other = (0..title.num_rows())
            .find(|&r| title.columns[1][r] != title.columns[1][0])
            .unwrap();
        let matches = row_matches_table_predicates(title, other, &qt);
        assert!(!matches || title.columns[0][other] == title.columns[0][0]);
    }

    #[test]
    fn binned_evaluation_is_a_superset_of_exact() {
        // Binning can only add rows (bins overlap the range boundary), never drop rows
        // that match exactly.
        let db = db();
        let title = db.table(TableId::Title);
        let qt = QueryTable {
            table: TableId::Title,
            predicates: vec![QueryPredicate::Range {
                column: 1,
                lo: 1950,
                hi: 1983,
            }],
        };
        for row in 0..title.num_rows() {
            if row_matches_table_predicates(title, row, &qt) {
                assert!(
                    row_matches_table_predicates_binned(title, row, &qt),
                    "binned evaluation dropped an exactly-matching row"
                );
            }
        }
        let exact = (0..title.num_rows())
            .filter(|&r| row_matches_table_predicates(title, r, &qt))
            .count();
        let binned = (0..title.num_rows())
            .filter(|&r| row_matches_table_predicates_binned(title, r, &qt))
            .count();
        assert!(binned >= exact);
    }

    #[test]
    fn ccf_predicate_translation_covers_all_shapes() {
        let qt = QueryTable {
            table: TableId::Title,
            predicates: vec![
                QueryPredicate::Eq {
                    column: 0,
                    value: 3,
                },
                QueryPredicate::Range {
                    column: 1,
                    lo: 1990,
                    hi: 2005,
                },
            ],
        };
        let pred = ccf_predicate_for(&qt);
        assert_eq!(pred.num_attrs(), 2);
        assert_eq!(pred.conditions()[0], ColumnPredicate::Eq(3));
        match &pred.conditions()[1] {
            ColumnPredicate::InList(bins) => {
                let binning = production_year_binning();
                for year in 1990..=2005u64 {
                    assert!(bins.contains(&binning.bin_of(year)));
                }
            }
            other => panic!("expected bin in-list, got {other:?}"),
        }
        // A table occurrence without predicates translates to an unconstrained
        // predicate (key-only behaviour).
        let bare = QueryTable {
            table: TableId::CastInfo,
            predicates: vec![],
        };
        assert!(ccf_predicate_for(&bare).is_unconstrained());
    }

    #[test]
    fn workload_predicates_translate_without_panicking() {
        let db = db();
        let wl = JobLightWorkload::generate(&db, 1);
        for q in &wl.queries {
            for qt in &q.tables {
                let pred = ccf_predicate_for(qt);
                assert_eq!(pred.num_attrs(), spec_of(qt.table).columns.len());
            }
        }
    }
}
