//! Exact semijoin reducers — the "best possible" baselines of the evaluation.
//!
//! "The minimum size output for the scan operator is produced by converting joins of
//! this base table to other tables to semijoins, which only check if the key exists in
//! the other tables after applying predicates." (§10.3)
//!
//! [`predicate_matching_keys`] computes, for one table occurrence in a query, the exact
//! set of join keys that have at least one row satisfying the occurrence's predicates —
//! with either exact or binned range evaluation. [`exact_semijoin_keys`] intersects
//! those sets across all the *other* tables of a query, which is what a base-table scan
//! is reduced by.

use std::collections::HashSet;

use ccf_workloads::imdb::SyntheticImdb;
use ccf_workloads::joblight::{JobLightQuery, QueryTable};

use crate::bridge::{row_matches_table_predicates, row_matches_table_predicates_binned};

/// The set of join keys of `qt.table` that have at least one row satisfying `qt`'s
/// predicates. With `binned = true`, range predicates are evaluated at bin granularity
/// (the §9.1 conversion) instead of exactly.
pub fn predicate_matching_keys(db: &SyntheticImdb, qt: &QueryTable, binned: bool) -> HashSet<u64> {
    let table = db.table(qt.table);
    let mut keys = HashSet::new();
    for row in 0..table.num_rows() {
        let matches = if binned {
            row_matches_table_predicates_binned(table, row, qt)
        } else {
            row_matches_table_predicates(table, row, qt)
        };
        if matches {
            keys.insert(table.join_keys[row]);
        }
    }
    keys
}

/// The exact semijoin reduction set for a base table in a query: join keys that, for
/// *every other* table of the query, appear in that table with its predicates
/// satisfied. A base-table row survives the (exact) semijoin reduction iff its join key
/// is in the returned set.
///
/// Returns `None` when the query has no other tables (nothing to reduce by).
pub fn exact_semijoin_keys(
    db: &SyntheticImdb,
    query: &JobLightQuery,
    base: &QueryTable,
    binned: bool,
) -> Option<HashSet<u64>> {
    let mut acc: Option<HashSet<u64>> = None;
    for other in query.other_tables(base.table) {
        let keys = predicate_matching_keys(db, other, binned);
        acc = Some(match acc {
            None => keys,
            Some(prev) => prev.intersection(&keys).copied().collect(),
        });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccf_workloads::imdb::{SyntheticImdb, TableId};
    use ccf_workloads::joblight::{JobLightWorkload, QueryPredicate};

    fn db() -> SyntheticImdb {
        SyntheticImdb::generate(512, 31)
    }

    #[test]
    fn matching_keys_without_predicates_are_all_table_keys() {
        let db = db();
        let qt = QueryTable {
            table: TableId::MovieKeyword,
            predicates: vec![],
        };
        let keys = predicate_matching_keys(&db, &qt, false);
        assert_eq!(keys.len(), db.table(TableId::MovieKeyword).distinct_keys());
    }

    #[test]
    fn equality_predicates_shrink_the_key_set() {
        let db = db();
        let table = db.table(TableId::CastInfo);
        let value = table.columns[0][0];
        let qt = QueryTable {
            table: TableId::CastInfo,
            predicates: vec![QueryPredicate::Eq { column: 0, value }],
        };
        let with_pred = predicate_matching_keys(&db, &qt, false);
        let without = predicate_matching_keys(
            &db,
            &QueryTable {
                table: TableId::CastInfo,
                predicates: vec![],
            },
            false,
        );
        assert!(!with_pred.is_empty());
        assert!(with_pred.len() < without.len());
        assert!(with_pred.is_subset(&without));
    }

    #[test]
    fn binned_key_sets_contain_exact_key_sets() {
        let db = db();
        let qt = QueryTable {
            table: TableId::Title,
            predicates: vec![QueryPredicate::Range {
                column: 1,
                lo: 1960,
                hi: 1999,
            }],
        };
        let exact = predicate_matching_keys(&db, &qt, false);
        let binned = predicate_matching_keys(&db, &qt, true);
        assert!(exact.is_subset(&binned));
        assert!(binned.len() >= exact.len());
    }

    #[test]
    fn semijoin_intersects_across_other_tables() {
        let db = db();
        let wl = JobLightWorkload::generate(&db, 31);
        // Find a query with at least 3 tables.
        let query = wl
            .queries
            .iter()
            .find(|q| q.tables.len() >= 3)
            .expect("workload contains multi-join queries");
        let base = &query.tables[0];
        let semijoin = exact_semijoin_keys(&db, query, base, false).unwrap();
        // The intersection is a subset of each individual other-table key set.
        for other in query.other_tables(base.table) {
            let keys = predicate_matching_keys(&db, other, false);
            assert!(semijoin.is_subset(&keys));
        }
    }

    #[test]
    fn single_table_query_has_nothing_to_reduce() {
        let db = db();
        let query = JobLightQuery {
            id: 0,
            tables: vec![QueryTable {
                table: TableId::Title,
                predicates: vec![],
            }],
        };
        assert!(exact_semijoin_keys(&db, &query, &query.tables[0], false).is_none());
    }
}
