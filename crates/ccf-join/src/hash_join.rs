//! A simple hash join operator built on the cuckoo hash table substrate.
//!
//! §3 argues that pre-filtering with CCFs shrinks the *build side* of hash joins —
//! "smaller hash tables which do not spill data to disk" — because the filter can be
//! applied on the build side too, not just the probe side. This module provides a
//! minimal hash-join executor so the examples and integration tests can demonstrate the
//! end-to-end effect (build-side row counts and join results with and without CCF
//! pre-filtering), rather than only reporting reduction-factor arithmetic.

use ccf_cuckoo::CuckooHashTable;
use ccf_workloads::imdb::SyntheticTable;

/// The build side of a hash join: join key → row indices of the build table.
#[derive(Debug)]
pub struct BuildSide {
    table: CuckooHashTable<Vec<u32>>,
    rows: usize,
}

impl BuildSide {
    /// Build from the rows of `table` whose indices satisfy `keep`.
    pub fn build<F: Fn(usize) -> bool>(table: &SyntheticTable, keep: F, seed: u64) -> Self {
        let mut ht: CuckooHashTable<Vec<u32>> =
            CuckooHashTable::with_capacity(table.num_rows().max(16), seed);
        let mut rows = 0usize;
        for row in 0..table.num_rows() {
            if !keep(row) {
                continue;
            }
            rows += 1;
            let key = table.join_keys[row];
            // Append to the key's posting list (an absent key is an empty list).
            let mut list = ht.remove(key).unwrap_or_default();
            list.push(row as u32);
            ht.insert(key, list);
        }
        Self { table: ht, rows }
    }

    /// Number of rows kept on the build side.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of distinct join keys on the build side.
    pub fn num_keys(&self) -> usize {
        self.table.len()
    }

    /// Row indices matching a probe key.
    pub fn probe(&self, key: u64) -> &[u32] {
        self.table.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Join the probe table against the build side on `movie_id`, returning the number of
/// output tuples. `keep_probe` filters probe rows (the probe side's own predicates and
/// any pre-filters).
pub fn hash_join_count<F: Fn(usize) -> bool>(
    probe: &SyntheticTable,
    keep_probe: F,
    build: &BuildSide,
) -> usize {
    let mut out = 0usize;
    for row in 0..probe.num_rows() {
        if !keep_probe(row) {
            continue;
        }
        out += build.probe(probe.join_keys[row]).len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccf_workloads::imdb::{SyntheticImdb, TableId};

    fn db() -> SyntheticImdb {
        SyntheticImdb::generate(1024, 51)
    }

    #[test]
    fn build_side_counts_rows_and_keys() {
        let db = db();
        let mc = db.table(TableId::MovieCompanies);
        let build = BuildSide::build(mc, |_| true, 1);
        assert_eq!(build.num_rows(), mc.num_rows());
        assert_eq!(build.num_keys(), mc.distinct_keys());
    }

    #[test]
    fn filtered_build_side_is_smaller() {
        let db = db();
        let mc = db.table(TableId::MovieCompanies);
        let all = BuildSide::build(mc, |_| true, 2);
        let filtered = BuildSide::build(mc, |row| mc.columns[1][row] == 1, 2);
        assert!(filtered.num_rows() < all.num_rows());
        assert!(filtered.num_keys() <= all.num_keys());
    }

    #[test]
    fn join_count_matches_naive_nested_loop_on_a_sample() {
        let db = db();
        let title = db.table(TableId::Title);
        let mk = db.table(TableId::MovieKeyword);
        let build = BuildSide::build(mk, |_| true, 3);
        // Probe only the first 300 title rows to keep the naive comparison cheap.
        let probe_limit = 300.min(title.num_rows());
        let joined = hash_join_count(title, |row| row < probe_limit, &build);
        let mut naive = 0usize;
        for trow in 0..probe_limit {
            let key = title.join_keys[trow];
            naive += mk.join_keys.iter().filter(|&&k| k == key).count();
        }
        assert_eq!(joined, naive);
    }

    #[test]
    fn probing_missing_keys_returns_no_rows() {
        let db = db();
        let mk = db.table(TableId::MovieKeyword);
        let build = BuildSide::build(mk, |_| true, 4);
        assert!(build.probe(u64::MAX).is_empty());
    }
}
