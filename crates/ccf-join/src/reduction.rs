//! Reduction-factor evaluation for the JOB-light experiments (§10.3–10.6).
//!
//! For every (query, base-table) instance the evaluation compares how many base-table
//! rows survive a scan under different reduction strategies:
//!
//! * `m_predicate` — rows matching only the base table's own predicates (the
//!   denominator of every reduction factor);
//! * `m_exact` — rows additionally surviving an *exact* semijoin against every other
//!   table (predicates applied exactly): the best any filter could do;
//! * `m_exact_binned` — the same with range predicates binned (Figure 7's baseline:
//!   how much of the gap is due to binning rather than sketching);
//! * `m_key_filter` — rows surviving pre-built *key-only* cuckoo filters of the other
//!   tables (the state-of-the-art baseline that ignores predicates);
//! * `m_ccf` — rows surviving the other tables' CCFs queried with
//!   (join key, that table's predicates).
//!
//! The reduction factor of a strategy is `m_strategy / m_predicate` (§10.3, eq. 9);
//! 1.0 means no reduction. [`WorkloadSummary`] aggregates instances the way §10.6 does
//! (total surviving rows over total predicate-qualified rows) and computes the CCF's
//! FPR relative to the exact baselines.

use ccf_core::Predicate;
use ccf_workloads::imdb::{SyntheticImdb, TableId};
use ccf_workloads::joblight::{JobLightQuery, JobLightWorkload};

use crate::bridge::{ccf_predicate_for, row_matches_table_predicates};
use crate::filters::FilterBank;
use crate::semijoin::exact_semijoin_keys;

/// A bank of per-table probe-able filters. The reduction pipeline is generic over
/// this, so the same instance accounting runs against the sequential [`FilterBank`]
/// and the sharded bank of [`crate::sharded`] (whose probes fan out over worker
/// threads internally). Both probes must be bit-identical to a per-key loop — the
/// contract the batch APIs guarantee.
pub trait ProbeBank {
    /// Key-only membership probes against `table`'s filter (the predicate-blind
    /// "current state of the art" strategy).
    fn key_probe(&self, table: TableId, keys: &[u64]) -> Vec<bool>;
    /// Predicate-qualified probes against `table`'s CCF.
    fn ccf_probe(&self, table: TableId, pred: &Predicate, keys: &[u64]) -> Vec<bool>;
}

impl ProbeBank for FilterBank {
    fn key_probe(&self, table: TableId, keys: &[u64]) -> Vec<bool> {
        let t = self.table(table);
        t.probes.key_baseline.add(keys.len() as u64);
        t.key_filter.contains_batch(keys)
    }
    fn ccf_probe(&self, table: TableId, pred: &Predicate, keys: &[u64]) -> Vec<bool> {
        self.query_batch(table, pred, keys)
    }
}

/// Per-(query, base-table) instance counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceResult {
    /// The query this instance belongs to.
    pub query_id: usize,
    /// The base table being scanned.
    pub base_table: TableId,
    /// Number of joins in the query.
    pub num_joins: usize,
    /// Rows matching the base table's own predicates.
    pub m_predicate: usize,
    /// Rows surviving the exact semijoin (lower bound on every filter strategy).
    pub m_exact: usize,
    /// Rows surviving the exact semijoin with binned range predicates.
    pub m_exact_binned: usize,
    /// Rows surviving the key-only cuckoo-filter baseline.
    pub m_key_filter: usize,
    /// Rows surviving the CCF strategy.
    pub m_ccf: usize,
}

impl InstanceResult {
    fn rf(m: usize, m_pred: usize) -> f64 {
        if m_pred == 0 {
            0.0
        } else {
            m as f64 / m_pred as f64
        }
    }

    /// Reduction factor of the exact semijoin.
    pub fn rf_exact(&self) -> f64 {
        Self::rf(self.m_exact, self.m_predicate)
    }

    /// Reduction factor of the exact semijoin after binning.
    pub fn rf_exact_binned(&self) -> f64 {
        Self::rf(self.m_exact_binned, self.m_predicate)
    }

    /// Reduction factor of the key-only cuckoo-filter baseline.
    pub fn rf_key_filter(&self) -> f64 {
        Self::rf(self.m_key_filter, self.m_predicate)
    }

    /// Reduction factor of the CCF strategy.
    pub fn rf_ccf(&self) -> f64 {
        Self::rf(self.m_ccf, self.m_predicate)
    }
}

/// Evaluate every (query, base-table) instance of a workload against a filter bank.
pub fn evaluate_workload(
    db: &SyntheticImdb,
    workload: &JobLightWorkload,
    bank: &FilterBank,
) -> Vec<InstanceResult> {
    evaluate_workload_with(db, workload, bank)
}

/// Evaluate every instance of a workload against any [`ProbeBank`] implementation.
pub fn evaluate_workload_with<B: ProbeBank>(
    db: &SyntheticImdb,
    workload: &JobLightWorkload,
    bank: &B,
) -> Vec<InstanceResult> {
    workload
        .queries
        .iter()
        .flat_map(|query| evaluate_query_with(db, query, bank))
        .collect()
}

/// Evaluate the instances of a single query against the sequential filter bank.
pub fn evaluate_query(
    db: &SyntheticImdb,
    query: &JobLightQuery,
    bank: &FilterBank,
) -> Vec<InstanceResult> {
    evaluate_query_with(db, query, bank)
}

/// Evaluate the instances of a single query (one per table occurrence with at least one
/// other table to reduce by) against any [`ProbeBank`].
pub fn evaluate_query_with<B: ProbeBank>(
    db: &SyntheticImdb,
    query: &JobLightQuery,
    bank: &B,
) -> Vec<InstanceResult> {
    let mut out = Vec::new();
    for base in &query.tables {
        if query.tables.len() < 2 {
            continue;
        }
        let table = db.table(base.table);
        let others: Vec<_> = query.other_tables(base.table);
        let other_preds: Vec<_> = others
            .iter()
            .map(|qt| (qt.table, ccf_predicate_for(qt)))
            .collect();

        // `None` only when the query has no other table — excluded by the guard above.
        let (Some(exact_keys), Some(exact_binned_keys)) = (
            exact_semijoin_keys(db, query, base, false),
            exact_semijoin_keys(db, query, base, true),
        ) else {
            continue;
        };

        // Pass 1: evaluate the base table's own predicates and the exact baselines,
        // collecting the qualifying keys for the filter probes.
        let mut m_predicate = 0usize;
        let mut m_exact = 0usize;
        let mut m_exact_binned = 0usize;
        let mut probe_keys: Vec<u64> = Vec::new();

        for row in 0..table.num_rows() {
            if !row_matches_table_predicates(table, row, base) {
                continue;
            }
            m_predicate += 1;
            let key = table.join_keys[row];
            if exact_keys.contains(&key) {
                m_exact += 1;
            }
            if exact_binned_keys.contains(&key) {
                m_exact_binned += 1;
            }
            probe_keys.push(key);
        }

        // Pass 2: batched probes — one filter at a time, keeping only the keys still
        // alive after each filter, so a selective early filter shrinks the work for
        // the rest (the batched analogue of the per-row `.all()` short-circuit). The
        // surviving-key count is bit-identical to probing every filter per row.
        let keep_survivors = |mut keys: Vec<u64>, hits: Vec<bool>| -> Vec<u64> {
            let mut alive = hits.iter().copied();
            keys.retain(|_| alive.next().unwrap_or(false));
            keys
        };
        let mut key_survivors = probe_keys.clone();
        for qt in &others {
            if key_survivors.is_empty() {
                break;
            }
            let hits = bank.key_probe(qt.table, &key_survivors);
            key_survivors = keep_survivors(key_survivors, hits);
        }
        let mut ccf_survivors = probe_keys;
        for (tid, pred) in &other_preds {
            if ccf_survivors.is_empty() {
                break;
            }
            let hits = bank.ccf_probe(*tid, pred, &ccf_survivors);
            ccf_survivors = keep_survivors(ccf_survivors, hits);
        }
        let m_key_filter = key_survivors.len();
        let m_ccf = ccf_survivors.len();

        out.push(InstanceResult {
            query_id: query.id,
            base_table: base.table,
            num_joins: query.num_joins(),
            m_predicate,
            m_exact,
            m_exact_binned,
            m_key_filter,
            m_ccf,
        });
    }
    out
}

/// Aggregate results over all instances, the way §10.6 reports them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSummary {
    /// Number of evaluated instances.
    pub instances: usize,
    /// Aggregate reduction factor of the exact semijoin (best possible).
    pub rf_exact: f64,
    /// Aggregate reduction factor of the exact semijoin after binning.
    pub rf_exact_binned: f64,
    /// Aggregate reduction factor of the key-only cuckoo-filter baseline.
    pub rf_key_filter: f64,
    /// Aggregate reduction factor of the CCF.
    pub rf_ccf: f64,
    /// CCF false-positive rate relative to the exact semijoin: surviving rows that the
    /// exact semijoin rejects, over rows the exact semijoin rejects.
    pub fpr_vs_exact: f64,
    /// CCF false-positive rate relative to the *binned* exact semijoin (the §10.6
    /// number that isolates sketching error from binning error).
    pub fpr_vs_binned: f64,
}

impl WorkloadSummary {
    /// Aggregate a set of instance results.
    pub fn from_instances(results: &[InstanceResult]) -> Self {
        let sum =
            |f: fn(&InstanceResult) -> usize| -> f64 { results.iter().map(|r| f(r) as f64).sum() };
        let m_pred = sum(|r| r.m_predicate).max(1.0);
        let m_exact = sum(|r| r.m_exact);
        let m_exact_binned = sum(|r| r.m_exact_binned);
        let m_key = sum(|r| r.m_key_filter);
        let m_ccf = sum(|r| r.m_ccf);
        let rejected_exact = (m_pred - m_exact).max(1.0);
        let rejected_binned = (m_pred - m_exact_binned).max(1.0);
        Self {
            instances: results.len(),
            rf_exact: m_exact / m_pred,
            rf_exact_binned: m_exact_binned / m_pred,
            rf_key_filter: m_key / m_pred,
            rf_ccf: m_ccf / m_pred,
            fpr_vs_exact: ((m_ccf - m_exact) / rejected_exact).max(0.0),
            fpr_vs_binned: ((m_ccf - m_exact_binned) / rejected_binned).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccf_core::sizing::VariantKind;
    use ccf_core::ConditionalFilter;
    use ccf_workloads::imdb::SyntheticImdb;

    use crate::filters::FilterConfig;

    fn setup(variant: VariantKind) -> (SyntheticImdb, JobLightWorkload, FilterBank) {
        let db = SyntheticImdb::generate(512, 41);
        let wl = JobLightWorkload::generate(&db, 41);
        let bank = FilterBank::build(&db, FilterConfig::large(variant));
        (db, wl, bank)
    }

    fn subset_workload(wl: &JobLightWorkload, n: usize) -> JobLightWorkload {
        JobLightWorkload {
            queries: wl.queries.iter().take(n).cloned().collect(),
        }
    }

    #[test]
    fn invariants_hold_for_every_instance() {
        let (db, wl, bank) = setup(VariantKind::Chained);
        let results = evaluate_workload(&db, &subset_workload(&wl, 12), &bank);
        assert!(!results.is_empty());
        for r in &results {
            // Exact semijoin is the floor; every sketch-based strategy sits between it
            // and the predicate-only count. The CCF never loses a true match.
            assert!(r.m_exact <= r.m_exact_binned, "{r:?}");
            assert!(
                r.m_exact <= r.m_ccf,
                "CCF returned fewer rows than exact: {r:?}"
            );
            assert!(r.m_exact <= r.m_key_filter, "{r:?}");
            assert!(r.m_ccf <= r.m_predicate, "{r:?}");
            assert!(r.m_key_filter <= r.m_predicate, "{r:?}");
            assert!(r.rf_exact() <= 1.0 && r.rf_ccf() <= 1.0);
        }
    }

    #[test]
    fn ccf_beats_key_only_filters_in_aggregate() {
        let (db, wl, bank) = setup(VariantKind::Chained);
        let results = evaluate_workload(&db, &subset_workload(&wl, 15), &bank);
        let summary = WorkloadSummary::from_instances(&results);
        // Figure 6b/6d: CCFs are substantially better than predicate-blind filters.
        assert!(
            summary.rf_ccf < summary.rf_key_filter,
            "CCF RF {} should beat key-only RF {}",
            summary.rf_ccf,
            summary.rf_key_filter
        );
        // And never better than the exact semijoin.
        assert!(summary.rf_ccf >= summary.rf_exact - 1e-9);
    }

    #[test]
    fn all_variants_respect_the_exact_floor() {
        for variant in [VariantKind::Bloom, VariantKind::Mixed] {
            let (db, wl, bank) = setup(variant);
            let results = evaluate_workload(&db, &subset_workload(&wl, 8), &bank);
            for r in &results {
                assert!(r.m_exact <= r.m_ccf, "{variant:?}: {r:?}");
            }
        }
    }

    #[test]
    fn batched_probe_counts_match_a_per_key_reference() {
        // The production path probes filters in batches; this reference re-derives
        // m_key_filter and m_ccf with the straightforward per-row, per-filter loop and
        // must agree exactly.
        let (db, wl, bank) = setup(VariantKind::Chained);
        let results = evaluate_workload(&db, &subset_workload(&wl, 10), &bank);
        for query in &subset_workload(&wl, 10).queries {
            for base in &query.tables {
                if query.tables.len() < 2 {
                    continue;
                }
                let table = db.table(base.table);
                let others: Vec<_> = query.other_tables(base.table);
                let other_preds: Vec<_> = others
                    .iter()
                    .map(|qt| (qt.table, crate::bridge::ccf_predicate_for(qt)))
                    .collect();
                let mut m_key_filter = 0usize;
                let mut m_ccf = 0usize;
                for row in 0..table.num_rows() {
                    if !crate::bridge::row_matches_table_predicates(table, row, base) {
                        continue;
                    }
                    let key = table.join_keys[row];
                    if others
                        .iter()
                        .all(|qt| bank.table(qt.table).key_filter.contains(key))
                    {
                        m_key_filter += 1;
                    }
                    if other_preds
                        .iter()
                        .all(|(tid, pred)| bank.table(*tid).ccf.query(key, pred))
                    {
                        m_ccf += 1;
                    }
                }
                let result = results
                    .iter()
                    .find(|r| r.query_id == query.id && r.base_table == base.table)
                    .expect("instance evaluated");
                assert_eq!(result.m_key_filter, m_key_filter, "{result:?}");
                assert_eq!(result.m_ccf, m_ccf, "{result:?}");
            }
        }
    }

    #[test]
    fn summary_fprs_are_rates() {
        let (db, wl, bank) = setup(VariantKind::Chained);
        let results = evaluate_workload(&db, &subset_workload(&wl, 10), &bank);
        let s = WorkloadSummary::from_instances(&results);
        assert!((0.0..=1.0).contains(&s.fpr_vs_exact));
        assert!((0.0..=1.0).contains(&s.fpr_vs_binned));
        assert!(s.fpr_vs_binned <= s.fpr_vs_exact + 1e-9);
        assert_eq!(s.instances, results.len());
    }
}
