//! Join-processing substrate for the Conditional Cuckoo Filter evaluation.
//!
//! §3 of the paper motivates CCFs with star joins: pre-built filters let predicates on
//! one table be pushed down to scans of every other table in the join graph, shrinking
//! the tuple sets that reach hash tables or the network. §10.3–10.7 quantify this as
//! the *reduction factor* of each scan — the fraction of predicate-qualified rows that
//! survive semijoin reduction against the other tables.
//!
//! This crate implements the machinery those experiments need:
//!
//! * [`bridge`] — translating JOB-light query predicates into raw-row evaluation and
//!   into [`ccf_core::Predicate`]s (with §9.1 binning for the `production_year`
//!   ranges).
//! * [`filters`] — building one pre-computed filter per table: a CCF of any variant
//!   over (movie_id, predicate columns), plus the key-only cuckoo-filter baseline.
//! * [`semijoin`] — exact semijoin reducers (the "Exact Semijoin" and "Exact Semijoin
//!   After Binning" baselines).
//! * [`reduction`] — per-(query, base-table) instance evaluation producing the
//!   reduction factors of Figures 6–9 and the aggregates of §10.6, generic over a
//!   [`reduction::ProbeBank`] of per-table filters.
//! * [`sharded`] — the parallel build + probe path: per-table [`ccf_shard::ShardedCcf`]
//!   banks built and probed with multi-threaded batch operations.
//! * [`hash_join`] — a cuckoo-hash-table-based hash join used by the examples to show
//!   the end-to-end effect (smaller build sides) rather than just the counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod filters;
pub mod hash_join;
pub mod reduction;
pub mod semijoin;
pub mod sharded;

pub use bridge::{
    ccf_predicate_for, row_matches_table_predicates, try_ccf_predicate_for, BridgeError,
};
pub use filters::{FilterBank, FilterConfig};
pub use reduction::{
    evaluate_workload, evaluate_workload_with, InstanceResult, ProbeBank, WorkloadSummary,
};
pub use semijoin::{exact_semijoin_keys, predicate_matching_keys};
pub use sharded::{evaluate_workload_sharded, ShardConfig, ShardedFilterBank};
