//! Sharded build + probe path for JOB-light filter banks.
//!
//! A [`ShardedFilterBank`] is the concurrent counterpart of
//! [`FilterBank`](crate::filters::FilterBank): per table
//! it holds a [`ShardedCcf`] instead of a single filter, so the bank is *built* in
//! parallel (tables fan out over threads, each table's rows absorbed via the sharded
//! batch-insert path) and *probed* in parallel (the [`ProbeBank`] impl routes probe
//! batches through the sharded batch kernels, which fan out over per-shard workers).
//! Shards are sized for their keyspace slice with `auto_grow` enabled, so a skewed
//! table cannot fail the build — a hot shard just doubles under its own lock.
//!
//! Reduction-factor semantics: the key-only strategy probes the same sharded CCF with
//! key-only queries, so `m_key_filter` keeps its "predicate-blind filter" meaning
//! while sharing the CCF's storage (a sharded deployment would not maintain a second
//! bank). The CCF strategy is unchanged. Both probes stay bit-identical to per-key
//! loops, so the instance accounting is exactly as reproducible as the sequential
//! path.

use ccf_core::{CcfParams, DeleteFailure, FilterKey, Predicate};
use ccf_shard::ShardedCcf;
use ccf_workloads::imdb::{SyntheticImdb, SyntheticTable, TableId};
use ccf_workloads::joblight::JobLightWorkload;

use ccf_telemetry::Telemetry;

use crate::bridge::ccf_attrs_for_row;
use crate::filters::{bank_build_timer, FilterConfig, ProbeCounters};
use crate::reduction::{evaluate_workload_with, InstanceResult, ProbeBank};

/// How a [`ShardedFilterBank`] is partitioned and parallelised.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Shards per table filter.
    pub num_shards: usize,
    /// Worker-thread cap for batch operations *within* one table's filter, and for
    /// the cross-table build fan-out.
    pub threads: usize,
}

impl ShardConfig {
    /// A sensible default: shard and thread counts matching the machine's
    /// parallelism, capped at 8.
    pub fn for_machine() -> Self {
        let p = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        Self {
            num_shards: p.max(1),
            threads: p.max(1),
        }
    }
}

/// One table's sharded filter.
#[derive(Debug)]
pub struct ShardedTableFilters {
    /// Which table the filter summarizes.
    pub table: TableId,
    /// The sharded CCF over (movie_id, predicate columns).
    pub ccf: ShardedCcf,
    /// Rows no shard could absorb. With `auto_grow` shards this is zero unless a row
    /// hits the §4.3 duplicate cap, which growth cannot lift.
    pub failed_rows: usize,
    /// Probe counters for this table (disabled unless the bank was built with
    /// [`ShardedFilterBank::build_with_telemetry`]).
    pub(crate) probes: ProbeCounters,
}

/// Sharded filters for every table of the dataset.
#[derive(Debug)]
pub struct ShardedFilterBank {
    /// The filter configuration (variant, fingerprint widths, ...).
    pub config: FilterConfig,
    /// The sharding configuration.
    pub shard_config: ShardConfig,
    /// Per-table filters in [`TableId::ALL`] order.
    pub tables: Vec<ShardedTableFilters>,
}

impl ShardedFilterBank {
    /// Build sharded filters for every table, fanning the per-table builds out over
    /// up to `shard_config.threads` workers (via the shared
    /// [`ccf_shard::fan_out_indexed`] primitive). When the cross-table build is
    /// already parallel, each table's batch inserts run single-threaded — otherwise
    /// the two fan-out levels would oversubscribe the machine with up to `threads²`
    /// workers for no added parallelism.
    pub fn build(db: &SyntheticImdb, config: FilterConfig, shard_config: ShardConfig) -> Self {
        Self::build_with_telemetry(db, config, shard_config, &Telemetry::disabled())
    }

    /// As [`ShardedFilterBank::build`], with telemetry: per-table build timers
    /// (`ccf_join_bank_build_ns{bank="sharded",table=…}`), per-shard filter
    /// instruments (each table's [`ShardedCcf`] attaches under `table` + `shard`
    /// labels), and probe-key counters on the bank's batch probe entry points.
    pub fn build_with_telemetry(
        db: &SyntheticImdb,
        config: FilterConfig,
        shard_config: ShardConfig,
        telemetry: &Telemetry,
    ) -> Self {
        let ids = TableId::ALL;
        let workers = shard_config.threads.clamp(1, ids.len());
        let insert_threads = if workers > 1 { 1 } else { shard_config.threads };
        let mut built = ccf_shard::fan_out_indexed(ids.len(), workers, |t| {
            Some(Self::build_table(
                db.table(ids[t]),
                config,
                shard_config,
                insert_threads,
                telemetry,
            ))
        });
        built.sort_by_key(|(t, _)| *t);
        Self {
            config,
            shard_config,
            tables: built.into_iter().map(|(_, filters)| filters).collect(),
        }
    }

    fn build_table(
        table: &SyntheticTable,
        config: FilterConfig,
        shard_config: ShardConfig,
        insert_threads: usize,
        telemetry: &Telemetry,
    ) -> ShardedTableFilters {
        let labels = [("bank", "sharded"), ("table", table.id.name())];
        let _timer = bank_build_timer(telemetry, &labels);
        // Start from the sequential sizing, give each shard its keyspace slice (the
        // variants round shard bucket counts up to powers of two, so total capacity
        // never shrinks), and let auto_grow absorb routing imbalance.
        let full = config.params_for(table);
        let shard_params = CcfParams {
            num_buckets: full
                .num_buckets
                .div_ceil(shard_config.num_shards)
                .next_power_of_two(),
            ..full
        }
        .with_auto_grow();
        // Insert with `insert_threads` (1 when the cross-table build already fans
        // out), then hand the filter to probing with the full thread budget.
        let mut ccf = ShardedCcf::new(config.variant, shard_params, shard_config.num_shards)
            .with_threads(insert_threads);
        if telemetry.is_enabled() {
            ccf.attach_telemetry(telemetry, &labels);
        }
        let rows: Vec<(u64, Vec<u64>)> = (0..table.num_rows())
            .map(|row| (table.join_keys[row], ccf_attrs_for_row(table, row)))
            .collect();
        let failed_rows = ccf
            .insert_batch(&rows)
            .iter()
            .filter(|o| o.is_err())
            .count();
        ccf.set_threads(shard_config.threads);
        ShardedTableFilters {
            table: table.id,
            ccf,
            failed_rows,
            probes: ProbeCounters::resolve(telemetry, &labels),
        }
    }

    /// The sharded filters for one table. Panics if `id` is not in the bank —
    /// banks are built over a closed table set, so an unknown id is caller error.
    pub fn table(&self, id: TableId) -> &ShardedTableFilters {
        self.tables
            .iter()
            .find(|t| t.table == id)
            .unwrap_or_else(|| panic!("filter bank has no table {id:?}"))
    }

    /// Total serialized size of all sharded CCFs, in bits.
    pub fn total_ccf_bits(&self) -> usize {
        self.tables.iter().map(|t| t.ccf.size_bits()).sum()
    }

    /// Total rows no shard could absorb.
    pub fn total_failed_rows(&self) -> usize {
        self.tables.iter().map(|t| t.failed_rows).sum()
    }

    /// Batched key-only probe of one table's sharded CCF with typed keys (any
    /// [`FilterKey`]).
    pub fn contains_key_batch<K: FilterKey>(&self, id: TableId, keys: &[K]) -> Vec<bool> {
        let t = self.table(id);
        t.probes.contains_key.add(keys.len() as u64);
        t.ccf.contains_key_batch(keys)
    }

    /// Batched predicate probe of one table's sharded CCF with typed keys.
    pub fn query_batch<K: FilterKey>(
        &self,
        id: TableId,
        pred: &Predicate,
        keys: &[K],
    ) -> Vec<bool> {
        let t = self.table(id);
        t.probes.query.add(keys.len() as u64);
        t.ccf.query_batch(keys, pred)
    }

    /// Evict one row from a table's sharded CCF, write-locking only the owning shard
    /// — the maintenance path for rolling datasets probed concurrently (the sharded
    /// bank has no separate key-only baseline to retire; key-only probes share the
    /// CCF's storage). Same result contract as [`ccf_shard::ShardedCcf::delete_row`].
    pub fn evict_row<K: FilterKey>(
        &self,
        id: TableId,
        key: K,
        attrs: &[u64],
    ) -> Result<bool, DeleteFailure> {
        self.table(id).ccf.delete_row(key, attrs)
    }

    /// Evict one copy of a key from a table's sharded CCF (see
    /// [`ShardedFilterBank::evict_row`]).
    pub fn evict_key<K: FilterKey>(&self, id: TableId, key: K) -> Result<bool, DeleteFailure> {
        self.table(id).ccf.delete_key(key)
    }

    /// Batched eviction of rows from one table's sharded CCF: routed per shard and
    /// bit-identical to a sequential [`ShardedFilterBank::evict_row`] loop.
    pub fn evict_row_batch<K, A>(
        &self,
        id: TableId,
        rows: &[(K, A)],
    ) -> Vec<Result<bool, DeleteFailure>>
    where
        K: FilterKey + Sync,
        A: AsRef<[u64]> + Sync,
    {
        self.table(id).ccf.delete_row_batch(rows)
    }
}

impl ProbeBank for ShardedFilterBank {
    fn key_probe(&self, table: TableId, keys: &[u64]) -> Vec<bool> {
        // The sharded bank's key-only strategy shares the CCF's storage (no separate
        // baseline filter), so key probes count as `contains_key`.
        self.contains_key_batch(table, keys)
    }
    fn ccf_probe(&self, table: TableId, pred: &Predicate, keys: &[u64]) -> Vec<bool> {
        self.query_batch(table, pred, keys)
    }
}

/// Evaluate every (query, base-table) instance of a workload against a sharded bank —
/// the parallel counterpart of [`crate::reduction::evaluate_workload`].
pub fn evaluate_workload_sharded(
    db: &SyntheticImdb,
    workload: &JobLightWorkload,
    bank: &ShardedFilterBank,
) -> Vec<InstanceResult> {
    evaluate_workload_with(db, workload, bank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccf_core::sizing::VariantKind;
    use ccf_workloads::imdb::SyntheticImdb;
    use ccf_workloads::joblight::JobLightWorkload;

    fn db() -> SyntheticImdb {
        SyntheticImdb::generate(512, 21)
    }

    fn shard_config(num_shards: usize, threads: usize) -> ShardConfig {
        ShardConfig {
            num_shards,
            threads,
        }
    }

    #[test]
    fn sharded_bank_builds_every_table_without_failures() {
        let db = db();
        let bank = ShardedFilterBank::build(
            &db,
            FilterConfig::small(VariantKind::Chained),
            shard_config(4, 4),
        );
        assert_eq!(bank.tables.len(), 6);
        assert_eq!(
            bank.total_failed_rows(),
            0,
            "auto-grow shards must absorb all rows"
        );
        for t in &bank.tables {
            assert_eq!(t.ccf.num_shards(), 4);
            assert!(t.ccf.occupied_entries() > 0);
        }
    }

    #[test]
    fn sharded_evaluation_is_deterministic_across_thread_counts() {
        let db = db();
        let wl = JobLightWorkload::generate(&db, 41);
        let subset = JobLightWorkload {
            queries: wl.queries.iter().take(8).cloned().collect(),
        };
        let config = FilterConfig::large(VariantKind::Chained);
        let parallel = ShardedFilterBank::build(&db, config, shard_config(4, 4));
        let sequential = ShardedFilterBank::build(&db, config, shard_config(4, 1));
        let a = evaluate_workload_sharded(&db, &subset, &parallel);
        let b = evaluate_workload_sharded(&db, &subset, &sequential);
        assert_eq!(a, b, "thread count must not change any instance count");
    }

    #[test]
    fn sharded_instances_respect_the_exact_floor() {
        let db = db();
        let wl = JobLightWorkload::generate(&db, 41);
        let subset = JobLightWorkload {
            queries: wl.queries.iter().take(10).cloned().collect(),
        };
        let bank = ShardedFilterBank::build(
            &db,
            FilterConfig::large(VariantKind::Chained),
            shard_config(4, 4),
        );
        let results = evaluate_workload_sharded(&db, &subset, &bank);
        assert!(!results.is_empty());
        for r in &results {
            assert!(r.m_exact <= r.m_ccf, "sharded CCF lost a true match: {r:?}");
            assert!(r.m_exact <= r.m_key_filter, "{r:?}");
            assert!(
                r.m_ccf <= r.m_key_filter,
                "predicates can only reduce further: {r:?}"
            );
            assert!(r.m_ccf <= r.m_predicate, "{r:?}");
        }
    }

    #[test]
    fn sharded_eviction_stops_rows_matching_and_is_batch_identical() {
        let db = db();
        let bank = ShardedFilterBank::build(
            &db,
            FilterConfig::large(VariantKind::Chained),
            shard_config(4, 4),
        );
        let table = db.table(TableId::MovieCompanies);
        // Dedupe exact rows (build deduplicated them) and evict the first 40.
        let mut seen = std::collections::HashSet::new();
        let mut victims: Vec<(u64, Vec<u64>)> = Vec::new();
        for row in 0..table.num_rows() {
            let key = table.join_keys[row];
            let attrs = crate::bridge::ccf_attrs_for_row(table, row);
            if seen.insert((key, attrs.clone())) && victims.len() < 40 {
                victims.push((key, attrs));
            }
        }
        let results = bank.evict_row_batch(TableId::MovieCompanies, &victims);
        assert_eq!(results, vec![Ok(true); victims.len()]);
        // Evicting the same rows again reports them gone — exactly what a sequential
        // evict_row loop would say.
        for (key, attrs) in &victims {
            assert_eq!(
                bank.evict_row(TableId::MovieCompanies, *key, attrs),
                Ok(false),
                "row of key {key} evicted twice"
            );
        }
    }

    #[test]
    fn machine_shard_config_is_sane() {
        let c = ShardConfig::for_machine();
        assert!(c.num_shards >= 1 && c.num_shards <= 8);
        assert!(c.threads >= 1 && c.threads <= 8);
    }
}
