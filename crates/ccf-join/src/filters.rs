//! Pre-built filters per table: CCFs and the key-only cuckoo-filter baseline.
//!
//! For each of the six tables the evaluation builds one pre-computed filter keyed on
//! `movie_id` whose attribute columns are the table's predicate columns (Table 2). A
//! [`FilterBank`] holds, per table:
//!
//! * a CCF of the configured variant, sized per §8 from the table's duplication
//!   profile;
//! * the "current state-of-the-art" baseline — a plain cuckoo filter over the table's
//!   distinct join keys, which ignores predicates entirely (Figures 6b/6d).
//!
//! The bank is what a database would precompute and store; queries then combine the
//! relevant filters per scan (see [`crate::reduction`]).

use ccf_core::sizing::{size_for_profile, DuplicationProfile, VariantKind};
use ccf_core::{AnyCcf, CcfParams, ConditionalFilter, DeleteFailure, FilterKey, Predicate};
use ccf_cuckoo::{CuckooFilter, CuckooFilterParams};
use ccf_telemetry::{buckets, Counter, Telemetry};
use ccf_workloads::imdb::{spec_of, SyntheticImdb, SyntheticTable, TableId};

use crate::bridge::ccf_attrs_for_row;

/// Per-table probe counters for a filter bank: keys probed through the bank's batch
/// entry points, split by probe kind. Disabled (free) unless the bank was built with
/// [`FilterBank::build_with_telemetry`].
#[derive(Debug, Default, Clone)]
pub(crate) struct ProbeCounters {
    /// `ccf_join_probe_keys_total{table=…, probe="query"}`: predicate-qualified CCF
    /// probes.
    pub(crate) query: Counter,
    /// `ccf_join_probe_keys_total{table=…, probe="contains_key"}`: key-only CCF
    /// probes.
    pub(crate) contains_key: Counter,
    /// `ccf_join_probe_keys_total{table=…, probe="key_baseline"}`: probes of the
    /// predicate-blind baseline filter (the "current state of the art" strategy).
    pub(crate) key_baseline: Counter,
}

impl ProbeCounters {
    pub(crate) fn resolve(telemetry: &Telemetry, extra: &[(&str, &str)]) -> Self {
        let probe = |kind| {
            let mut labels = extra.to_vec();
            labels.push(("probe", kind));
            telemetry.counter(
                "ccf_join_probe_keys_total",
                "Keys probed through a join filter bank, by probe kind",
                &labels,
            )
        };
        Self {
            query: probe("query"),
            contains_key: probe("contains_key"),
            key_baseline: probe("key_baseline"),
        }
    }
}

/// Register (and start) a bank-build timer for one table. The histogram is the
/// coarse ns latency layout; `extra` carries the `table` label (and `bank` for the
/// sharded counterpart).
pub(crate) fn bank_build_timer(
    telemetry: &Telemetry,
    extra: &[(&str, &str)],
) -> ccf_telemetry::Timer {
    telemetry
        .histogram(
            "ccf_join_bank_build_ns",
            "Wall-clock nanoseconds to build one table's filters",
            &buckets::latency_ns(),
            extra,
        )
        .start_timer()
}

/// Configuration for building a [`FilterBank`].
#[derive(Debug, Clone, Copy)]
pub struct FilterConfig {
    /// Which CCF variant to build.
    pub variant: VariantKind,
    /// Key fingerprint width |κ| (the paper evaluates 7, 8, 12).
    pub fingerprint_bits: u32,
    /// Attribute fingerprint width |α| (4 or 8).
    pub attr_bits: u32,
    /// Bloom attribute sketch bits (Bloom variant only; 4–24 in the paper).
    pub bloom_bits: usize,
    /// Bloom hash functions (2 in the paper's chosen setting).
    pub bloom_hashes: usize,
    /// Maximum duplicates per bucket pair, d.
    pub max_dupes: usize,
    /// Bucket storage backend for the CCFs and the key-only baseline filters.
    pub storage: ccf_cuckoo::StorageKind,
    /// Hash seed.
    pub seed: u64,
}

impl FilterConfig {
    /// The paper's "large" configuration (§10.5): 12-bit fingerprints, 8-bit
    /// attributes, generous Bloom sketches.
    pub fn large(variant: VariantKind) -> Self {
        Self {
            variant,
            fingerprint_bits: 12,
            attr_bits: 8,
            bloom_bits: 24,
            bloom_hashes: 4,
            max_dupes: 3,
            storage: ccf_cuckoo::StorageKind::from_env(),
            seed: 0xCCF,
        }
    }

    /// The paper's "small" configuration (§10.5): 7-bit fingerprints, 4-bit attributes,
    /// 2 Bloom hash functions.
    pub fn small(variant: VariantKind) -> Self {
        Self {
            variant,
            fingerprint_bits: 7,
            attr_bits: 4,
            bloom_bits: 8,
            bloom_hashes: 2,
            max_dupes: 3,
            storage: ccf_cuckoo::StorageKind::from_env(),
            seed: 0xCCF,
        }
    }

    /// The §8-sized parameters for one table's filter (shared with the sharded bank,
    /// which slices the bucket budget over its shards).
    pub(crate) fn params_for(&self, table: &SyntheticTable) -> CcfParams {
        let spec = spec_of(table.id);
        let base = CcfParams {
            fingerprint_bits: self.fingerprint_bits,
            attr_bits: self.attr_bits,
            bloom_bits: self.bloom_bits,
            bloom_hashes: self.bloom_hashes,
            max_dupes: self.max_dupes,
            num_attrs: spec.columns.len(),
            max_chain: None,
            small_value_opt: true,
            storage: self.storage,
            seed: self.seed ^ (table.id as u64) << 8,
            ..CcfParams::default()
        };
        let profile = DuplicationProfile::from_counts(table.distinct_attr_vectors_per_key());
        size_for_profile(self.variant, &profile, base)
    }
}

/// One table's pre-built filters.
#[derive(Debug, Clone)]
pub struct TableFilters {
    /// Which table the filters summarize.
    pub table: TableId,
    /// The conditional cuckoo filter over (movie_id, predicate columns).
    pub ccf: AnyCcf,
    /// The key-only cuckoo filter baseline (predicates discarded).
    pub key_filter: CuckooFilter,
    /// Rows the CCF failed to absorb (kick exhaustion). Zero in a properly sized bank;
    /// reported so experiments can verify sizing.
    pub failed_rows: usize,
    /// Probe counters for this table (disabled unless the bank was built with
    /// [`FilterBank::build_with_telemetry`]).
    pub(crate) probes: ProbeCounters,
}

/// Pre-built filters for every table of the dataset.
#[derive(Debug, Clone)]
pub struct FilterBank {
    /// The configuration the bank was built with.
    pub config: FilterConfig,
    /// Per-table filters in [`TableId::ALL`] order.
    pub tables: Vec<TableFilters>,
}

impl FilterBank {
    /// Build filters for every table of a synthetic IMDB dataset.
    pub fn build(db: &SyntheticImdb, config: FilterConfig) -> Self {
        Self::build_with_telemetry(db, config, &Telemetry::disabled())
    }

    /// As [`FilterBank::build`], with telemetry: each table's build is timed into
    /// `ccf_join_bank_build_ns{table=…}`, the per-table CCF and key-only baseline
    /// attach their own instruments under a `table` label, and the bank's batch probe
    /// entry points count probed keys into `ccf_join_probe_keys_total{table=…,probe=…}`.
    pub fn build_with_telemetry(
        db: &SyntheticImdb,
        config: FilterConfig,
        telemetry: &Telemetry,
    ) -> Self {
        let tables = TableId::ALL
            .iter()
            .map(|&id| Self::build_table(db.table(id), config, telemetry))
            .collect();
        Self { config, tables }
    }

    fn build_table(
        table: &SyntheticTable,
        config: FilterConfig,
        telemetry: &Telemetry,
    ) -> TableFilters {
        let labels = [("table", table.id.name())];
        let _timer = bank_build_timer(telemetry, &labels);
        let params = config.params_for(table);
        let mut ccf = AnyCcf::new(config.variant, params);
        if telemetry.is_enabled() {
            ccf.attach_telemetry(telemetry, &labels);
        }
        let mut failed_rows = 0usize;
        for row in 0..table.num_rows() {
            let attrs = ccf_attrs_for_row(table, row);
            if ccf.insert_row(table.join_keys[row], &attrs).is_err() {
                failed_rows += 1;
            }
        }

        // Key-only baseline: one fingerprint per distinct join key.
        let mut distinct_keys: Vec<u64> = table.join_keys.clone();
        distinct_keys.sort_unstable();
        distinct_keys.dedup();
        let mut key_filter = CuckooFilter::new(
            CuckooFilterParams::for_capacity(
                distinct_keys.len(),
                config.fingerprint_bits,
                config.seed ^ 0xBA5E,
            )
            .with_storage(config.storage),
        );
        if telemetry.is_enabled() {
            key_filter.attach_telemetry(telemetry, &labels);
        }
        for &k in &distinct_keys {
            // Sized for the key count, so failures are not expected; a failure would
            // only make the baseline look *better* (fewer positives), so ignore it.
            let _ = key_filter.insert(k);
        }

        TableFilters {
            table: table.id,
            ccf,
            key_filter,
            failed_rows,
            probes: ProbeCounters::resolve(telemetry, &labels),
        }
    }

    /// The filters for one table. Panics if `id` is not in the bank — banks are
    /// built over a closed table set, so an unknown id is caller error.
    pub fn table(&self, id: TableId) -> &TableFilters {
        self.tables
            .iter()
            .find(|t| t.table == id)
            .unwrap_or_else(|| panic!("filter bank has no table {id:?}"))
    }

    /// The filters for one table, mutably (eviction).
    fn table_mut(&mut self, id: TableId) -> &mut TableFilters {
        self.tables
            .iter_mut()
            .find(|t| t.table == id)
            .unwrap_or_else(|| panic!("filter bank has no table {id:?}"))
    }

    /// Evict one row from a table's filters — the maintenance path for rolling
    /// datasets (a deleted base-table row must stop matching probes, or the bank's
    /// reduction factors drift as the table churns). Deletes the row from the CCF
    /// and, when that removed the key's last copy, retires the key from the key-only
    /// baseline filter too, keeping the two strategies' probe semantics aligned.
    ///
    /// Returns whether a CCF copy was removed. Banks built on the Bloom variant (or a
    /// converted mixed key) refuse with a typed [`DeleteFailure`]; only rows that are
    /// actually in the table should be evicted (the cuckoo deletion caveat).
    pub fn evict_row(
        &mut self,
        id: TableId,
        key: u64,
        attrs: &[u64],
    ) -> Result<bool, DeleteFailure> {
        let t = self.table_mut(id);
        let removed = t.ccf.delete_row(key, attrs)?;
        if removed && !t.ccf.contains_key(key) {
            t.key_filter.delete(key);
        }
        Ok(removed)
    }

    /// Evict one copy of a key from a table's filters, regardless of its attribute
    /// vector (see [`FilterBank::evict_row`] for the semantics and caveats).
    pub fn evict_key(&mut self, id: TableId, key: u64) -> Result<bool, DeleteFailure> {
        let t = self.table_mut(id);
        let removed = t.ccf.delete_key(key)?;
        if removed && !t.ccf.contains_key(key) {
            t.key_filter.delete(key);
        }
        Ok(removed)
    }

    /// Batched key-only probe of one table's CCF with typed keys (any
    /// [`FilterKey`]: join keys arriving as strings, composites, or raw `u64`s).
    pub fn contains_key_batch<K: FilterKey>(&self, id: TableId, keys: &[K]) -> Vec<bool> {
        let t = self.table(id);
        t.probes.contains_key.add(keys.len() as u64);
        t.ccf.contains_key_batch(keys)
    }

    /// Batched predicate probe of one table's CCF with typed keys.
    pub fn query_batch<K: FilterKey>(
        &self,
        id: TableId,
        pred: &Predicate,
        keys: &[K],
    ) -> Vec<bool> {
        let t = self.table(id);
        t.probes.query.add(keys.len() as u64);
        t.ccf.query_batch(keys, pred)
    }

    /// Total serialized size of all CCFs, in bits.
    pub fn total_ccf_bits(&self) -> usize {
        self.tables.iter().map(|t| t.ccf.size_bits()).sum()
    }

    /// Total serialized size of the key-only baseline filters, in bits.
    pub fn total_key_filter_bits(&self) -> usize {
        self.tables.iter().map(|t| t.key_filter.size_bits()).sum()
    }

    /// Total rows any CCF failed to absorb (should be zero for a well-sized bank).
    pub fn total_failed_rows(&self) -> usize {
        self.tables.iter().map(|t| t.failed_rows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccf_core::Predicate;
    use ccf_workloads::imdb::SyntheticImdb;

    fn db() -> SyntheticImdb {
        SyntheticImdb::generate(512, 21)
    }

    #[test]
    fn bank_builds_every_table_without_failures() {
        let db = db();
        for variant in [VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
            let bank = FilterBank::build(&db, FilterConfig::small(variant));
            assert_eq!(bank.tables.len(), 6);
            assert_eq!(
                bank.total_failed_rows(),
                0,
                "{variant:?}: sized bank should absorb every row"
            );
        }
    }

    #[test]
    fn ccf_has_no_false_negatives_on_table_rows() {
        let db = db();
        let bank = FilterBank::build(&db, FilterConfig::large(VariantKind::Chained));
        let table = db.table(TableId::MovieCompanies);
        let filters = bank.table(TableId::MovieCompanies);
        for row in (0..table.num_rows()).step_by(7) {
            let attrs = crate::bridge::ccf_attrs_for_row(table, row);
            let pred = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
            assert!(
                filters.ccf.query(table.join_keys[row], &pred),
                "false negative on movie_companies row {row}"
            );
        }
    }

    #[test]
    fn key_filter_contains_every_join_key() {
        let db = db();
        let bank = FilterBank::build(&db, FilterConfig::small(VariantKind::Bloom));
        let table = db.table(TableId::MovieKeyword);
        let filters = bank.table(TableId::MovieKeyword);
        for &k in table.join_keys.iter().step_by(11) {
            assert!(filters.key_filter.contains(k));
        }
    }

    #[test]
    fn eviction_removes_rows_and_retires_exhausted_keys() {
        let db = db();
        let mut bank = FilterBank::build(&db, FilterConfig::large(VariantKind::Chained));
        let table = db.table(TableId::MovieCompanies);
        // Evict every row of the first few keys; the CCF must stop matching them and
        // the key-only baseline must retire each key with its last copy.
        let mut evicted_keys = std::collections::HashSet::new();
        let mut seen_rows = std::collections::HashSet::new();
        for row in 0..table.num_rows() {
            let key = table.join_keys[row];
            if evicted_keys.len() >= 5 && !evicted_keys.contains(&key) {
                continue;
            }
            evicted_keys.insert(key);
            let attrs = crate::bridge::ccf_attrs_for_row(table, row);
            if !seen_rows.insert((key, attrs.clone())) {
                // Exact duplicate rows were deduplicated at build time: only the
                // first copy occupies an entry, so only it is evictable.
                continue;
            }
            assert_eq!(
                bank.evict_row(TableId::MovieCompanies, key, &attrs),
                Ok(true),
                "row {row} of key {key} not found for eviction"
            );
        }
        let filters = bank.table(TableId::MovieCompanies);
        for &key in &evicted_keys {
            assert!(
                !filters.key_filter.contains(key),
                "baseline kept evicted key {key}"
            );
        }
        // Untouched keys keep both probes working.
        let mut checked = 0;
        for row in 0..table.num_rows() {
            let key = table.join_keys[row];
            if evicted_keys.contains(&key) {
                continue;
            }
            let attrs = crate::bridge::ccf_attrs_for_row(table, row);
            let pred = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
            assert!(filters.ccf.query(key, &pred), "surviving row {row} lost");
            assert!(filters.key_filter.contains(key));
            checked += 1;
            if checked > 50 {
                break;
            }
        }
    }

    #[test]
    fn bloom_banks_refuse_eviction_without_corrupting_state() {
        let db = db();
        let mut bank = FilterBank::build(&db, FilterConfig::small(VariantKind::Bloom));
        let table = db.table(TableId::MovieKeyword);
        let key = table.join_keys[0];
        let attrs = crate::bridge::ccf_attrs_for_row(table, 0);
        assert_eq!(
            bank.evict_row(TableId::MovieKeyword, key, &attrs),
            Err(DeleteFailure::Unsupported)
        );
        assert_eq!(
            bank.evict_key(TableId::MovieKeyword, key),
            Err(DeleteFailure::Unsupported)
        );
        let filters = bank.table(TableId::MovieKeyword);
        assert!(filters.ccf.contains_key(key));
        assert!(filters.key_filter.contains(key));
    }

    #[test]
    fn telemetry_times_builds_and_counts_probes_per_table() {
        use crate::reduction::ProbeBank;

        let db = db();
        let telemetry = ccf_telemetry::Telemetry::enabled();
        let bank = FilterBank::build_with_telemetry(
            &db,
            FilterConfig::small(VariantKind::Chained),
            &telemetry,
        );
        let keys: Vec<u64> = db.table(TableId::MovieCompanies).join_keys[..100].to_vec();
        bank.contains_key_batch(TableId::MovieCompanies, &keys);
        bank.query_batch(TableId::MovieCompanies, &Predicate::any(2), &keys[..40]);
        bank.key_probe(TableId::MovieKeyword, &keys);

        let snap = telemetry.snapshot();
        // One build timing per table.
        for id in TableId::ALL {
            let h = snap
                .histogram("ccf_join_bank_build_ns", &[("table", id.name())])
                .unwrap_or_else(|| panic!("no build timing for {id:?}"));
            assert_eq!(h.count(), 1, "{id:?} built exactly once");
            assert!(h.sum > 0, "{id:?} build took measurable time");
        }
        // Probe-key counters, split by table and probe kind.
        let probe = |table: TableId, kind| {
            snap.counter(
                "ccf_join_probe_keys_total",
                &[("table", table.name()), ("probe", kind)],
            )
        };
        assert_eq!(probe(TableId::MovieCompanies, "contains_key"), Some(100));
        assert_eq!(probe(TableId::MovieCompanies, "query"), Some(40));
        assert_eq!(probe(TableId::MovieKeyword, "key_baseline"), Some(100));
        assert_eq!(probe(TableId::MovieKeyword, "query"), Some(0));
        // The per-table CCFs attached their own instruments under the table label:
        // every row insert was counted somewhere in ccf_inserts_total.
        let total_rows: u64 = db.tables.iter().map(|t| t.num_rows() as u64).sum();
        assert_eq!(
            snap.counter_sum("ccf_inserts_total") + snap.counter_sum("ccf_insert_failures_total"),
            total_rows,
            "bank build must count every row insert exactly once"
        );
        // The key-only baselines attached too (cuckoo_* namespace).
        assert!(snap.counter_sum("cuckoo_inserts_total") > 0);
    }

    #[test]
    fn small_bank_is_smaller_than_large_bank() {
        let db = db();
        let small = FilterBank::build(&db, FilterConfig::small(VariantKind::Chained));
        let large = FilterBank::build(&db, FilterConfig::large(VariantKind::Chained));
        assert!(small.total_ccf_bits() < large.total_ccf_bits());
    }

    #[test]
    fn ccf_is_much_smaller_than_raw_data() {
        // §10.7: the CCFs are an order of magnitude smaller than the raw data / a hash
        // table over it.
        let db = db();
        let bank = FilterBank::build(&db, FilterConfig::small(VariantKind::Bloom));
        let raw_bits: usize = db.tables.iter().map(|t| t.raw_size_bits()).sum();
        assert!(
            bank.total_ccf_bits() * 3 < raw_bits,
            "CCF bank ({} bits) not meaningfully smaller than raw data ({} bits)",
            bank.total_ccf_bits(),
            raw_bits
        );
    }
}
