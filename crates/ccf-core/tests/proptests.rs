//! Property-based tests for the CCF variants: the no-false-negative guarantee under
//! arbitrary workloads, the lemma 1 duplicate cap, predicate-filter consistency, and
//! the range-predicate conversions.

use ccf_core::predicate::binning::Binning;
use ccf_core::predicate::dyadic::DyadicDomain;
use ccf_core::sizing::VariantKind;
use ccf_core::{AnyCcf, CcfParams, ChainedCcf, ColumnPredicate, ConditionalFilter, Predicate};
use proptest::prelude::*;

fn params(seed: u64, num_attrs: usize) -> CcfParams {
    CcfParams {
        num_buckets: 1 << 9,
        entries_per_bucket: 6,
        fingerprint_bits: 12,
        attr_bits: 8,
        num_attrs,
        max_dupes: 3,
        max_chain: None,
        bloom_bits: 16,
        bloom_hashes: 2,
        seed,
        ..CcfParams::default()
    }
}

/// Strategy: a workload of rows with skewed keys (so duplicates are common) and small
/// attribute vectors.
fn rows_strategy(num_attrs: usize) -> impl Strategy<Value = Vec<(u64, Vec<u64>)>> {
    proptest::collection::vec(
        (
            0u64..64,
            proptest::collection::vec(0u64..1000, num_attrs..=num_attrs),
        ),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every variant: a row that was successfully inserted is always found by its own
    /// (key, exact-attributes) query, and its key is always found by a key-only query.
    #[test]
    fn all_variants_have_no_false_negatives(
        seed in any::<u64>(),
        rows in rows_strategy(2),
    ) {
        for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
            let mut filter = AnyCcf::new(kind, params(seed, 2));
            let mut stored = Vec::new();
            for (key, attrs) in &rows {
                match filter.insert_row(*key, attrs) {
                    Ok(outcome) => {
                        // Rows dropped at the chain cap are still covered by the
                        // guarantee, so keep them too.
                        let _ = outcome;
                        stored.push((*key, attrs.clone()));
                    }
                    Err(_) => {
                        // Failed insertions leave the filter unchanged; the row is not
                        // covered by the guarantee.
                    }
                }
            }
            for (key, attrs) in &stored {
                let pred = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
                prop_assert!(
                    filter.query(*key, &pred),
                    "{kind:?}: false negative for key {key} attrs {attrs:?}"
                );
                prop_assert!(filter.contains_key(*key), "{kind:?}: key {key} lost");
            }
        }
    }

    /// The chained variant respects the lemma 1 cap even with a finite chain length,
    /// and queries for dropped rows still return true (theorem 3).
    #[test]
    fn chained_with_finite_lmax_never_lies(
        seed in any::<u64>(),
        lmax in 1usize..4,
        rows in rows_strategy(1),
    ) {
        let mut filter = ChainedCcf::new(CcfParams {
            max_chain: Some(lmax),
            ..params(seed, 1)
        });
        let mut absorbed = Vec::new();
        for (key, attrs) in &rows {
            if filter.insert_row(*key, attrs).is_ok() {
                absorbed.push((*key, attrs.clone()));
            }
        }
        for (key, attrs) in &absorbed {
            let pred = Predicate::any(1).and_eq(0, attrs[0]);
            prop_assert!(filter.query(*key, &pred));
        }
    }

    /// Predicate-only filters derived from the Bloom and chained variants never lose a
    /// key that has a matching row (Algorithm 2 / §6.2 consistency).
    #[test]
    fn predicate_filters_are_consistent_with_direct_queries(
        seed in any::<u64>(),
        rows in rows_strategy(1),
        predicate_value in 0u64..1000,
    ) {
        let pred = Predicate::any(1).and_eq(0, predicate_value);

        let mut bloom = ccf_core::BloomCcf::new(params(seed, 1));
        let mut chained = ChainedCcf::new(params(seed, 1));
        for (key, attrs) in &rows {
            bloom.insert_row(*key, attrs).unwrap();
            chained.insert_row(*key, attrs).unwrap();
        }
        let bloom_derived = bloom.predicate_filter(&pred);
        let chained_derived = chained.predicate_filter(&pred);
        for (key, attrs) in &rows {
            if attrs[0] == predicate_value {
                prop_assert!(bloom_derived.contains(*key), "Bloom derived filter lost key {key}");
                prop_assert!(chained_derived.contains_key(*key), "chained derived filter lost key {key}");
            }
        }
        // The derived filters also agree with (i.e. are no more permissive than would
        // be sound for) the direct query path: any key the direct query accepts must be
        // accepted by the derived filter too.
        for (key, _) in &rows {
            if bloom.query(*key, &pred) {
                prop_assert!(bloom_derived.contains(*key));
            }
            if chained.query(*key, &pred) {
                prop_assert!(chained_derived.contains_key(*key));
            }
        }
    }

    /// Range-to-bin conversion never produces false negatives: every value inside the
    /// range maps to a bin the converted predicate accepts.
    #[test]
    fn binning_conversion_has_no_false_negatives(
        min in 0u64..1000,
        span in 1u64..5000,
        bins in 1usize..64,
        lo_off in 0u64..5000,
        len in 0u64..5000,
    ) {
        let max = min + span;
        let binning = Binning::new(min, max, bins);
        let lo = (min + lo_off).min(max);
        let hi = (lo + len).min(max);
        let converted = binning.range_to_bins(lo, hi);
        for v in lo..=hi {
            let bin = binning.bin_of(v);
            let ok = match &converted {
                ColumnPredicate::Any => true,
                other => other.matches_value(bin),
            };
            prop_assert!(ok, "value {v} in [{lo},{hi}] but bin {bin} rejected");
        }
    }

    /// Dyadic covers are exact: a value shares an interval with the canonical cover of
    /// [lo, hi] iff it lies inside [lo, hi].
    #[test]
    fn dyadic_cover_is_exact(levels in 2u32..10, lo in 0u64..1000, len in 0u64..1000) {
        let d = DyadicDomain::new(levels);
        let size = d.domain_size();
        let lo = lo % size;
        let hi = (lo + len).min(size - 1);
        let cover: std::collections::HashSet<_> = d.cover(lo, hi).into_iter().collect();
        for v in 0..size {
            let hit = d.intervals_of(v).iter().any(|iv| cover.contains(iv));
            prop_assert_eq!(hit, (lo..=hi).contains(&v), "value {}", v);
        }
    }

    /// Occupied-entry accounting: the number of occupied entries never exceeds the
    /// number of successful `Inserted` outcomes, and the load factor is consistent.
    #[test]
    fn entry_accounting_is_consistent(seed in any::<u64>(), rows in rows_strategy(1)) {
        for kind in [VariantKind::Chained, VariantKind::Mixed, VariantKind::Bloom] {
            let mut filter = AnyCcf::new(kind, params(seed, 1));
            let mut inserted_entries = 0usize;
            for (key, attrs) in &rows {
                if let Ok(outcome) = filter.insert_row(*key, attrs) {
                    if outcome.consumed_entry() {
                        inserted_entries += 1;
                    }
                }
            }
            prop_assert_eq!(filter.occupied_entries(), inserted_entries, "{:?}", kind);
            let expected_lf = inserted_entries as f64
                / (filter.params().num_buckets * filter.params().entries_per_bucket) as f64;
            prop_assert!((filter.load_factor() - expected_lf).abs() < 1e-9);
        }
    }
}
