//! Property-based tests for the CCF variants: the no-false-negative guarantee under
//! arbitrary workloads, the lemma 1 duplicate cap, predicate-filter consistency, and
//! the range-predicate conversions.

use ccf_core::predicate::binning::Binning;
use ccf_core::predicate::dyadic::DyadicDomain;
use ccf_core::sizing::VariantKind;
use ccf_core::{AnyCcf, CcfParams, ChainedCcf, ColumnPredicate, ConditionalFilter, Predicate};
use ccf_telemetry::Telemetry;
use proptest::prelude::*;

fn params(seed: u64, num_attrs: usize) -> CcfParams {
    CcfParams {
        num_buckets: 1 << 9,
        entries_per_bucket: 6,
        fingerprint_bits: 12,
        attr_bits: 8,
        num_attrs,
        max_dupes: 3,
        max_chain: None,
        bloom_bits: 16,
        bloom_hashes: 2,
        seed,
        ..CcfParams::default()
    }
}

/// Strategy: a workload of rows with skewed keys (so duplicates are common) and small
/// attribute vectors.
fn rows_strategy(num_attrs: usize) -> impl Strategy<Value = Vec<(u64, Vec<u64>)>> {
    proptest::collection::vec(
        (
            0u64..64,
            proptest::collection::vec(0u64..1000, num_attrs..=num_attrs),
        ),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every variant: a row that was successfully inserted is always found by its own
    /// (key, exact-attributes) query, and its key is always found by a key-only query.
    #[test]
    fn all_variants_have_no_false_negatives(
        seed in any::<u64>(),
        rows in rows_strategy(2),
    ) {
        for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
            let mut filter = AnyCcf::new(kind, params(seed, 2));
            let mut stored = Vec::new();
            for (key, attrs) in &rows {
                match filter.insert_row(*key, attrs) {
                    Ok(outcome) => {
                        // Rows dropped at the chain cap are still covered by the
                        // guarantee, so keep them too.
                        let _ = outcome;
                        stored.push((*key, attrs.clone()));
                    }
                    Err(_) => {
                        // Failed insertions leave the filter unchanged; the row is not
                        // covered by the guarantee.
                    }
                }
            }
            for (key, attrs) in &stored {
                let pred = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
                prop_assert!(
                    filter.query(*key, &pred),
                    "{kind:?}: false negative for key {key} attrs {attrs:?}"
                );
                prop_assert!(filter.contains_key(*key), "{kind:?}: key {key} lost");
            }
        }
    }

    /// The chained variant respects the lemma 1 cap even with a finite chain length,
    /// and queries for dropped rows still return true (theorem 3).
    #[test]
    fn chained_with_finite_lmax_never_lies(
        seed in any::<u64>(),
        lmax in 1usize..4,
        rows in rows_strategy(1),
    ) {
        let mut filter = ChainedCcf::new(CcfParams {
            max_chain: Some(lmax),
            ..params(seed, 1)
        });
        let mut absorbed = Vec::new();
        for (key, attrs) in &rows {
            if filter.insert_row(*key, attrs).is_ok() {
                absorbed.push((*key, attrs.clone()));
            }
        }
        for (key, attrs) in &absorbed {
            let pred = Predicate::any(1).and_eq(0, attrs[0]);
            prop_assert!(filter.query(*key, &pred));
        }
    }

    /// Predicate-only filters derived from the Bloom and chained variants never lose a
    /// key that has a matching row (Algorithm 2 / §6.2 consistency).
    #[test]
    fn predicate_filters_are_consistent_with_direct_queries(
        seed in any::<u64>(),
        rows in rows_strategy(1),
        predicate_value in 0u64..1000,
    ) {
        let pred = Predicate::any(1).and_eq(0, predicate_value);

        let mut bloom = ccf_core::BloomCcf::new(params(seed, 1));
        let mut chained = ChainedCcf::new(params(seed, 1));
        for (key, attrs) in &rows {
            bloom.insert_row(*key, attrs).unwrap();
            chained.insert_row(*key, attrs).unwrap();
        }
        let bloom_derived = bloom.predicate_filter(&pred);
        let chained_derived = chained.predicate_filter(&pred);
        for (key, attrs) in &rows {
            if attrs[0] == predicate_value {
                prop_assert!(bloom_derived.contains(*key), "Bloom derived filter lost key {key}");
                prop_assert!(chained_derived.contains_key(*key), "chained derived filter lost key {key}");
            }
        }
        // The derived filters also agree with (i.e. are no more permissive than would
        // be sound for) the direct query path: any key the direct query accepts must be
        // accepted by the derived filter too.
        for (key, _) in &rows {
            if bloom.query(*key, &pred) {
                prop_assert!(bloom_derived.contains(*key));
            }
            if chained.query(*key, &pred) {
                prop_assert!(chained_derived.contains_key(*key));
            }
        }
    }

    /// Range-to-bin conversion never produces false negatives: every value inside the
    /// range maps to a bin the converted predicate accepts.
    #[test]
    fn binning_conversion_has_no_false_negatives(
        min in 0u64..1000,
        span in 1u64..5000,
        bins in 1usize..64,
        lo_off in 0u64..5000,
        len in 0u64..5000,
    ) {
        let max = min + span;
        let binning = Binning::new(min, max, bins);
        let lo = (min + lo_off).min(max);
        let hi = (lo + len).min(max);
        let converted = binning.range_to_bins(lo, hi);
        for v in lo..=hi {
            let bin = binning.bin_of(v);
            let ok = match &converted {
                ColumnPredicate::Any => true,
                other => other.matches_value(bin),
            };
            prop_assert!(ok, "value {v} in [{lo},{hi}] but bin {bin} rejected");
        }
    }

    /// Dyadic covers are exact: a value shares an interval with the canonical cover of
    /// [lo, hi] iff it lies inside [lo, hi].
    #[test]
    fn dyadic_cover_is_exact(levels in 2u32..10, lo in 0u64..1000, len in 0u64..1000) {
        let d = DyadicDomain::new(levels);
        let size = d.domain_size();
        let lo = lo % size;
        let hi = (lo + len).min(size - 1);
        let cover: std::collections::HashSet<_> = d.cover(lo, hi).into_iter().collect();
        for v in 0..size {
            let hit = d.intervals_of(v).iter().any(|iv| cover.contains(iv));
            prop_assert_eq!(hit, (lo..=hi).contains(&v), "value {}", v);
        }
    }

    /// Rollback: a failed `insert_row` must leave the chained filter byte-identical to
    /// its pre-insert state — same bucket contents (via the snapshot), same `occupied`
    /// and `rows_absorbed` counters — and every previously inserted row must keep its
    /// no-false-negative guarantee afterwards.
    #[test]
    fn chained_kicks_exhausted_rolls_back_byte_identically(
        seed in any::<u64>(),
        rows in proptest::collection::vec(
            (0u64..32, proptest::collection::vec(0u64..1000, 2..=2)),
            1..250,
        ),
    ) {
        // Tiny geometry so kick exhaustion actually happens.
        let mut filter = ChainedCcf::new(CcfParams {
            num_buckets: 4,
            entries_per_bucket: 2,
            max_dupes: 2,
            max_chain: Some(2),
            ..params(seed, 2)
        });
        let mut stored: Vec<(u64, Vec<u64>)> = Vec::new();
        let mut failures = 0usize;
        for (key, attrs) in &rows {
            let before = filter.bucket_snapshot();
            let occupied_before = filter.occupied_entries();
            let absorbed_before = filter.rows_absorbed();
            match filter.insert_row(*key, attrs) {
                Ok(_) => stored.push((*key, attrs.clone())),
                Err(_) => {
                    failures += 1;
                    prop_assert_eq!(
                        filter.bucket_snapshot(),
                        before,
                        "failed insert of ({}, {:?}) mutated the buckets", key, attrs
                    );
                    prop_assert_eq!(filter.occupied_entries(), occupied_before);
                    prop_assert_eq!(filter.rows_absorbed(), absorbed_before);
                }
            }
        }
        // Whether or not failures occurred, no previously inserted row may be lost.
        let _ = failures;
        for (key, attrs) in &stored {
            let pred = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
            prop_assert!(
                filter.query(*key, &pred),
                "row ({}, {:?}) lost its guarantee", key, attrs
            );
        }
    }

    /// With `auto_grow`, the growable variants absorb any workload of unique keys
    /// without failures, and growth (explicit or automatic) never creates a false
    /// negative.
    #[test]
    fn auto_grow_never_fails_or_lies_on_unique_keys(
        seed in any::<u64>(),
        num_keys in 1usize..600,
        extra_doublings in 0u32..2,
    ) {
        for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Mixed] {
            let mut filter = AnyCcf::new(kind, CcfParams {
                num_buckets: 16,
                ..params(seed, 2)
            }.with_auto_grow());
            for key in 0..num_keys as u64 {
                let attrs = [key % 7, key % 11];
                prop_assert!(
                    filter.insert_row(key, &attrs).is_ok(),
                    "{kind:?}: auto-grow insert of {key} failed"
                );
            }
            if let AnyCcf::Chained(f) = &mut filter {
                for _ in 0..extra_doublings { f.grow(); }
            }
            for key in 0..num_keys as u64 {
                let pred = Predicate::any(2).and_eq(0, key % 7).and_eq(1, key % 11);
                prop_assert!(filter.query(key, &pred), "{kind:?}: false negative for {key}");
                prop_assert!(filter.contains_key(key), "{kind:?}: key {key} lost");
            }
        }
    }

    /// Batch queries are bit-identical to per-key loops for every variant, on a mix of
    /// present and absent keys.
    #[test]
    fn batch_queries_match_per_key_loops(
        seed in any::<u64>(),
        rows in rows_strategy(2),
        probe_span in 1u64..200,
    ) {
        for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
            let mut filter = AnyCcf::new(kind, params(seed, 2));
            for (key, attrs) in &rows {
                let _ = filter.insert_row(*key, attrs);
            }
            let probes: Vec<u64> = (0..probe_span).chain(1_000_000..1_000_000 + probe_span).collect();
            let pred = Predicate::any(2).and_eq(0, rows[0].1[0]).and_eq(1, rows[0].1[1]);
            let queried = filter.query_batch(&probes, &pred);
            let contained = filter.contains_key_batch(&probes);
            for (i, &k) in probes.iter().enumerate() {
                prop_assert_eq!(queried[i], filter.query(k, &pred), "{:?} query mismatch at {}", kind, k);
                prop_assert_eq!(contained[i], filter.contains_key(k), "{:?} contains mismatch at {}", kind, k);
            }
        }
    }

    /// Churn: random interleavings of inserts, deletes and growth on every variant.
    ///
    /// The model tracks the exact live row set (rows are constructed attribute-unique
    /// per key, with small exact-stored values, so deletes target exactly one entry):
    ///
    /// * Plain/Chained: every delete of a live row must find it (`Ok(true)`), even
    ///   right after a doubling relocated its entry;
    /// * Mixed: deletes either succeed or refuse with `ConvertedGroup` (the row then
    ///   stays live); `Ok(false)` for a live row is a bug;
    /// * Bloom: every delete is the typed `Unsupported` error and mutates nothing;
    /// * no false negatives for rows still live at the end, and `occupied_entries`
    ///   tracks the outcome arithmetic exactly (so it can never underflow).
    ///
    /// Chained cases where two keys collide on a full 16-bit fingerprint are skipped:
    /// colliding keys entangle each other's chain counts, which is the documented
    /// deletion caveat, not a bug this test should trip over. (No parallel-speedup
    /// assertions here — this is a single-threaded property, so there is nothing to
    /// gate on `available_parallelism`.)
    #[test]
    fn churn_interleaved_insert_delete_grow_never_lies(
        seed in any::<u64>(),
        actions in proptest::collection::vec((0u8..10, 0u64..12, any::<u64>()), 1..300),
    ) {
        use ccf_core::DeleteFailure;
        let params = CcfParams {
            num_buckets: 1 << 9,
            entries_per_bucket: 6,
            fingerprint_bits: 16,
            attr_bits: 8,
            num_attrs: 3,
            max_dupes: 3,
            max_chain: None,
            seed,
            ..CcfParams::default()
        }
        .with_auto_grow();
        let chained_fps_collide = {
            let probe = ChainedCcf::new(params);
            let fps: Vec<u16> = (0..12u64).map(|k| probe.fingerprint_of(k)).collect();
            let mut sorted = fps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.len() != fps.len()
        };
        for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
            if kind == VariantKind::Chained && chained_fps_collide {
                continue;
            }
            let mut filter = AnyCcf::new(kind, params);
            let mut live: Vec<(u64, Vec<u64>)> = Vec::new();
            let mut per_key_seq = std::collections::HashMap::<u64, u64>::new();
            let mut expected_occupied = 0usize;
            for &(sel, key, x) in &actions {
                match sel {
                    0..=5 => {
                        // Insert a fresh, attribute-unique row for the key (values
                        // < 2^attr_bits are stored exactly).
                        let seq = per_key_seq.entry(key).or_insert(0);
                        let attrs = vec![key % 251, *seq % 251, (*seq / 251) % 251];
                        *seq += 1;
                        match filter.insert_row(key, &attrs) {
                            Ok(outcome) => {
                                if outcome.consumed_entry() {
                                    expected_occupied += 1;
                                }
                                live.push((key, attrs));
                            }
                            Err(_) => {
                                // Plain pair saturation: row is simply not stored.
                            }
                        }
                    }
                    6..=8 => {
                        if live.is_empty() {
                            continue;
                        }
                        let idx = (x as usize).wrapping_add(key as usize * 7) % live.len();
                        let (k, attrs) = live.remove(idx);
                        match (kind, filter.delete_row(k, &attrs)) {
                            (VariantKind::Bloom, Err(DeleteFailure::Unsupported)) => {
                                live.push((k, attrs)); // refused: nothing changed
                            }
                            (VariantKind::Mixed, Err(DeleteFailure::ConvertedGroup)) => {
                                live.push((k, attrs)); // converted: stays live
                            }
                            (VariantKind::Plain | VariantKind::Chained | VariantKind::Mixed, Ok(true)) => {
                                expected_occupied -= 1;
                            }
                            (_, res) => {
                                panic!("{kind:?}: delete of live ({k}, {attrs:?}) -> {res:?}")
                            }
                        }
                    }
                    _ => {
                        // Explicit doubling (bounded, so a grow-heavy action stream
                        // cannot blow the geometry up past a few doublings).
                        if filter.params().num_buckets < (1 << 12) {
                            match &mut filter {
                                AnyCcf::Plain(f) => f.grow(),
                                AnyCcf::Chained(f) => f.grow(),
                                AnyCcf::Mixed(f) => f.grow(),
                                AnyCcf::Bloom(_) => {}
                            }
                        }
                    }
                }
                prop_assert_eq!(
                    filter.occupied_entries(),
                    expected_occupied,
                    "{:?}: occupancy drifted from the outcome arithmetic",
                    kind
                );
            }
            for (k, attrs) in &live {
                let pred = Predicate::any(3)
                    .and_eq(0, attrs[0])
                    .and_eq(1, attrs[1])
                    .and_eq(2, attrs[2]);
                prop_assert!(
                    filter.query(*k, &pred),
                    "{:?}: live row ({}, {:?}) lost after churn",
                    kind, k, attrs
                );
                prop_assert!(filter.contains_key(*k), "{:?}: key {} lost", kind, k);
            }
        }
    }

    /// Occupied-entry accounting: the number of occupied entries never exceeds the
    /// number of successful `Inserted` outcomes, and the load factor is consistent.
    #[test]
    fn entry_accounting_is_consistent(seed in any::<u64>(), rows in rows_strategy(1)) {
        for kind in [VariantKind::Chained, VariantKind::Mixed, VariantKind::Bloom] {
            let mut filter = AnyCcf::new(kind, params(seed, 1));
            let mut inserted_entries = 0usize;
            for (key, attrs) in &rows {
                if let Ok(outcome) = filter.insert_row(*key, attrs) {
                    if outcome.consumed_entry() {
                        inserted_entries += 1;
                    }
                }
            }
            prop_assert_eq!(filter.occupied_entries(), inserted_entries, "{:?}", kind);
            let expected_lf = inserted_entries as f64
                / (filter.params().num_buckets * filter.params().entries_per_bucket) as f64;
            prop_assert!((filter.load_factor() - expected_lf).abs() < 1e-9);
        }
    }
}

/// One step of an interleaved telemetry workload: `(selector, key, attrs, value)`.
/// The selector picks the op kind (skewed toward inserts so the filter fills and
/// grows); keys repeat so deletes and queries hit; attribute vectors of length 1..=3
/// against a 2-attr filter make arity-mismatch failures part of the mix.
type TelemetryOp = (u8, u64, Vec<u64>, u64);

/// Event tallies maintained op-by-op from the filter's *return values* — the ground
/// truth the telemetry counters must match exactly.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct EventTally {
    inserts: u64,
    insert_failures: u64,
    deletes: u64,
    delete_failures: u64,
    queries: u64,
    query_hits: u64,
}

fn telemetry_ops_strategy() -> impl Strategy<Value = Vec<TelemetryOp>> {
    proptest::collection::vec(
        (
            0u8..10,
            0u64..64,
            proptest::collection::vec(0u64..6, 1..=3),
            0u64..6,
        ),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Telemetry counters are an exact event log, not an approximation: under an
    /// arbitrary interleaving of inserts, deletes, and queries on an auto-growing
    /// filter, per-family counter sums never drift from tallies maintained op-by-op
    /// from the return values, grows match the observed capacity doublings, a
    /// mid-run snapshot diff accounts for exactly the second half, and key-only
    /// membership probes move no predicate-query counter.
    #[test]
    fn telemetry_counters_never_drift_from_ground_truth(
        seed in any::<u64>(),
        ops in telemetry_ops_strategy(),
    ) {
        for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Bloom, VariantKind::Mixed] {
            let telemetry = Telemetry::enabled();
            let mut filter = AnyCcf::builder()
                .variant(kind)
                .params(CcfParams {
                    // Small enough that the workload forces capacity doublings.
                    num_buckets: 1 << 4,
                    entries_per_bucket: 4,
                    fingerprint_bits: 12,
                    attr_bits: 8,
                    num_attrs: 2,
                    max_dupes: 3,
                    bloom_bits: 16,
                    bloom_hashes: 2,
                    seed,
                    ..CcfParams::default()
                }.with_auto_grow())
                .telemetry(&telemetry)
                .build()
                .expect("params are valid");
            let initial_buckets = filter.occupancy().num_buckets;

            let mut tally = EventTally::default();
            let mut midpoint: Option<(ccf_telemetry::Snapshot, EventTally)> = None;
            for (i, (selector, key, attrs, value)) in ops.iter().enumerate() {
                if i == ops.len() / 2 {
                    midpoint = Some((telemetry.snapshot(), tally));
                }
                match selector {
                    0..=3 => match filter.insert_row(*key, attrs) {
                        Ok(_) => tally.inserts += 1,
                        Err(_) => tally.insert_failures += 1,
                    },
                    4..=5 => match filter.delete_row(*key, attrs) {
                        Ok(_) => tally.deletes += 1,
                        Err(_) => tally.delete_failures += 1,
                    },
                    6 => match filter.delete_key(*key) {
                        Ok(_) => tally.deletes += 1,
                        Err(_) => tally.delete_failures += 1,
                    },
                    7..=8 => {
                        let pred = Predicate::any(2).and_eq(0, *value);
                        tally.queries += 1;
                        tally.query_hits += filter.query(*key, &pred) as u64;
                    }
                    // Key-only probes are deliberately uninstrumented; the final
                    // assertions prove they move no counter.
                    _ => {
                        let _ = filter.contains_key(*key);
                    }
                }
            }

            let snap = telemetry.snapshot();
            let observed = EventTally {
                inserts: snap.counter_sum("ccf_inserts_total"),
                insert_failures: snap.counter_sum("ccf_insert_failures_total"),
                deletes: snap.counter_sum("ccf_deletes_total"),
                delete_failures: snap.counter_sum("ccf_delete_failures_total"),
                queries: snap.counter_sum("ccf_queries_total"),
                query_hits: snap.counter_sum("ccf_query_hits_total"),
            };
            prop_assert_eq!(observed, tally, "{:?}: counters drifted from ground truth", kind);

            // Each grow doubles the bucket count, so the counter must equal the
            // doublings observable from the geometry.
            let ratio = filter.occupancy().num_buckets / initial_buckets;
            prop_assert!(ratio.is_power_of_two(), "{:?}: growth is always a doubling", kind);
            prop_assert_eq!(
                snap.counter_sum("ccf_grows_total"),
                u64::from(ratio.trailing_zeros()),
                "{:?}: grow counter drifted from the observed doublings", kind
            );

            // Snapshot/diff semantics: the diff against the midpoint accounts for
            // exactly the second half of the workload.
            if let Some((mid_snap, mid_tally)) = midpoint {
                let diff = snap.diff(&mid_snap);
                let second_half = EventTally {
                    inserts: tally.inserts - mid_tally.inserts,
                    insert_failures: tally.insert_failures - mid_tally.insert_failures,
                    deletes: tally.deletes - mid_tally.deletes,
                    delete_failures: tally.delete_failures - mid_tally.delete_failures,
                    queries: tally.queries - mid_tally.queries,
                    query_hits: tally.query_hits - mid_tally.query_hits,
                };
                let diffed = EventTally {
                    inserts: diff.counter_sum("ccf_inserts_total"),
                    insert_failures: diff.counter_sum("ccf_insert_failures_total"),
                    deletes: diff.counter_sum("ccf_deletes_total"),
                    delete_failures: diff.counter_sum("ccf_delete_failures_total"),
                    queries: diff.counter_sum("ccf_queries_total"),
                    query_hits: diff.counter_sum("ccf_query_hits_total"),
                };
                prop_assert_eq!(
                    diffed, second_half,
                    "{:?}: snapshot diff drifted from the second-half tallies", kind
                );
            }
        }
    }
}
