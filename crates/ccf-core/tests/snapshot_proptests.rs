//! Snapshot-format properties: round-trip bit-identity across all four variants ×
//! both storage backends (the `params.storage` leg that derived key-only filters
//! inherit), and typed rejection of every corruption class — truncation, bit flips,
//! wrong magic, future version, unknown variant tag.

use ccf_core::sizing::VariantKind;
use ccf_core::{AnyCcf, CcfParams, ConditionalFilter, Predicate};
use ccf_cuckoo::snapshot::fnv64;
use ccf_cuckoo::{SnapshotError, StorageKind};
use proptest::prelude::*;

const VARIANTS: [VariantKind; 4] = [
    VariantKind::Plain,
    VariantKind::Chained,
    VariantKind::Bloom,
    VariantKind::Mixed,
];

fn params(seed: u64, storage: StorageKind) -> CcfParams {
    CcfParams {
        // Small enough that skewed workloads trigger capacity-doubling growth, so
        // the round trip covers grown geometries too.
        num_buckets: 1 << 5,
        entries_per_bucket: 6,
        fingerprint_bits: 12,
        attr_bits: 8,
        num_attrs: 2,
        max_dupes: 3,
        max_chain: Some(4),
        bloom_bits: 16,
        bloom_hashes: 2,
        auto_grow: true,
        seed,
        storage,
        ..CcfParams::default()
    }
}

fn rows_strategy() -> impl Strategy<Value = Vec<(u64, Vec<u64>)>> {
    proptest::collection::vec(
        (0u64..64, proptest::collection::vec(0u64..1000, 2..=2)),
        1..300,
    )
}

/// Rewrite the trailing checksum after deliberately mutating header fields, so the
/// decoder reaches the magic/version/tag checks instead of reporting corruption.
fn reseal(mut img: Vec<u8>) -> Vec<u8> {
    let body = img.len() - 8;
    let c = fnv64(&img[..body]);
    img[body..].copy_from_slice(&c.to_le_bytes());
    img
}

fn sample_image() -> Vec<u8> {
    let mut filter = AnyCcf::try_new(VariantKind::Mixed, params(7, StorageKind::Packed)).unwrap();
    for k in 0..200u64 {
        let _ = filter.insert_row(k % 40, &[k % 7, k % 11]);
    }
    filter.to_snapshot_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every variant × both backends: serialize, reload, and the reloaded filter is
    /// bit-identical — same image bytes, same query answers, and (the strong form)
    /// the same behaviour under *continued mutation*, because the RNG stream and
    /// growth geometry resume exactly where the original left off.
    #[test]
    fn round_trip_is_bit_identical_for_all_variants_and_backends(
        seed in any::<u64>(),
        rows in rows_strategy(),
    ) {
        for storage in [StorageKind::Packed, StorageKind::Semisort] {
            for kind in VARIANTS {
                let mut filter = AnyCcf::try_new(kind, params(seed, storage)).unwrap();
                for (key, attrs) in &rows {
                    let _ = filter.insert_row(*key, attrs);
                }
                let img = filter.to_snapshot_bytes();
                let mut reloaded = AnyCcf::from_snapshot_bytes(&img)
                    .unwrap_or_else(|e| panic!("{kind:?}/{storage}: reload failed: {e}"));
                prop_assert_eq!(
                    &img,
                    &reloaded.to_snapshot_bytes(),
                    "{:?}/{}: reloaded image differs",
                    kind,
                    storage
                );
                for (key, attrs) in &rows {
                    let pred = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
                    prop_assert_eq!(filter.query(*key, &pred), reloaded.query(*key, &pred));
                    prop_assert_eq!(filter.contains_key(*key), reloaded.contains_key(*key));
                }
                for key in 5_000..5_200u64 {
                    let attrs = [key % 7, key % 11];
                    prop_assert_eq!(
                        filter.insert_row(key, &attrs),
                        reloaded.insert_row(key, &attrs),
                        "{:?}/{}: post-reload insert diverged at {}",
                        kind,
                        storage,
                        key
                    );
                }
                prop_assert_eq!(
                    &filter.to_snapshot_bytes(),
                    &reloaded.to_snapshot_bytes(),
                    "{:?}/{}: states diverged after post-reload mutation",
                    kind,
                    storage
                );
            }
        }
    }

    /// Any single bit flip anywhere in the image is rejected (checksum first, typed
    /// structural error at worst) — never a panic, never a silently wrong filter.
    #[test]
    fn any_bit_flip_is_rejected(byte_frac in 0.0f64..1.0, bit in 0usize..8) {
        let img = sample_image();
        let byte = ((img.len() - 1) as f64 * byte_frac) as usize;
        let mut bad = img;
        bad[byte] ^= 1 << bit;
        prop_assert!(
            AnyCcf::from_snapshot_bytes(&bad).is_err(),
            "flip at byte {} bit {} went undetected",
            byte,
            bit
        );
    }

    /// Any truncation point yields a typed error.
    #[test]
    fn any_truncation_is_rejected(len_frac in 0.0f64..1.0) {
        let img = sample_image();
        let len = ((img.len() - 1) as f64 * len_frac) as usize;
        prop_assert!(AnyCcf::from_snapshot_bytes(&img[..len]).is_err());
    }
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let mut img = sample_image();
    img[0] ^= 0xFF;
    let img = reseal(img);
    match AnyCcf::from_snapshot_bytes(&img) {
        Err(SnapshotError::WrongMagic { expected, .. }) => {
            assert_eq!(expected, ccf_core::SNAPSHOT_MAGIC);
        }
        other => panic!("expected WrongMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_a_typed_error() {
    let mut img = sample_image();
    img[4] = ccf_core::SNAPSHOT_VERSION + 1;
    let img = reseal(img);
    match AnyCcf::from_snapshot_bytes(&img) {
        Err(SnapshotError::UnsupportedVersion { supported, got }) => {
            assert_eq!(supported, ccf_core::SNAPSHOT_VERSION);
            assert_eq!(got, ccf_core::SNAPSHOT_VERSION + 1);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn unknown_variant_tag_is_a_typed_error() {
    let mut img = sample_image();
    img[5] = 9; // variant tag byte, straight after the 5-byte envelope header
    let img = reseal(img);
    assert!(matches!(
        AnyCcf::from_snapshot_bytes(&img),
        Err(SnapshotError::Invalid(_))
    ));
}

#[test]
fn unsealed_checksum_mutation_reports_checksum_mismatch() {
    let mut img = sample_image();
    let mid = img.len() / 2;
    img[mid] ^= 0x01;
    assert!(matches!(
        AnyCcf::from_snapshot_bytes(&img),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
}
