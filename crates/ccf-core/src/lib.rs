//! Conditional Cuckoo Filters (CCF) — approximate set membership with predicates.
//!
//! This crate is a from-scratch Rust implementation of the data structure introduced by
//! Ting & Cole, *"Conditional Cuckoo Filters"* (arXiv:2005.02537, SIGMOD 2021 context):
//! a cuckoo-filter-like sketch whose entries carry, besides a key fingerprint κ, a
//! small sketch of the row's attribute values — so that membership can be tested not
//! just for a key but for a key *and* a conjunction of equality predicates, and so that
//! a pre-computed sketch can be specialised into a key filter for any given predicate
//! (predicate push-down across a join graph, §3).
//!
//! # Variants
//!
//! | Variant | Attribute sketch | Duplicate handling | Deletion | Type |
//! |---------|------------------|--------------------|----------|------|
//! | Plain   | fingerprint vector | none (2b cap, §4.3) | yes | [`PlainCcf`] |
//! | Chained | fingerprint vector | chaining (§6.2)     | yes (chain-safe, tail-first) | [`ChainedCcf`] |
//! | Bloom   | per-entry Bloom (§5.2) | merge into one entry | no ([`DeleteFailure::Unsupported`]) | [`BloomCcf`] |
//! | Mixed   | fingerprint vector → Bloom conversion (§6.1) | conversion at d duplicates | vector entries only ([`DeleteFailure::ConvertedGroup`] after conversion) | [`MixedCcf`] |
//!
//! All variants guarantee **no false negatives** for rows that were inserted (and, for
//! the chained variant, even for rows dropped at the chain cap — Theorem 3). Deletion
//! (`delete_row`/`delete_key` and their batch forms) keeps that guarantee for every
//! row that remains stored, and — as with all cuckoo filters — requires that only rows
//! known to be present are deleted.
//!
//! # Quick start
//!
//! Construction goes through the fallible [`CcfBuilder`] facade, and keys are *typed*
//! ([`FilterKey`]): `u64`, `&str`/`String`, byte slices and `(u64, u64)` composites
//! all work, with `u64` keys taking the classic hot path bit-identically.
//!
//! ```
//! use ccf_core::{AnyCcf, CcfError, ConditionalFilter, VariantKind};
//!
//! // Rows of (movie_title, [role_id, company_type_id]).
//! let rows = [("Heat", [4u64, 2u64]), ("Heat", [4, 1]), ("Ronin", [1, 2])];
//!
//! let mut filter = AnyCcf::builder()
//!     .variant(VariantKind::Chained)
//!     .num_attrs(2)
//!     .expected_rows(rows.len())
//!     .seed(42)
//!     .build()?;
//! for (key, attrs) in &rows {
//!     filter.insert_row(*key, attrs)?;
//! }
//!
//! // Key + predicate queries: "is there a row for 'Heat' with role_id = 4 and
//! // company_type_id = 2?"
//! let pred = filter.predicate().and_eq(0, 4).and_eq(1, 2);
//! assert!(filter.query("Heat", &pred));
//! assert!(!filter.query("Ronin", &pred) || filter.contains_key("Ronin"));
//! # Ok::<(), CcfError>(())
//! ```
//!
//! # Module map
//!
//! * [`key`] — the [`FilterKey`] trait: typed keys and their lowering to the salted
//!   hash family.
//! * [`builder`] — the fallible [`CcfBuilder`] construction facade.
//! * [`params`] — parameters, [`ParamsError`] and the §8 sizing rules.
//! * [`error`] — the workspace-level [`CcfError`].
//! * [`predicate`] — equality / in-list predicates, range binning and dyadic expansion.
//! * [`attr`] — attribute-sketch matching primitives.
//! * [`plain`], [`chained`], [`bloom_ccf`], [`mixed`] — the four variants.
//! * [`variant`] — a uniform [`ConditionalFilter`] interface over all of them.
//! * [`instruments`] — the `ccf-telemetry` event bundle (insert/query/delete
//!   outcomes, kick depths, conversions) every variant records into when attached.
//! * [`fpr`] — the §7 false-positive-rate estimators.
//! * [`sizing`] — Table 1 entry-count predictions and load-factor targets.
//! * [`compress`] — the §9 two-stage attribute compression.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod bloom_ccf;
pub mod builder;
pub mod chained;
pub mod compress;
pub mod error;
pub mod fpr;
pub mod instruments;
pub mod key;
pub mod mixed;
pub mod outcome;
pub mod params;
pub mod plain;
pub mod predicate;
pub mod sizing;
pub mod snapshot;
pub mod variant;

pub use bloom_ccf::BloomCcf;
pub use builder::CcfBuilder;
pub use chained::{ChainedCcf, ChainedPredicateFilter};
pub use compress::AttributeCompressor;
pub use error::CcfError;
pub use instruments::CcfInstruments;
pub use key::FilterKey;
pub use mixed::MixedCcf;
pub use outcome::{DeleteFailure, InsertFailure, InsertOutcome};
pub use params::{AttrSketchKind, CcfParams, ParamsError};
pub use plain::PlainCcf;
pub use predicate::{
    binning::{Binning, BinningError},
    ColumnPredicate, Predicate,
};
pub use sizing::{DuplicationProfile, VariantKind};
pub use snapshot::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use variant::{AnyCcf, ConditionalFilter};
