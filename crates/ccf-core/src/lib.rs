//! Conditional Cuckoo Filters (CCF) — approximate set membership with predicates.
//!
//! This crate is a from-scratch Rust implementation of the data structure introduced by
//! Ting & Cole, *"Conditional Cuckoo Filters"* (arXiv:2005.02537, SIGMOD 2021 context):
//! a cuckoo-filter-like sketch whose entries carry, besides a key fingerprint κ, a
//! small sketch of the row's attribute values — so that membership can be tested not
//! just for a key but for a key *and* a conjunction of equality predicates, and so that
//! a pre-computed sketch can be specialised into a key filter for any given predicate
//! (predicate push-down across a join graph, §3).
//!
//! # Variants
//!
//! | Variant | Attribute sketch | Duplicate handling | Type |
//! |---------|------------------|--------------------|------|
//! | Plain   | fingerprint vector | none (2b cap, §4.3) | [`PlainCcf`] |
//! | Chained | fingerprint vector | chaining (§6.2)     | [`ChainedCcf`] |
//! | Bloom   | per-entry Bloom (§5.2) | merge into one entry | [`BloomCcf`] |
//! | Mixed   | fingerprint vector → Bloom conversion (§6.1) | conversion at d duplicates | [`MixedCcf`] |
//!
//! All variants guarantee **no false negatives** for rows that were inserted (and, for
//! the chained variant, even for rows dropped at the chain cap — Theorem 3).
//!
//! # Quick start
//!
//! ```
//! use ccf_core::{CcfParams, ChainedCcf, Predicate};
//!
//! // Rows of (movie_id, [role_id, company_type_id]).
//! let rows = [(10u64, [4u64, 2u64]), (10, [4, 1]), (11, [1, 2])];
//!
//! let mut filter = ChainedCcf::new(CcfParams {
//!     num_buckets: 1 << 8,
//!     num_attrs: 2,
//!     ..CcfParams::default()
//! });
//! for (key, attrs) in &rows {
//!     filter.insert_row(*key, attrs).unwrap();
//! }
//!
//! // Key + predicate queries: "is there a row for movie 10 with role_id = 4 and
//! // company_type_id = 2?"
//! let pred = Predicate::any(2).and_eq(0, 4).and_eq(1, 2);
//! assert!(filter.query(10, &pred));
//! assert!(!filter.query(11, &pred) || filter.contains_key(11)); // 11 has role_id = 1
//! ```
//!
//! # Module map
//!
//! * [`params`] — parameters and the §8 sizing rules.
//! * [`predicate`] — equality / in-list predicates, range binning and dyadic expansion.
//! * [`attr`] — attribute-sketch matching primitives.
//! * [`plain`], [`chained`], [`bloom_ccf`], [`mixed`] — the four variants.
//! * [`variant`] — a uniform [`ConditionalFilter`] interface over all of them.
//! * [`fpr`] — the §7 false-positive-rate estimators.
//! * [`sizing`] — Table 1 entry-count predictions and load-factor targets.
//! * [`compress`] — the §9 two-stage attribute compression.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod bloom_ccf;
pub mod chained;
pub mod compress;
pub mod fpr;
pub mod mixed;
pub mod outcome;
pub mod params;
pub mod plain;
pub mod predicate;
pub mod sizing;
pub mod variant;

pub use bloom_ccf::BloomCcf;
pub use chained::{ChainedCcf, ChainedPredicateFilter};
pub use compress::AttributeCompressor;
pub use mixed::MixedCcf;
pub use outcome::{InsertFailure, InsertOutcome};
pub use params::{AttrSketchKind, CcfParams};
pub use plain::PlainCcf;
pub use predicate::{
    binning::{Binning, BinningError},
    ColumnPredicate, Predicate,
};
pub use sizing::{DuplicationProfile, VariantKind};
pub use variant::{AnyCcf, ConditionalFilter};
