//! Typed filter keys.
//!
//! The paper's motivating deployment — join pushdown inside a SQL engine (§1) — joins
//! on whatever the schema provides: integer surrogate keys, strings, composite keys.
//! [`FilterKey`] is the single extension point that lets every public entry point
//! (`insert_row`, `query`, `contains_key` and their `_batch` variants) accept all of
//! them, while the filters themselves keep operating on one canonical `u64` of *key
//! material*:
//!
//! * `u64` keys lower to **themselves** — the identity, no extra hash — so the u64 hot
//!   path is bit-identical to the pre-typed-key API (asserted by the golden tests in
//!   `tests/typed_keys.rs`);
//! * `str` / `String` / byte-slice keys lower through
//!   [`SaltedHasher::hash_bytes`] (Jenkins lookup3) at the dedicated
//!   [`ccf_hash::salted::purpose::KEY_LOWER`] family index;
//! * `(u64, u64)` composite keys lower through [`SaltedHasher::hash_pair`]
//!   (order-sensitive, so `(a, b)` and `(b, a)` are distinct keys).
//!
//! Every consumer of a key — bucket choice, fingerprinting, shard routing — sees only
//! the lowered material, so a string key inserted through a sharded service is found
//! by a point query on the owning shard: both lower the key once with the same hasher
//! and agree on every downstream hash.
//!
//! The lowered `u64` is also the *prehashed* representation accepted by the
//! `*_prehashed` methods on the filters and on [`crate::ConditionalFilter`]; callers
//! that hash keys themselves (or store lowered keys in an index) can skip the lowering
//! step entirely.

use std::borrow::Cow;

use ccf_hash::SaltedHasher;

/// A type usable as a filter key.
///
/// Implementations lower the key to canonical 64-bit key material via the filter's
/// dedicated lowering hasher. Lowering must be deterministic and must depend only on
/// the key's value and the hasher — two equal keys always produce identical material,
/// which is what the no-false-negative guarantee rides on.
pub trait FilterKey {
    /// Lower the key to its canonical 64-bit key material.
    fn lower(&self, hasher: &SaltedHasher) -> u64;

    /// Lower a batch of keys. The default collects [`FilterKey::lower`] per key;
    /// `u64` overrides it to borrow the input slice so the u64 batch path stays
    /// copy-free.
    fn lower_batch<'a>(keys: &'a [Self], hasher: &SaltedHasher) -> Cow<'a, [u64]>
    where
        Self: Sized,
    {
        Cow::Owned(keys.iter().map(|k| k.lower(hasher)).collect())
    }
}

impl FilterKey for u64 {
    /// Identity: `u64` keys *are* their key material. No hash is applied, so every
    /// downstream hash (bucket, fingerprint, shard) sees exactly the same input as
    /// the pre-typed-key API.
    #[inline]
    fn lower(&self, _hasher: &SaltedHasher) -> u64 {
        *self
    }

    #[inline]
    fn lower_batch<'a>(keys: &'a [u64], _hasher: &SaltedHasher) -> Cow<'a, [u64]> {
        Cow::Borrowed(keys)
    }
}

impl FilterKey for [u8] {
    #[inline]
    fn lower(&self, hasher: &SaltedHasher) -> u64 {
        hasher.hash_bytes(self)
    }
}

impl FilterKey for str {
    #[inline]
    fn lower(&self, hasher: &SaltedHasher) -> u64 {
        hasher.hash_bytes(self.as_bytes())
    }
}

impl FilterKey for String {
    #[inline]
    fn lower(&self, hasher: &SaltedHasher) -> u64 {
        hasher.hash_bytes(self.as_bytes())
    }
}

impl FilterKey for Vec<u8> {
    #[inline]
    fn lower(&self, hasher: &SaltedHasher) -> u64 {
        hasher.hash_bytes(self)
    }
}

/// Composite two-part keys, e.g. `(tenant_id, user_id)`. Order-sensitive.
impl FilterKey for (u64, u64) {
    #[inline]
    fn lower(&self, hasher: &SaltedHasher) -> u64 {
        hasher.hash_pair(self.0, self.1)
    }
}

/// References lower like the keys they point at, so `&str`, `&[u8]`, `&String` and
/// `&u64` all work directly.
impl<K: FilterKey + ?Sized> FilterKey for &K {
    #[inline]
    fn lower(&self, hasher: &SaltedHasher) -> u64 {
        (**self).lower(hasher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hasher() -> SaltedHasher {
        SaltedHasher::new(0xC0FFEE)
    }

    #[test]
    fn u64_lowering_is_the_identity() {
        let h = hasher();
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(k.lower(&h), k);
            assert_eq!(<&u64 as FilterKey>::lower(&&k, &h), k); // the blanket &K impl
        }
        // ... regardless of the hasher's seed.
        assert_eq!(7u64.lower(&SaltedHasher::new(999)), 7);
    }

    #[test]
    fn u64_batch_lowering_borrows() {
        let keys = [3u64, 1, 4, 1, 5];
        match u64::lower_batch(&keys, &hasher()) {
            Cow::Borrowed(b) => assert_eq!(b, &keys),
            Cow::Owned(_) => panic!("u64 batch lowering must not copy"),
        }
    }

    #[test]
    fn string_forms_agree_with_each_other_and_with_lookup3() {
        let h = hasher();
        let s = "movie_keyword";
        let expected = h.hash_bytes(s.as_bytes());
        assert_eq!(s.lower(&h), expected);
        assert_eq!(String::from(s).lower(&h), expected);
        assert_eq!(s.as_bytes().lower(&h), expected);
        assert_eq!(s.as_bytes().to_vec().lower(&h), expected);
        assert_eq!(<&&str as FilterKey>::lower(&&s, &h), expected); // blanket &K impl
    }

    #[test]
    fn generic_batch_lowering_matches_per_key() {
        let h = hasher();
        let keys = ["a", "bb", "ccc"];
        let lowered = <&str>::lower_batch(&keys, &h);
        assert_eq!(lowered.len(), 3);
        for (k, &l) in keys.iter().zip(lowered.iter()) {
            assert_eq!(k.lower(&h), l);
        }
    }

    #[test]
    fn composite_keys_are_order_sensitive() {
        let h = hasher();
        assert_eq!((1u64, 2u64).lower(&h), h.hash_pair(1, 2));
        assert_ne!((1u64, 2u64).lower(&h), (2u64, 1u64).lower(&h));
    }

    #[test]
    fn lowering_depends_on_the_hasher_seed_except_for_u64() {
        let a = SaltedHasher::new(1);
        let b = SaltedHasher::new(2);
        assert_ne!("key".lower(&a), "key".lower(&b));
        assert_ne!((5u64, 6u64).lower(&a), (5u64, 6u64).lower(&b));
        assert_eq!(5u64.lower(&a), 5u64.lower(&b));
    }

    #[test]
    fn distinct_strings_rarely_collide() {
        let h = hasher();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            seen.insert(format!("user-{i:06}").lower(&h));
        }
        assert_eq!(seen.len(), 10_000, "lookup3 collided on tiny key set");
    }
}
