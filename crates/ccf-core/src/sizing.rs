//! Sizing the sketch: predicted entry counts and load-factor targets (§8, Table 1,
//! Figure 3).
//!
//! Sizing a CCF requires predicting how many entries the data will occupy — which
//! depends on the variant (Bloom sketches collapse duplicates; conversion caps a key at
//! `d` entries; chaining stores every distinct attribute vector up to `d · Lmax`) — and
//! dividing by an attainable load factor, which §8 measures empirically as a function
//! of the bucket size `b` (Figure 4). The Figure 3 experiment compares these
//! predictions with the entries actually used.

use crate::params::CcfParams;

/// Which CCF variant a prediction is for. Mirrors the rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantKind {
    /// Plain multiset cuckoo filter with attribute vectors (no duplicate handling).
    Plain,
    /// CCF with Bloom attribute sketches (§5.2).
    Bloom,
    /// CCF with Bloom conversion (§6.1).
    Mixed,
    /// CCF with chaining (§6.2).
    Chained,
}

impl VariantKind {
    /// Whether the variant supports row/key deletion at all.
    ///
    /// Plain and chained filters delete freely; the mixed variant deletes vector
    /// entries but refuses converted keys
    /// ([`crate::outcome::DeleteFailure::ConvertedGroup`]); the Bloom variant merges
    /// rows into per-key sketches that cannot be unmerged, so every deletion returns
    /// [`crate::outcome::DeleteFailure::Unsupported`]. Churn-heavy deployments
    /// (sliding windows, rolling caches) should pick a deletable variant up front —
    /// [`crate::CcfBuilder`] callers can consult this before `build()`.
    pub fn supports_deletion(&self) -> bool {
        !matches!(self, VariantKind::Bloom)
    }
}

/// Summary of a dataset's key-duplication structure: for every distinct key, the number
/// of *distinct attribute vectors* associated with it (the random variable `A` of §8).
#[derive(Debug, Clone, Default)]
pub struct DuplicationProfile {
    /// One count per distinct key.
    pub distinct_rows_per_key: Vec<usize>,
}

impl DuplicationProfile {
    /// Build a profile from an iterator of (key, distinct-row-count) pairs or raw
    /// per-key counts.
    pub fn from_counts<I: IntoIterator<Item = usize>>(counts: I) -> Self {
        Self {
            distinct_rows_per_key: counts.into_iter().collect(),
        }
    }

    /// Build a profile by scanning raw (key, attribute-vector) rows.
    pub fn from_rows<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = (u64, &'a [u64])>,
    {
        use std::collections::{HashMap, HashSet};
        let mut per_key: HashMap<u64, HashSet<Vec<u64>>> = HashMap::new();
        for (key, attrs) in rows {
            per_key.entry(key).or_default().insert(attrs.to_vec());
        }
        Self {
            distinct_rows_per_key: per_key.values().map(|s| s.len()).collect(),
        }
    }

    /// Number of distinct keys `n_k`.
    pub fn num_keys(&self) -> usize {
        self.distinct_rows_per_key.len()
    }

    /// Total number of distinct (key, attribute vector) rows.
    pub fn num_distinct_rows(&self) -> usize {
        self.distinct_rows_per_key.iter().sum()
    }

    /// Mean number of distinct rows per key, `E[A]`.
    pub fn mean_duplicates(&self) -> f64 {
        if self.num_keys() == 0 {
            0.0
        } else {
            self.num_distinct_rows() as f64 / self.num_keys() as f64
        }
    }

    /// Maximum number of distinct rows for any key.
    pub fn max_duplicates(&self) -> usize {
        self.distinct_rows_per_key
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Predicted number of non-empty entries for a variant on a dataset (Table 1):
///
/// * Bloom: `n_k` (one entry per distinct key).
/// * Mixed (conversion): `Σ min(A, d)` — conversion caps a key at `d` entries.
/// * Chained: `Σ min(A, d · Lmax)` — every distinct attribute vector gets an entry, up
///   to the chain cap.
/// * Plain: `Σ min(A, 2b)` — the bucket pair is the hard cap (insertions beyond it
///   fail, so this is what could be stored at best).
pub fn predicted_entries(
    variant: VariantKind,
    profile: &DuplicationProfile,
    params: &CcfParams,
) -> usize {
    let d = params.max_dupes;
    match variant {
        VariantKind::Bloom => profile.num_keys(),
        VariantKind::Mixed => profile
            .distinct_rows_per_key
            .iter()
            .map(|&a| a.min(d))
            .sum(),
        VariantKind::Chained => {
            let cap = params
                .max_chain
                .map(|lmax| d.saturating_mul(lmax))
                .unwrap_or(usize::MAX);
            profile
                .distinct_rows_per_key
                .iter()
                .map(|&a| a.min(cap))
                .sum()
        }
        VariantKind::Plain => profile
            .distinct_rows_per_key
            .iter()
            .map(|&a| a.min(2 * params.entries_per_bucket))
            .sum(),
    }
}

/// Empirically attainable load factor as a function of the bucket size `b`, read off
/// Figure 4: b = 4 sustains ≈ 75 %, b = 6 ≈ 87 %, b = 8 ≈ 90 % even with many
/// duplicates. Intermediate sizes interpolate; very large buckets saturate at 95 %.
pub fn attainable_load_factor(entries_per_bucket: usize) -> f64 {
    match entries_per_bucket {
        0 => 0.0,
        1 => 0.50,
        2 => 0.60,
        3 => 0.68,
        4 => 0.75,
        5 => 0.82,
        6 => 0.87,
        7 => 0.885,
        8 => 0.90,
        _ => 0.95f64
            .min(0.90 + 0.01 * (entries_per_bucket as f64 - 8.0))
            .min(0.95),
    }
}

/// Pick the smallest bucket size `b ≥ 2d` (the §8 rule of thumb) and number of buckets
/// `m` such that `m · b ≥ predicted_entries / attainable_load_factor(b)`, and return
/// the parameters updated accordingly.
pub fn size_for_profile(
    variant: VariantKind,
    profile: &DuplicationProfile,
    mut params: CcfParams,
) -> CcfParams {
    // The Bloom variant has no duplicate entries, so the standard cuckoo-filter bucket
    // size of 4 suffices; the others follow b ≈ 2d.
    params.entries_per_bucket = match variant {
        VariantKind::Bloom => 4,
        _ => (2 * params.max_dupes).max(4),
    };
    let entries = predicted_entries(variant, profile, &params).max(1);
    let beta = attainable_load_factor(params.entries_per_bucket);
    let slots = (entries as f64 / beta).ceil() as usize;
    params.num_buckets = slots
        .div_ceil(params.entries_per_bucket)
        .next_power_of_two()
        .max(1);
    params
}

/// Like [`size_for_profile`], but for a *growable* filter: the initial geometry is
/// sized for only `initial_fraction` of the predicted entries (at least one bucket)
/// and `auto_grow` is enabled, so the filter starts small and doubles on demand as the
/// stream arrives. Useful when the duplication profile is a forecast rather than a
/// measurement — under-prediction costs a few O(m·b) remaps instead of insert
/// failures.
///
/// # Panics
/// Panics if `initial_fraction` is not in `(0, 1]`.
pub fn size_for_profile_growable(
    variant: VariantKind,
    profile: &DuplicationProfile,
    params: CcfParams,
    initial_fraction: f64,
) -> CcfParams {
    assert!(
        initial_fraction > 0.0 && initial_fraction <= 1.0,
        "initial_fraction must be in (0, 1]"
    );
    let mut sized = size_for_profile(variant, profile, params);
    let scaled = (sized.num_buckets as f64 * initial_fraction).ceil() as usize;
    sized.num_buckets = scaled.next_power_of_two().max(1);
    sized.auto_grow = true;
    sized
}

/// Bit efficiency of a sketch (eq. 8): `size-in-bits / (n · log2(1/ρ))`, where `n` is
/// the number of keys inserted (counting duplicates, as in §10.2) and `ρ` the measured
/// or target FPR. 1.0 is the information-theoretic optimum for sets; a Bloom filter
/// sits at ≈ 1.44.
pub fn bit_efficiency(size_bits: usize, items: usize, fpr: f64) -> f64 {
    assert!(fpr > 0.0 && fpr < 1.0, "FPR must be in (0, 1)");
    assert!(items > 0, "need at least one item");
    size_bits as f64 / (items as f64 * (1.0 / fpr).log2())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DuplicationProfile {
        // 4 keys with 1, 2, 5 and 40 distinct rows.
        DuplicationProfile::from_counts([1, 2, 5, 40])
    }

    #[test]
    fn profile_statistics() {
        let p = profile();
        assert_eq!(p.num_keys(), 4);
        assert_eq!(p.num_distinct_rows(), 48);
        assert_eq!(p.max_duplicates(), 40);
        assert!((p.mean_duplicates() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn profile_from_rows_deduplicates() {
        let rows: Vec<(u64, Vec<u64>)> = vec![
            (1, vec![1, 2]),
            (1, vec![1, 2]), // exact duplicate
            (1, vec![3, 4]),
            (2, vec![9, 9]),
        ];
        let p = DuplicationProfile::from_rows(rows.iter().map(|(k, a)| (*k, a.as_slice())));
        let mut counts = p.distinct_rows_per_key.clone();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
    }

    #[test]
    fn predicted_entries_per_variant_match_table_1() {
        let p = profile();
        let params = CcfParams {
            max_dupes: 3,
            entries_per_bucket: 6,
            max_chain: None,
            ..CcfParams::default()
        };
        assert_eq!(predicted_entries(VariantKind::Bloom, &p, &params), 4);
        assert_eq!(
            predicted_entries(VariantKind::Mixed, &p, &params),
            1 + 2 + 3 + 3
        );
        assert_eq!(predicted_entries(VariantKind::Chained, &p, &params), 48);
        // Plain caps at 2b = 12.
        assert_eq!(
            predicted_entries(VariantKind::Plain, &p, &params),
            1 + 2 + 5 + 12
        );
        // With a chain cap of Lmax = 2 the chained variant caps at d·Lmax = 6.
        let capped = CcfParams {
            max_chain: Some(2),
            ..params
        };
        assert_eq!(
            predicted_entries(VariantKind::Chained, &p, &capped),
            1 + 2 + 5 + 6
        );
    }

    #[test]
    fn attainable_load_factor_matches_figure_4_anchor_points() {
        assert!((attainable_load_factor(4) - 0.75).abs() < 1e-12);
        assert!((attainable_load_factor(6) - 0.87).abs() < 1e-12);
        assert!((attainable_load_factor(8) - 0.90).abs() < 1e-12);
        assert!(attainable_load_factor(16) <= 0.95);
        // Monotone in b.
        for b in 1..16 {
            assert!(attainable_load_factor(b) <= attainable_load_factor(b + 1));
        }
    }

    #[test]
    fn size_for_profile_provides_enough_slots() {
        let p = DuplicationProfile::from_counts(vec![3; 10_000]);
        for variant in [
            VariantKind::Bloom,
            VariantKind::Mixed,
            VariantKind::Chained,
            VariantKind::Plain,
        ] {
            let params = size_for_profile(variant, &p, CcfParams::default());
            let entries = predicted_entries(variant, &p, &params);
            assert!(
                params.num_buckets * params.entries_per_bucket
                    >= (entries as f64 / attainable_load_factor(params.entries_per_bucket))
                        as usize,
                "variant {variant:?} undersized"
            );
        }
    }

    #[test]
    fn growable_sizing_starts_small_with_auto_grow_enabled() {
        let p = DuplicationProfile::from_counts(vec![3; 10_000]);
        let full = size_for_profile(VariantKind::Chained, &p, CcfParams::default());
        let growable =
            size_for_profile_growable(VariantKind::Chained, &p, CcfParams::default(), 0.25);
        assert!(growable.auto_grow);
        assert!(growable.num_buckets < full.num_buckets);
        assert!(growable.num_buckets.is_power_of_two());
        // The under-sized filter must still absorb the whole profile by growing.
        let mut f = crate::ChainedCcf::new(growable);
        for (key, &rows) in p.distinct_rows_per_key.iter().enumerate() {
            for i in 0..rows as u64 {
                f.insert_row(key as u64, &[i])
                    .expect("auto-grow absorbs the stream");
            }
        }
    }

    #[test]
    #[should_panic(expected = "initial_fraction")]
    fn growable_sizing_rejects_zero_fraction() {
        let p = DuplicationProfile::from_counts(vec![1]);
        let _ = size_for_profile_growable(VariantKind::Plain, &p, CcfParams::default(), 0.0);
    }

    #[test]
    fn bit_efficiency_reference_points() {
        // A Bloom filter at its optimum: 1.44·log2(1/ρ) bits/item → efficiency 1.44.
        let items = 1000;
        let fpr = 0.01f64;
        let bloom_bits = (1.44 * (1.0 / fpr).log2() * items as f64) as usize;
        let eff = bit_efficiency(bloom_bits, items, fpr);
        assert!((eff - 1.44).abs() < 0.01);
        // A cuckoo filter with b = 4 and β = 0.95: (log2(1/ρ)+3)/β bits per item.
        let cuckoo_bits = (((1.0 / fpr).log2() + 3.0) / 0.95 * items as f64) as usize;
        let eff = bit_efficiency(cuckoo_bits, items, fpr);
        assert!((1.4..1.6).contains(&eff), "cuckoo efficiency {eff}");
    }

    #[test]
    #[should_panic(expected = "FPR must be in (0, 1)")]
    fn bit_efficiency_rejects_bad_fpr() {
        let _ = bit_efficiency(100, 10, 0.0);
    }
}
