//! The *Mixed* CCF: attribute fingerprint vectors with Bloom conversion (§6.1,
//! Algorithm 3).
//!
//! Rows are stored as fingerprint-vector entries exactly like the chained variant — but
//! when a bucket pair already holds `d` copies of a key fingerprint and another
//! distinct row arrives, the `d` fingerprint vectors are *converted*: their bit budget
//! (`d·s − 2(|κ| + ⌈log₂ d⌉)` bits, where `s` is the per-entry size) is repurposed as a
//! single Bloom filter over (column, attribute-fingerprint) pairs covering all of the
//! key's rows, including every row that arrives later. Conversion can never fail, so
//! the variant keeps the cuckoo-filter-like sizing of Table 1 (at most `d` entries per
//! key) while retaining fingerprint-vector accuracy for the vast majority of keys that
//! have few duplicates.
//!
//! In-memory representation: the converted group is a `BloomHead` entry plus `d − 1`
//! `Continuation` entries occupying the same slots the fingerprint vectors held (the
//! paper packs the Bloom's bits across those entries; we keep the logical layout and
//! account for the same number of bits). Cuckoo kicks may relocate any slot — a kick
//! only ever moves an entry to the other bucket of its own pair, so a group's head and
//! continuation slots merely redistribute across the pair, which is the "maintaining
//! [the Bloom filter] whenever a bucket's entry is kicked into the alternate bucket"
//! bookkeeping §6.1 describes.

use ccf_bloom::TinyBloom;
use ccf_cuckoo::geometry::{
    grow_and_retry, prefetch_index, probe_chunked, split_buckets, SplitGeometry,
};
use ccf_cuckoo::CuckooFilter;
use ccf_cuckoo::{GrowthStats, OccupancyStats};
use ccf_hash::{AttrFingerprinter, Fingerprinter, HashFamily};
use ccf_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::attr::{match_fingerprint_bloom, match_fingerprint_vector};
use crate::instruments::CcfInstruments;
use crate::key::FilterKey;
use crate::outcome::{DeleteFailure, InsertFailure, InsertOutcome};
use crate::params::{CcfParams, ParamsError};
use crate::predicate::Predicate;

/// One slot of a mixed CCF.
#[derive(Debug, Clone)]
enum Entry {
    /// A fingerprint-vector entry for a single row.
    Vector { fp: u16, attrs: Vec<u16> },
    /// Head of a converted group: holds the Bloom sketch for every row of this
    /// fingerprint in the bucket pair.
    BloomHead { fp: u16, sketch: TinyBloom },
    /// A continuation slot of a converted group (its bits belong to the head's Bloom
    /// filter).
    Continuation { fp: u16 },
}

impl Entry {
    fn fp(&self) -> u16 {
        match self {
            Entry::Vector { fp, .. } | Entry::BloomHead { fp, .. } | Entry::Continuation { fp } => {
                *fp
            }
        }
    }
}

/// Conditional cuckoo filter with Bloom conversion for heavily duplicated keys.
#[derive(Debug, Clone)]
pub struct MixedCcf {
    buckets: Vec<Vec<Entry>>,
    geometry: SplitGeometry,
    params: CcfParams,
    fingerprinter: Fingerprinter,
    attr_fp: AttrFingerprinter,
    bloom_family: HashFamily,
    conversion_hashes: usize,
    key_lower: ccf_hash::SaltedHasher,
    rng: StdRng,
    occupied: usize,
    rows_absorbed: usize,
    conversions: usize,
    instruments: CcfInstruments,
}

impl MixedCcf {
    /// Create an empty filter. `params.num_buckets` is rounded up to a power of two.
    ///
    /// # Panics
    /// Panics on impossible parameters; use [`MixedCcf::try_new`] (or the
    /// [`crate::CcfBuilder`] facade) to get a [`ParamsError`] instead.
    pub fn new(params: CcfParams) -> Self {
        Self::try_new(params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Create an empty filter, reporting impossible parameters as a [`ParamsError`].
    /// `params.num_buckets` is rounded up to a power of two.
    pub fn try_new(mut params: CcfParams) -> Result<Self, ParamsError> {
        params.num_buckets = params.num_buckets.next_power_of_two().max(1);
        params.try_validate()?;
        if params.max_dupes > params.entries_per_bucket {
            return Err(ParamsError::ConversionGroupTooWide {
                max_dupes: params.max_dupes,
                entries_per_bucket: params.entries_per_bucket,
            });
        }
        let family = HashFamily::new(params.seed);
        let conversion_hashes = ccf_bloom::params::conversion_num_hashes(
            params.conversion_bloom_bits(),
            params.max_dupes,
            params.num_attrs,
        );
        Ok(Self {
            buckets: vec![Vec::new(); params.num_buckets],
            geometry: SplitGeometry::new(&family, params.num_buckets, 0),
            fingerprinter: Fingerprinter::new(&family, params.fingerprint_bits),
            attr_fp: AttrFingerprinter::new(&family, params.attr_bits, params.small_value_opt),
            bloom_family: family.subfamily(13),
            conversion_hashes,
            key_lower: family.hasher(ccf_hash::salted::purpose::KEY_LOWER),
            rng: StdRng::seed_from_u64(params.seed ^ 0x30D),
            occupied: 0,
            rows_absorbed: 0,
            conversions: 0,
            instruments: CcfInstruments::disabled(),
            params,
        })
    }

    /// Variant payload of the [`crate::AnyCcf`] snapshot format: growth state, exact
    /// RNG words, the conversion counter, and every bucket's entries — vector rows,
    /// Bloom-head sketches (raw bits) and continuation slots, each tagged.
    pub(crate) fn snapshot_payload(&self, w: &mut ccf_cuckoo::ByteWriter) {
        w.put_u32(self.geometry.growth_bits());
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_usize(self.rows_absorbed);
        w.put_usize(self.conversions);
        for bucket in &self.buckets {
            w.put_u16(u16::try_from(bucket.len()).expect("bucket wider than u16"));
            for entry in bucket {
                match entry {
                    Entry::Vector { fp, attrs } => {
                        w.put_u8(0);
                        w.put_u16(*fp);
                        for &a in attrs {
                            w.put_u16(a);
                        }
                    }
                    Entry::BloomHead { fp, sketch } => {
                        w.put_u8(1);
                        w.put_u16(*fp);
                        w.put_usize(sketch.pairs_inserted());
                        w.put_len_bytes(&sketch.to_bits().to_bytes());
                    }
                    Entry::Continuation { fp } => {
                        w.put_u8(2);
                        w.put_u16(*fp);
                    }
                }
            }
        }
    }

    /// Inverse of [`MixedCcf::snapshot_payload`]; see
    /// [`crate::PlainCcf::from_snapshot_payload`] for the shared validation rules.
    /// Conversion-sketch widths are re-validated against
    /// [`CcfParams::conversion_bloom_bits`].
    pub(crate) fn from_snapshot_payload(
        params: CcfParams,
        r: &mut ccf_cuckoo::ByteReader<'_>,
    ) -> Result<Self, ccf_cuckoo::SnapshotError> {
        use ccf_cuckoo::SnapshotError;
        let growth_bits = r.get_u32()?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64()?;
        }
        let rows_absorbed = r.get_usize()?;
        let conversions = r.get_usize()?;
        let base = crate::snapshot::split_growth(params.num_buckets, growth_bits)?;
        let mut f = Self::try_new(CcfParams {
            num_buckets: base,
            ..params
        })
        .map_err(|e| SnapshotError::Invalid(e.to_string()))?;
        if growth_bits > 0 {
            let family = HashFamily::new(params.seed);
            f.geometry = SplitGeometry::new(&family, base, growth_bits);
            f.buckets = vec![Vec::new(); params.num_buckets];
            f.params.num_buckets = params.num_buckets;
        }
        let sketch_bits = params.conversion_bloom_bits();
        let sketch_bytes = sketch_bits.div_ceil(8);
        let mut occupied = 0usize;
        for bucket in &mut f.buckets {
            let len = usize::from(r.get_u16()?);
            if len > params.entries_per_bucket {
                return Err(SnapshotError::Invalid(format!(
                    "bucket holds {len} entries but b = {}",
                    params.entries_per_bucket
                )));
            }
            bucket.reserve_exact(len);
            for _ in 0..len {
                let tag = r.get_u8()?;
                let fp = r.get_u16()?;
                if fp == 0 {
                    return Err(SnapshotError::Invalid("stored fingerprint is zero".into()));
                }
                let entry = match tag {
                    0 => {
                        let mut attrs = Vec::with_capacity(params.num_attrs);
                        for _ in 0..params.num_attrs {
                            attrs.push(r.get_u16()?);
                        }
                        Entry::Vector { fp, attrs }
                    }
                    1 => {
                        let pairs_inserted = r.get_usize()?;
                        let bits = r.get_len_bytes()?;
                        if bits.len() != sketch_bytes {
                            return Err(SnapshotError::Invalid(format!(
                                "conversion sketch image is {} bytes; budget of \
                                 {sketch_bits} bits needs {sketch_bytes}",
                                bits.len()
                            )));
                        }
                        let sketch = TinyBloom::from_bits(
                            ccf_bloom::BitVec::from_bytes(bits, sketch_bits),
                            f.conversion_hashes,
                            &f.bloom_family,
                            pairs_inserted,
                        );
                        Entry::BloomHead { fp, sketch }
                    }
                    2 => Entry::Continuation { fp },
                    t => {
                        return Err(SnapshotError::Invalid(format!("unknown entry tag {t}")));
                    }
                };
                bucket.push(entry);
            }
            occupied += len;
        }
        f.occupied = occupied;
        f.rows_absorbed = rows_absorbed;
        f.conversions = conversions;
        f.rng = StdRng::from_state(rng_state);
        Ok(f)
    }

    /// Resolve this filter's [`CcfInstruments`] against `telemetry` (series get
    /// `variant="mixed"` plus `extra` labels). Call once; hot paths then record
    /// through pre-resolved handles.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, extra: &[(&str, &str)]) {
        self.instruments = CcfInstruments::resolve(telemetry, "mixed", extra);
    }

    /// The telemetry bundle events are recorded into (disabled by default).
    pub fn instruments(&self) -> &CcfInstruments {
        &self.instruments
    }

    /// The hasher typed keys are lowered with ([`FilterKey::lower`]); see
    /// [`crate::key`] for the prehashed-key contract.
    pub fn key_lower_hasher(&self) -> ccf_hash::SaltedHasher {
        self.key_lower
    }

    /// The filter's parameters (with `num_buckets` normalized).
    pub fn params(&self) -> &CcfParams {
        &self.params
    }

    /// Number of occupied entry slots (continuation slots count — they hold Bloom bits).
    pub fn occupied_entries(&self) -> usize {
        self.occupied
    }

    /// Number of rows absorbed.
    pub fn rows_absorbed(&self) -> usize {
        self.rows_absorbed
    }

    /// Number of Bloom conversions performed.
    pub fn conversions(&self) -> usize {
        self.conversions
    }

    /// Total entry slots `m · b`.
    pub fn capacity(&self) -> usize {
        self.buckets.len() * self.params.entries_per_bucket
    }

    /// Load factor β.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    /// Serialized size in bits: every slot carries |κ| + #α·|α| + 1 bits (the extra bit
    /// marks converted slots, §6.1).
    pub fn size_bits(&self) -> usize {
        self.capacity() * self.params.mixed_entry_bits()
    }

    /// The attribute fingerprinter used by this filter.
    pub fn attr_fingerprinter(&self) -> &AttrFingerprinter {
        &self.attr_fp
    }

    /// Number of capacity doublings applied so far.
    pub fn growth_bits(&self) -> u32 {
        self.geometry.growth_bits()
    }

    /// Per-bucket occupancy summary, including the actual heap footprint of the
    /// bucket storage (spine, per-bucket entry arrays, and per-entry payloads:
    /// attribute vectors for vector slots, Bloom sketches for converted heads).
    pub fn occupancy(&self) -> OccupancyStats {
        let heap = std::mem::size_of_val(self.buckets.as_slice())
            + self
                .buckets
                .iter()
                .map(|b| {
                    std::mem::size_of_val(b.as_slice())
                        + b.iter()
                            .map(|e| match e {
                                Entry::Vector { attrs, .. } => {
                                    std::mem::size_of_val(attrs.as_slice())
                                }
                                Entry::BloomHead { sketch, .. } => sketch.heap_bytes(),
                                Entry::Continuation { .. } => 0,
                            })
                            .sum::<usize>()
                })
                .sum::<usize>();
        OccupancyStats::from_counts(
            self.buckets.iter().map(Vec::len),
            self.params.entries_per_bucket,
        )
        .with_heap_bytes(heap)
    }

    /// Resize-history summary.
    pub fn growth_stats(&self) -> GrowthStats {
        GrowthStats {
            base_buckets: self.geometry.base_buckets(),
            current_buckets: self.buckets.len(),
            growth_bits: self.geometry.growth_bits(),
        }
    }

    /// The alternate bucket ℓ′ = ℓ ⊕ h(κ), with the xor confined to the base-geometry
    /// bits so a pair always shares its growth bits.
    #[inline]
    fn alt_bucket(&self, bucket: usize, fp: u16) -> usize {
        self.geometry.alt_bucket(bucket, fp)
    }

    fn pair_of(&self, key: u64) -> (u16, usize, usize) {
        let (fp, base) = self
            .fingerprinter
            .fingerprint_and_bucket(key, self.geometry.base_buckets());
        let l = self.geometry.home_bucket(base, fp);
        let alt = self.geometry.alt_bucket(l, fp);
        (fp, l, alt)
    }

    fn fingerprint_row(&self, attrs: &[u64]) -> Vec<u16> {
        self.attr_fp.fingerprint_vector(attrs)
    }

    /// Double the filter's capacity, migrating entries by their stored fingerprints
    /// alone ([`ccf_cuckoo::geometry::split_buckets`]). A converted group's head and
    /// continuation slots all carry the same κ, so they share a growth bit and migrate
    /// to the same bucket pair together; the remap cannot fail and preserves every
    /// query answer.
    pub fn grow(&mut self) {
        self.instruments.grows.inc();
        let old_m = self.buckets.len();
        let bit = self.geometry.growth_bits();
        self.buckets.resize_with(old_m * 2, Vec::new);
        split_buckets(&self.geometry, &mut self.buckets, old_m, bit, |e| e.fp());
        self.geometry.record_doubling();
        self.params.num_buckets = self.buckets.len();
    }

    /// Insert a row. Outcomes: `Inserted` (new vector entry), `Deduplicated` (identical
    /// (κ, α) already stored), `Merged` (added to an existing converted group),
    /// `Converted` (this row triggered a Bloom conversion). With `auto_grow`, a
    /// kick-exhaustion failure doubles the filter and retries (duplicate saturation
    /// never fails here — it converts — so every failure is a genuine capacity
    /// problem).
    pub fn insert_row<K: FilterKey>(
        &mut self,
        key: K,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        let key = key.lower(&self.key_lower);
        self.insert_row_prehashed(key, attrs)
    }

    /// [`MixedCcf::insert_row`] on already-lowered key material (see
    /// [`MixedCcf::key_lower_hasher`]). For `u64` keys the two are identical.
    pub fn insert_row_prehashed(
        &mut self,
        key: u64,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        let result = match self.params.check_arity(attrs) {
            Ok(()) => grow_and_retry(
                self,
                self.params.auto_grow,
                |f| f.try_insert_row(key, attrs),
                |_| true, // duplicate saturation converts instead of failing; growth always helps
                |f| f.grow(),
            ),
            Err(e) => Err(e),
        };
        self.instruments.record_insert(&result);
        result
    }

    fn try_insert_row(&mut self, key: u64, attrs: &[u64]) -> Result<InsertOutcome, InsertFailure> {
        let (fp, l, l_alt) = self.pair_of(key);
        let alpha = self.fingerprint_row(attrs);
        self.rows_absorbed += 1;
        let d = self.params.max_dupes;
        let b = self.params.entries_per_bucket;
        let pair: &[usize] = if l == l_alt { &[l] } else { &[l, l_alt] };

        // 1. Existing converted group for this fingerprint → merge.
        for &bkt in pair {
            if let Some(Entry::BloomHead { sketch, .. }) = self.buckets[bkt]
                .iter_mut()
                .find(|e| e.fp() == fp && matches!(e, Entry::BloomHead { .. }))
            {
                for (col, &afp) in alpha.iter().enumerate() {
                    sketch.insert_pair(col, u64::from(afp));
                }
                return Ok(InsertOutcome::Merged);
            }
        }

        // 2. Exact duplicate vector entry → dedupe.
        for &bkt in pair {
            if self.buckets[bkt].iter().any(
                |e| matches!(e, Entry::Vector { fp: efp, attrs } if *efp == fp && *attrs == alpha),
            ) {
                return Ok(InsertOutcome::Deduplicated);
            }
        }

        // 3. Pair already holds d vector copies of κ → convert them plus this row.
        let vector_copies: usize = pair
            .iter()
            .map(|&bkt| {
                self.buckets[bkt]
                    .iter()
                    .filter(|e| e.fp() == fp && matches!(e, Entry::Vector { .. }))
                    .count()
            })
            .sum();
        if vector_copies >= d {
            self.convert(fp, l, l_alt, &alpha);
            return Ok(InsertOutcome::Converted);
        }

        // 4. Plain vector insertion with kicks (movable entries only).
        let entry = Entry::Vector { fp, attrs: alpha };
        if self.buckets[l].len() < b {
            self.buckets[l].push(entry);
            self.occupied += 1;
            self.instruments.kick_depth.observe(0);
            return Ok(InsertOutcome::Inserted);
        }
        if self.buckets[l_alt].len() < b {
            self.buckets[l_alt].push(entry);
            self.occupied += 1;
            self.instruments.kick_depth.observe(0);
            return Ok(InsertOutcome::Inserted);
        }
        let mut carried = entry;
        let mut bucket = if self.rng.gen_bool(0.5) { l } else { l_alt };
        let mut swaps: Vec<(usize, usize)> = Vec::new();
        for _ in 0..self.params.max_kicks {
            if self.buckets[bucket].len() < b {
                self.buckets[bucket].push(carried);
                self.occupied += 1;
                self.instruments.kick_depth.observe(swaps.len() as u64);
                return Ok(InsertOutcome::Inserted);
            }
            // Any entry may be kicked: a kick only ever moves an entry to the other
            // bucket of its own pair, so a converted group's head and continuation
            // slots simply redistribute across the pair — exactly the packing freedom
            // the paper's bit layout assumes.
            let slot = self.rng.gen_range(0..b);
            std::mem::swap(&mut self.buckets[bucket][slot], &mut carried);
            swaps.push((bucket, slot));
            bucket = self.alt_bucket(bucket, carried.fp());
        }
        self.instruments.kick_depth.observe(swaps.len() as u64);
        self.instruments.rollbacks.inc();
        for (bkt, slot) in swaps.into_iter().rev() {
            std::mem::swap(&mut self.buckets[bkt][slot], &mut carried);
        }
        self.rows_absorbed -= 1;
        Err(InsertFailure::kicks_exhausted_at(self.load_factor()))
    }

    /// Algorithm 3: replace the `d` vector entries for `fp` in the pair (and the new
    /// row's fingerprints) with a single Bloom group occupying the same slots.
    fn convert(&mut self, fp: u16, l: usize, l_alt: usize, new_alpha: &[u16]) {
        let mut sketch = TinyBloom::new(
            self.params.conversion_bloom_bits(),
            self.conversion_hashes,
            &self.bloom_family,
        );
        for (col, &afp) in new_alpha.iter().enumerate() {
            sketch.insert_pair(col, u64::from(afp));
        }
        // Collect and remove the existing vector entries for this fingerprint,
        // remembering which bucket each slot came from so the group reoccupies them.
        let mut freed: Vec<usize> = Vec::new();
        let pair: Vec<usize> = if l == l_alt { vec![l] } else { vec![l, l_alt] };
        for &bkt in &pair {
            let mut i = 0;
            while i < self.buckets[bkt].len() {
                let matches = matches!(&self.buckets[bkt][i],
                    Entry::Vector { fp: efp, .. } if *efp == fp);
                if matches {
                    if let Entry::Vector { attrs, .. } = self.buckets[bkt].swap_remove(i) {
                        for (col, afp) in attrs.into_iter().enumerate() {
                            sketch.insert_pair(col, u64::from(afp));
                        }
                        freed.push(bkt);
                    }
                } else {
                    i += 1;
                }
            }
        }
        debug_assert!(
            !freed.is_empty(),
            "conversion triggered without vector copies"
        );
        // Re-occupy the freed slots: head first, continuations after.
        self.buckets[freed[0]].push(Entry::BloomHead { fp, sketch });
        for &bkt in freed.iter().skip(1) {
            self.buckets[bkt].push(Entry::Continuation { fp });
        }
        // Occupancy is unchanged: the group holds exactly the slots it freed.
        self.conversions += 1;
    }

    /// Delete one stored copy of a row. Vector entries (the vast majority of keys —
    /// everything below `d` duplicates) are deletable exactly as in the plain variant;
    /// a key whose rows were *converted* into a Bloom group (§6.1) refuses with
    /// [`DeleteFailure::ConvertedGroup`], because the group's sketch covers all of the
    /// key's rows collectively and cannot un-absorb one. Returns `Ok(true)` if a copy
    /// was removed, `Ok(false)` if none matched.
    ///
    /// The usual caveat applies: only delete rows known to have been inserted (a
    /// colliding (κ, α) pair from another row satisfies the match), and — as in the
    /// plain variant — exact duplicates were deduplicated at insert, so deletion has
    /// set semantics per (key, attributes): one delete retires the row however many
    /// times it was inserted. Deletion composes with growth: the pair is derived
    /// under the current split geometry.
    pub fn delete_row<K: FilterKey>(
        &mut self,
        key: K,
        attrs: &[u64],
    ) -> Result<bool, DeleteFailure> {
        let key = key.lower(&self.key_lower);
        self.delete_row_prehashed(key, attrs)
    }

    /// [`MixedCcf::delete_row`] on already-lowered key material.
    pub fn delete_row_prehashed(&mut self, key: u64, attrs: &[u64]) -> Result<bool, DeleteFailure> {
        let result = match self.params.check_delete_arity(attrs) {
            Ok(()) => {
                let alpha = self.fingerprint_row(attrs);
                let (fp, l, l_alt) = self.pair_of(key);
                self.remove_vector_entry(fp, l, l_alt, |attrs| *attrs == alpha)
            }
            Err(e) => Err(e),
        };
        self.instruments.record_delete(&result);
        result
    }

    /// Delete one stored vector entry carrying the key's fingerprint, regardless of
    /// its attribute vector; converted keys refuse with
    /// [`DeleteFailure::ConvertedGroup`] (see [`MixedCcf::delete_row`]).
    pub fn delete_key<K: FilterKey>(&mut self, key: K) -> Result<bool, DeleteFailure> {
        let key = key.lower(&self.key_lower);
        self.delete_key_prehashed(key)
    }

    /// [`MixedCcf::delete_key`] on already-lowered key material.
    pub fn delete_key_prehashed(&mut self, key: u64) -> Result<bool, DeleteFailure> {
        let (fp, l, l_alt) = self.pair_of(key);
        let result = self.remove_vector_entry(fp, l, l_alt, |_| true);
        self.instruments.record_delete(&result);
        result
    }

    /// Remove one vector entry for `fp` whose attribute fingerprints satisfy
    /// `matches`, refusing if the fingerprint's rows live in a converted group.
    fn remove_vector_entry(
        &mut self,
        fp: u16,
        l: usize,
        l_alt: usize,
        matches: impl Fn(&Vec<u16>) -> bool,
    ) -> Result<bool, DeleteFailure> {
        let pair: &[usize] = if l == l_alt { &[l] } else { &[l, l_alt] };
        // A converted group owns *all* of this fingerprint's rows in the pair, so its
        // presence makes any deletion for the fingerprint unanswerable.
        for &bkt in pair {
            if self.buckets[bkt]
                .iter()
                .any(|e| e.fp() == fp && !matches!(e, Entry::Vector { .. }))
            {
                return Err(DeleteFailure::ConvertedGroup);
            }
        }
        for &bkt in pair {
            if let Some(pos) = self.buckets[bkt].iter().position(
                |e| matches!(e, Entry::Vector { fp: efp, attrs } if *efp == fp && matches(attrs)),
            ) {
                self.buckets[bkt].swap_remove(pos);
                self.occupied -= 1;
                self.rows_absorbed = self.rows_absorbed.saturating_sub(1);
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Batched row deletion: equivalent to calling [`MixedCcf::delete_row`] per row in
    /// input order.
    pub fn delete_row_batch<K: FilterKey, A: AsRef<[u64]>>(
        &mut self,
        rows: &[(K, A)],
    ) -> Vec<Result<bool, DeleteFailure>> {
        rows.iter()
            .map(|(k, a)| self.delete_row_prehashed(k.lower(&self.key_lower), a.as_ref()))
            .collect()
    }

    /// [`MixedCcf::delete_row_batch`] on already-lowered key material.
    pub fn delete_row_batch_prehashed(
        &mut self,
        rows: &[(u64, &[u64])],
    ) -> Vec<Result<bool, DeleteFailure>> {
        rows.iter()
            .map(|&(k, a)| self.delete_row_prehashed(k, a))
            .collect()
    }

    /// Batched key deletion: equivalent to calling [`MixedCcf::delete_key`] per key in
    /// input order.
    pub fn delete_key_batch<K: FilterKey>(
        &mut self,
        keys: &[K],
    ) -> Vec<Result<bool, DeleteFailure>> {
        keys.iter()
            .map(|k| self.delete_key_prehashed(k.lower(&self.key_lower)))
            .collect()
    }

    /// [`MixedCcf::delete_key_batch`] on already-lowered key material.
    pub fn delete_key_batch_prehashed(&mut self, keys: &[u64]) -> Vec<Result<bool, DeleteFailure>> {
        keys.iter().map(|&k| self.delete_key_prehashed(k)).collect()
    }

    /// Query for a key under a predicate: vector entries are matched per column against
    /// the predicate's candidate fingerprints; converted groups are matched through
    /// their Bloom sketch (which stores fingerprints, §6.1).
    pub fn query<K: FilterKey>(&self, key: K, pred: &Predicate) -> bool {
        self.query_prehashed(key.lower(&self.key_lower), pred)
    }

    /// [`MixedCcf::query`] on already-lowered key material.
    pub fn query_prehashed(&self, key: u64, pred: &Predicate) -> bool {
        let (fp, l, l_alt) = self.pair_of(key);
        let hit = self.query_pair(fp, l, l_alt, pred);
        self.instruments.record_query(hit);
        hit
    }

    fn query_pair(&self, fp: u16, l: usize, l_alt: usize, pred: &Predicate) -> bool {
        let pair: &[usize] = if l == l_alt { &[l] } else { &[l, l_alt] };
        pair.iter().any(|&bkt| {
            self.buckets[bkt].iter().any(|e| match e {
                Entry::Vector { fp: efp, attrs } => {
                    *efp == fp && match_fingerprint_vector(pred, attrs, &self.attr_fp)
                }
                Entry::BloomHead { fp: efp, sketch } => {
                    *efp == fp && match_fingerprint_bloom(pred, sketch, &self.attr_fp)
                }
                Entry::Continuation { .. } => false,
            })
        })
    }

    /// Batched predicate query: bit-identical to calling [`MixedCcf::query`] per key,
    /// using the chunked hash→prefetch→probe driver ([`ccf_cuckoo::geometry::probe_chunked`]).
    /// `u64` key batches are lowered copy-free.
    pub fn query_batch<K: FilterKey>(&self, keys: &[K], pred: &Predicate) -> Vec<bool> {
        self.query_batch_prehashed(&K::lower_batch(keys, &self.key_lower), pred)
    }

    /// [`MixedCcf::query_batch`] on already-lowered key material.
    pub fn query_batch_prehashed(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
        let hits = probe_chunked(
            keys,
            |key| self.pair_of(key),
            |bucket| prefetch_index(&self.buckets, bucket),
            |fp, l, l_alt| self.query_pair(fp, l, l_alt, pred),
        );
        self.instruments.record_query_batch(&hits);
        hits
    }

    /// Key-only membership query.
    pub fn contains_key<K: FilterKey>(&self, key: K) -> bool {
        self.contains_key_prehashed(key.lower(&self.key_lower))
    }

    /// [`MixedCcf::contains_key`] on already-lowered key material.
    pub fn contains_key_prehashed(&self, key: u64) -> bool {
        let (fp, l, l_alt) = self.pair_of(key);
        self.buckets[l].iter().any(|e| e.fp() == fp)
            || self.buckets[l_alt].iter().any(|e| e.fp() == fp)
    }

    /// Batched key-only membership query (see [`MixedCcf::query_batch`]).
    pub fn contains_key_batch<K: FilterKey>(&self, keys: &[K]) -> Vec<bool> {
        self.contains_key_batch_prehashed(&K::lower_batch(keys, &self.key_lower))
    }

    /// [`MixedCcf::contains_key_batch`] on already-lowered key material.
    pub fn contains_key_batch_prehashed(&self, keys: &[u64]) -> Vec<bool> {
        probe_chunked(
            keys,
            |key| self.pair_of(key),
            |bucket| prefetch_index(&self.buckets, bucket),
            |fp, l, l_alt| {
                self.buckets[l].iter().any(|e| e.fp() == fp)
                    || self.buckets[l_alt].iter().any(|e| e.fp() == fp)
            },
        )
    }

    /// Predicate-only query: erase entries that cannot match and return the surviving
    /// key fingerprints as a standard cuckoo filter (the mixed variant has no chains,
    /// so erasing — rather than marking — is sound, as for the Bloom variant).
    pub fn predicate_filter(&self, pred: &Predicate) -> CuckooFilter {
        // The derived filter must share this filter's *split* geometry — after any
        // growth, bucket indices carry fingerprint-derived high bits that a filter
        // constructed flat at the current size would not reproduce.
        let mut out = CuckooFilter::with_split_geometry(
            self.geometry.base_buckets(),
            self.geometry.growth_bits(),
            ccf_cuckoo::CuckooFilterParams {
                num_buckets: self.geometry.base_buckets(),
                entries_per_bucket: self.params.entries_per_bucket,
                fingerprint_bits: self.params.fingerprint_bits,
                seed: self.params.seed,
                auto_grow: false,
                storage: self.params.storage,
                ..Default::default()
            },
        );
        for (bucket_idx, bucket) in self.buckets.iter().enumerate() {
            for e in bucket {
                let keep = match e {
                    Entry::Vector { attrs, .. } => {
                        match_fingerprint_vector(pred, attrs, &self.attr_fp)
                    }
                    Entry::BloomHead { sketch, .. } => {
                        match_fingerprint_bloom(pred, sketch, &self.attr_fp)
                    }
                    Entry::Continuation { .. } => false,
                };
                if keep {
                    out.insert_fingerprint(e.fp(), bucket_idx)
                        .expect("derived filter has identical geometry, insertion cannot fail");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> CcfParams {
        CcfParams {
            num_buckets: 1 << 10,
            entries_per_bucket: 6,
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 2,
            max_dupes: 3,
            seed,
            ..CcfParams::default()
        }
    }

    #[test]
    fn no_false_negatives_before_and_after_conversion() {
        let mut f = MixedCcf::new(params(1));
        // 100 keys × 12 distinct rows: every key converts (12 > d = 3).
        for key in 0..100u64 {
            for i in 0..12u64 {
                f.insert_row(key, &[500 + i, 700 + (i % 4)]).unwrap();
            }
        }
        assert!(f.conversions() >= 100);
        for key in 0..100u64 {
            for i in 0..12u64 {
                let pred = Predicate::any(2)
                    .and_eq(0, 500 + i)
                    .and_eq(1, 700 + (i % 4));
                assert!(f.query(key, &pred), "false negative for key {key} row {i}");
            }
            assert!(f.contains_key(key));
        }
    }

    #[test]
    fn conversion_caps_entries_per_key_at_d() {
        // Table 1: the mixed variant uses at most d entries per key.
        let mut f = MixedCcf::new(params(2));
        for i in 0..50u64 {
            f.insert_row(99, &[1000 + i, 2000 + i]).unwrap();
        }
        assert!(f.occupied_entries() <= f.params().max_dupes);
        assert_eq!(f.conversions(), 1);
    }

    #[test]
    fn low_duplication_keys_never_convert() {
        let mut f = MixedCcf::new(params(3));
        for key in 0..500u64 {
            for i in 0..2u64 {
                f.insert_row(key, &[i + 20, key % 5]).unwrap();
            }
        }
        assert_eq!(f.conversions(), 0);
        assert_eq!(f.occupied_entries(), 1000);
    }

    #[test]
    fn outcome_sequence_for_one_hot_key() {
        let mut f = MixedCcf::new(params(4));
        let key = 5u64;
        assert_eq!(
            f.insert_row(key, &[101, 1]).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(
            f.insert_row(key, &[102, 1]).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(
            f.insert_row(key, &[103, 1]).unwrap(),
            InsertOutcome::Inserted
        );
        // Fourth distinct row triggers the conversion of the three vectors.
        assert_eq!(
            f.insert_row(key, &[104, 1]).unwrap(),
            InsertOutcome::Converted
        );
        // Later rows merge into the converted group.
        assert_eq!(f.insert_row(key, &[105, 1]).unwrap(), InsertOutcome::Merged);
        // Exact duplicate before conversion would have been deduplicated; after
        // conversion it simply merges (the Bloom filter cannot distinguish).
        assert_eq!(f.insert_row(key, &[105, 1]).unwrap(), InsertOutcome::Merged);
    }

    #[test]
    fn wrong_attribute_values_are_mostly_rejected_after_conversion() {
        let mut f = MixedCcf::new(params(5));
        for key in 0..200u64 {
            for i in 0..8u64 {
                f.insert_row(key, &[i, 3]).unwrap();
            }
        }
        // Column 1 only ever holds value 3; query value 9 (both stored exactly thanks
        // to small values). False positives now come only from the converted Bloom.
        let fp = (0..200u64)
            .filter(|&k| f.query(k, &Predicate::any(2).and_eq(1, 9)))
            .count();
        let rate = fp as f64 / 200.0;
        assert!(rate < 0.6, "conversion Bloom FPR {rate} looks broken");
        // And a value that IS present matches for every key.
        for key in 0..200u64 {
            assert!(f.query(key, &Predicate::any(2).and_eq(1, 3)));
        }
    }

    #[test]
    fn predicate_filter_has_no_false_negatives() {
        let mut f = MixedCcf::new(params(6));
        for key in 0..1000u64 {
            let group = key % 3;
            for i in 0..(1 + (key % 6)) {
                f.insert_row(key, &[group, 50 + i]).unwrap();
            }
        }
        let derived = f.predicate_filter(&Predicate::any(2).and_eq(0, 1));
        for key in 0..1000u64 {
            if key % 3 == 1 {
                assert!(derived.contains(key), "predicate filter lost key {key}");
            }
        }
    }

    #[test]
    fn grow_preserves_vector_entries_and_converted_groups() {
        let mut f = MixedCcf::new(params(10));
        // Mix of light keys (vector entries) and hot keys (converted groups).
        for key in 0..200u64 {
            let rows = if key % 5 == 0 { 10 } else { 2 };
            for i in 0..rows {
                f.insert_row(key, &[500 + i, 700 + (i % 3)]).unwrap();
            }
        }
        assert!(f.conversions() > 0);
        let occupied = f.occupied_entries();
        f.grow();
        assert_eq!(f.occupied_entries(), occupied);
        for key in 0..200u64 {
            let rows = if key % 5 == 0 { 10 } else { 2 };
            for i in 0..rows {
                let pred = Predicate::any(2)
                    .and_eq(0, 500 + i)
                    .and_eq(1, 700 + (i % 3));
                assert!(
                    f.query(key, &pred),
                    "false negative for key {key} row {i} after growth"
                );
            }
            assert!(f.contains_key(key));
        }
    }

    #[test]
    fn auto_grow_accepts_four_times_the_sized_capacity() {
        let mut f = MixedCcf::new(
            CcfParams {
                num_buckets: 1 << 7,
                ..params(11)
            }
            .with_auto_grow(),
        );
        let four_n = 4 * f.capacity() as u64;
        for k in 0..four_n {
            f.insert_row(k, &[k % 6, k % 10])
                .unwrap_or_else(|e| panic!("auto-grow insert of {k} failed: {e}"));
        }
        assert!(f.growth_bits() >= 2);
        for k in 0..four_n {
            assert!(
                f.query(k, &Predicate::any(2).and_eq(0, k % 6).and_eq(1, k % 10)),
                "false negative for {k} after auto-growth"
            );
        }
    }

    #[test]
    fn predicate_filter_tracks_grown_geometry() {
        let mut f = MixedCcf::new(params(12));
        for key in 0..600u64 {
            let group = key % 3;
            for i in 0..(1 + (key % 6)) {
                f.insert_row(key, &[group, 50 + i]).unwrap();
            }
        }
        f.grow();
        let derived = f.predicate_filter(&Predicate::any(2).and_eq(0, 1));
        assert_eq!(derived.num_buckets(), f.params().num_buckets);
        for key in 0..600u64 {
            if key % 3 == 1 {
                assert!(
                    derived.contains(key),
                    "grown predicate filter lost key {key}"
                );
            }
        }
    }

    #[test]
    fn batch_queries_match_per_key_loops() {
        let mut f = MixedCcf::new(params(13));
        for key in 0..300u64 {
            for i in 0..(1 + key % 7) {
                f.insert_row(key, &[i + 30, key % 4]).unwrap();
            }
        }
        f.grow();
        let keys: Vec<u64> = (0..1000u64).collect();
        let pred = Predicate::any(2).and_eq(0, 31);
        let queried = f.query_batch(&keys, &pred);
        let contained = f.contains_key_batch(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(queried[i], f.query(k, &pred));
            assert_eq!(contained[i], f.contains_key(k));
        }
    }

    #[test]
    fn vector_entries_delete_but_converted_groups_refuse() {
        let mut f = MixedCcf::new(params(20));
        // Cold key: two vector rows, freely deletable.
        f.insert_row(5u64, &[300, 400]).unwrap();
        f.insert_row(5u64, &[301, 401]).unwrap();
        assert_eq!(f.delete_row(5u64, &[300, 400]), Ok(true));
        assert!(f.query(5u64, &Predicate::any(2).and_eq(0, 301).and_eq(1, 401)));
        assert!(!f.query(5u64, &Predicate::any(2).and_eq(0, 300).and_eq(1, 400)));
        // Hot key: conversion happens at d+1 distinct rows, after which deletion is a
        // typed refusal and the filter is untouched.
        for i in 0..8u64 {
            f.insert_row(9u64, &[500 + i, 600 + i]).unwrap();
        }
        assert_eq!(f.conversions(), 1);
        let occupied = f.occupied_entries();
        assert_eq!(
            f.delete_row(9u64, &[500, 600]),
            Err(DeleteFailure::ConvertedGroup)
        );
        assert_eq!(f.delete_key(9u64), Err(DeleteFailure::ConvertedGroup));
        assert_eq!(f.occupied_entries(), occupied);
        for i in 0..8u64 {
            assert!(
                f.query(
                    9u64,
                    &Predicate::any(2).and_eq(0, 500 + i).and_eq(1, 600 + i)
                ),
                "converted rows must survive refused deletions"
            );
        }
        // Deleting rows *before* conversion keeps the key below the conversion
        // threshold indefinitely.
        let mut g = MixedCcf::new(params(21));
        for round in 0..20u64 {
            g.insert_row(3u64, &[700 + round, 1]).unwrap();
            if round >= 2 {
                assert_eq!(g.delete_row(3u64, &[700 + round - 2, 1]), Ok(true));
            }
        }
        assert_eq!(g.conversions(), 0, "churned key must never convert");
    }

    #[test]
    fn delete_after_grow_finds_relocated_vector_entries() {
        let mut f = MixedCcf::new(params(22));
        for k in 0..800u64 {
            f.insert_row(k, &[k % 7, k % 11]).unwrap();
        }
        f.grow();
        for k in (0..800u64).step_by(2) {
            assert_eq!(
                f.delete_row(k, &[k % 7, k % 11]),
                Ok(true),
                "key {k} not found after growth"
            );
        }
        for k in (1..800u64).step_by(2) {
            assert!(f.contains_key(k), "undeleted key {k} lost");
        }
    }

    #[test]
    fn delete_batches_report_per_row_results() {
        let mut f = MixedCcf::new(params(23));
        f.insert_row(1u64, &[10, 20]).unwrap();
        for i in 0..6u64 {
            f.insert_row(2u64, &[30 + i, 40]).unwrap(); // converts
        }
        let results = f.delete_row_batch(&[
            (1u64, vec![10u64, 20]),
            (1u64, vec![10u64, 20]),
            (2u64, vec![30u64, 40]),
        ]);
        assert_eq!(
            results,
            vec![Ok(true), Ok(false), Err(DeleteFailure::ConvertedGroup)]
        );
        assert_eq!(f.delete_key_batch(&[1u64]), vec![Ok(false)]);
    }

    #[test]
    fn size_accounting_uses_mixed_entry_bits() {
        let f = MixedCcf::new(params(7));
        assert_eq!(f.size_bits(), 1024 * 6 * (12 + 16 + 1));
    }

    #[test]
    #[should_panic(expected = "must fit in one bucket")]
    fn d_larger_than_bucket_rejected() {
        let _ = MixedCcf::new(CcfParams {
            max_dupes: 5,
            entries_per_bucket: 4,
            ..params(8)
        });
    }

    #[test]
    fn skewed_workload_reaches_reasonable_load_factor() {
        let mut f = MixedCcf::new(CcfParams {
            num_buckets: 1 << 8,
            ..params(9)
        });
        let capacity = f.capacity();
        let mut inserted = 0usize;
        'outer: for key in 0u64.. {
            // Every 10th key is hot with 20 rows, others have 1.
            let rows = if key % 10 == 0 { 20 } else { 1 };
            for i in 0..rows {
                match f.insert_row(key, &[i + 60, (i * 3) % 50 + 60]) {
                    Ok(_) => inserted += 1,
                    Err(_) => break 'outer,
                }
            }
            if inserted > 3 * capacity {
                break;
            }
        }
        assert!(
            f.load_factor() > 0.6,
            "mixed CCF load factor at first failure only {}",
            f.load_factor()
        );
    }
}
