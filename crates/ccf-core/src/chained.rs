//! The CCF with chaining (§6.2, Algorithms 4 and 5) — the paper's central multiset
//! technique.
//!
//! Chaining allows a key to use more than one bucket pair. At most `d` copies of a key
//! fingerprint κ may live in a bucket pair (ℓ, ℓ′); once a pair is saturated, the next
//! pair in the chain starts at `h(min(ℓ, ℓ′), κ)`. A query walks the same chain and
//! stops at the first pair that is not saturated; if it walks `Lmax` saturated pairs it
//! returns true unconditionally, which is what preserves the no-false-negative
//! guarantee (Theorem 3) even for rows the insertion discarded.
//!
//! Cycle handling: the chain-hop hash additionally folds in the chain depth, so
//! revisiting a bucket pair at a different depth continues with fresh, independent
//! hops instead of repeating the cycle. This realizes the "detect cycles and extend the
//! chain" refinement of §6.2 (the paper suggests Floyd's algorithm; salting by depth
//! achieves the same extension deterministically, which both insertion and query need
//! to agree on). [`ChainedCcf::chain_cycle_stats`] still reports how often the raw
//! recurrence would have cycled, for the curious.

use ccf_cuckoo::geometry::{
    grow_and_retry, prefetch_index, probe_chunked, split_buckets, SplitGeometry,
};
use ccf_cuckoo::{GrowthStats, OccupancyStats};
use ccf_hash::{AttrFingerprinter, Fingerprinter, HashFamily, SaltedHasher};
use ccf_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::attr::match_fingerprint_vector;
use crate::instruments::CcfInstruments;
use crate::key::FilterKey;
use crate::outcome::{DeleteFailure, InsertFailure, InsertOutcome};
use crate::params::{CcfParams, ParamsError};
use crate::predicate::Predicate;

/// Safety cap on the number of bucket pairs a single insert/query may walk when
/// `Lmax = ∞`; in practice chains stay short, and hitting this indicates a saturated
/// filter rather than a correctness issue (queries that hit it return true, preserving
/// the no-false-negative guarantee).
const WALK_SAFETY_CAP: usize = 1 << 16;

/// One stored row: key fingerprint plus attribute fingerprint vector.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    fp: u16,
    attrs: Vec<u16>,
}

/// Conditional cuckoo filter with chaining.
#[derive(Debug, Clone)]
pub struct ChainedCcf {
    buckets: Vec<Vec<Entry>>,
    geometry: SplitGeometry,
    params: CcfParams,
    fingerprinter: Fingerprinter,
    attr_fp: AttrFingerprinter,
    chain_hasher: SaltedHasher,
    key_lower: SaltedHasher,
    rng: StdRng,
    occupied: usize,
    rows_absorbed: usize,
    rows_dropped: usize,
    max_chain_seen: usize,
    instruments: CcfInstruments,
}

impl ChainedCcf {
    /// Create an empty filter. `params.num_buckets` is rounded up to a power of two.
    ///
    /// # Panics
    /// Panics on impossible parameters; use [`ChainedCcf::try_new`] (or the
    /// [`crate::CcfBuilder`] facade) to get a [`ParamsError`] instead.
    pub fn new(params: CcfParams) -> Self {
        Self::try_new(params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Create an empty filter, reporting impossible parameters as a [`ParamsError`].
    /// `params.num_buckets` is rounded up to a power of two.
    pub fn try_new(mut params: CcfParams) -> Result<Self, ParamsError> {
        params.num_buckets = params.num_buckets.next_power_of_two().max(1);
        params.try_validate()?;
        let family = HashFamily::new(params.seed);
        Ok(Self {
            buckets: vec![Vec::new(); params.num_buckets],
            geometry: SplitGeometry::new(&family, params.num_buckets, 0),
            fingerprinter: Fingerprinter::new(&family, params.fingerprint_bits),
            attr_fp: AttrFingerprinter::new(&family, params.attr_bits, params.small_value_opt),
            chain_hasher: family.hasher(ccf_hash::salted::purpose::CHAIN),
            key_lower: family.hasher(ccf_hash::salted::purpose::KEY_LOWER),
            rng: StdRng::seed_from_u64(params.seed ^ 0xC4A1),
            occupied: 0,
            rows_absorbed: 0,
            rows_dropped: 0,
            max_chain_seen: 0,
            instruments: CcfInstruments::disabled(),
            params,
        })
    }

    /// Variant payload of the [`crate::AnyCcf`] snapshot format: growth state, exact
    /// RNG words, the chained variant's extra counters (dropped rows, deepest chain
    /// walk), and every bucket's entries.
    pub(crate) fn snapshot_payload(&self, w: &mut ccf_cuckoo::ByteWriter) {
        w.put_u32(self.geometry.growth_bits());
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_usize(self.rows_absorbed);
        w.put_usize(self.rows_dropped);
        w.put_usize(self.max_chain_seen);
        for bucket in &self.buckets {
            w.put_u16(u16::try_from(bucket.len()).expect("bucket wider than u16"));
            for entry in bucket {
                w.put_u16(entry.fp);
                for &a in &entry.attrs {
                    w.put_u16(a);
                }
            }
        }
    }

    /// Inverse of [`ChainedCcf::snapshot_payload`]; see
    /// [`crate::PlainCcf::from_snapshot_payload`] for the shared validation rules.
    pub(crate) fn from_snapshot_payload(
        params: CcfParams,
        r: &mut ccf_cuckoo::ByteReader<'_>,
    ) -> Result<Self, ccf_cuckoo::SnapshotError> {
        use ccf_cuckoo::SnapshotError;
        let growth_bits = r.get_u32()?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64()?;
        }
        let rows_absorbed = r.get_usize()?;
        let rows_dropped = r.get_usize()?;
        let max_chain_seen = r.get_usize()?;
        let base = crate::snapshot::split_growth(params.num_buckets, growth_bits)?;
        let mut f = Self::try_new(CcfParams {
            num_buckets: base,
            ..params
        })
        .map_err(|e| SnapshotError::Invalid(e.to_string()))?;
        if growth_bits > 0 {
            let family = HashFamily::new(params.seed);
            f.geometry = SplitGeometry::new(&family, base, growth_bits);
            f.buckets = vec![Vec::new(); params.num_buckets];
            f.params.num_buckets = params.num_buckets;
        }
        let mut occupied = 0usize;
        for bucket in &mut f.buckets {
            let len = usize::from(r.get_u16()?);
            if len > params.entries_per_bucket {
                return Err(SnapshotError::Invalid(format!(
                    "bucket holds {len} entries but b = {}",
                    params.entries_per_bucket
                )));
            }
            bucket.reserve_exact(len);
            for _ in 0..len {
                let fp = r.get_u16()?;
                if fp == 0 {
                    return Err(SnapshotError::Invalid("stored fingerprint is zero".into()));
                }
                let mut attrs = Vec::with_capacity(params.num_attrs);
                for _ in 0..params.num_attrs {
                    attrs.push(r.get_u16()?);
                }
                bucket.push(Entry { fp, attrs });
            }
            occupied += len;
        }
        f.occupied = occupied;
        f.rows_absorbed = rows_absorbed;
        f.rows_dropped = rows_dropped;
        f.max_chain_seen = max_chain_seen;
        f.rng = StdRng::from_state(rng_state);
        Ok(f)
    }

    /// Resolve this filter's [`CcfInstruments`] against `telemetry` (series get
    /// `variant="chained"` plus `extra` labels, and the chain-walk histogram is
    /// enabled). Call once; hot paths then record through pre-resolved handles.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, extra: &[(&str, &str)]) {
        self.instruments = CcfInstruments::resolve_chained(telemetry, "chained", extra);
    }

    /// The telemetry bundle events are recorded into (disabled by default).
    pub fn instruments(&self) -> &CcfInstruments {
        &self.instruments
    }

    /// The hasher typed keys are lowered with ([`FilterKey::lower`]); see
    /// [`crate::key`] for the prehashed-key contract.
    pub fn key_lower_hasher(&self) -> SaltedHasher {
        self.key_lower
    }

    /// The filter's parameters (with `num_buckets` normalized).
    pub fn params(&self) -> &CcfParams {
        &self.params
    }

    /// Number of occupied entries.
    pub fn occupied_entries(&self) -> usize {
        self.occupied
    }

    /// Number of rows absorbed (including deduplicated and dropped rows).
    pub fn rows_absorbed(&self) -> usize {
        self.rows_absorbed
    }

    /// Number of rows discarded because the chain cap `Lmax` was reached.
    pub fn rows_dropped(&self) -> usize {
        self.rows_dropped
    }

    /// Longest chain (number of bucket pairs) any insertion has walked.
    pub fn max_chain_seen(&self) -> usize {
        self.max_chain_seen
    }

    /// Total entry slots `m · b`.
    pub fn capacity(&self) -> usize {
        self.buckets.len() * self.params.entries_per_bucket
    }

    /// Load factor β.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    /// Serialized size in bits: every slot carries |κ| + #α·|α| bits.
    pub fn size_bits(&self) -> usize {
        self.capacity() * self.params.vector_entry_bits()
    }

    /// The attribute fingerprinter used by this filter.
    pub fn attr_fingerprinter(&self) -> &AttrFingerprinter {
        &self.attr_fp
    }

    /// Number of capacity doublings applied so far.
    pub fn growth_bits(&self) -> u32 {
        self.geometry.growth_bits()
    }

    /// Per-bucket occupancy summary, including the actual heap footprint of the
    /// bucket storage (spine, per-bucket entry arrays, and per-entry attribute
    /// vectors).
    pub fn occupancy(&self) -> OccupancyStats {
        let heap = std::mem::size_of_val(self.buckets.as_slice())
            + self
                .buckets
                .iter()
                .map(|b| {
                    std::mem::size_of_val(b.as_slice())
                        + b.iter()
                            .map(|e| std::mem::size_of_val(e.attrs.as_slice()))
                            .sum::<usize>()
                })
                .sum::<usize>();
        OccupancyStats::from_counts(
            self.buckets.iter().map(Vec::len),
            self.params.entries_per_bucket,
        )
        .with_heap_bytes(heap)
    }

    /// Resize-history summary.
    pub fn growth_stats(&self) -> GrowthStats {
        GrowthStats {
            base_buckets: self.geometry.base_buckets(),
            current_buckets: self.buckets.len(),
            growth_bits: self.geometry.growth_bits(),
        }
    }

    /// Raw storage snapshot: per bucket, the (κ, attribute-fingerprint-vector) entries
    /// in slot order. Used by rollback tests and state diagnostics; two filters with
    /// equal snapshots answer every query identically.
    pub fn bucket_snapshot(&self) -> Vec<Vec<(u16, Vec<u16>)>> {
        self.buckets
            .iter()
            .map(|bucket| bucket.iter().map(|e| (e.fp, e.attrs.clone())).collect())
            .collect()
    }

    /// The alternate bucket ℓ′ = ℓ ⊕ h(κ), with the xor confined to the base-geometry
    /// bits so a pair always shares its growth bits.
    #[inline]
    fn alt_bucket(&self, bucket: usize, fp: u16) -> usize {
        self.geometry.alt_bucket(bucket, fp)
    }

    /// The (fingerprint, primary bucket) pair for a key under the current geometry.
    #[inline]
    fn home_of(&self, key: u64) -> (u16, usize) {
        let (fp, base) = self
            .fingerprinter
            .fingerprint_and_bucket(key, self.geometry.base_buckets());
        (fp, self.geometry.home_bucket(base, fp))
    }

    /// The start bucket of the next chain pair: `h(min(ℓ, ℓ′), κ)` salted with the
    /// chain depth (cycle resolution — see module docs). The hop only rewrites the
    /// base-geometry bits ([`SplitGeometry::rebase`]): the whole chain of a
    /// fingerprint stays inside its growth block, which is what lets growth migrate
    /// chained entries as a pure remap.
    #[inline]
    fn next_chain_bucket(&self, l: usize, l_alt: usize, fp: u16, depth: usize) -> usize {
        let lmin = l.min(l_alt);
        let hop = self.chain_hasher.hash_pair(
            (lmin & self.geometry.base_mask()) as u64,
            (u64::from(fp) << 32) | depth as u64,
        ) as usize;
        self.geometry.rebase(hop, lmin)
    }

    /// Double the filter's capacity, migrating entries by their stored fingerprints
    /// alone ([`ccf_cuckoo::geometry::split_buckets`]). Entries of one fingerprint
    /// move together (same growth bit), every bucket pair maps onto a pair, and chain
    /// hops only rewrite base-geometry bits — so the remap preserves per-pair
    /// saturation counts and every chain walk, and cannot fail. No original keys (and
    /// no chain re-walking) are needed.
    pub fn grow(&mut self) {
        self.instruments.grows.inc();
        let old_m = self.buckets.len();
        let bit = self.geometry.growth_bits();
        self.buckets.resize_with(old_m * 2, Vec::new);
        split_buckets(&self.geometry, &mut self.buckets, old_m, bit, |e| e.fp);
        self.geometry.record_doubling();
        self.params.num_buckets = self.buckets.len();
    }

    fn max_walk(&self) -> usize {
        self.params.max_chain.unwrap_or(WALK_SAFETY_CAP)
    }

    /// Count entries with fingerprint `fp` in the pair (l, l_alt).
    fn pair_fp_count(&self, l: usize, l_alt: usize, fp: u16) -> usize {
        let first = self.buckets[l].iter().filter(|e| e.fp == fp).count();
        if l == l_alt {
            first
        } else {
            first + self.buckets[l_alt].iter().filter(|e| e.fp == fp).count()
        }
    }

    /// Insert a row (Algorithm 4). Exact duplicates of a stored (κ, α) pair are
    /// deduplicated; rows beyond the chain cap are dropped (still covered by the
    /// no-false-negative guarantee). Without `auto_grow`, kick exhaustion fails and
    /// rolls back; with it, the filter doubles and retries (chained filters never
    /// fail on duplicate saturation — that is what chains are for — so every
    /// `KicksExhausted` is a genuine capacity problem growth can relieve).
    pub fn insert_row<K: FilterKey>(
        &mut self,
        key: K,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        let key = key.lower(&self.key_lower);
        self.insert_row_prehashed(key, attrs)
    }

    /// [`ChainedCcf::insert_row`] on already-lowered key material (see
    /// [`ChainedCcf::key_lower_hasher`]). For `u64` keys the two are identical.
    pub fn insert_row_prehashed(
        &mut self,
        key: u64,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        let result = match self.params.check_arity(attrs) {
            Ok(()) => grow_and_retry(
                self,
                self.params.auto_grow,
                |f| f.try_insert_row(key, attrs),
                |_| true, // chained failures are genuine fullness; growth always helps
                |f| f.grow(),
            ),
            Err(e) => Err(e),
        };
        self.instruments.record_insert(&result);
        result
    }

    fn try_insert_row(&mut self, key: u64, attrs: &[u64]) -> Result<InsertOutcome, InsertFailure> {
        let (fp, mut l) = self.home_of(key);
        let entry = Entry {
            fp,
            attrs: self.attr_fp.fingerprint_vector(attrs),
        };
        self.rows_absorbed += 1;
        let d = self.params.max_dupes;
        let b = self.params.entries_per_bucket;
        let max_walk = self.max_walk();

        for depth in 0..max_walk {
            self.max_chain_seen = self.max_chain_seen.max(depth + 1);
            let l_alt = self.alt_bucket(l, fp);

            // Dedupe: (κ, α) already present in this pair.
            if self.buckets[l].contains(&entry) || self.buckets[l_alt].contains(&entry) {
                self.instruments.chain_walk_depth.observe(depth as u64);
                return Ok(InsertOutcome::Deduplicated);
            }

            // Pair saturated with d copies of κ: move to the next pair in the chain.
            if self.pair_fp_count(l, l_alt, fp) >= d {
                l = self.next_chain_bucket(l, l_alt, fp, depth);
                continue;
            }

            // Room in the primary bucket?
            if self.buckets[l].len() < b {
                self.buckets[l].push(entry);
                self.occupied += 1;
                self.instruments.chain_walk_depth.observe(depth as u64);
                self.instruments.kick_depth.observe(0);
                return Ok(InsertOutcome::Inserted);
            }
            // Room in the alternate bucket, else kick loop on it (Algorithm 4's loop).
            let mut carried = entry;
            let mut bucket = l_alt;
            let mut swaps: Vec<(usize, usize)> = Vec::new();
            for _ in 0..self.params.max_kicks {
                if self.buckets[bucket].len() < b {
                    self.buckets[bucket].push(carried);
                    self.occupied += 1;
                    self.instruments.chain_walk_depth.observe(depth as u64);
                    self.instruments.kick_depth.observe(swaps.len() as u64);
                    return Ok(InsertOutcome::Inserted);
                }
                let slot = self.rng.gen_range(0..b);
                std::mem::swap(&mut self.buckets[bucket][slot], &mut carried);
                swaps.push((bucket, slot));
                // The carried item is now the kicked victim; move it towards its
                // alternate bucket (within its own pair, so lemma 1's cap is kept).
                bucket = self.alt_bucket(bucket, carried.fp);
            }
            // Exhausted kicks: roll back so earlier rows keep their guarantee.
            self.instruments.chain_walk_depth.observe(depth as u64);
            self.instruments.kick_depth.observe(swaps.len() as u64);
            self.instruments.rollbacks.inc();
            for (bucket, slot) in swaps.into_iter().rev() {
                std::mem::swap(&mut self.buckets[bucket][slot], &mut carried);
            }
            self.rows_absorbed -= 1;
            return Err(InsertFailure::kicks_exhausted_at(self.load_factor()));
        }
        // Chain cap Lmax reached with every pair saturated: the row is discarded, but
        // queries walking the same saturated chain return true (Theorem 3).
        self.instruments.chain_walk_depth.observe(max_walk as u64);
        self.rows_dropped += 1;
        Ok(InsertOutcome::DroppedChainCap)
    }

    /// Delete one stored copy of a row without breaking the chain encoding.
    ///
    /// The chain is a counting code: a query walks to the next bucket pair only while
    /// the current pair holds `d` copies of κ, so naïvely removing a copy from a
    /// saturated pair would strand every entry stored deeper in the chain (a false
    /// negative). Deletion therefore always *shrinks the chain from its tail*: the
    /// matching entry is located, the deepest pair still holding κ copies is located,
    /// and if they differ, the deepest copy is moved into the matched entry's slot
    /// before the tail copy is removed. Every pair's saturation count is preserved
    /// except the tail's, which decrements — exactly the inverse of how insertion
    /// extends the chain, so chain traversal (and Lemma 2's first-pair invariant,
    /// which key-only queries rely on) survives arbitrary delete/insert interleaving.
    ///
    /// Returns `Ok(true)` if a copy was removed, `Ok(false)` if no stored entry
    /// matched — including rows that were discarded at the chain cap (`Lmax`), which
    /// were never stored. Exact duplicates were deduplicated at insert
    /// ([`InsertOutcome::Deduplicated`] — they share one entry), so deletion has set
    /// semantics per (key, attributes): one delete retires the row however many times
    /// it was inserted. Deletion composes with growth: pairs and chain hops are
    /// derived under the current split geometry, so relocated copies are found.
    ///
    /// # Exactness and the fingerprint-collision caveat
    ///
    /// For a key whose fingerprint κ is not shared by another live key, deletion is
    /// *exact*: arbitrary insert/delete/grow interleavings never strand a stored row
    /// (pinned by the collision-free churn property tests). The classic cuckoo
    /// deletion caveat, however, is amplified by chains: two distinct keys that share
    /// κ share each other's saturation counts wherever their chains overlap, and a
    /// deletion for one can shorten the other's walk, transiently hiding its deeper
    /// rows (subsequent inserts of either key re-extend the walk). The entanglement
    /// probability is ≈ `n²·c²∕(2^{|κ|}·m)` for `n` live keys with `c`-bucket chains
    /// — negligible at production fingerprint widths, measured honestly as the
    /// *collision casualty rate* by the `churn` experiment harness. Churn-heavy
    /// chained deployments should size |κ| with deletion in mind, and, as with every
    /// cuckoo filter, only rows known to be present may be deleted.
    pub fn delete_row<K: FilterKey>(
        &mut self,
        key: K,
        attrs: &[u64],
    ) -> Result<bool, DeleteFailure> {
        let key = key.lower(&self.key_lower);
        self.delete_row_prehashed(key, attrs)
    }

    /// [`ChainedCcf::delete_row`] on already-lowered key material.
    pub fn delete_row_prehashed(&mut self, key: u64, attrs: &[u64]) -> Result<bool, DeleteFailure> {
        let result = match self.params.check_delete_arity(attrs) {
            Ok(()) => {
                let alpha = self.attr_fp.fingerprint_vector(attrs);
                let (fp, l) = self.home_of(key);
                Ok(self.delete_from_chain(fp, l, |e| e.attrs == alpha))
            }
            Err(e) => Err(e),
        };
        self.instruments.record_delete(&result);
        result
    }

    /// Delete one stored entry carrying the key's fingerprint, regardless of its
    /// attribute vector (see [`ChainedCcf::delete_row`] for the chain-safety
    /// mechanics; the deepest copy is removed, shrinking the chain from its tail).
    pub fn delete_key<K: FilterKey>(&mut self, key: K) -> Result<bool, DeleteFailure> {
        let key = key.lower(&self.key_lower);
        self.delete_key_prehashed(key)
    }

    /// [`ChainedCcf::delete_key`] on already-lowered key material.
    pub fn delete_key_prehashed(&mut self, key: u64) -> Result<bool, DeleteFailure> {
        let (fp, l) = self.home_of(key);
        let result = Ok(self.delete_from_chain(fp, l, |_| true));
        self.instruments.record_delete(&result);
        result
    }

    /// The sequence of bucket pairs a walk for `fp` starting at `home` visits, under
    /// the *current* counts: pairs are appended while saturated (≥ d copies of κ) and
    /// the first non-saturated pair ends the list. The hop sequence itself is
    /// deterministic (it depends only on the pair, κ and the depth), so this prefix is
    /// exactly the set of pairs a query would scan — and, by the chain invariant,
    /// every stored copy of κ lives in one of its buckets.
    fn walk_pairs(&self, fp: u16, home: usize) -> Vec<(usize, usize)> {
        let d = self.params.max_dupes;
        let mut pairs = Vec::new();
        let mut l = home;
        for depth in 0..self.max_walk() {
            let l_alt = self.alt_bucket(l, fp);
            pairs.push((l, l_alt));
            if self.pair_fp_count(l, l_alt, fp) >= d {
                l = self.next_chain_bucket(l, l_alt, fp, depth);
            } else {
                break;
            }
        }
        pairs
    }

    /// Walk the key's chain, remove one entry satisfying `matches`, and repair the
    /// chain encoding (module-level mechanics in [`ChainedCcf::delete_row`]).
    ///
    /// The deepest matching copy is removed (tail-first), then
    /// [`ChainedCcf::repair_chain`] restores the saturation invariant. "Depth" of an
    /// entry means the first walk depth whose pair contains the entry's bucket —
    /// chain hops occasionally land on a bucket an earlier pair already uses, and
    /// that aliasing is precisely what the repair pass exists for.
    fn delete_from_chain(
        &mut self,
        fp: u16,
        home: usize,
        matches: impl Fn(&Entry) -> bool,
    ) -> bool {
        let pairs = self.walk_pairs(fp, home);
        let visited = visited_buckets(&pairs);
        // Deepest (by first-visit depth) entry satisfying the match.
        let mut matched: Option<(usize, usize, usize)> = None; // (first_depth, bucket, slot)
        for &(fd, bkt) in &visited {
            for slot in 0..self.buckets[bkt].len() {
                let e = &self.buckets[bkt][slot];
                if e.fp == fp && matches(e) && matched.map_or(true, |(mfd, _, _)| fd >= mfd) {
                    matched = Some((fd, bkt, slot));
                }
            }
        }
        let Some((_, mb, ms)) = matched else {
            return false;
        };
        self.buckets[mb].swap_remove(ms);
        self.occupied -= 1;
        self.rows_absorbed = self.rows_absorbed.saturating_sub(1);
        self.repair_chain(fp, &pairs, &visited);
        true
    }

    /// Restore the chain invariant after a removal: every pair shallower than the
    /// deepest remaining copy must stay saturated (hold ≥ d copies), or the query
    /// walk would stop early and strand the deeper copies. A removal can dent a
    /// shallower pair's count only through bucket aliasing (the removed slot's bucket
    /// also belongs to that pair) — in which case the freed slot sits *in* the dented
    /// pair, so the deficit is repaired by pulling the deepest remaining copy into
    /// it. Each pull moves an entry strictly shallower, so the loop terminates; in
    /// the common (alias-free) case it exits on the first pass without moving
    /// anything.
    fn repair_chain(&mut self, fp: u16, pairs: &[(usize, usize)], visited: &[(usize, usize)]) {
        let d = self.params.max_dupes;
        let b = self.params.entries_per_bucket;
        loop {
            // Deepest first-visit depth among the remaining copies.
            let deepest = visited
                .iter()
                .filter(|&&(_, bkt)| self.buckets[bkt].iter().any(|e| e.fp == fp))
                .map(|&(fd, _)| fd)
                .max();
            let Some(deepest) = deepest else { return };
            // Shallowest dented pair in front of it.
            let deficit = pairs[..deepest]
                .iter()
                .position(|&(l, l_alt)| self.pair_fp_count(l, l_alt, fp) < d);
            let Some(t) = deficit else { return };
            // Donor: any copy whose bucket first appears at the deepest depth.
            let Some(&(_, donor_bkt)) = visited
                .iter()
                .find(|&&(fd, bkt)| fd == deepest && self.buckets[bkt].iter().any(|e| e.fp == fp))
            else {
                return;
            };
            let donor_slot = self.buckets[donor_bkt]
                .iter()
                .position(|e| e.fp == fp)
                .expect("donor bucket holds a copy");
            // Target: a bucket of the dented pair with spare capacity — the freed
            // slot is in one of them by construction.
            let (l, l_alt) = pairs[t];
            let target = [l, l_alt]
                .into_iter()
                .find(|&bkt| self.buckets[bkt].len() < b);
            let Some(target) = target else {
                debug_assert!(false, "dented chain pair has no free slot");
                return;
            };
            let entry = self.buckets[donor_bkt].swap_remove(donor_slot);
            self.buckets[target].push(entry);
        }
    }

    /// Batched row deletion: equivalent to calling [`ChainedCcf::delete_row`] per row
    /// in input order.
    pub fn delete_row_batch<K: FilterKey, A: AsRef<[u64]>>(
        &mut self,
        rows: &[(K, A)],
    ) -> Vec<Result<bool, DeleteFailure>> {
        rows.iter()
            .map(|(k, a)| self.delete_row_prehashed(k.lower(&self.key_lower), a.as_ref()))
            .collect()
    }

    /// [`ChainedCcf::delete_row_batch`] on already-lowered key material.
    pub fn delete_row_batch_prehashed(
        &mut self,
        rows: &[(u64, &[u64])],
    ) -> Vec<Result<bool, DeleteFailure>> {
        rows.iter()
            .map(|&(k, a)| self.delete_row_prehashed(k, a))
            .collect()
    }

    /// Batched key deletion: equivalent to calling [`ChainedCcf::delete_key`] per key
    /// in input order.
    pub fn delete_key_batch<K: FilterKey>(
        &mut self,
        keys: &[K],
    ) -> Vec<Result<bool, DeleteFailure>> {
        keys.iter()
            .map(|k| self.delete_key_prehashed(k.lower(&self.key_lower)))
            .collect()
    }

    /// [`ChainedCcf::delete_key_batch`] on already-lowered key material.
    pub fn delete_key_batch_prehashed(&mut self, keys: &[u64]) -> Vec<Result<bool, DeleteFailure>> {
        keys.iter().map(|&k| self.delete_key_prehashed(k)).collect()
    }

    /// Query for a key under a predicate (Algorithm 5).
    pub fn query<K: FilterKey>(&self, key: K, pred: &Predicate) -> bool {
        self.query_prehashed(key.lower(&self.key_lower), pred)
    }

    /// [`ChainedCcf::query`] on already-lowered key material.
    pub fn query_prehashed(&self, key: u64, pred: &Predicate) -> bool {
        let (fp, l) = self.home_of(key);
        let hit = self.query_walk(fp, l, |e| {
            match_fingerprint_vector(pred, &e.attrs, &self.attr_fp)
        });
        self.instruments.record_query(hit);
        hit
    }

    /// Batched predicate query: bit-identical to calling [`ChainedCcf::query`] per
    /// key. The `(κ, ℓ, ℓ′)` triples for every key are derived in a hash-only first
    /// pass; the probe pass then streams over them (chains beyond the first pair are
    /// rare and walked on demand). `u64` key batches are lowered copy-free.
    pub fn query_batch<K: FilterKey>(&self, keys: &[K], pred: &Predicate) -> Vec<bool> {
        self.query_batch_prehashed(&K::lower_batch(keys, &self.key_lower), pred)
    }

    /// [`ChainedCcf::query_batch`] on already-lowered key material.
    pub fn query_batch_prehashed(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
        let hits = probe_chunked(
            keys,
            |key| self.first_pair_of(key),
            |bucket| prefetch_index(&self.buckets, bucket),
            |fp, l, l_alt| {
                self.query_walk_from(fp, l, l_alt, |e| {
                    match_fingerprint_vector(pred, &e.attrs, &self.attr_fp)
                })
            },
        );
        self.instruments.record_query_batch(&hits);
        hits
    }

    /// Key-only membership query. Lemma 2 implies only the first bucket pair needs to
    /// be examined: if the key was ever inserted, a copy of its fingerprint is in the
    /// first pair.
    pub fn contains_key<K: FilterKey>(&self, key: K) -> bool {
        self.contains_key_prehashed(key.lower(&self.key_lower))
    }

    /// [`ChainedCcf::contains_key`] on already-lowered key material.
    pub fn contains_key_prehashed(&self, key: u64) -> bool {
        let (fp, l) = self.home_of(key);
        let l_alt = self.alt_bucket(l, fp);
        self.buckets[l].iter().any(|e| e.fp == fp) || self.buckets[l_alt].iter().any(|e| e.fp == fp)
    }

    /// Batched key-only membership query (see [`ChainedCcf::query_batch`]).
    pub fn contains_key_batch<K: FilterKey>(&self, keys: &[K]) -> Vec<bool> {
        self.contains_key_batch_prehashed(&K::lower_batch(keys, &self.key_lower))
    }

    /// [`ChainedCcf::contains_key_batch`] on already-lowered key material.
    pub fn contains_key_batch_prehashed(&self, keys: &[u64]) -> Vec<bool> {
        probe_chunked(
            keys,
            |key| self.first_pair_of(key),
            |bucket| prefetch_index(&self.buckets, bucket),
            |fp, l, l_alt| {
                self.buckets[l].iter().any(|e| e.fp == fp)
                    || self.buckets[l_alt].iter().any(|e| e.fp == fp)
            },
        )
    }

    /// The `(κ, ℓ, ℓ′)` triple of a key's first bucket pair.
    #[inline]
    fn first_pair_of(&self, key: u64) -> (u16, usize, usize) {
        let (fp, l) = self.home_of(key);
        (fp, l, self.alt_bucket(l, fp))
    }

    /// Walk the chain, applying `matches` to each entry carrying the key's fingerprint.
    fn query_walk<F: Fn(&Entry) -> bool>(&self, fp: u16, l: usize, matches: F) -> bool {
        let l_alt = self.alt_bucket(l, fp);
        self.query_walk_from(fp, l, l_alt, matches)
    }

    /// [`ChainedCcf::query_walk`] with the first pair's alternate bucket already
    /// derived (the batched path precomputes it).
    fn query_walk_from<F: Fn(&Entry) -> bool>(
        &self,
        fp: u16,
        mut l: usize,
        mut l_alt: usize,
        matches: F,
    ) -> bool {
        let d = self.params.max_dupes;
        let max_walk = self.max_walk();
        for depth in 0..max_walk {
            let mut count = 0usize;
            let buckets: &[usize] = if l == l_alt { &[l] } else { &[l, l_alt] };
            for &bkt in buckets {
                for e in &self.buckets[bkt] {
                    if e.fp == fp {
                        count += 1;
                        if matches(e) {
                            return true;
                        }
                    }
                }
            }
            if count >= d {
                l = self.next_chain_bucket(l, l_alt, fp, depth);
                l_alt = self.alt_bucket(l, fp);
            } else {
                return false;
            }
        }
        // Lmax saturated pairs inspected without an answer: return true (§6.2).
        true
    }

    /// Predicate-only query (§6.2): derive a key filter for the set of keys whose
    /// attributes match the predicate. Entries with non-matching attributes are *kept*
    /// but marked non-matching, so chains stay intact and key queries on the derived
    /// filter preserve the no-false-negative guarantee.
    pub fn predicate_filter(&self, pred: &Predicate) -> ChainedPredicateFilter {
        let marked: Vec<Vec<(u16, bool)>> = self
            .buckets
            .iter()
            .map(|bucket| {
                bucket
                    .iter()
                    .map(|e| {
                        (
                            e.fp,
                            match_fingerprint_vector(pred, &e.attrs, &self.attr_fp),
                        )
                    })
                    .collect()
            })
            .collect();
        ChainedPredicateFilter {
            buckets: marked,
            // The derived filter copies the source's geometry and hashers verbatim, so
            // its walk agrees bucket-for-bucket at any growth level.
            geometry: self.geometry,
            params: self.params,
            fingerprinter: self.fingerprinter,
            chain_hasher: self.chain_hasher,
            key_lower: self.key_lower,
        }
    }

    /// The key's fingerprint — exposed so churn harnesses and tests can reason about
    /// cross-key fingerprint collisions (the one condition under which deletion is
    /// approximate; see [`ChainedCcf::delete_row`]).
    pub fn fingerprint_of<K: FilterKey>(&self, key: K) -> u16 {
        self.home_of(key.lower(&self.key_lower)).0
    }

    /// Diagnostics: walking the *unsalted* paper recurrence
    /// ℓ₁, ℓ₂ = ℓ₁ ⊕ h(κ), ℓ₃ = h(min(ℓ₁, ℓ₂), κ), ... for `steps` hops from each of
    /// `sample_keys`, how many walks revisit a bucket pair (i.e. would have cycled
    /// without cycle resolution)?
    pub fn chain_cycle_stats(&self, sample_keys: &[u64], steps: usize) -> usize {
        let mut cycles = 0;
        for &key in sample_keys {
            let (fp, mut l) = self.home_of(key);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..steps {
                let l_alt = self.alt_bucket(l, fp);
                let pair_id = l.min(l_alt);
                if !seen.insert(pair_id) {
                    cycles += 1;
                    break;
                }
                // Unsalted recurrence (depth fixed at 0 ≙ h(min, κ)).
                l = self.next_chain_bucket(l, l_alt, fp, 0);
            }
        }
        cycles
    }
}

/// The distinct buckets of a walked pair list, each tagged with the first depth at
/// which it appears (chain hops can revisit a bucket an earlier pair already uses;
/// deletion's repair pass reasons about that aliasing explicitly).
fn visited_buckets(pairs: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    for (depth, &(l, l_alt)) in pairs.iter().enumerate() {
        for bkt in [l, l_alt] {
            if !out.iter().any(|&(_, seen)| seen == bkt) {
                out.push((depth, bkt));
            }
        }
    }
    out
}

/// The result of a predicate-only query on a chained CCF (§6.2): key fingerprints with
/// a one-bit matching mark per entry. Supports key membership queries for the
/// predicate's key set with no false negatives.
#[derive(Debug, Clone)]
pub struct ChainedPredicateFilter {
    buckets: Vec<Vec<(u16, bool)>>,
    geometry: SplitGeometry,
    params: CcfParams,
    fingerprinter: Fingerprinter,
    chain_hasher: SaltedHasher,
    key_lower: SaltedHasher,
}

impl ChainedPredicateFilter {
    /// Whether `key` may belong to the predicate's key set. Mirrors the source
    /// filter's walk through the shared [`SplitGeometry`], so the two can never
    /// drift apart — including after the source has grown. Accepts the same typed
    /// keys as the source filter (the lowering hasher is copied from it).
    pub fn contains_key<K: FilterKey>(&self, key: K) -> bool {
        self.contains_key_prehashed(key.lower(&self.key_lower))
    }

    /// [`ChainedPredicateFilter::contains_key`] on already-lowered key material.
    pub fn contains_key_prehashed(&self, key: u64) -> bool {
        let (fp, base) = self
            .fingerprinter
            .fingerprint_and_bucket(key, self.geometry.base_buckets());
        let mut l = self.geometry.home_bucket(base, fp);
        let d = self.params.max_dupes;
        let max_walk = self.params.max_chain.unwrap_or(WALK_SAFETY_CAP);
        for depth in 0..max_walk {
            let l_alt = self.geometry.alt_bucket(l, fp);
            let mut count = 0usize;
            let buckets: &[usize] = if l == l_alt { &[l] } else { &[l, l_alt] };
            for &bkt in buckets {
                for &(efp, matching) in &self.buckets[bkt] {
                    if efp == fp {
                        count += 1;
                        if matching {
                            return true;
                        }
                    }
                }
            }
            if count >= d {
                let lmin = l.min(l_alt);
                let hop = self.chain_hasher.hash_pair(
                    (lmin & self.geometry.base_mask()) as u64,
                    (u64::from(fp) << 32) | depth as u64,
                ) as usize;
                l = self.geometry.rebase(hop, lmin);
            } else {
                return false;
            }
        }
        true
    }

    /// Serialized size in bits: |κ| + 1 marking bit per slot over every slot.
    pub fn size_bits(&self) -> usize {
        self.buckets.len()
            * self.params.entries_per_bucket
            * (self.params.fingerprint_bits as usize + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> CcfParams {
        CcfParams {
            num_buckets: 1 << 10,
            entries_per_bucket: 6,
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 2,
            max_dupes: 3,
            max_chain: None,
            seed,
            ..CcfParams::default()
        }
    }

    #[test]
    fn no_false_negatives_with_heavy_duplication() {
        let mut f = ChainedCcf::new(params(1));
        // 200 keys × 20 distinct attribute rows each = 4000 rows, far beyond the 2b
        // per-pair capacity a plain filter could handle.
        for key in 0..200u64 {
            for i in 0..20u64 {
                f.insert_row(key, &[1000 + i, 2000 + (i % 5)]).unwrap();
            }
        }
        for key in 0..200u64 {
            for i in 0..20u64 {
                let pred = Predicate::any(2)
                    .and_eq(0, 1000 + i)
                    .and_eq(1, 2000 + (i % 5));
                assert!(f.query(key, &pred), "false negative for key {key}, row {i}");
            }
            assert!(f.contains_key(key));
        }
        assert!(
            f.max_chain_seen() > 1,
            "chaining should have been exercised"
        );
    }

    #[test]
    fn achieves_high_load_factor_under_uniform_duplication() {
        // Figure 4: with b = 6 and d = 3, chaining sustains β ≈ 0.87 even when every
        // key has many duplicates.
        let mut f = ChainedCcf::new(params(2));
        let capacity = f.capacity();
        let dupes_per_key = 12u64;
        let mut failed = false;
        'outer: for key in 0.. {
            for i in 0..dupes_per_key {
                match f.insert_row(key, &[i, i * 3 + 1]) {
                    Ok(_) => {}
                    Err(_) => {
                        failed = true;
                        break 'outer;
                    }
                }
            }
            if f.occupied_entries() >= capacity {
                break;
            }
        }
        assert!(failed || f.occupied_entries() as f64 / capacity as f64 > 0.8);
        assert!(
            f.load_factor() > 0.75,
            "chained load factor at first failure only {}",
            f.load_factor()
        );
    }

    #[test]
    fn queries_reject_absent_attribute_values() {
        let mut f = ChainedCcf::new(params(3));
        for key in 0..500u64 {
            f.insert_row(key, &[4, 7]).unwrap();
        }
        // Attribute 0 stored exactly (small-value optimisation) → a different small
        // value can never match.
        let fp = (0..500u64)
            .filter(|&k| f.query(k, &Predicate::any(2).and_eq(0, 5)))
            .count();
        assert_eq!(fp, 0);
    }

    #[test]
    fn key_only_queries_probe_only_the_first_pair() {
        // Insert enough duplicates to create long chains, then confirm absent keys are
        // still rejected at the usual cuckoo-filter FPR (the chain must not inflate the
        // key-only FPR, §7.1).
        let mut f = ChainedCcf::new(params(4));
        for key in 0..100u64 {
            for i in 0..30u64 {
                f.insert_row(key, &[i + 100, i % 9]).unwrap();
            }
        }
        let fp = (1_000_000..1_050_000u64)
            .filter(|&k| f.contains_key(k))
            .count();
        let rate = fp as f64 / 50_000.0;
        assert!(rate < 0.02, "key-only FPR {rate} too high");
    }

    #[test]
    fn chain_cap_drops_rows_but_never_lies() {
        // With Lmax = 1 and d = 3, a key can keep at most 3 rows; further rows are
        // dropped, but queries for them must still return true (Theorem 3).
        let mut f = ChainedCcf::new(CcfParams {
            max_chain: Some(1),
            ..params(5)
        });
        let key = 42u64;
        let mut dropped = 0;
        for i in 0..10u64 {
            if f.insert_row(key, &[5000 + i, 6000 + i]).unwrap() == InsertOutcome::DroppedChainCap {
                dropped += 1
            }
        }
        assert!(dropped > 0, "expected drops with Lmax = 1");
        for i in 0..10u64 {
            let pred = Predicate::any(2).and_eq(0, 5000 + i).and_eq(1, 6000 + i);
            assert!(f.query(key, &pred), "false negative for dropped row {i}");
        }
        assert_eq!(f.rows_dropped(), dropped);
    }

    #[test]
    fn duplicate_cap_per_pair_is_respected() {
        // Lemma 1: never more than d copies of a fingerprint in the first bucket pair.
        let mut f = ChainedCcf::new(params(6));
        let key = 7u64;
        for i in 0..50u64 {
            f.insert_row(key, &[i + 300, i + 400]).unwrap();
        }
        let (fp, l) = f.fingerprinter.fingerprint_and_bucket(key, f.buckets.len());
        let l_alt = f.alt_bucket(l, fp);
        assert!(f.pair_fp_count(l, l_alt, fp) <= f.params().max_dupes);
    }

    #[test]
    fn exact_duplicates_are_deduplicated() {
        let mut f = ChainedCcf::new(params(7));
        assert_eq!(
            f.insert_row(1, &[500, 600]).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(
            f.insert_row(1, &[500, 600]).unwrap(),
            InsertOutcome::Deduplicated
        );
        assert_eq!(f.occupied_entries(), 1);
    }

    #[test]
    fn predicate_filter_preserves_matching_keys() {
        let mut f = ChainedCcf::new(params(8));
        // Keys 0..300 have attribute 0 = key % 4; predicate selects value 2.
        for key in 0..300u64 {
            for extra in 0..4u64 {
                f.insert_row(key, &[key % 4, extra + 10]).unwrap();
            }
        }
        let pf = f.predicate_filter(&Predicate::any(2).and_eq(0, 2));
        for key in 0..300u64 {
            if key % 4 == 2 {
                assert!(
                    pf.contains_key(key),
                    "false negative in predicate filter for {key}"
                );
            }
        }
        // Non-matching keys should be mostly rejected (small-value opt → only key-FPR
        // collisions remain).
        let false_pos = (0..300u64)
            .filter(|&k| k % 4 != 2 && pf.contains_key(k))
            .count();
        assert!(
            false_pos < 10,
            "too many predicate-filter false positives: {false_pos}"
        );
        assert!(pf.size_bits() < f.size_bits());
    }

    #[test]
    fn failed_insert_rolls_back() {
        let mut f = ChainedCcf::new(CcfParams {
            num_buckets: 4,
            entries_per_bucket: 2,
            max_dupes: 2,
            ..params(9)
        });
        let mut stored: Vec<(u64, [u64; 2])> = Vec::new();
        let mut failures = 0;
        for k in 0..200u64 {
            let attrs = [k % 6, k % 10];
            match f.insert_row(k, &attrs) {
                Ok(_) => stored.push((k, attrs)),
                Err(_) => failures += 1,
            }
        }
        assert!(failures > 0, "tiny filter should eventually fail");
        for (k, attrs) in stored {
            assert!(
                f.query(
                    k,
                    &Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1])
                ),
                "lost row for key {k}"
            );
        }
    }

    #[test]
    fn zipf_like_skew_is_handled() {
        // A handful of very hot keys plus a long tail — the regime where plain cuckoo
        // filters fail almost immediately (§10.2).
        let mut f = ChainedCcf::new(params(10));
        let mut rows: Vec<(u64, [u64; 2])> = Vec::new();
        for hot in 0..5u64 {
            for i in 0..200u64 {
                rows.push((hot, [i + 256, (i * 7) % 64 + 256]));
            }
        }
        for cold in 100..1500u64 {
            rows.push((cold, [cold % 50 + 256, cold % 30 + 256]));
        }
        for (k, attrs) in &rows {
            f.insert_row(*k, attrs).unwrap();
        }
        for (k, attrs) in &rows {
            assert!(f.query(
                *k,
                &Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1])
            ));
        }
    }

    #[test]
    fn grow_preserves_chains_and_saturation_counts() {
        let mut f = ChainedCcf::new(params(20));
        // Heavy duplication so real chains exist before the doubling.
        for key in 0..150u64 {
            for i in 0..15u64 {
                f.insert_row(key, &[1000 + i, 2000 + (i % 4)]).unwrap();
            }
        }
        assert!(
            f.max_chain_seen() > 1,
            "need chains to make the test honest"
        );
        let occupied = f.occupied_entries();
        f.grow();
        assert_eq!(f.occupied_entries(), occupied);
        assert_eq!(f.params().num_buckets, 1 << 11);
        for key in 0..150u64 {
            for i in 0..15u64 {
                let pred = Predicate::any(2)
                    .and_eq(0, 1000 + i)
                    .and_eq(1, 2000 + (i % 4));
                assert!(
                    f.query(key, &pred),
                    "false negative for key {key} row {i} after growth"
                );
            }
            assert!(f.contains_key(key));
        }
        // Lemma 1 must survive the remap: at most d copies in the first pair.
        for key in 0..150u64 {
            let (fp, l) = f.home_of(key);
            let l_alt = f.alt_bucket(l, fp);
            assert!(f.pair_fp_count(l, l_alt, fp) <= f.params().max_dupes);
        }
    }

    #[test]
    fn auto_grow_accepts_four_times_the_sized_capacity() {
        let mut f = ChainedCcf::new(
            CcfParams {
                num_buckets: 1 << 7,
                ..params(21)
            }
            .with_auto_grow(),
        );
        let four_n = 4 * f.capacity() as u64;
        for k in 0..four_n {
            f.insert_row(k, &[k % 6, k % 10])
                .unwrap_or_else(|e| panic!("auto-grow insert of {k} failed: {e}"));
        }
        assert!(f.growth_bits() >= 2);
        for k in 0..four_n {
            assert!(
                f.query(k, &Predicate::any(2).and_eq(0, k % 6).and_eq(1, k % 10)),
                "false negative for {k} after auto-growth"
            );
        }
    }

    #[test]
    fn predicate_filter_tracks_grown_geometry() {
        let mut f = ChainedCcf::new(params(22));
        for key in 0..400u64 {
            for extra in 0..4u64 {
                f.insert_row(key, &[key % 4, extra + 10]).unwrap();
            }
        }
        f.grow();
        let pf = f.predicate_filter(&Predicate::any(2).and_eq(0, 2));
        for key in 0..400u64 {
            if key % 4 == 2 {
                assert!(
                    pf.contains_key(key),
                    "grown predicate filter lost key {key}"
                );
            }
        }
    }

    #[test]
    fn batch_queries_match_per_key_loops() {
        let mut f = ChainedCcf::new(params(23));
        for key in 0..300u64 {
            for i in 0..(1 + key % 8) {
                f.insert_row(key, &[i + 100, key % 5]).unwrap();
            }
        }
        f.grow();
        let keys: Vec<u64> = (0..1000u64).collect();
        let pred = Predicate::any(2).and_eq(0, 101);
        let queried = f.query_batch(&keys, &pred);
        let contained = f.contains_key_batch(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(queried[i], f.query(k, &pred), "query mismatch for {k}");
            assert_eq!(contained[i], f.contains_key(k), "contains mismatch for {k}");
        }
    }

    #[test]
    fn delete_from_a_long_chain_never_strands_deeper_rows() {
        // A single hot key with enough distinct rows to span several chain pairs.
        // Deleting rows one at a time — in insertion order, which targets entries at
        // the *front* of the chain — must never make any still-present row
        // unreachable: the tail-shrink swap is what keeps the walk alive.
        let mut f = ChainedCcf::new(params(30));
        let key = 99u64;
        let rows: Vec<[u64; 2]> = (0..18u64).map(|i| [5000 + i, 6000 + i]).collect();
        for attrs in &rows {
            f.insert_row(key, attrs).unwrap();
        }
        assert!(f.max_chain_seen() >= 3, "need a real chain for this test");
        for deleted in 0..rows.len() {
            assert_eq!(
                f.delete_row(key, &rows[deleted]),
                Ok(true),
                "row {deleted} not found for deletion"
            );
            // Every remaining row must still be reachable through the shrunken chain.
            for attrs in rows.iter().skip(deleted + 1) {
                let pred = Predicate::any(2).and_eq(0, attrs[0]).and_eq(1, attrs[1]);
                assert!(
                    f.query(key, &pred),
                    "row {attrs:?} stranded after deleting {deleted} rows"
                );
            }
            // Lemma 1 must keep holding on the first pair.
            let (fp, l) = f.home_of(key);
            let l_alt = f.alt_bucket(l, fp);
            assert!(f.pair_fp_count(l, l_alt, fp) <= f.params().max_dupes);
        }
        assert!(!f.contains_key(key), "all rows deleted, key must be gone");
        assert_eq!(f.delete_key(key), Ok(false));
    }

    #[test]
    fn delete_key_shrinks_the_chain_tail_first() {
        let mut f = ChainedCcf::new(params(31));
        let key = 7u64;
        for i in 0..12u64 {
            f.insert_row(key, &[100 + i, 200 + i]).unwrap();
        }
        let (fp, l) = f.home_of(key);
        let l_alt = f.alt_bucket(l, fp);
        let d = f.params().max_dupes;
        // Delete all copies; the first pair must stay saturated (at d) until the
        // deeper pairs are drained — Lemma 2's "a copy lives in the first pair"
        // invariant, which contains_key relies on.
        for remaining in (1..=12usize).rev() {
            assert_eq!(f.pair_fp_count(l, l_alt, fp), d.min(remaining));
            assert!(f.contains_key(key));
            assert_eq!(f.delete_key(key), Ok(true));
        }
        assert!(!f.contains_key(key));
        assert_eq!(f.occupied_entries(), 0);
    }

    #[test]
    fn delete_after_grow_finds_relocated_chained_copies() {
        let mut f = ChainedCcf::new(params(32));
        for key in 0..120u64 {
            for i in 0..10u64 {
                f.insert_row(key, &[1000 + i, 2000 + (i % 4)]).unwrap();
            }
        }
        assert!(f.max_chain_seen() > 1);
        f.grow();
        for key in 0..120u64 {
            for i in (0..10u64).step_by(2) {
                assert_eq!(
                    f.delete_row(key, &[1000 + i, 2000 + (i % 4)]),
                    Ok(true),
                    "key {key} row {i} not found after growth"
                );
            }
            for i in (1..10u64).step_by(2) {
                let pred = Predicate::any(2)
                    .and_eq(0, 1000 + i)
                    .and_eq(1, 2000 + (i % 4));
                assert!(f.query(key, &pred), "key {key} row {i} lost after deletes");
            }
        }
    }

    #[test]
    fn churn_reuses_space_without_growing() {
        // Sustained insert/delete traffic at a fixed live-set size must be absorbed
        // by a fixed-size filter: deletes genuinely free slots.
        let mut f = ChainedCcf::new(CcfParams {
            num_buckets: 1 << 8,
            ..params(33)
        });
        let window = 800usize;
        let mut live: std::collections::VecDeque<(u64, [u64; 2])> = Default::default();
        for seq in 0..20_000u64 {
            // Attribute values < 2^attr_bits are stored exactly (small-value
            // optimisation), and column 0 pins the key: deletes can never collide
            // with another live row, so every assertion below is exact.
            let row = (seq % 97, [seq % 97, (seq / 97) % 251]);
            f.insert_row(row.0, &row.1).unwrap();
            live.push_back(row);
            if live.len() > window {
                let (k, a) = live.pop_front().unwrap();
                assert_eq!(f.delete_row(k, &a), Ok(true), "evict {k} at seq {seq}");
            }
        }
        assert_eq!(f.occupied_entries(), window);
        assert_eq!(f.growth_bits(), 0, "bounded churn must not grow the filter");
        for (k, a) in &live {
            let pred = Predicate::any(2).and_eq(0, a[0]).and_eq(1, a[1]);
            assert!(f.query(*k, &pred), "live row ({k}, {a:?}) lost");
        }
    }

    #[test]
    fn kicks_exhausted_load_factor_is_rounded() {
        // A failure at e.g. load factor 0.8959 must report 896, not the floor 895.
        let mut f = ChainedCcf::new(CcfParams {
            num_buckets: 4,
            entries_per_bucket: 2,
            max_dupes: 2,
            ..params(24)
        });
        let mut seen_failure = false;
        for k in 0..200u64 {
            if let Err(InsertFailure::KicksExhausted { load_factor_millis }) =
                f.insert_row(k, &[k % 6, k % 10])
            {
                seen_failure = true;
                let expected = (f.load_factor() * 1000.0).round() as u32;
                assert_eq!(load_factor_millis, expected);
            }
        }
        assert!(seen_failure, "tiny filter should fail at least once");
    }

    #[test]
    fn cycle_stats_reports_unsalted_cycles_without_affecting_queries() {
        let f = ChainedCcf::new(CcfParams {
            num_buckets: 8,
            entries_per_bucket: 6,
            ..params(11)
        });
        // With only 8 buckets the unsalted recurrence must revisit pairs quickly.
        let keys: Vec<u64> = (0..50).collect();
        let cycles = f.chain_cycle_stats(&keys, 16);
        assert!(
            cycles > 0,
            "expected raw-recurrence cycles in a tiny filter"
        );
    }
}
