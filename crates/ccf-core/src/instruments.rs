//! The event-telemetry bundle the CCF variants record into.
//!
//! Mirrors [`ccf_cuckoo::instruments::FilterInstruments`] one layer up: every variant
//! owns a [`CcfInstruments`] that starts disabled and is resolved against a live
//! [`Telemetry`] registry by `attach_telemetry` (directly, through
//! [`crate::AnyCcf::attach_telemetry`], or via [`crate::CcfBuilder::telemetry`]).
//! Resolution happens once at attach time; the hot paths touch pre-resolved handles,
//! and a disabled bundle costs one branch per recorded event.
//!
//! Series are labelled `variant="plain|chained|bloom|mixed"` plus whatever extra
//! labels the caller supplies (`shard`, `storage`, …). Insert and delete results are
//! broken out by `outcome`/`kind` so conversion and refusal traffic is visible
//! without log scraping.

use ccf_cuckoo::instruments::KICK_DEPTH_BUCKET_MAX;
use ccf_telemetry::{buckets, Counter, Histogram, Telemetry};

use crate::outcome::{DeleteFailure, InsertFailure, InsertOutcome};

/// Pre-resolved instruments for one CCF variant instance.
///
/// Cloning a filter clones the bundle; clones keep recording into the same series.
#[derive(Debug, Clone, Default)]
pub struct CcfInstruments {
    /// `ccf_inserts_total{outcome="inserted"}` — rows stored as new entries.
    pub insert_inserted: Counter,
    /// `ccf_inserts_total{outcome="deduplicated"}` — exact (κ, α) duplicates absorbed.
    pub insert_deduplicated: Counter,
    /// `ccf_inserts_total{outcome="merged"}` — rows merged into an existing Bloom
    /// sketch (Bloom variant, or a mixed variant's converted group).
    pub insert_merged: Counter,
    /// `ccf_inserts_total{outcome="converted"}` — rows that triggered a §6.1 Bloom
    /// conversion (mixed variant only).
    pub insert_converted: Counter,
    /// `ccf_inserts_total{outcome="dropped_chain_cap"}` — rows discarded at the
    /// chain cap `Lmax` (chained variant only; still query-covered per Theorem 3).
    pub insert_dropped_chain_cap: Counter,
    /// `ccf_insert_failures_total{kind="kicks_exhausted"}`.
    pub insert_fail_kicks: Counter,
    /// `ccf_insert_failures_total{kind="attr_arity_mismatch"}`.
    pub insert_fail_arity: Counter,
    /// Kick rounds per placement attempt (0 = direct placement).
    pub kick_depth: Histogram,
    /// Chain pairs walked per insertion (chained variant; disabled elsewhere so
    /// non-chaining variants emit no dead series).
    pub chain_walk_depth: Histogram,
    /// Capacity doublings.
    pub grows: Counter,
    /// Failed kick chains undone entry-by-entry.
    pub rollbacks: Counter,
    /// Predicate queries answered.
    pub queries: Counter,
    /// Predicate queries that returned true.
    pub query_hits: Counter,
    /// `ccf_deletes_total{result="removed"}` — deletions that removed a copy.
    pub delete_removed: Counter,
    /// `ccf_deletes_total{result="missing"}` — deletions that found no match.
    pub delete_missing: Counter,
    /// `ccf_delete_failures_total{kind="unsupported"}` (Bloom variant).
    pub delete_fail_unsupported: Counter,
    /// `ccf_delete_failures_total{kind="converted_group"}` (mixed variant).
    pub delete_fail_converted_group: Counter,
    /// `ccf_delete_failures_total{kind="attr_arity_mismatch"}`.
    pub delete_fail_arity: Counter,
}

impl CcfInstruments {
    /// A bundle that records nothing (what every filter starts with).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Resolve the bundle against `telemetry`, labelling every series with
    /// `variant` plus the caller's extra labels. The chain-walk histogram stays
    /// disabled; [`CcfInstruments::resolve_chained`] enables it.
    pub fn resolve(telemetry: &Telemetry, variant: &str, extra: &[(&str, &str)]) -> Self {
        let base: Vec<(&str, &str)> = std::iter::once(("variant", variant))
            .chain(extra.iter().copied())
            .collect();
        fn with<'a>(
            base: &[(&'a str, &'a str)],
            pairs: &[(&'a str, &'a str)],
        ) -> Vec<(&'a str, &'a str)> {
            base.iter().copied().chain(pairs.iter().copied()).collect()
        }
        let inserts = "Rows absorbed, by outcome";
        let insert_fails = "Insertions that failed, by kind";
        let deletes = "Deletions answered, by result";
        let delete_fails = "Deletions refused, by kind";
        Self {
            insert_inserted: telemetry.counter(
                "ccf_inserts_total",
                inserts,
                &with(&base, &[("outcome", "inserted")]),
            ),
            insert_deduplicated: telemetry.counter(
                "ccf_inserts_total",
                inserts,
                &with(&base, &[("outcome", "deduplicated")]),
            ),
            insert_merged: telemetry.counter(
                "ccf_inserts_total",
                inserts,
                &with(&base, &[("outcome", "merged")]),
            ),
            insert_converted: telemetry.counter(
                "ccf_inserts_total",
                inserts,
                &with(&base, &[("outcome", "converted")]),
            ),
            insert_dropped_chain_cap: telemetry.counter(
                "ccf_inserts_total",
                inserts,
                &with(&base, &[("outcome", "dropped_chain_cap")]),
            ),
            insert_fail_kicks: telemetry.counter(
                "ccf_insert_failures_total",
                insert_fails,
                &with(&base, &[("kind", "kicks_exhausted")]),
            ),
            insert_fail_arity: telemetry.counter(
                "ccf_insert_failures_total",
                insert_fails,
                &with(&base, &[("kind", "attr_arity_mismatch")]),
            ),
            kick_depth: telemetry.histogram(
                "ccf_kick_depth",
                "Kick rounds per placement attempt (0 = direct placement)",
                &buckets::log2(KICK_DEPTH_BUCKET_MAX),
                &base,
            ),
            chain_walk_depth: Histogram::disabled(),
            grows: telemetry.counter("ccf_grows_total", "Capacity doublings", &base),
            rollbacks: telemetry.counter(
                "ccf_rollbacks_total",
                "Failed kick chains undone entry-by-entry",
                &base,
            ),
            queries: telemetry.counter("ccf_queries_total", "Predicate queries answered", &base),
            query_hits: telemetry.counter(
                "ccf_query_hits_total",
                "Predicate queries that returned true",
                &base,
            ),
            delete_removed: telemetry.counter(
                "ccf_deletes_total",
                deletes,
                &with(&base, &[("result", "removed")]),
            ),
            delete_missing: telemetry.counter(
                "ccf_deletes_total",
                deletes,
                &with(&base, &[("result", "missing")]),
            ),
            delete_fail_unsupported: telemetry.counter(
                "ccf_delete_failures_total",
                delete_fails,
                &with(&base, &[("kind", "unsupported")]),
            ),
            delete_fail_converted_group: telemetry.counter(
                "ccf_delete_failures_total",
                delete_fails,
                &with(&base, &[("kind", "converted_group")]),
            ),
            delete_fail_arity: telemetry.counter(
                "ccf_delete_failures_total",
                delete_fails,
                &with(&base, &[("kind", "attr_arity_mismatch")]),
            ),
        }
    }

    /// [`CcfInstruments::resolve`] plus the chain-walk histogram, for the chained
    /// variant.
    pub fn resolve_chained(telemetry: &Telemetry, variant: &str, extra: &[(&str, &str)]) -> Self {
        let mut bundle = Self::resolve(telemetry, variant, extra);
        let labels: Vec<(&str, &str)> = std::iter::once(("variant", variant))
            .chain(extra.iter().copied())
            .collect();
        bundle.chain_walk_depth = telemetry.histogram(
            "ccf_chain_walk_depth",
            "Chained bucket pairs walked per insertion (0 = primary pair)",
            &buckets::log2(KICK_DEPTH_BUCKET_MAX),
            &labels,
        );
        bundle
    }

    /// Whether this bundle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.insert_inserted.is_enabled()
    }

    /// Tally an insertion result by outcome / failure kind.
    pub fn record_insert(&self, result: &Result<InsertOutcome, InsertFailure>) {
        match result {
            Ok(InsertOutcome::Inserted) => self.insert_inserted.inc(),
            Ok(InsertOutcome::Deduplicated) => self.insert_deduplicated.inc(),
            Ok(InsertOutcome::Merged) => self.insert_merged.inc(),
            Ok(InsertOutcome::Converted) => self.insert_converted.inc(),
            Ok(InsertOutcome::DroppedChainCap) => self.insert_dropped_chain_cap.inc(),
            Err(InsertFailure::KicksExhausted { .. }) => self.insert_fail_kicks.inc(),
            Err(InsertFailure::AttrArityMismatch { .. }) => self.insert_fail_arity.inc(),
        }
    }

    /// Tally a deletion result by result / failure kind.
    pub fn record_delete(&self, result: &Result<bool, DeleteFailure>) {
        match result {
            Ok(true) => self.delete_removed.inc(),
            Ok(false) => self.delete_missing.inc(),
            Err(DeleteFailure::Unsupported) => self.delete_fail_unsupported.inc(),
            Err(DeleteFailure::ConvertedGroup) => self.delete_fail_converted_group.inc(),
            Err(DeleteFailure::AttrArityMismatch { .. }) => self.delete_fail_arity.inc(),
        }
    }

    /// Tally one predicate query.
    pub fn record_query(&self, hit: bool) {
        self.queries.inc();
        if hit {
            self.query_hits.inc();
        }
    }

    /// Tally a batch of predicate queries in two counter bumps (not per key).
    pub fn record_query_batch(&self, results: &[bool]) {
        if self.queries.is_enabled() {
            self.queries.add(results.len() as u64);
            self.query_hits
                .add(results.iter().filter(|&&hit| hit).count() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_is_inert() {
        let b = CcfInstruments::disabled();
        assert!(!b.is_enabled());
        b.record_insert(&Ok(InsertOutcome::Inserted));
        b.record_query(true);
        assert_eq!(b.insert_inserted.get(), 0);
        assert_eq!(b.queries.get(), 0);
    }

    #[test]
    fn outcomes_route_to_their_own_series() {
        let t = Telemetry::enabled();
        let b = CcfInstruments::resolve(&t, "mixed", &[]);
        b.record_insert(&Ok(InsertOutcome::Inserted));
        b.record_insert(&Ok(InsertOutcome::Converted));
        b.record_insert(&Ok(InsertOutcome::Converted));
        b.record_insert(&Err(InsertFailure::AttrArityMismatch {
            expected: 2,
            got: 1,
        }));
        b.record_delete(&Err(DeleteFailure::ConvertedGroup));
        b.record_query_batch(&[true, false, true]);
        let snap = t.snapshot();
        let v = [("variant", "mixed")];
        assert_eq!(
            snap.counter(
                "ccf_inserts_total",
                &[("variant", "mixed"), ("outcome", "converted")]
            ),
            Some(2)
        );
        assert_eq!(
            snap.counter(
                "ccf_insert_failures_total",
                &[("variant", "mixed"), ("kind", "attr_arity_mismatch")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter(
                "ccf_delete_failures_total",
                &[("variant", "mixed"), ("kind", "converted_group")]
            ),
            Some(1)
        );
        assert_eq!(snap.counter("ccf_queries_total", &v), Some(3));
        assert_eq!(snap.counter("ccf_query_hits_total", &v), Some(2));
        assert_eq!(snap.counter_sum("ccf_inserts_total"), 3);
    }

    #[test]
    fn only_the_chained_resolution_emits_chain_walk_series() {
        let t = Telemetry::enabled();
        let plain = CcfInstruments::resolve(&t, "plain", &[]);
        let chained = CcfInstruments::resolve_chained(&t, "chained", &[]);
        plain.chain_walk_depth.observe(3);
        chained.chain_walk_depth.observe(3);
        let snap = t.snapshot();
        assert!(snap
            .histogram("ccf_chain_walk_depth", &[("variant", "plain")])
            .is_none());
        assert_eq!(
            snap.histogram("ccf_chain_walk_depth", &[("variant", "chained")])
                .unwrap()
                .count(),
            1
        );
    }
}
