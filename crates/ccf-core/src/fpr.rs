//! False-positive-rate estimators (§7).
//!
//! Unlike a regular cuckoo filter, a CCF's FPR is not a constant: queries can match
//! spuriously on the key fingerprint, on the attribute sketch, or both, and the rates
//! depend on the data distribution and the query. §7 derives simple bounds in terms of
//! observable quantities; Figure 2 shows they are good predictors of the measured FPR.
//! This module implements those formulas so the experiment harness (and a practitioner
//! sizing a filter) can compute them.

/// FPR bound for a key-only query (eq. 4): `E[D] · 2^{-|κ|}`, where `D` is the number
/// of occupied entries in the probed bucket pair (for the conversion variant, the
/// number of *distinct* fingerprints).
///
/// §7.1 notes the same bound applies to every CCF variant: chains never inflate the
/// key-only FPR because only the first bucket pair is probed.
pub fn key_only_fpr(expected_pair_occupancy: f64, fingerprint_bits: u32) -> f64 {
    (expected_pair_occupancy * 2f64.powi(-(fingerprint_bits as i32))).min(1.0)
}

/// Probability that one fingerprint-vector entry spuriously matches a predicate
/// (§7.2): `ρ̃^Ṽ` with `ρ̃ = 2^{-|α|}`, where `unmatched_attrs` = Ṽ is the number of
/// constrained columns whose value differs from the underlying row's value.
pub fn vector_entry_match_prob(unmatched_attrs: usize, attr_bits: u32) -> f64 {
    2f64.powi(-((attr_bits as i32) * unmatched_attrs as i32))
}

/// FPR bound for a key+predicate query on the chained variant (eq. 7):
/// `d · Lmax · E[2^{-|α|·Ṽ}]`. `expected_mismatch_prob` is `E[2^{-|α|·Ṽ}]`, computed
/// from the data with [`expected_vector_mismatch_prob`].
pub fn chained_predicate_fpr(
    max_dupes: usize,
    max_chain: usize,
    expected_mismatch_prob: f64,
) -> f64 {
    ((max_dupes * max_chain) as f64 * expected_mismatch_prob).min(1.0)
}

/// `E[2^{-|α|·Ṽ}]` over a collection of per-row mismatch counts Ṽ — the expectation
/// that appears in eq. 7.
pub fn expected_vector_mismatch_prob(mismatch_counts: &[usize], attr_bits: u32) -> f64 {
    if mismatch_counts.is_empty() {
        return 0.0;
    }
    mismatch_counts
        .iter()
        .map(|&v| vector_entry_match_prob(v, attr_bits))
        .sum::<f64>()
        / mismatch_counts.len() as f64
}

/// FPR for a key+predicate query on a Bloom attribute sketch (eq. 6): `ρ_k^v`, where
/// `bloom_fpr` = ρ_k is the per-probe FPR of the key's sketch and
/// `never_inserted_values` = v is the number of predicate values that were never
/// inserted for this key. If every constrained value was inserted (v = 0) the query
/// matches with certainty — including the §5.2 co-occurrence false positive.
pub fn bloom_predicate_fpr(bloom_fpr: f64, never_inserted_values: usize) -> f64 {
    bloom_fpr.powi(never_inserted_values as i32)
}

/// Decompose the overall FPR of a key+predicate query (eq. 5):
/// `p((k, P) ∈ H) = p(k ∈ H) · p(P ∈ H[k] | k ∈ H)`.
///
/// * If the key is absent from the data, the overall FPR is bounded by the key-only
///   term alone.
/// * If the key is present (no false negatives ⇒ `p(k ∈ H) = 1`), the FPR is the
///   attribute term alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FprEstimate {
    /// Contribution from spurious key-fingerprint matches.
    pub due_to_key: f64,
    /// Contribution from spurious attribute-sketch matches (conditional on the key
    /// matching).
    pub due_to_attribute: f64,
}

impl FprEstimate {
    /// Estimate for a query whose key is *absent* from the data.
    pub fn key_absent(key_fpr: f64, attr_match_prob: f64) -> Self {
        Self {
            due_to_key: key_fpr,
            due_to_attribute: attr_match_prob,
        }
    }

    /// Estimate for a query whose key is present but whose predicate has no matching
    /// row.
    pub fn key_present(attr_fpr: f64) -> Self {
        Self {
            due_to_key: 1.0,
            due_to_attribute: attr_fpr,
        }
    }

    /// The overall FPR (eq. 5): product of the two components.
    pub fn overall(&self) -> f64 {
        (self.due_to_key * self.due_to_attribute).min(1.0)
    }
}

/// The paper's §7.2 headline bound: with |κ| = 8 and 6 entries per bucket, the key-only
/// FPR is below 5 %. Exposed as a helper the tests and docs can point at.
pub fn paper_headline_bound() -> f64 {
    key_only_fpr(2.0 * 6.0, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_only_bound_matches_paper_example() {
        // §7.2: "An upper bound on the FPR of ≤ 5% can be achieved with a key
        // fingerprint size of 8 and 6 buckets per entry" — 12 occupied entries across
        // the pair at 2^-8 each is 4.7 %.
        let bound = paper_headline_bound();
        assert!(bound <= 0.05 && bound > 0.04, "bound = {bound}");
    }

    #[test]
    fn key_only_fpr_scales_with_occupancy_and_bits() {
        assert!(key_only_fpr(8.0, 12) < key_only_fpr(8.0, 8));
        assert!(key_only_fpr(2.0, 8) < key_only_fpr(8.0, 8));
        assert_eq!(key_only_fpr(1e9, 1), 1.0, "bound must clamp at 1");
    }

    #[test]
    fn vector_match_prob_decays_per_mismatched_attribute() {
        assert_eq!(vector_entry_match_prob(0, 8), 1.0);
        assert!((vector_entry_match_prob(1, 8) - 1.0 / 256.0).abs() < 1e-12);
        assert!((vector_entry_match_prob(2, 4) - 1.0 / 256.0).abs() < 1e-12);
        assert!(vector_entry_match_prob(3, 8) < 1e-7);
    }

    #[test]
    fn chained_bound_grows_with_d_and_lmax() {
        let e = 1.0 / 16.0;
        assert!(chained_predicate_fpr(3, 1, e) < chained_predicate_fpr(3, 2, e));
        assert!(chained_predicate_fpr(2, 2, e) < chained_predicate_fpr(4, 2, e));
        assert_eq!(chained_predicate_fpr(100, 100, 1.0), 1.0);
    }

    #[test]
    fn expected_mismatch_prob_averages_rows() {
        // Two rows: one differs in 1 attribute, one in 2, with 4-bit fingerprints.
        let e = expected_vector_mismatch_prob(&[1, 2], 4);
        assert!((e - (1.0 / 16.0 + 1.0 / 256.0) / 2.0).abs() < 1e-12);
        assert_eq!(expected_vector_mismatch_prob(&[], 4), 0.0);
    }

    #[test]
    fn bloom_predicate_fpr_certain_when_all_values_inserted() {
        assert_eq!(bloom_predicate_fpr(0.3, 0), 1.0);
        assert!((bloom_predicate_fpr(0.3, 2) - 0.09).abs() < 1e-12);
    }

    #[test]
    fn overall_fpr_composes_key_and_attribute_terms() {
        let absent = FprEstimate::key_absent(0.02, 0.5);
        assert!((absent.overall() - 0.01).abs() < 1e-12);
        let present = FprEstimate::key_present(0.1);
        assert!((present.overall() - 0.1).abs() < 1e-12);
    }
}
