//! The fallible construction facade.
//!
//! [`CcfBuilder`] replaces ad-hoc `CcfParams { .. }` literals plus a panicking
//! `validate()` with a typed, fallible pipeline: pick a variant, describe the
//! workload (`expected_rows`, `target_load`), tune whatever §8 defaults need
//! overriding, and `build()` — every impossible combination comes back as a
//! [`ParamsError`] value instead of a panic, so a serving process can reject a bad
//! configuration request without dying.
//!
//! ```
//! use ccf_core::{AnyCcf, ConditionalFilter, VariantKind};
//!
//! let mut filter = AnyCcf::builder()
//!     .variant(VariantKind::Mixed)
//!     .num_attrs(2)
//!     .expected_rows(10_000)
//!     .target_load(0.85)
//!     .auto_grow()
//!     .seed(42)
//!     .build()?;
//! filter.insert_row("movie-1492", &[7, 1])?;
//! assert!(filter.contains_key("movie-1492"));
//! # Ok::<(), ccf_core::CcfError>(())
//! ```

use ccf_telemetry::Telemetry;

use crate::params::{CcfParams, ParamsError};
use crate::sizing::VariantKind;
use crate::variant::AnyCcf;

/// A fallible builder for [`AnyCcf`] filters (and for validated [`CcfParams`], via
/// [`CcfBuilder::build_params`] — which is how the sharded service layer shares the
/// facade). Start from [`AnyCcf::builder`].
#[derive(Debug, Clone)]
pub struct CcfBuilder {
    variant: VariantKind,
    params: CcfParams,
    expected_rows: Option<usize>,
    target_load: f64,
    telemetry: Telemetry,
}

impl Default for CcfBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CcfBuilder {
    /// A builder with the paper's defaults: the mixed (conversion) variant — the
    /// evaluation's best all-rounder (§10.4) — d = 3, b = 6, 12-bit key fingerprints,
    /// 8-bit attribute fingerprints, one attribute column, and a 0.85 target load
    /// factor when sizing from [`CcfBuilder::expected_rows`].
    pub fn new() -> Self {
        Self {
            variant: VariantKind::Mixed,
            params: CcfParams::default(),
            expected_rows: None,
            target_load: 0.85,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Which variant to build (default: [`VariantKind::Mixed`]).
    ///
    /// Churn-heavy deployments (sliding windows, rolling caches) should check
    /// [`VariantKind::supports_deletion`] here: the Bloom variant cannot delete at
    /// all, and the mixed default refuses deletes for keys whose rows were converted
    /// — [`VariantKind::Chained`] keeps every key deletable.
    pub fn variant(mut self, kind: VariantKind) -> Self {
        self.variant = kind;
        self
    }

    /// Start from an explicit parameter set (e.g. [`CcfParams::large`]); later builder
    /// calls override individual fields.
    pub fn params(mut self, params: CcfParams) -> Self {
        self.params = params;
        self
    }

    /// Size the filter for this many expected distinct (key, attribute-vector) rows
    /// at the target load factor (§8: `m · b ≈ E[Z′] / β`). Without it the default
    /// `num_buckets` (or the last [`CcfBuilder::num_buckets`] call) is used.
    pub fn expected_rows(mut self, rows: usize) -> Self {
        self.expected_rows = Some(rows);
        self
    }

    /// Target load factor β used with [`CcfBuilder::expected_rows`] (default 0.85).
    /// Values outside `(0, 1]` are reported by `build()` as
    /// [`ParamsError::TargetLoadOutOfRange`].
    pub fn target_load(mut self, load: f64) -> Self {
        self.target_load = load;
        self
    }

    /// Enable transparent grow-and-retry on kick exhaustion.
    pub fn auto_grow(mut self) -> Self {
        self.params.auto_grow = true;
        self
    }

    /// Seed for the salted hash family.
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Bucket-storage backend for the derived key-only cuckoo filters (default
    /// packed; semisort saves [`ccf_cuckoo::semisort::bits_saved_per_entry`]`(b)`
    /// stored bits per slot but requires `b ≤` [`ccf_cuckoo::MAX_SEMISORT_ENTRIES`],
    /// which [`CcfBuilder::build`] validates).
    pub fn storage(mut self, kind: ccf_cuckoo::StorageKind) -> Self {
        self.params.storage = kind;
        self
    }

    /// Resolve the storage backend from `CCF_STORAGE` *strictly*: unset (or empty)
    /// keeps the packed default, but an unrecognized value is reported as
    /// [`ParamsError::UnknownStorageEnv`] instead of the silent packed fallback the
    /// infallible parameter-struct `Default`s use. Startup paths (the `ccf-service`
    /// daemon, experiment harnesses) call this so a typo'd deployment environment
    /// fails loudly at build time.
    pub fn storage_from_env(mut self) -> Result<Self, ParamsError> {
        self.params.storage =
            ccf_cuckoo::StorageKind::try_from_env().map_err(|_| ParamsError::UnknownStorageEnv)?;
        Ok(self)
    }

    /// Number of attribute columns stored per row.
    pub fn num_attrs(mut self, num_attrs: usize) -> Self {
        self.params.num_attrs = num_attrs;
        self
    }

    /// Number of buckets `m` (rounded up to a power of two on construction);
    /// overridden by [`CcfBuilder::expected_rows`] sizing when both are given.
    pub fn num_buckets(mut self, m: usize) -> Self {
        self.params.num_buckets = m;
        self
    }

    /// Entries per bucket `b` (§8's rule of thumb is `b ≈ 2d`).
    pub fn entries_per_bucket(mut self, b: usize) -> Self {
        self.params.entries_per_bucket = b;
        self
    }

    /// Key fingerprint width |κ| in bits (1..=16).
    pub fn fingerprint_bits(mut self, bits: u32) -> Self {
        self.params.fingerprint_bits = bits;
        self
    }

    /// Attribute fingerprint width |α| in bits (1..=16).
    pub fn attr_bits(mut self, bits: u32) -> Self {
        self.params.attr_bits = bits;
        self
    }

    /// Maximum duplicates `d` per bucket pair, applying §8's `b ≈ 2d` rule of thumb
    /// for the bucket size (call [`CcfBuilder::entries_per_bucket`] afterwards to
    /// override).
    pub fn max_dupes(mut self, d: usize) -> Self {
        self.params.max_dupes = d;
        self.params.entries_per_bucket = (2 * d).max(2);
        self
    }

    /// Maximum chain length `Lmax` for the chained variant (`None` = uncapped).
    pub fn max_chain(mut self, max_chain: Option<usize>) -> Self {
        self.params.max_chain = max_chain;
        self
    }

    /// Maximum kick (evict-and-reinsert) rounds per insertion before the attempt is
    /// declared failed (default 500; `build()` rejects 0 as
    /// [`ParamsError::ZeroMaxKicks`]).
    pub fn max_kicks(mut self, max_kicks: usize) -> Self {
        self.params.max_kicks = max_kicks;
        self
    }

    /// Record the built filter's events into `telemetry`
    /// ([`crate::CcfInstruments`]: insert/query/delete outcomes, kick depths,
    /// grows, rollbacks — labelled `variant="..."`). The handle is an `Arc` clone;
    /// the default disabled handle keeps every recording to a single branch, so
    /// untouched callers pay nothing.
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Bits per Bloom attribute sketch (Bloom variant).
    pub fn bloom_bits(mut self, bits: usize) -> Self {
        self.params.bloom_bits = bits;
        self
    }

    /// Hash functions per Bloom attribute sketch.
    pub fn bloom_hashes(mut self, hashes: usize) -> Self {
        self.params.bloom_hashes = hashes;
        self
    }

    /// Enable/disable the §9 small-value optimisation (default on).
    pub fn small_value_opt(mut self, enabled: bool) -> Self {
        self.params.small_value_opt = enabled;
        self
    }

    /// Resolve sizing and validate, returning the final parameter set without
    /// constructing a filter — the entry point shared with service layers that build
    /// their own filters (e.g. one parameter set per shard).
    pub fn build_params(&self) -> Result<CcfParams, ParamsError> {
        let mut params = self.params;
        if let Some(rows) = self.expected_rows {
            params = params.try_sized_for_entries(rows.max(1), self.target_load)?;
        } else if !(self.target_load > 0.0 && self.target_load <= 1.0) {
            return Err(ParamsError::TargetLoadOutOfRange {
                got: self.target_load,
            });
        }
        params.try_validate()?;
        Ok(params)
    }

    /// The variant the builder will construct.
    pub fn variant_kind(&self) -> VariantKind {
        self.variant
    }

    /// An unconstrained predicate spanning the builder's configured attribute
    /// columns — the builder-side equivalent of [`crate::Predicate::for_params`],
    /// usable before (or without) building the filter.
    pub fn predicate(&self) -> crate::Predicate {
        crate::Predicate::for_params(&self.params)
    }

    /// Build the filter (attaching telemetry when [`CcfBuilder::telemetry`] was
    /// given an enabled handle).
    pub fn build(&self) -> Result<AnyCcf, ParamsError> {
        let mut filter = AnyCcf::try_new(self.variant, self.build_params()?)?;
        if self.telemetry.is_enabled() {
            filter.attach_telemetry(&self.telemetry, &[]);
        }
        Ok(filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::ConditionalFilter;

    #[test]
    fn the_motivating_call_chain_builds_a_sized_mixed_filter() {
        let filter = AnyCcf::builder()
            .variant(VariantKind::Mixed)
            .expected_rows(1_000_000)
            .target_load(0.85)
            .auto_grow()
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(filter.kind(), VariantKind::Mixed);
        let p = filter.params();
        assert!(p.auto_grow);
        assert_eq!(p.seed, 7);
        assert!(
            p.num_buckets * p.entries_per_bucket >= (1_000_000f64 / 0.85) as usize,
            "sizing must honor the target load"
        );
        assert!(p.num_buckets.is_power_of_two());
    }

    #[test]
    fn builder_defaults_build_and_match_paper_defaults() {
        let filter = CcfBuilder::new().build().unwrap();
        assert_eq!(filter.kind(), VariantKind::Mixed);
        assert_eq!(filter.params().max_dupes, 3);
        assert_eq!(filter.params().entries_per_bucket, 6);
    }

    #[test]
    fn every_knob_reaches_the_params() {
        let p = AnyCcf::builder()
            .variant(VariantKind::Bloom)
            .num_attrs(3)
            .num_buckets(100) // rounded up by the constructor, not the builder
            .entries_per_bucket(4)
            .fingerprint_bits(7)
            .attr_bits(4)
            .max_chain(Some(9))
            .bloom_bits(24)
            .bloom_hashes(4)
            .small_value_opt(false)
            .seed(0xABCD)
            .build_params()
            .unwrap();
        assert_eq!(
            (p.num_attrs, p.num_buckets, p.entries_per_bucket),
            (3, 100, 4)
        );
        assert_eq!((p.fingerprint_bits, p.attr_bits), (7, 4));
        assert_eq!(p.max_chain, Some(9));
        assert_eq!((p.bloom_bits, p.bloom_hashes), (24, 4));
        assert!(!p.small_value_opt);
        assert_eq!(p.seed, 0xABCD);
    }

    #[test]
    fn max_dupes_applies_the_rule_of_thumb() {
        // b = 2d = 10 exceeds the semisort bucket-width cap, so pin packed storage:
        // this test is about the sizing rule, not the backend (and must pass under
        // the CCF_STORAGE matrix).
        let p = AnyCcf::builder()
            .max_dupes(5)
            .storage(ccf_cuckoo::StorageKind::Packed)
            .build_params()
            .unwrap();
        assert_eq!(p.max_dupes, 5);
        assert_eq!(p.entries_per_bucket, 10);
        let p = AnyCcf::builder()
            .max_dupes(5)
            .entries_per_bucket(12)
            .storage(ccf_cuckoo::StorageKind::Packed)
            .build_params()
            .unwrap();
        assert_eq!(p.entries_per_bucket, 12, "explicit b overrides the rule");
    }

    #[test]
    fn semisort_storage_rejects_wide_buckets() {
        assert_eq!(
            AnyCcf::builder()
                .max_dupes(5) // rule of thumb: b = 10 > MAX_SEMISORT_ENTRIES
                .storage(ccf_cuckoo::StorageKind::Semisort)
                .build_params()
                .unwrap_err(),
            ParamsError::SemisortBucketTooWide {
                entries_per_bucket: 10
            }
        );
        let p = AnyCcf::builder()
            .storage(ccf_cuckoo::StorageKind::Semisort)
            .build_params()
            .unwrap();
        assert_eq!(p.storage, ccf_cuckoo::StorageKind::Semisort);
    }

    #[test]
    fn bad_configurations_come_back_as_values_not_panics() {
        assert_eq!(
            AnyCcf::builder().fingerprint_bits(0).build().unwrap_err(),
            ParamsError::FingerprintBitsOutOfRange { got: 0 }
        );
        assert!(matches!(
            AnyCcf::builder()
                .expected_rows(1000)
                .target_load(1.5)
                .build()
                .unwrap_err(),
            ParamsError::TargetLoadOutOfRange { .. }
        ));
        assert!(matches!(
            AnyCcf::builder().target_load(-1.0).build().unwrap_err(),
            ParamsError::TargetLoadOutOfRange { .. }
        ));
        assert_eq!(
            AnyCcf::builder()
                .variant(VariantKind::Bloom)
                .bloom_bits(0)
                .build()
                .unwrap_err(),
            ParamsError::ZeroBloomBits
        );
        assert_eq!(
            AnyCcf::builder()
                .variant(VariantKind::Mixed)
                .max_dupes(4)
                .entries_per_bucket(3)
                .build()
                .unwrap_err(),
            ParamsError::ConversionGroupTooWide {
                max_dupes: 4,
                entries_per_bucket: 3
            }
        );
    }

    #[test]
    fn built_filters_delete_when_the_variant_supports_it() {
        // The builder is the construction path services use; a churn-capable caller
        // picks a deletable variant up front and the built filter honors it.
        let deletable = VariantKind::Chained;
        assert!(deletable.supports_deletion());
        let mut filter = AnyCcf::builder()
            .variant(deletable)
            .num_attrs(2)
            .expected_rows(1000)
            .seed(5)
            .build()
            .unwrap();
        filter.insert_row("evt-1", &[1, 2]).unwrap();
        assert_eq!(filter.delete_row("evt-1", &[1, 2]), Ok(true));
        assert!(!filter.contains_key("evt-1"));
        // The Bloom variant advertises its inability before anything is built.
        assert!(!VariantKind::Bloom.supports_deletion());
        let mut bloom = AnyCcf::builder()
            .variant(VariantKind::Bloom)
            .num_attrs(2)
            .build()
            .unwrap();
        bloom.insert_row("evt-1", &[1, 2]).unwrap();
        assert_eq!(
            bloom.delete_row("evt-1", &[1, 2]),
            Err(crate::outcome::DeleteFailure::Unsupported)
        );
    }

    #[test]
    fn builder_predicate_tracks_the_configured_arity() {
        let builder = AnyCcf::builder().num_attrs(3);
        let pred = builder.predicate().and_eq(2, 7);
        assert_eq!(pred.num_attrs(), 3);
        let filter = builder.build().unwrap();
        assert_eq!(filter.predicate().num_attrs(), 3);
    }

    #[test]
    fn presets_compose_with_overrides() {
        let filter = AnyCcf::builder()
            .variant(VariantKind::Chained)
            .params(CcfParams::small(2))
            .expected_rows(5_000)
            .build()
            .unwrap();
        assert_eq!(filter.params().fingerprint_bits, 7);
        assert_eq!(filter.params().num_attrs, 2);
        assert!(filter.params().num_buckets * filter.params().entries_per_bucket >= 5_000);
    }
}
