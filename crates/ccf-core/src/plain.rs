//! The *Plain* CCF: a multiset cuckoo filter whose entries carry attribute fingerprint
//! vectors, with no duplicate handling beyond what the bucket pair can hold.
//!
//! This is the "Plain (regular cuckoo filter allowing duplicate keys)" baseline of
//! §10.4. Each distinct (key, attribute vector) row occupies its own entry, and because
//! a key can only reach its two buckets, at most `2b` rows per key fit. §10.5 reports
//! that Plain filters "did not result in reasonably sized filters" on JOB-light — the
//! `movie_keyword` table would need a bucket size of 270 — and Figure 4 shows the load
//! factor at first failure collapsing as duplication grows. The variant exists so those
//! comparisons can be reproduced.

use ccf_cuckoo::geometry::{
    grow_and_retry, prefetch_index, probe_chunked, split_buckets, SplitGeometry,
};
use ccf_cuckoo::{GrowthStats, OccupancyStats};
use ccf_hash::salted::purpose;
use ccf_hash::{AttrFingerprinter, Fingerprinter, HashFamily, SaltedHasher};
use ccf_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::attr::match_fingerprint_vector;
use crate::instruments::CcfInstruments;
use crate::key::FilterKey;
use crate::outcome::{DeleteFailure, InsertFailure, InsertOutcome};
use crate::params::{CcfParams, ParamsError};
use crate::predicate::Predicate;

/// One stored row: a key fingerprint plus the row's attribute fingerprint vector.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    fp: u16,
    attrs: Vec<u16>,
}

/// A plain (non-chaining, non-converting) conditional cuckoo filter.
#[derive(Debug, Clone)]
pub struct PlainCcf {
    buckets: Vec<Vec<Entry>>,
    geometry: SplitGeometry,
    params: CcfParams,
    fingerprinter: Fingerprinter,
    attr_fp: AttrFingerprinter,
    key_lower: SaltedHasher,
    rng: StdRng,
    occupied: usize,
    rows_absorbed: usize,
    instruments: CcfInstruments,
}

impl PlainCcf {
    /// Create an empty filter. `params.num_buckets` is rounded up to a power of two.
    ///
    /// # Panics
    /// Panics on impossible parameters; use [`PlainCcf::try_new`] (or the
    /// [`crate::CcfBuilder`] facade) to get a [`ParamsError`] instead.
    pub fn new(params: CcfParams) -> Self {
        Self::try_new(params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Create an empty filter, reporting impossible parameters as a [`ParamsError`].
    /// `params.num_buckets` is rounded up to a power of two.
    pub fn try_new(mut params: CcfParams) -> Result<Self, ParamsError> {
        params.num_buckets = params.num_buckets.next_power_of_two().max(1);
        params.try_validate()?;
        let family = HashFamily::new(params.seed);
        Ok(Self {
            buckets: vec![Vec::new(); params.num_buckets],
            geometry: SplitGeometry::new(&family, params.num_buckets, 0),
            fingerprinter: Fingerprinter::new(&family, params.fingerprint_bits),
            attr_fp: AttrFingerprinter::new(&family, params.attr_bits, params.small_value_opt),
            key_lower: family.hasher(purpose::KEY_LOWER),
            rng: StdRng::seed_from_u64(params.seed ^ 0x9A1C),
            occupied: 0,
            rows_absorbed: 0,
            instruments: CcfInstruments::disabled(),
            params,
        })
    }

    /// Variant payload of the [`crate::AnyCcf`] snapshot format: growth state, exact
    /// RNG words, the absorbed-rows counter, and every bucket's entries. Params and
    /// the sealed envelope are written by the caller.
    pub(crate) fn snapshot_payload(&self, w: &mut ccf_cuckoo::ByteWriter) {
        w.put_u32(self.geometry.growth_bits());
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_usize(self.rows_absorbed);
        for bucket in &self.buckets {
            w.put_u16(u16::try_from(bucket.len()).expect("bucket wider than u16"));
            for entry in bucket {
                w.put_u16(entry.fp);
                for &a in &entry.attrs {
                    w.put_u16(a);
                }
            }
        }
    }

    /// Inverse of [`PlainCcf::snapshot_payload`]: rebuild hashers and geometry from
    /// `params`, then restore bucket contents, counters and the RNG stream.
    /// Structural invariants (bucket width, nonzero fingerprints, growth geometry)
    /// are re-validated so a corrupted payload fails typed.
    pub(crate) fn from_snapshot_payload(
        params: CcfParams,
        r: &mut ccf_cuckoo::ByteReader<'_>,
    ) -> Result<Self, ccf_cuckoo::SnapshotError> {
        use ccf_cuckoo::SnapshotError;
        let growth_bits = r.get_u32()?;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64()?;
        }
        let rows_absorbed = r.get_usize()?;
        let base = crate::snapshot::split_growth(params.num_buckets, growth_bits)?;
        let mut f = Self::try_new(CcfParams {
            num_buckets: base,
            ..params
        })
        .map_err(|e| SnapshotError::Invalid(e.to_string()))?;
        if growth_bits > 0 {
            let family = HashFamily::new(params.seed);
            f.geometry = SplitGeometry::new(&family, base, growth_bits);
            f.buckets = vec![Vec::new(); params.num_buckets];
            f.params.num_buckets = params.num_buckets;
        }
        let mut occupied = 0usize;
        for bucket in &mut f.buckets {
            let len = usize::from(r.get_u16()?);
            if len > params.entries_per_bucket {
                return Err(SnapshotError::Invalid(format!(
                    "bucket holds {len} entries but b = {}",
                    params.entries_per_bucket
                )));
            }
            bucket.reserve_exact(len);
            for _ in 0..len {
                let fp = r.get_u16()?;
                if fp == 0 {
                    return Err(SnapshotError::Invalid("stored fingerprint is zero".into()));
                }
                let mut attrs = Vec::with_capacity(params.num_attrs);
                for _ in 0..params.num_attrs {
                    attrs.push(r.get_u16()?);
                }
                bucket.push(Entry { fp, attrs });
            }
            occupied += len;
        }
        f.occupied = occupied;
        f.rows_absorbed = rows_absorbed;
        f.rng = StdRng::from_state(rng_state);
        Ok(f)
    }

    /// Start recording events into `telemetry`, labelling every series with
    /// `variant="plain"` plus `extra`. Untouched filters record nothing.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, extra: &[(&str, &str)]) {
        self.instruments = CcfInstruments::resolve(telemetry, "plain", extra);
    }

    /// The telemetry bundle this filter records into (disabled unless attached).
    pub fn instruments(&self) -> &CcfInstruments {
        &self.instruments
    }

    /// The hasher typed keys are lowered with ([`FilterKey::lower`]). Exposed so
    /// callers that pre-hash keys themselves (or store lowered keys in an index) can
    /// produce material the `*_prehashed` methods accept.
    pub fn key_lower_hasher(&self) -> SaltedHasher {
        self.key_lower
    }

    /// The filter's parameters (with `num_buckets` normalized).
    pub fn params(&self) -> &CcfParams {
        &self.params
    }

    /// Number of occupied entries.
    pub fn occupied_entries(&self) -> usize {
        self.occupied
    }

    /// Number of rows absorbed (including deduplicated ones).
    pub fn rows_absorbed(&self) -> usize {
        self.rows_absorbed
    }

    /// Total entry slots `m · b`.
    pub fn capacity(&self) -> usize {
        self.buckets.len() * self.params.entries_per_bucket
    }

    /// Load factor β.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    /// Serialized size in bits: every slot carries |κ| + #α·|α| bits.
    pub fn size_bits(&self) -> usize {
        self.capacity() * self.params.vector_entry_bits()
    }

    /// Number of capacity doublings applied so far.
    pub fn growth_bits(&self) -> u32 {
        self.geometry.growth_bits()
    }

    /// Per-bucket occupancy summary, including the actual heap footprint of the
    /// bucket storage (spine, per-bucket entry arrays, and per-entry attribute
    /// vectors).
    pub fn occupancy(&self) -> OccupancyStats {
        let heap = std::mem::size_of_val(self.buckets.as_slice())
            + self
                .buckets
                .iter()
                .map(|b| {
                    std::mem::size_of_val(b.as_slice())
                        + b.iter()
                            .map(|e| std::mem::size_of_val(e.attrs.as_slice()))
                            .sum::<usize>()
                })
                .sum::<usize>();
        OccupancyStats::from_counts(
            self.buckets.iter().map(Vec::len),
            self.params.entries_per_bucket,
        )
        .with_heap_bytes(heap)
    }

    /// Resize-history summary.
    pub fn growth_stats(&self) -> GrowthStats {
        GrowthStats {
            base_buckets: self.geometry.base_buckets(),
            current_buckets: self.buckets.len(),
            growth_bits: self.geometry.growth_bits(),
        }
    }

    fn pair_of(&self, key: u64) -> (u16, usize, usize) {
        let (fp, base) = self
            .fingerprinter
            .fingerprint_and_bucket(key, self.geometry.base_buckets());
        let l = self.geometry.home_bucket(base, fp);
        let alt = self.geometry.alt_bucket(l, fp);
        (fp, l, alt)
    }

    /// Double the filter's capacity, migrating entries by their stored fingerprints
    /// alone: each entry keeps its bucket index or moves up by the old bucket count
    /// according to its fingerprint's next growth bit
    /// ([`ccf_cuckoo::geometry::split_buckets`]). The remap cannot fail.
    pub fn grow(&mut self) {
        self.instruments.grows.inc();
        let old_m = self.buckets.len();
        let bit = self.geometry.growth_bits();
        self.buckets.resize_with(old_m * 2, Vec::new);
        split_buckets(&self.geometry, &mut self.buckets, old_m, bit, |e| e.fp);
        self.geometry.record_doubling();
        self.params.num_buckets = self.buckets.len();
    }

    /// Insert a row. Exact duplicates of an already-stored (key, attributes) pair are
    /// deduplicated. Without `auto_grow`, a kick-limit failure leaves the filter
    /// unchanged; with it, the filter doubles and retries — except when the row's own
    /// bucket pair is already saturated with its key fingerprint (the §4.3 `2b` cap,
    /// which growth cannot lift because fingerprint copies share both buckets at every
    /// size).
    pub fn insert_row<K: FilterKey>(
        &mut self,
        key: K,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        let key = key.lower(&self.key_lower);
        self.insert_row_prehashed(key, attrs)
    }

    /// [`PlainCcf::insert_row`] on already-lowered key material (see
    /// [`PlainCcf::key_lower_hasher`]). For `u64` keys the two are identical.
    pub fn insert_row_prehashed(
        &mut self,
        key: u64,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        let result = match self.params.check_arity(attrs) {
            Ok(()) => grow_and_retry(
                self,
                self.params.auto_grow,
                |f| f.try_insert_row(key, attrs),
                // Growth cannot lift the §4.3 duplicate cap: fingerprint copies share
                // both buckets at every size.
                |f| !f.pair_saturated_with_own_fp(key),
                |f| f.grow(),
            ),
            Err(e) => Err(e),
        };
        self.instruments.record_insert(&result);
        result
    }

    /// Whether the key's bucket pair is already filled to its slot capacity (`2b`, or
    /// `b` when self-paired) with copies of the key's own fingerprint.
    fn pair_saturated_with_own_fp(&self, key: u64) -> bool {
        let (fp, l, alt) = self.pair_of(key);
        let pair_capacity = if l == alt {
            self.params.entries_per_bucket
        } else {
            2 * self.params.entries_per_bucket
        };
        let copies = self.buckets[l].iter().filter(|e| e.fp == fp).count()
            + if l == alt {
                0
            } else {
                self.buckets[alt].iter().filter(|e| e.fp == fp).count()
            };
        copies >= pair_capacity
    }

    fn try_insert_row(&mut self, key: u64, attrs: &[u64]) -> Result<InsertOutcome, InsertFailure> {
        let (fp, l, alt) = self.pair_of(key);
        let entry = Entry {
            fp,
            attrs: self.attr_fp.fingerprint_vector(attrs),
        };
        self.rows_absorbed += 1;

        // Dedupe exact (κ, α) duplicates.
        if self.buckets[l].contains(&entry) || self.buckets[alt].contains(&entry) {
            return Ok(InsertOutcome::Deduplicated);
        }

        // Free slot in either bucket (primary preferred).
        let b = self.params.entries_per_bucket;
        if self.buckets[l].len() < b {
            self.buckets[l].push(entry);
            self.occupied += 1;
            self.instruments.kick_depth.observe(0);
            return Ok(InsertOutcome::Inserted);
        }
        if self.buckets[alt].len() < b {
            self.buckets[alt].push(entry);
            self.occupied += 1;
            self.instruments.kick_depth.observe(0);
            return Ok(InsertOutcome::Inserted);
        }

        // Kick loop, recording swaps so a failure can be rolled back.
        let mut carried = entry;
        let mut bucket = if self.rng.gen_bool(0.5) { l } else { alt };
        let mut swaps: Vec<(usize, usize)> = Vec::new();
        let mut kicks = 0u64;
        for _ in 0..self.params.max_kicks {
            kicks += 1;
            let slot = self.rng.gen_range(0..b);
            std::mem::swap(&mut self.buckets[bucket][slot], &mut carried);
            swaps.push((bucket, slot));
            bucket = self.geometry.alt_bucket(bucket, carried.fp);
            if self.buckets[bucket].len() < b {
                self.buckets[bucket].push(carried);
                self.occupied += 1;
                self.instruments.kick_depth.observe(kicks);
                return Ok(InsertOutcome::Inserted);
            }
        }
        // Roll back so previously inserted rows keep their no-false-negative guarantee.
        self.instruments.kick_depth.observe(kicks);
        self.instruments.rollbacks.inc();
        for (bucket, slot) in swaps.into_iter().rev() {
            std::mem::swap(&mut self.buckets[bucket][slot], &mut carried);
        }
        self.rows_absorbed -= 1;
        Err(InsertFailure::kicks_exhausted_at(self.load_factor()))
    }

    /// Delete one stored copy of a row: removes an entry in the key's bucket pair
    /// whose fingerprint and attribute fingerprint vector both match. Returns
    /// `Ok(true)` if a copy was removed, `Ok(false)` if none matched.
    ///
    /// The usual cuckoo-filter deletion caveat applies: only delete rows known to have
    /// been inserted, since a colliding (κ, α) pair from a different row would satisfy
    /// the match. Note also that exact duplicates are *deduplicated at insert*
    /// ([`InsertOutcome::Deduplicated`] — they share one entry), so deletion has set
    /// semantics per (key, attributes): one delete retires the row no matter how many
    /// times it was inserted, and a caller balancing inserts against deletes must
    /// count `Deduplicated` outcomes as already-covered. Deletion composes with
    /// growth — the pair is derived under the current split geometry, so relocated
    /// copies are found.
    pub fn delete_row<K: FilterKey>(
        &mut self,
        key: K,
        attrs: &[u64],
    ) -> Result<bool, DeleteFailure> {
        let key = key.lower(&self.key_lower);
        self.delete_row_prehashed(key, attrs)
    }

    /// [`PlainCcf::delete_row`] on already-lowered key material.
    pub fn delete_row_prehashed(&mut self, key: u64, attrs: &[u64]) -> Result<bool, DeleteFailure> {
        let result = match self.params.check_delete_arity(attrs) {
            Ok(()) => {
                let alpha = self.attr_fp.fingerprint_vector(attrs);
                let (fp, l, alt) = self.pair_of(key);
                Ok(self.remove_matching(fp, l, alt, |e| e.attrs == alpha))
            }
            Err(e) => Err(e),
        };
        self.instruments.record_delete(&result);
        result
    }

    /// Delete one stored entry carrying the key's fingerprint, regardless of its
    /// attribute vector. Returns `Ok(true)` if a copy was removed.
    pub fn delete_key<K: FilterKey>(&mut self, key: K) -> Result<bool, DeleteFailure> {
        let key = key.lower(&self.key_lower);
        self.delete_key_prehashed(key)
    }

    /// [`PlainCcf::delete_key`] on already-lowered key material.
    pub fn delete_key_prehashed(&mut self, key: u64) -> Result<bool, DeleteFailure> {
        let (fp, l, alt) = self.pair_of(key);
        let result = Ok(self.remove_matching(fp, l, alt, |_| true));
        self.instruments.record_delete(&result);
        result
    }

    /// Remove the first entry in the pair with fingerprint `fp` satisfying `matches`,
    /// keeping `occupied`/`rows_absorbed` exact.
    fn remove_matching(
        &mut self,
        fp: u16,
        l: usize,
        alt: usize,
        matches: impl Fn(&Entry) -> bool,
    ) -> bool {
        let candidates: &[usize] = if l == alt { &[l] } else { &[l, alt] };
        for &bkt in candidates {
            if let Some(pos) = self.buckets[bkt]
                .iter()
                .position(|e| e.fp == fp && matches(e))
            {
                self.buckets[bkt].swap_remove(pos);
                self.occupied -= 1;
                self.rows_absorbed = self.rows_absorbed.saturating_sub(1);
                return true;
            }
        }
        false
    }

    /// Batched row deletion: equivalent to calling [`PlainCcf::delete_row`] per row in
    /// input order.
    pub fn delete_row_batch<K: FilterKey, A: AsRef<[u64]>>(
        &mut self,
        rows: &[(K, A)],
    ) -> Vec<Result<bool, DeleteFailure>> {
        rows.iter()
            .map(|(k, a)| self.delete_row_prehashed(k.lower(&self.key_lower), a.as_ref()))
            .collect()
    }

    /// [`PlainCcf::delete_row_batch`] on already-lowered key material.
    pub fn delete_row_batch_prehashed(
        &mut self,
        rows: &[(u64, &[u64])],
    ) -> Vec<Result<bool, DeleteFailure>> {
        rows.iter()
            .map(|&(k, a)| self.delete_row_prehashed(k, a))
            .collect()
    }

    /// Batched key deletion: equivalent to calling [`PlainCcf::delete_key`] per key in
    /// input order.
    pub fn delete_key_batch<K: FilterKey>(
        &mut self,
        keys: &[K],
    ) -> Vec<Result<bool, DeleteFailure>> {
        keys.iter()
            .map(|k| self.delete_key_prehashed(k.lower(&self.key_lower)))
            .collect()
    }

    /// [`PlainCcf::delete_key_batch`] on already-lowered key material.
    pub fn delete_key_batch_prehashed(&mut self, keys: &[u64]) -> Vec<Result<bool, DeleteFailure>> {
        keys.iter().map(|&k| self.delete_key_prehashed(k)).collect()
    }

    /// Query for a key under a predicate: true if some entry in the key's bucket pair
    /// has the key's fingerprint and an attribute vector matching the predicate.
    pub fn query<K: FilterKey>(&self, key: K, pred: &Predicate) -> bool {
        self.query_prehashed(key.lower(&self.key_lower), pred)
    }

    /// [`PlainCcf::query`] on already-lowered key material.
    pub fn query_prehashed(&self, key: u64, pred: &Predicate) -> bool {
        let (fp, l, alt) = self.pair_of(key);
        let hit = self.query_pair(fp, l, alt, pred);
        self.instruments.record_query(hit);
        hit
    }

    fn query_pair(&self, fp: u16, l: usize, alt: usize, pred: &Predicate) -> bool {
        let candidates: &[usize] = if l == alt { &[l] } else { &[l, alt] };
        candidates.iter().any(|&bkt| {
            self.buckets[bkt]
                .iter()
                .any(|e| e.fp == fp && match_fingerprint_vector(pred, &e.attrs, &self.attr_fp))
        })
    }

    /// Batched predicate query: bit-identical to calling [`PlainCcf::query`] per key,
    /// using the chunked hash→prefetch→probe driver ([`ccf_cuckoo::geometry::probe_chunked`])
    /// shared by every batched query path. `u64` key batches are lowered copy-free.
    pub fn query_batch<K: FilterKey>(&self, keys: &[K], pred: &Predicate) -> Vec<bool> {
        self.query_batch_prehashed(&K::lower_batch(keys, &self.key_lower), pred)
    }

    /// [`PlainCcf::query_batch`] on already-lowered key material.
    pub fn query_batch_prehashed(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
        let hits = probe_chunked(
            keys,
            |key| self.pair_of(key),
            |bucket| prefetch_index(&self.buckets, bucket),
            |fp, l, alt| self.query_pair(fp, l, alt, pred),
        );
        self.instruments.record_query_batch(&hits);
        hits
    }

    /// Key-only membership query.
    pub fn contains_key<K: FilterKey>(&self, key: K) -> bool {
        self.contains_key_prehashed(key.lower(&self.key_lower))
    }

    /// [`PlainCcf::contains_key`] on already-lowered key material.
    pub fn contains_key_prehashed(&self, key: u64) -> bool {
        let (fp, l, alt) = self.pair_of(key);
        self.buckets[l].iter().any(|e| e.fp == fp) || self.buckets[alt].iter().any(|e| e.fp == fp)
    }

    /// Batched key-only membership query (see [`PlainCcf::query_batch`]).
    pub fn contains_key_batch<K: FilterKey>(&self, keys: &[K]) -> Vec<bool> {
        self.contains_key_batch_prehashed(&K::lower_batch(keys, &self.key_lower))
    }

    /// [`PlainCcf::contains_key_batch`] on already-lowered key material.
    pub fn contains_key_batch_prehashed(&self, keys: &[u64]) -> Vec<bool> {
        probe_chunked(
            keys,
            |key| self.pair_of(key),
            |bucket| prefetch_index(&self.buckets, bucket),
            |fp, l, alt| {
                self.buckets[l].iter().any(|e| e.fp == fp)
                    || self.buckets[alt].iter().any(|e| e.fp == fp)
            },
        )
    }

    /// The attribute fingerprinter (shared so baselines can compute identical
    /// fingerprints when analysing false positives).
    pub fn attr_fingerprinter(&self) -> &AttrFingerprinter {
        &self.attr_fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> CcfParams {
        CcfParams {
            num_buckets: 1 << 10,
            entries_per_bucket: 4,
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 2,
            seed,
            ..CcfParams::default()
        }
    }

    #[test]
    fn no_false_negatives_on_unique_keys() {
        let mut f = PlainCcf::new(params(1));
        for k in 0..3000u64 {
            f.insert_row(k, &[k % 7, k % 11]).unwrap();
        }
        for k in 0..3000u64 {
            assert!(f.query(k, &Predicate::any(2).and_eq(0, k % 7).and_eq(1, k % 11)));
            assert!(f.contains_key(k));
        }
    }

    #[test]
    fn non_matching_predicates_are_mostly_rejected() {
        let mut f = PlainCcf::new(params(2));
        for k in 0..2000u64 {
            f.insert_row(k, &[3, 100]).unwrap();
        }
        // Query each present key with a wrong attribute value; small-value optimisation
        // stores 3 exactly, so column 0 mismatches can never collide.
        let fp = (0..2000u64)
            .filter(|&k| f.query(k, &Predicate::any(2).and_eq(0, 4)))
            .count();
        assert_eq!(fp, 0);
    }

    #[test]
    fn absent_keys_have_low_fpr() {
        let mut f = PlainCcf::new(params(3));
        for k in 0..3000u64 {
            f.insert_row(k, &[1, 2]).unwrap();
        }
        let fp = (10_000..60_000u64).filter(|&k| f.contains_key(k)).count();
        let rate = fp as f64 / 50_000.0;
        // E[D]·2^-12 with ~6 occupied entries/pair ≈ 0.15 %.
        assert!(rate < 0.01, "key-only FPR too high: {rate}");
    }

    #[test]
    fn duplicate_rows_are_deduplicated() {
        let mut f = PlainCcf::new(params(4));
        assert_eq!(
            f.insert_row(5u64, &[1, 1]).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(
            f.insert_row(5u64, &[1, 1]).unwrap(),
            InsertOutcome::Deduplicated
        );
        assert_eq!(f.occupied_entries(), 1);
        assert_eq!(f.rows_absorbed(), 2);
    }

    #[test]
    fn duplicate_keys_with_distinct_attrs_fill_the_pair_then_fail() {
        let mut f = PlainCcf::new(params(5));
        let b = f.params().entries_per_bucket;
        let mut failures = 0;
        for i in 0..(2 * b as u64 + 4) {
            // Distinct attribute values > 2^8 so each gets its own entry.
            if f.insert_row(77, &[1000 + i, 2000 + i]).is_err() {
                failures += 1;
            }
        }
        assert!(
            failures >= 4,
            "expected the pair to overflow, got {failures} failures"
        );
        assert!(f.occupied_entries() <= 2 * b);
    }

    #[test]
    fn failed_insert_leaves_filter_unchanged() {
        let mut f = PlainCcf::new(CcfParams {
            num_buckets: 4,
            entries_per_bucket: 2,
            ..params(6)
        });
        // Fill to capacity with unique keys, tolerating failures.
        let mut stored = Vec::new();
        for k in 0..64u64 {
            if f.insert_row(k, &[k % 5, k % 3]).is_ok() {
                stored.push(k);
            }
        }
        let occupied = f.occupied_entries();
        // Now force failures and verify nothing previously stored is lost.
        let mut failed_any = false;
        for k in 1000..1100u64 {
            if f.insert_row(k, &[0, 0]).is_err() {
                failed_any = true;
            }
        }
        assert!(failed_any, "expected at least one failure on a tiny filter");
        for &k in &stored {
            assert!(
                f.query(k, &Predicate::any(2).and_eq(0, k % 5).and_eq(1, k % 3)),
                "lost row for key {k} after failed insertions"
            );
        }
        assert!(f.occupied_entries() >= occupied);
    }

    #[test]
    fn grow_preserves_every_stored_row() {
        let mut f = PlainCcf::new(params(10));
        for k in 0..2000u64 {
            f.insert_row(k, &[k % 7, k % 11]).unwrap();
        }
        let occupied = f.occupied_entries();
        f.grow();
        assert_eq!(f.params().num_buckets, 1 << 11);
        assert_eq!(f.occupied_entries(), occupied);
        for k in 0..2000u64 {
            assert!(f.query(k, &Predicate::any(2).and_eq(0, k % 7).and_eq(1, k % 11)));
            assert!(f.contains_key(k));
        }
    }

    #[test]
    fn auto_grow_accepts_four_times_the_sized_capacity() {
        let mut f = PlainCcf::new(
            CcfParams {
                num_buckets: 1 << 8,
                ..params(11)
            }
            .with_auto_grow(),
        );
        let four_n = 4 * f.capacity() as u64;
        for k in 0..four_n {
            f.insert_row(k, &[k % 5, k % 9])
                .unwrap_or_else(|e| panic!("auto-grow insert of {k} failed: {e}"));
        }
        assert!(f.growth_bits() >= 2);
        for k in 0..four_n {
            assert!(
                f.query(k, &Predicate::any(2).and_eq(0, k % 5).and_eq(1, k % 9)),
                "false negative for {k} after auto-growth"
            );
        }
    }

    #[test]
    fn auto_grow_does_not_chase_the_duplicate_cap() {
        // >2b distinct rows of one key saturate its pair with one fingerprint; growth
        // cannot separate the copies, so the insert must fail without doubling forever.
        let mut f = PlainCcf::new(params(12).with_auto_grow());
        let b = f.params().entries_per_bucket as u64;
        let mut failures = 0;
        for i in 0..(2 * b + 4) {
            if f.insert_row(99, &[1000 + i, 2000 + i]).is_err() {
                failures += 1;
            }
        }
        assert!(failures >= 4, "the 2b cap must still bind under auto_grow");
        assert_eq!(f.growth_bits(), 0, "duplicate-cap failures must not grow");
    }

    #[test]
    fn batch_queries_match_per_key_loops() {
        let mut f = PlainCcf::new(params(13));
        for k in 0..1500u64 {
            f.insert_row(k, &[k % 4, k % 6]).unwrap();
        }
        f.grow(); // batch and per-key must also agree on grown geometry
        let keys: Vec<u64> = (0..4000u64).collect();
        let pred = Predicate::any(2).and_eq(0, 1);
        let queried = f.query_batch(&keys, &pred);
        let contained = f.contains_key_batch(&keys);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(queried[i], f.query(k, &pred));
            assert_eq!(contained[i], f.contains_key(k));
        }
    }

    #[test]
    fn size_bits_counts_every_slot() {
        let f = PlainCcf::new(params(7));
        assert_eq!(f.size_bits(), 1024 * 4 * (12 + 2 * 8));
    }

    #[test]
    fn wrong_attribute_arity_is_a_typed_error_not_a_panic() {
        let mut f = PlainCcf::new(params(8));
        assert_eq!(
            f.insert_row(1u64, &[1]),
            Err(InsertFailure::AttrArityMismatch {
                expected: 2,
                got: 1
            })
        );
        // The filter is untouched and the failure does not trigger auto-growth.
        assert_eq!(f.occupied_entries(), 0);
        assert_eq!(f.rows_absorbed(), 0);
        let mut growable = PlainCcf::new(params(8).with_auto_grow());
        assert!(growable.insert_row(1u64, &[1, 2, 3]).is_err());
        assert_eq!(growable.growth_bits(), 0, "arity errors must never grow");
    }

    #[test]
    fn in_list_queries_match_any_candidate() {
        let mut f = PlainCcf::new(params(9));
        f.insert_row(10u64, &[6, 0]).unwrap();
        assert!(f.query(10u64, &Predicate::in_list(2, 0, vec![5, 6, 7])));
        assert!(!f.query(10u64, &Predicate::in_list(2, 0, vec![1, 2])));
    }

    #[test]
    fn typed_keys_round_trip_and_match_their_lowered_material() {
        let mut f = PlainCcf::new(params(14));
        f.insert_row("user-7", &[3, 4]).unwrap();
        f.insert_row((9u64, 11u64), &[5, 6]).unwrap();
        f.insert_row(b"raw-bytes".as_slice(), &[1, 2]).unwrap();
        assert!(f.contains_key("user-7"));
        assert!(f.query("user-7", &Predicate::any(2).and_eq(0, 3)));
        assert!(f.contains_key((9u64, 11u64)));
        assert!(f.contains_key(b"raw-bytes".as_slice()));
        // Typed queries agree with the prehashed core on the lowered material.
        let h = f.key_lower_hasher();
        assert!(f.contains_key_prehashed("user-7".lower(&h)));
        assert_eq!(
            f.query_batch(&["user-7", "nobody"], &Predicate::any(2)),
            f.query_batch_prehashed(
                &["user-7".lower(&h), "nobody".lower(&h)],
                &Predicate::any(2)
            ),
        );
        // (a, b) and (b, a) are distinct composite keys (overwhelmingly likely to
        // miss on a near-empty filter).
        assert!(!f.contains_key((11u64, 9u64)));
    }

    #[test]
    fn delete_row_removes_exactly_one_copy_and_frees_the_slot() {
        let mut f = PlainCcf::new(params(20));
        f.insert_row(7u64, &[1000, 2000]).unwrap();
        f.insert_row(7u64, &[1001, 2001]).unwrap();
        assert_eq!(f.occupied_entries(), 2);
        assert_eq!(f.rows_absorbed(), 2);
        assert_eq!(f.delete_row(7u64, &[1000, 2000]), Ok(true));
        assert_eq!(f.occupied_entries(), 1);
        assert_eq!(f.rows_absorbed(), 1);
        // The other row survives; the deleted one is gone.
        assert!(f.query(7u64, &Predicate::any(2).and_eq(0, 1001).and_eq(1, 2001)));
        assert!(!f.query(7u64, &Predicate::any(2).and_eq(0, 1000).and_eq(1, 2000)));
        assert_eq!(f.delete_row(7u64, &[1000, 2000]), Ok(false));
        // The freed slot is reusable and the key disappears with its last row.
        assert_eq!(f.delete_key(7u64), Ok(true));
        assert!(!f.contains_key(7u64));
        assert_eq!(f.occupied_entries(), 0);
    }

    #[test]
    fn delete_arity_mismatch_is_typed_and_leaves_the_filter_unchanged() {
        let mut f = PlainCcf::new(params(21));
        f.insert_row(1u64, &[5, 6]).unwrap();
        assert_eq!(
            f.delete_row(1u64, &[5]),
            Err(DeleteFailure::AttrArityMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(f.occupied_entries(), 1);
        assert!(f.contains_key(1u64));
    }

    #[test]
    fn delete_after_grow_finds_relocated_copies() {
        let mut f = PlainCcf::new(params(22));
        for k in 0..1500u64 {
            f.insert_row(k, &[k % 7, k % 11]).unwrap();
        }
        f.grow();
        f.grow();
        for k in (0..1500u64).step_by(3) {
            assert_eq!(
                f.delete_row(k, &[k % 7, k % 11]),
                Ok(true),
                "delete of {k} missed its relocated copy after growth"
            );
        }
        for k in 0..1500u64 {
            if k % 3 != 0 {
                assert!(f.contains_key(k), "undeleted key {k} lost");
            }
        }
    }

    #[test]
    fn delete_batches_match_sequential_loops() {
        let mut batch = PlainCcf::new(params(23));
        let mut seq = PlainCcf::new(params(23));
        let rows: Vec<(u64, [u64; 2])> = (0..600u64).map(|k| (k, [k % 9, k % 13])).collect();
        for (k, a) in &rows {
            batch.insert_row(*k, a).unwrap();
            seq.insert_row(*k, a).unwrap();
        }
        let victims: Vec<(u64, [u64; 2])> = rows.iter().step_by(2).cloned().collect();
        let batched = batch.delete_row_batch(&victims);
        let sequential: Vec<_> = victims.iter().map(|(k, a)| seq.delete_row(*k, a)).collect();
        assert_eq!(batched, sequential);
        assert_eq!(batch.occupied_entries(), seq.occupied_entries());
        let keys: Vec<u64> = rows.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            batch.contains_key_batch(&keys),
            seq.contains_key_batch(&keys)
        );
        // Key-batch form agrees too.
        let more: Vec<u64> = keys.iter().copied().step_by(5).collect();
        assert_eq!(batch.delete_key_batch(&more), seq.delete_key_batch(&more));
    }

    #[test]
    fn try_new_reports_bad_params_instead_of_panicking() {
        let bad = CcfParams {
            fingerprint_bits: 19,
            ..params(0)
        };
        assert_eq!(
            PlainCcf::try_new(bad).err(),
            Some(ParamsError::FingerprintBitsOutOfRange { got: 19 })
        );
    }
}
