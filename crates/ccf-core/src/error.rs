//! The workspace-level error type.
//!
//! Service-layer callers (the sharded service, the join bridge, an RPC front end)
//! compose operations from several crates: construction can fail with a
//! [`ParamsError`], insertion with an [`InsertFailure`], range-predicate translation
//! with a [`BinningError`], and predicate bridging with `ccf_join::BridgeError`. Each
//! converts into [`CcfError`] via `From`, so a serving path can bubble everything
//! through one `Result<_, CcfError>` with `?` instead of juggling four error enums.
//!
//! `ccf_join::BridgeError` lives upstream of this crate; its `From` impl (in
//! `ccf-join`) folds into [`CcfError::Bridge`], which carries the rendered message so
//! `ccf-core` needs no service-layer dependencies.

use crate::outcome::{DeleteFailure, InsertFailure};
use crate::params::ParamsError;
use crate::predicate::binning::BinningError;

/// Any error a conditional-cuckoo-filter deployment can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum CcfError {
    /// An insertion failed (kick exhaustion, attribute-arity mismatch, ...).
    Insert(InsertFailure),
    /// A deletion was refused (unsupported variant, converted group, arity mismatch).
    Delete(DeleteFailure),
    /// A filter was configured with impossible parameters.
    Params(ParamsError),
    /// A binning scheme was malformed or consulted out of range.
    Binning(BinningError),
    /// A service-layer bridge rejected a request (e.g. a `ccf_join::BridgeError` for
    /// a predicate referencing a nonexistent column), carried as its rendered
    /// message.
    Bridge(String),
}

impl std::fmt::Display for CcfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcfError::Insert(e) => write!(f, "insert failed: {e}"),
            CcfError::Delete(e) => write!(f, "delete refused: {e}"),
            CcfError::Params(e) => write!(f, "invalid parameters: {e}"),
            CcfError::Binning(e) => write!(f, "binning error: {e}"),
            CcfError::Bridge(msg) => write!(f, "bridge error: {msg}"),
        }
    }
}

impl std::error::Error for CcfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CcfError::Insert(e) => Some(e),
            CcfError::Delete(e) => Some(e),
            CcfError::Params(e) => Some(e),
            CcfError::Binning(e) => Some(e),
            CcfError::Bridge(_) => None,
        }
    }
}

impl From<InsertFailure> for CcfError {
    fn from(e: InsertFailure) -> Self {
        CcfError::Insert(e)
    }
}

impl From<DeleteFailure> for CcfError {
    fn from(e: DeleteFailure) -> Self {
        CcfError::Delete(e)
    }
}

impl From<ParamsError> for CcfError {
    fn from(e: ParamsError) -> Self {
        CcfError::Params(e)
    }
}

impl From<BinningError> for CcfError {
    fn from(e: BinningError) -> Self {
        CcfError::Binning(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn takes_ccf_error(r: Result<(), impl Into<CcfError>>) -> Result<(), CcfError> {
        r.map_err(Into::into)
    }

    #[test]
    fn every_workspace_error_converts_via_question_mark() {
        let insert: Result<(), InsertFailure> = Err(InsertFailure::KicksExhausted {
            load_factor_millis: 950,
        });
        let delete: Result<(), DeleteFailure> = Err(DeleteFailure::ConvertedGroup);
        let params: Result<(), ParamsError> = Err(ParamsError::ZeroMaxDupes);
        let binning: Result<(), BinningError> = Err(BinningError::ZeroBins);
        assert!(matches!(
            takes_ccf_error(insert),
            Err(CcfError::Insert(InsertFailure::KicksExhausted { .. }))
        ));
        assert!(matches!(
            takes_ccf_error(delete),
            Err(CcfError::Delete(DeleteFailure::ConvertedGroup))
        ));
        assert!(matches!(
            takes_ccf_error(params),
            Err(CcfError::Params(ParamsError::ZeroMaxDupes))
        ));
        assert!(matches!(
            takes_ccf_error(binning),
            Err(CcfError::Binning(BinningError::ZeroBins))
        ));
    }

    #[test]
    fn display_includes_the_inner_message() {
        let e = CcfError::from(ParamsError::ZeroMaxDupes);
        assert!(e.to_string().contains("max_dupes"));
        let e = CcfError::Bridge("column 9 of Title".into());
        assert!(e.to_string().contains("column 9"));
    }

    #[test]
    fn source_chains_to_the_typed_error() {
        use std::error::Error;
        let e = CcfError::from(BinningError::ZeroBins);
        assert!(e.source().is_some());
        assert!(CcfError::Bridge("x".into()).source().is_none());
    }
}
