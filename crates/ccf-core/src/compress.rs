//! Two-stage attribute compression (§9, "Attribute compression").
//!
//! "More accurate CCF's can be constructed using a two-stage process. First, construct
//! a CCF with chaining using large attribute fingerprints. A compressed CCF can be
//! constructed by mapping large attribute fingerprints to smaller ones while minimizing
//! the number of collisions."
//!
//! The [`AttributeCompressor`] implements the mapping step: for each attribute column
//! it observes the distinct values (stage 1 — in a real deployment these would be the
//! large fingerprints; here we can observe the raw values directly, which subsumes
//! them) and assigns each a small code below `2^|α|`, spreading the most frequent
//! values across distinct codes so that collisions — when unavoidable because the
//! column has more than `2^|α|` distinct values — fall on the rarest values and collide
//! with as little probability mass as possible.
//!
//! The compressed codes are then used as the attribute values of a CCF built with the
//! small-value optimisation (§9), so they are stored exactly and the only remaining
//! attribute error is the engineered collisions.

use std::collections::HashMap;

/// Per-column frequency statistics collected in stage 1.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    counts: HashMap<u64, u64>,
}

impl ColumnStats {
    /// Record one occurrence of a value.
    pub fn observe(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
    }

    /// Number of distinct values observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }
}

/// A per-column mapping from raw attribute values to small codes in `[0, 2^attr_bits)`.
#[derive(Debug, Clone)]
pub struct AttributeCompressor {
    attr_bits: u32,
    maps: Vec<HashMap<u64, u64>>,
}

impl AttributeCompressor {
    /// Number of code values available per column.
    pub fn code_space(&self) -> u64 {
        1u64 << self.attr_bits
    }

    /// Build a compressor from per-column statistics.
    ///
    /// Values are sorted by descending frequency and assigned codes round-robin, so the
    /// `2^attr_bits` most frequent values of a column are guaranteed collision-free and
    /// any collisions pair a frequent value with the least frequent ones.
    pub fn build(stats: &[ColumnStats], attr_bits: u32) -> Self {
        assert!((1..=16).contains(&attr_bits), "attr_bits must be 1..=16");
        let code_space = 1u64 << attr_bits;
        let maps = stats
            .iter()
            .map(|col| {
                let mut values: Vec<(u64, u64)> =
                    col.counts.iter().map(|(&v, &c)| (v, c)).collect();
                // Most frequent first; ties broken by value for determinism.
                values.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                values
                    .into_iter()
                    .enumerate()
                    .map(|(rank, (value, _))| (value, rank as u64 % code_space))
                    .collect()
            })
            .collect();
        Self { attr_bits, maps }
    }

    /// Convenience: build directly from rows (stage 1 scan).
    pub fn from_rows<'a, I>(rows: I, num_attrs: usize, attr_bits: u32) -> Self
    where
        I: IntoIterator<Item = &'a [u64]>,
    {
        let mut stats = vec![ColumnStats::default(); num_attrs];
        for row in rows {
            assert!(row.len() >= num_attrs, "row narrower than num_attrs");
            for (col, stat) in stats.iter_mut().enumerate() {
                stat.observe(row[col]);
            }
        }
        Self::build(&stats, attr_bits)
    }

    /// Compress one value of one column. Values never observed in stage 1 fall back to
    /// a hash-free default (`value mod 2^attr_bits`), which keeps queries for them
    /// deterministic and collision behaviour no worse than plain fingerprinting.
    pub fn compress(&self, col: usize, value: u64) -> u64 {
        self.maps
            .get(col)
            .and_then(|m| m.get(&value).copied())
            .unwrap_or(value & (self.code_space() - 1))
    }

    /// Compress an entire attribute row.
    pub fn compress_row(&self, row: &[u64]) -> Vec<u64> {
        row.iter()
            .enumerate()
            .map(|(col, &v)| self.compress(col, v))
            .collect()
    }

    /// Expected collision probability for a column: the probability that two
    /// independently drawn values (by observed frequency) collide under the mapping
    /// *while being different values*. This is the quantity the two-stage construction
    /// minimizes; compare with `2^{-attr_bits}` for random fingerprints.
    pub fn collision_probability(&self, stats: &ColumnStats, col: usize) -> f64 {
        let total: u64 = stats.counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let mut by_code: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
        for (&value, &count) in &stats.counts {
            by_code
                .entry(self.compress(col, value))
                .or_default()
                .push((value, count));
        }
        let mut collision_mass = 0.0;
        for group in by_code.values() {
            let group_total: u64 = group.iter().map(|(_, c)| c).sum();
            for &(_, c) in group {
                // Probability of drawing this value and then a *different* value that
                // shares its code.
                collision_mass +=
                    (c as f64 / total as f64) * ((group_total - c) as f64 / total as f64);
            }
        }
        collision_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_stats(distinct: u64) -> ColumnStats {
        // Zipf-ish frequencies: value v occurs ~ distinct/(v+1) times.
        let mut s = ColumnStats::default();
        for v in 0..distinct {
            let reps = (distinct / (v + 1)).max(1);
            for _ in 0..reps {
                s.observe(1000 + v);
            }
        }
        s
    }

    #[test]
    fn low_cardinality_columns_are_collision_free() {
        let mut s = ColumnStats::default();
        for v in 0..10u64 {
            s.observe(v * 17);
        }
        let c = AttributeCompressor::build(std::slice::from_ref(&s), 4);
        let codes: std::collections::HashSet<u64> =
            (0..10u64).map(|v| c.compress(0, v * 17)).collect();
        assert_eq!(
            codes.len(),
            10,
            "distinct values ≤ 2^4 must map injectively"
        );
        assert_eq!(c.collision_probability(&s, 0), 0.0);
    }

    #[test]
    fn frequent_values_never_collide_with_each_other() {
        let s = skewed_stats(100);
        let c = AttributeCompressor::build(std::slice::from_ref(&s), 4);
        // The 16 most frequent values are 1000..1016 (monotone frequencies); their
        // codes must be pairwise distinct.
        let codes: std::collections::HashSet<u64> =
            (0..16u64).map(|v| c.compress(0, 1000 + v)).collect();
        assert_eq!(codes.len(), 16);
    }

    #[test]
    fn compression_beats_random_fingerprints_on_skewed_data() {
        let s = skewed_stats(200);
        let c = AttributeCompressor::build(std::slice::from_ref(&s), 4);
        let engineered = c.collision_probability(&s, 0);
        // Random 4-bit fingerprinting collides two distinct draws with probability
        // ≈ (1 − Σp_v²)/16; computing the exact value for this distribution:
        let total: u64 = s.counts.values().sum();
        let sum_sq: f64 = s
            .counts
            .values()
            .map(|&c| (c as f64 / total as f64).powi(2))
            .sum();
        let random = (1.0 - sum_sq) / 16.0;
        assert!(
            engineered < random,
            "two-stage compression ({engineered}) should beat random fingerprints ({random})"
        );
    }

    #[test]
    fn unseen_values_still_compress_deterministically() {
        let s = skewed_stats(5);
        let c = AttributeCompressor::build(std::slice::from_ref(&s), 8);
        assert_eq!(c.compress(0, 999_999), c.compress(0, 999_999));
        assert!(c.compress(0, 999_999) < 256);
    }

    #[test]
    fn compress_row_applies_per_column_maps() {
        let rows: Vec<Vec<u64>> = vec![vec![10, 500], vec![10, 501], vec![20, 500]];
        let c = AttributeCompressor::from_rows(rows.iter().map(|r| r.as_slice()), 2, 4);
        let compressed = c.compress_row(&[10, 501]);
        assert_eq!(compressed.len(), 2);
        assert_eq!(compressed[0], c.compress(0, 10));
        assert_eq!(compressed[1], c.compress(1, 501));
        // Distinct values in a low-cardinality column get distinct codes.
        assert_ne!(c.compress(0, 10), c.compress(0, 20));
        assert_ne!(c.compress(1, 500), c.compress(1, 501));
    }

    #[test]
    #[should_panic(expected = "attr_bits must be 1..=16")]
    fn oversized_code_space_rejected() {
        let _ = AttributeCompressor::build(&[ColumnStats::default()], 20);
    }
}
