//! Predicates over attribute columns.
//!
//! The paper restricts itself to equality predicates (§1) plus range predicates handled
//! by binning or dyadic expansion (§9.1). A [`Predicate`] is a conjunction of
//! per-column conditions; columns not mentioned are unconstrained.
//!
//! Predicates are evaluated in two ways:
//!
//! * against *raw rows* ([`Predicate::matches_row`]) — used by the exact-semijoin
//!   baseline and to label false positives in the experiments;
//! * against *attribute sketches* — done inside each CCF variant, which consults
//!   [`Predicate::conditions`] column by column.

pub mod binning;
pub mod dyadic;

/// A condition on a single attribute column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnPredicate {
    /// No constraint on this column.
    Any,
    /// Column must equal the value.
    Eq(u64),
    /// Column must equal one of the listed values (how binned range predicates are
    /// expressed, §9.1: "A range predicate can then be converted into a small
    /// in-list").
    InList(Vec<u64>),
}

impl ColumnPredicate {
    /// Whether a raw attribute value satisfies the condition.
    pub fn matches_value(&self, value: u64) -> bool {
        match self {
            ColumnPredicate::Any => true,
            ColumnPredicate::Eq(v) => *v == value,
            ColumnPredicate::InList(vs) => vs.contains(&value),
        }
    }

    /// Whether the condition constrains the column at all.
    pub fn is_constrained(&self) -> bool {
        !matches!(self, ColumnPredicate::Any)
    }

    /// The candidate values the condition accepts (`None` for unconstrained).
    pub fn candidate_values(&self) -> Option<&[u64]> {
        match self {
            ColumnPredicate::Any => None,
            ColumnPredicate::Eq(v) => Some(std::slice::from_ref(v)),
            ColumnPredicate::InList(vs) => Some(vs.as_slice()),
        }
    }
}

/// A conjunction of per-column conditions, aligned with the filter's attribute columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicate {
    conditions: Vec<ColumnPredicate>,
}

impl Predicate {
    /// A predicate with no constraints on `num_attrs` columns (a key-only query).
    pub fn any(num_attrs: usize) -> Self {
        Self {
            conditions: vec![ColumnPredicate::Any; num_attrs],
        }
    }

    /// An unconstrained predicate spanning exactly the filter's attribute columns.
    ///
    /// Prefer this (or `ConditionalFilter::predicate()`, which calls it) over
    /// hand-passing a count to [`Predicate::any`]: a predicate whose arity disagrees
    /// with the filter's `num_attrs` silently mis-evaluates — conditions past the
    /// stored columns are never consulted — so deriving the arity from the parameters
    /// removes the mismatch by construction.
    pub fn for_params(params: &crate::params::CcfParams) -> Self {
        Self::any(params.num_attrs)
    }

    /// Build a predicate from explicit per-column conditions.
    pub fn new(conditions: Vec<ColumnPredicate>) -> Self {
        Self { conditions }
    }

    /// A single-column equality predicate `A_col = value` over `num_attrs` columns.
    pub fn eq(num_attrs: usize, col: usize, value: u64) -> Self {
        assert!(
            col < num_attrs,
            "column {col} out of range for {num_attrs} attributes"
        );
        let mut conditions = vec![ColumnPredicate::Any; num_attrs];
        conditions[col] = ColumnPredicate::Eq(value);
        Self { conditions }
    }

    /// A single-column in-list predicate over `num_attrs` columns.
    pub fn in_list(num_attrs: usize, col: usize, values: Vec<u64>) -> Self {
        assert!(
            col < num_attrs,
            "column {col} out of range for {num_attrs} attributes"
        );
        let mut conditions = vec![ColumnPredicate::Any; num_attrs];
        conditions[col] = ColumnPredicate::InList(values);
        Self { conditions }
    }

    /// Add / replace the condition on one column, returning the modified predicate.
    pub fn and_eq(mut self, col: usize, value: u64) -> Self {
        assert!(col < self.conditions.len());
        self.conditions[col] = ColumnPredicate::Eq(value);
        self
    }

    /// Number of columns the predicate spans (constrained or not).
    pub fn num_attrs(&self) -> usize {
        self.conditions.len()
    }

    /// Number of columns that carry a real constraint.
    pub fn num_constrained(&self) -> usize {
        self.conditions
            .iter()
            .filter(|c| c.is_constrained())
            .count()
    }

    /// Whether the predicate constrains nothing (equivalent to a key-only query).
    pub fn is_unconstrained(&self) -> bool {
        self.num_constrained() == 0
    }

    /// Per-column conditions, aligned with attribute columns.
    pub fn conditions(&self) -> &[ColumnPredicate] {
        &self.conditions
    }

    /// Whether a raw attribute row satisfies every condition.
    ///
    /// # Panics
    /// Panics if the row has fewer columns than the predicate.
    pub fn matches_row(&self, row: &[u64]) -> bool {
        assert!(
            row.len() >= self.conditions.len(),
            "row has {} columns but predicate spans {}",
            row.len(),
            self.conditions.len()
        );
        self.conditions
            .iter()
            .zip(row)
            .all(|(c, &v)| c.matches_value(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_params_spans_the_filter_columns() {
        let params = crate::params::CcfParams {
            num_attrs: 3,
            ..crate::params::CcfParams::default()
        };
        let p = Predicate::for_params(&params);
        assert_eq!(p.num_attrs(), 3);
        assert!(p.is_unconstrained());
        assert_eq!(p, Predicate::any(3));
        assert!(p.and_eq(2, 9).matches_row(&[0, 0, 9]));
    }

    #[test]
    fn any_predicate_matches_everything() {
        let p = Predicate::any(3);
        assert!(p.is_unconstrained());
        assert!(p.matches_row(&[1, 2, 3]));
        assert!(p.matches_row(&[0, 0, 0]));
    }

    #[test]
    fn eq_predicate_matches_only_equal_values() {
        let p = Predicate::eq(2, 1, 7);
        assert!(p.matches_row(&[100, 7]));
        assert!(!p.matches_row(&[100, 8]));
        assert_eq!(p.num_constrained(), 1);
    }

    #[test]
    fn in_list_predicate() {
        let p = Predicate::in_list(1, 0, vec![2, 4, 6]);
        assert!(p.matches_row(&[4]));
        assert!(!p.matches_row(&[5]));
    }

    #[test]
    fn conjunction_requires_all_columns() {
        let p = Predicate::new(vec![ColumnPredicate::Eq(1), ColumnPredicate::Eq(2)]);
        assert!(p.matches_row(&[1, 2]));
        assert!(!p.matches_row(&[1, 3]));
        assert!(!p.matches_row(&[0, 2]));
        assert_eq!(p.num_constrained(), 2);
    }

    #[test]
    fn and_eq_builds_conjunctions() {
        let p = Predicate::any(3).and_eq(0, 5).and_eq(2, 9);
        assert!(p.matches_row(&[5, 123, 9]));
        assert!(!p.matches_row(&[5, 123, 8]));
    }

    #[test]
    fn candidate_values_exposes_the_right_sets() {
        assert_eq!(ColumnPredicate::Any.candidate_values(), None);
        assert_eq!(ColumnPredicate::Eq(3).candidate_values(), Some(&[3u64][..]));
        assert_eq!(
            ColumnPredicate::InList(vec![1, 2]).candidate_values(),
            Some(&[1u64, 2][..])
        );
    }

    #[test]
    fn rows_may_have_extra_columns() {
        let p = Predicate::eq(1, 0, 9);
        assert!(p.matches_row(&[9, 1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn eq_rejects_out_of_range_column() {
        let _ = Predicate::eq(2, 2, 1);
    }

    #[test]
    #[should_panic(expected = "columns but predicate spans")]
    fn short_rows_panic() {
        let p = Predicate::any(3);
        p.matches_row(&[1, 2]);
    }
}
