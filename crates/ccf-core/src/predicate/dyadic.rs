//! Dyadic range decomposition (§9.1, second method).
//!
//! "Another method uses a standard approach of using a dyadic expansion over the range
//! [a0, b0] of the column. An item x can be represented as a sequence of intervals
//! [a1, b1], ..., [aη, bη] with exponentially decreasing lengths ... This requires η
//! insertions into a CCF for each item, and a range query likewise requires querying
//! for the existence of up to η intervals that cover the range."
//!
//! The paper uses the simpler binning approach in its experiments; the dyadic scheme is
//! provided as the documented alternative. Values are mapped to the chain of dyadic
//! intervals containing them (one per level); a range query is decomposed into the
//! canonical minimal set of dyadic intervals covering it, and the query succeeds if any
//! canonical interval was inserted for the probed key.

/// A dyadic decomposition of the domain `[0, 2^levels)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DyadicDomain {
    /// Number of levels η; the domain is `[0, 2^levels)`.
    levels: u32,
}

/// A dyadic interval identified by (level, index): it covers
/// `[index · 2^(levels-level), (index+1) · 2^(levels-level))`.
/// Level 0 is the whole domain; level `levels` is a single value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DyadicInterval {
    /// Level in the dyadic tree (0 = whole domain).
    pub level: u32,
    /// Index of the interval within its level.
    pub index: u64,
}

impl DyadicDomain {
    /// Create a domain `[0, 2^levels)`.
    ///
    /// # Panics
    /// Panics if `levels` is 0 or exceeds 40 (the experiments never need more).
    pub fn new(levels: u32) -> Self {
        assert!((1..=40).contains(&levels), "levels must be in 1..=40");
        Self { levels }
    }

    /// Number of levels η.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Size of the domain.
    pub fn domain_size(&self) -> u64 {
        1u64 << self.levels
    }

    /// The chain of dyadic intervals containing `value`, one per level from coarse to
    /// fine — these are the η insertions performed per item.
    ///
    /// # Panics
    /// Panics if the value is outside the domain.
    pub fn intervals_of(&self, value: u64) -> Vec<DyadicInterval> {
        assert!(
            value < self.domain_size(),
            "value {value} outside dyadic domain"
        );
        (1..=self.levels)
            .map(|level| DyadicInterval {
                level,
                index: value >> (self.levels - level),
            })
            .collect()
    }

    /// Encode an interval as a single u64 suitable for insertion as an attribute value
    /// (level in the high bits).
    pub fn encode(&self, interval: DyadicInterval) -> u64 {
        (u64::from(interval.level) << 48) | interval.index
    }

    /// The canonical (minimal) set of dyadic intervals exactly covering `[lo, hi]`
    /// inclusive. A range query probes each of these.
    ///
    /// Only levels 1..=η are used (the same levels [`Self::intervals_of`] inserts), so a
    /// range covering the whole domain is returned as the two level-1 halves rather
    /// than the level-0 root.
    pub fn cover(&self, lo: u64, hi: u64) -> Vec<DyadicInterval> {
        if lo > hi {
            return Vec::new();
        }
        assert!(
            hi < self.domain_size(),
            "range end {hi} outside dyadic domain"
        );
        let mut out = Vec::new();
        let mut lo = lo;
        let hi_excl = hi + 1;
        while lo < hi_excl {
            // Largest aligned block starting at lo that does not overshoot hi_excl,
            // capped at level 1 blocks (half the domain) so insertions can match it.
            let max_by_alignment = if lo == 0 {
                self.levels - 1
            } else {
                lo.trailing_zeros().min(self.levels - 1)
            };
            let mut size_log = max_by_alignment;
            while (1u64 << size_log) > hi_excl - lo {
                size_log -= 1;
            }
            let level = self.levels - size_log;
            out.push(DyadicInterval {
                level,
                index: lo >> size_log,
            });
            lo += 1u64 << size_log;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_of_forms_a_nested_chain() {
        let d = DyadicDomain::new(4); // domain [0, 16)
        let chain = d.intervals_of(11); // binary 1011
        assert_eq!(chain.len(), 4);
        assert_eq!(
            chain,
            vec![
                DyadicInterval { level: 1, index: 1 }, // [8, 16)
                DyadicInterval { level: 2, index: 2 }, // [8, 12)
                DyadicInterval { level: 3, index: 5 }, // [10, 12)
                DyadicInterval {
                    level: 4,
                    index: 11
                }, // [11, 11]
            ]
        );
    }

    #[test]
    fn cover_is_minimal_and_exact() {
        let d = DyadicDomain::new(4);
        // [3, 12] over a 16-value domain: canonical cover {3}, [4,8), [8,12), {12}.
        let cover = d.cover(3, 12);
        assert_eq!(cover.len(), 4);
        // Verify exact coverage by expanding every interval.
        let mut covered = [false; 16];
        for iv in &cover {
            let size = 1u64 << (d.levels() - iv.level);
            for v in (iv.index * size)..((iv.index + 1) * size) {
                assert!(!covered[v as usize], "overlap at {v}");
                covered[v as usize] = true;
            }
        }
        for (v, &c) in covered.iter().enumerate() {
            assert_eq!(c, (3..=12).contains(&(v as u64)), "coverage wrong at {v}");
        }
    }

    #[test]
    fn cover_of_full_domain_is_the_two_level_one_halves() {
        let d = DyadicDomain::new(6);
        let cover = d.cover(0, 63);
        assert_eq!(
            cover,
            vec![
                DyadicInterval { level: 1, index: 0 },
                DyadicInterval { level: 1, index: 1 },
            ]
        );
    }

    #[test]
    fn cover_of_single_value_is_leaf() {
        let d = DyadicDomain::new(5);
        assert_eq!(
            d.cover(17, 17),
            vec![DyadicInterval {
                level: 5,
                index: 17
            }]
        );
        assert!(d.cover(9, 3).is_empty());
    }

    #[test]
    fn cover_size_is_logarithmic() {
        // The canonical cover of any range over 2^η values has at most 2η intervals.
        let d = DyadicDomain::new(16);
        for (lo, hi) in [(1u64, 65_534u64), (12_345, 54_321), (0, 1), (100, 100)] {
            let cover = d.cover(lo, hi);
            assert!(
                cover.len() <= 32,
                "cover of [{lo},{hi}] has {} intervals",
                cover.len()
            );
        }
    }

    #[test]
    fn range_query_via_membership_has_no_false_negatives() {
        // Simulate the CCF usage: insert the interval chain of each value, then check
        // that for a query range every value inside it shares at least one interval
        // with the canonical cover.
        let d = DyadicDomain::new(8);
        let (lo, hi) = (37u64, 180u64);
        let cover: std::collections::HashSet<_> = d.cover(lo, hi).into_iter().collect();
        for v in 0..d.domain_size() {
            let hit = d.intervals_of(v).iter().any(|iv| cover.contains(iv));
            assert_eq!(hit, (lo..=hi).contains(&v), "value {v}");
        }
    }

    #[test]
    fn encode_is_injective_across_levels() {
        let d = DyadicDomain::new(10);
        let mut seen = std::collections::HashSet::new();
        for v in 0..1024u64 {
            for iv in d.intervals_of(v) {
                seen.insert(d.encode(iv));
            }
        }
        // Sum over levels of 2^level intervals = 2^(η+1) − 2.
        assert_eq!(seen.len(), (1 << 11) - 2);
    }

    #[test]
    #[should_panic(expected = "outside dyadic domain")]
    fn out_of_domain_value_panics() {
        let d = DyadicDomain::new(3);
        let _ = d.intervals_of(8);
    }
}
