//! Range predicates via binning (§9.1).
//!
//! "Given a column with a range predicate, one simple method is to bin the column into
//! a small number of bins. A range predicate can then be converted into a small
//! in-list." The JOB-light experiments map the 132 distinct `production_year` values
//! (1880–2019) to 16 roughly equal-sized intervals (§10.3) and convert inequality
//! predicates to in-lists of bin ids.
//!
//! Binning introduces error: a bin that straddles the range boundary matches rows whose
//! raw value is outside the range. §10.6 quantifies this as the difference between the
//! "Exact Semijoin" and "Exact Semijoin After Binning" baselines.

use super::ColumnPredicate;

/// Why a binning scheme could not be built or consulted. Serving processes (the
/// sharded filter service, the join bridge) use the fallible `try_*` constructors and
/// accessors so a malformed predicate is reported instead of aborting the process; the
/// panicking wrappers remain for the experiment harness, where the workload generator
/// guarantees well-formed inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinningError {
    /// `min > max`: the value domain is empty.
    EmptyDomain {
        /// Requested domain minimum.
        min: u64,
        /// Requested domain maximum.
        max: u64,
    },
    /// `num_bins == 0`: at least one bin is required.
    ZeroBins,
    /// A bin id at or beyond `num_bins` was consulted.
    BinOutOfRange {
        /// The offending bin id.
        bin: u64,
        /// Number of bins in the scheme.
        num_bins: u64,
    },
}

impl std::fmt::Display for BinningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinningError::EmptyDomain { min, max } => {
                write!(f, "empty domain: min {min} > max {max}")
            }
            BinningError::ZeroBins => write!(f, "need at least one bin"),
            BinningError::BinOutOfRange { bin, num_bins } => {
                write!(f, "bin {bin} out of range (scheme has {num_bins} bins)")
            }
        }
    }
}

impl std::error::Error for BinningError {}

/// A binning scheme mapping a value domain `[min, max]` to `num_bins` roughly
/// equal-width bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binning {
    min: u64,
    max: u64,
    num_bins: u64,
}

impl Binning {
    /// Create a binning of `[min, max]` (inclusive) into `num_bins` bins, reporting
    /// impossible configurations as a typed error instead of panicking.
    pub fn try_new(min: u64, max: u64, num_bins: usize) -> Result<Self, BinningError> {
        if min > max {
            return Err(BinningError::EmptyDomain { min, max });
        }
        if num_bins == 0 {
            return Err(BinningError::ZeroBins);
        }
        Ok(Self {
            min,
            max,
            num_bins: num_bins as u64,
        })
    }

    /// Create a binning of `[min, max]` (inclusive) into `num_bins` bins.
    ///
    /// # Panics
    /// Panics if `min > max` or `num_bins == 0`; use [`Binning::try_new`] to handle
    /// those cases as values.
    pub fn new(min: u64, max: u64, num_bins: usize) -> Self {
        Self::try_new(min, max, num_bins).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Equal-size binning for the JOB-light `production_year` column: 1880–2019 in 16
    /// bins (§10.3).
    pub fn production_year() -> Self {
        Self::new(1880, 2019, 16)
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.num_bins as usize
    }

    /// The bin id of a value. Values outside the domain are clamped to the first or
    /// last bin so that inserted data never falls outside the binned universe.
    pub fn bin_of(&self, value: u64) -> u64 {
        let v = value.clamp(self.min, self.max);
        let width = self.max - self.min + 1;
        // floor((v - min) * num_bins / width), safe in u128.
        (((v - self.min) as u128 * self.num_bins as u128) / width as u128) as u64
    }

    /// Inclusive value range `[lo, hi]` covered by a bin, with out-of-range bin ids
    /// reported as a typed error instead of a panic.
    pub fn try_bin_range(&self, bin: u64) -> Result<(u64, u64), BinningError> {
        if bin >= self.num_bins {
            return Err(BinningError::BinOutOfRange {
                bin,
                num_bins: self.num_bins,
            });
        }
        let width = (self.max - self.min + 1) as u128;
        let n = self.num_bins as u128;
        // bin_of(v) = floor((v - min)·n / width) = bin  ⇔
        //   v - min ∈ [ceil(bin·width / n), ceil((bin+1)·width / n) − 1].
        let ceil_div = |a: u128, b: u128| a.div_ceil(b) as u64;
        let lo = self.min + ceil_div(bin as u128 * width, n);
        let hi = self.min + ceil_div((bin + 1) as u128 * width, n) - 1;
        Ok((lo, hi.min(self.max)))
    }

    /// Inclusive value range `[lo, hi]` covered by a bin.
    ///
    /// # Panics
    /// Panics if `bin >= num_bins`; use [`Binning::try_bin_range`] to handle that case
    /// as a value.
    pub fn bin_range(&self, bin: u64) -> (u64, u64) {
        self.try_bin_range(bin).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Convert an inclusive range predicate `[lo, hi]` into the in-list of bins that
    /// overlap it — the §9.1 conversion. Returns `Any` if every bin is covered (no
    /// filtering power left).
    pub fn range_to_bins(&self, lo: u64, hi: u64) -> ColumnPredicate {
        if lo > hi {
            return ColumnPredicate::InList(Vec::new());
        }
        let first = self.bin_of(lo.max(self.min));
        let last = self.bin_of(hi.min(self.max));
        let bins: Vec<u64> = (first..=last).collect();
        if bins.len() >= self.num_bins as usize {
            ColumnPredicate::Any
        } else {
            ColumnPredicate::InList(bins)
        }
    }

    /// Convert a one-sided predicate `value >= lo` into a bin in-list.
    pub fn ge_to_bins(&self, lo: u64) -> ColumnPredicate {
        self.range_to_bins(lo, self.max)
    }

    /// Convert a one-sided predicate `value <= hi` into a bin in-list.
    pub fn le_to_bins(&self, hi: u64) -> ColumnPredicate {
        self.range_to_bins(self.min, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_cover_domain_contiguously() {
        let b = Binning::new(0, 99, 10);
        // Every value maps to a bin, bins are monotone in the value, and each of the
        // 10 bins receives exactly 10 values.
        let mut counts = [0u32; 10];
        let mut prev = 0;
        for v in 0..100u64 {
            let bin = b.bin_of(v);
            assert!(bin < 10);
            assert!(bin >= prev);
            prev = bin;
            counts[bin as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn production_year_binning_matches_paper_setup() {
        let b = Binning::production_year();
        assert_eq!(b.num_bins(), 16);
        assert_eq!(b.bin_of(1880), 0);
        assert_eq!(b.bin_of(2019), 15);
        // 140 values in 16 bins: bins hold 8 or 9 consecutive years.
        for bin in 0..16u64 {
            let (lo, hi) = b.bin_range(bin);
            let width = hi - lo + 1;
            assert!((8..=9).contains(&width), "bin {bin} spans {width} years");
        }
    }

    #[test]
    fn bin_range_is_consistent_with_bin_of() {
        let b = Binning::new(10, 500, 7);
        for bin in 0..7u64 {
            let (lo, hi) = b.bin_range(bin);
            assert_eq!(b.bin_of(lo), bin);
            assert_eq!(b.bin_of(hi), bin);
            if lo > 10 {
                assert_eq!(b.bin_of(lo - 1), bin - 1);
            }
        }
    }

    #[test]
    fn out_of_domain_values_clamp() {
        let b = Binning::new(100, 200, 4);
        assert_eq!(b.bin_of(0), 0);
        assert_eq!(b.bin_of(1000), 3);
    }

    #[test]
    fn range_to_bins_overlapping_bins_only() {
        let b = Binning::new(0, 159, 16); // 10 values per bin
        match b.range_to_bins(25, 44) {
            ColumnPredicate::InList(bins) => assert_eq!(bins, vec![2, 3, 4]),
            other => panic!("expected in-list, got {other:?}"),
        }
        // Covering the whole domain loses all filtering power.
        assert_eq!(b.range_to_bins(0, 159), ColumnPredicate::Any);
        // Empty ranges yield an empty (never-matching) in-list.
        assert_eq!(b.range_to_bins(50, 40), ColumnPredicate::InList(vec![]));
    }

    #[test]
    fn one_sided_ranges() {
        let b = Binning::new(0, 159, 16);
        match b.ge_to_bins(150) {
            ColumnPredicate::InList(bins) => assert_eq!(bins, vec![15]),
            other => panic!("unexpected {other:?}"),
        }
        match b.le_to_bins(9) {
            ColumnPredicate::InList(bins) => assert_eq!(bins, vec![0]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn binning_never_introduces_false_negatives() {
        // Every raw value inside [lo, hi] must map to a bin inside the converted
        // in-list — the "no false negatives" requirement of the conversion.
        let b = Binning::new(1880, 2019, 16);
        let (lo, hi) = (1950u64, 1990u64);
        let pred = b.range_to_bins(lo, hi);
        for v in lo..=hi {
            assert!(
                pred.matches_value(b.bin_of(v)),
                "value {v} in range but bin {} not in list",
                b.bin_of(v)
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn inverted_domain_rejected() {
        let _ = Binning::new(10, 5, 4);
    }

    #[test]
    fn fallible_constructors_report_typed_errors() {
        assert_eq!(
            Binning::try_new(10, 5, 4),
            Err(BinningError::EmptyDomain { min: 10, max: 5 })
        );
        assert_eq!(Binning::try_new(0, 9, 0), Err(BinningError::ZeroBins));
        let b = Binning::try_new(0, 99, 10).unwrap();
        assert_eq!(b.try_bin_range(3), Ok(b.bin_range(3)));
        assert_eq!(
            b.try_bin_range(10),
            Err(BinningError::BinOutOfRange {
                bin: 10,
                num_bins: 10
            })
        );
        // The error messages used by the panicking wrappers stay descriptive.
        assert!(BinningError::ZeroBins.to_string().contains("one bin"));
        assert!(b
            .try_bin_range(12)
            .unwrap_err()
            .to_string()
            .contains("bin 12 out of range"));
    }
}
