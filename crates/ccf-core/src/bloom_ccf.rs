//! The CCF with Bloom attribute sketches (§5.2, Algorithms 1 and 2).
//!
//! Each entry pairs a key fingerprint κ with a small Bloom filter into which every
//! (attribute column, value) pair of the key's rows is inserted. Rows sharing a key
//! merge into the same entry, so "the occupied entries in the sketch are exactly the
//! same as those of a cuckoo filter" — the variant needs no duplicate handling and is
//! guaranteed the usual cuckoo-filter load factors, at the cost of a less bit-efficient
//! attribute sketch and the inability to encode which attribute values co-occur in the
//! same row.
//!
//! Algorithm 2 (predicate-only queries) is [`BloomCcf::predicate_filter`]: entries whose
//! sketch cannot match the predicate are erased and the surviving key fingerprints are
//! returned as a standard [`CuckooFilter`].

use ccf_bloom::TinyBloom;
use ccf_cuckoo::geometry::{prefetch_index, probe_chunked};
use ccf_cuckoo::CuckooFilter;
use ccf_cuckoo::{GrowthStats, OccupancyStats};
use ccf_hash::{Fingerprinter, HashFamily, SaltedHasher};
use ccf_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::attr::match_raw_bloom;
use crate::instruments::CcfInstruments;
use crate::key::FilterKey;
use crate::outcome::{DeleteFailure, InsertFailure, InsertOutcome};
use crate::params::{CcfParams, ParamsError};
use crate::predicate::Predicate;

/// One entry: a key fingerprint plus the Bloom sketch of all its rows' attributes.
#[derive(Debug, Clone)]
struct Entry {
    fp: u16,
    sketch: TinyBloom,
}

/// Conditional cuckoo filter with per-entry Bloom attribute sketches.
#[derive(Debug, Clone)]
pub struct BloomCcf {
    buckets: Vec<Vec<Entry>>,
    bucket_mask: usize,
    params: CcfParams,
    fingerprinter: Fingerprinter,
    partial_hasher: SaltedHasher,
    bloom_family: HashFamily,
    key_lower: SaltedHasher,
    rng: StdRng,
    occupied: usize,
    rows_absorbed: usize,
    instruments: CcfInstruments,
}

impl BloomCcf {
    /// Create an empty filter. `params.num_buckets` is rounded up to a power of two.
    ///
    /// # Panics
    /// Panics on impossible parameters; use [`BloomCcf::try_new`] (or the
    /// [`crate::CcfBuilder`] facade) to get a [`ParamsError`] instead.
    pub fn new(params: CcfParams) -> Self {
        Self::try_new(params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Create an empty filter, reporting impossible parameters as a [`ParamsError`].
    /// `params.num_buckets` is rounded up to a power of two.
    pub fn try_new(mut params: CcfParams) -> Result<Self, ParamsError> {
        params.num_buckets = params.num_buckets.next_power_of_two().max(1);
        params.try_validate()?;
        if params.bloom_bits == 0 {
            return Err(ParamsError::ZeroBloomBits);
        }
        let family = HashFamily::new(params.seed);
        Ok(Self {
            buckets: vec![Vec::new(); params.num_buckets],
            bucket_mask: params.num_buckets - 1,
            fingerprinter: Fingerprinter::new(&family, params.fingerprint_bits),
            partial_hasher: family.hasher(ccf_hash::salted::purpose::PARTIAL_KEY),
            bloom_family: family.subfamily(7),
            key_lower: family.hasher(ccf_hash::salted::purpose::KEY_LOWER),
            rng: StdRng::seed_from_u64(params.seed ^ 0xB100),
            occupied: 0,
            rows_absorbed: 0,
            instruments: CcfInstruments::disabled(),
            params,
        })
    }

    /// Variant payload of the [`crate::AnyCcf`] snapshot format: exact RNG words,
    /// the absorbed-rows counter, and every entry's fingerprint plus raw Bloom
    /// sketch bits (the sketch hashers are shared configuration, rebuilt from the
    /// seed). The Bloom variant never grows, so no growth state is stored.
    pub(crate) fn snapshot_payload(&self, w: &mut ccf_cuckoo::ByteWriter) {
        for word in self.rng.state() {
            w.put_u64(word);
        }
        w.put_usize(self.rows_absorbed);
        for bucket in &self.buckets {
            w.put_u16(u16::try_from(bucket.len()).expect("bucket wider than u16"));
            for entry in bucket {
                w.put_u16(entry.fp);
                w.put_usize(entry.sketch.pairs_inserted());
                w.put_len_bytes(&entry.sketch.to_bits().to_bytes());
            }
        }
    }

    /// Inverse of [`BloomCcf::snapshot_payload`]; sketch widths are re-validated
    /// against `params.bloom_bits` so a corrupted payload fails typed.
    pub(crate) fn from_snapshot_payload(
        params: CcfParams,
        r: &mut ccf_cuckoo::ByteReader<'_>,
    ) -> Result<Self, ccf_cuckoo::SnapshotError> {
        use ccf_cuckoo::SnapshotError;
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64()?;
        }
        let rows_absorbed = r.get_usize()?;
        let mut f = Self::try_new(params).map_err(|e| SnapshotError::Invalid(e.to_string()))?;
        let sketch_bytes = params.bloom_bits.div_ceil(8);
        let mut occupied = 0usize;
        for bucket in &mut f.buckets {
            let len = usize::from(r.get_u16()?);
            if len > params.entries_per_bucket {
                return Err(SnapshotError::Invalid(format!(
                    "bucket holds {len} entries but b = {}",
                    params.entries_per_bucket
                )));
            }
            bucket.reserve_exact(len);
            for _ in 0..len {
                let fp = r.get_u16()?;
                if fp == 0 {
                    return Err(SnapshotError::Invalid("stored fingerprint is zero".into()));
                }
                let pairs_inserted = r.get_usize()?;
                let bits = r.get_len_bytes()?;
                if bits.len() != sketch_bytes {
                    return Err(SnapshotError::Invalid(format!(
                        "sketch image is {} bytes; bloom_bits = {} needs {sketch_bytes}",
                        bits.len(),
                        params.bloom_bits
                    )));
                }
                let sketch = TinyBloom::from_bits(
                    ccf_bloom::BitVec::from_bytes(bits, params.bloom_bits),
                    params.bloom_hashes,
                    &f.bloom_family,
                    pairs_inserted,
                );
                bucket.push(Entry { fp, sketch });
            }
            occupied += len;
        }
        f.occupied = occupied;
        f.rows_absorbed = rows_absorbed;
        f.rng = StdRng::from_state(rng_state);
        Ok(f)
    }

    /// Resolve this filter's [`CcfInstruments`] against `telemetry` (series get
    /// `variant="bloom"` plus `extra` labels). Call once; hot paths then record
    /// through pre-resolved handles. The Bloom variant never grows or rolls back
    /// via retry, so its grow counter stays at zero by construction.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, extra: &[(&str, &str)]) {
        self.instruments = CcfInstruments::resolve(telemetry, "bloom", extra);
    }

    /// The telemetry bundle events are recorded into (disabled by default).
    pub fn instruments(&self) -> &CcfInstruments {
        &self.instruments
    }

    /// The hasher typed keys are lowered with ([`FilterKey::lower`]); see
    /// [`crate::key`] for the prehashed-key contract.
    pub fn key_lower_hasher(&self) -> SaltedHasher {
        self.key_lower
    }

    /// The filter's parameters (with `num_buckets` normalized).
    pub fn params(&self) -> &CcfParams {
        &self.params
    }

    /// Number of occupied entries (one per distinct key fingerprint per bucket pair).
    pub fn occupied_entries(&self) -> usize {
        self.occupied
    }

    /// Number of rows absorbed.
    pub fn rows_absorbed(&self) -> usize {
        self.rows_absorbed
    }

    /// Total entry slots `m · b`.
    pub fn capacity(&self) -> usize {
        self.buckets.len() * self.params.entries_per_bucket
    }

    /// Load factor β.
    pub fn load_factor(&self) -> f64 {
        self.occupied as f64 / self.capacity() as f64
    }

    /// Serialized size in bits: every slot carries |κ| + Bloom bits.
    pub fn size_bits(&self) -> usize {
        self.capacity() * self.params.bloom_entry_bits()
    }

    /// Per-bucket occupancy summary, including the actual heap footprint of the
    /// bucket storage (spine, per-bucket entry arrays, and per-entry Bloom sketches).
    pub fn occupancy(&self) -> OccupancyStats {
        let heap = std::mem::size_of_val(self.buckets.as_slice())
            + self
                .buckets
                .iter()
                .map(|b| {
                    std::mem::size_of_val(b.as_slice())
                        + b.iter().map(|e| e.sketch.heap_bytes()).sum::<usize>()
                })
                .sum::<usize>();
        OccupancyStats::from_counts(
            self.buckets.iter().map(Vec::len),
            self.params.entries_per_bucket,
        )
        .with_heap_bytes(heap)
    }

    /// Resize-history summary. The Bloom variant does not grow, so the history is
    /// always empty (zero doublings).
    pub fn growth_stats(&self) -> GrowthStats {
        GrowthStats {
            base_buckets: self.buckets.len(),
            current_buckets: self.buckets.len(),
            growth_bits: 0,
        }
    }

    #[inline]
    fn alt_bucket(&self, bucket: usize, fp: u16) -> usize {
        (bucket ^ self.partial_hasher.hash_u64(u64::from(fp)) as usize) & self.bucket_mask
    }

    fn new_sketch(&self) -> TinyBloom {
        TinyBloom::new(
            self.params.bloom_bits,
            self.params.bloom_hashes,
            &self.bloom_family,
        )
    }

    /// Insert a row. Rows whose key fingerprint is already present in the bucket pair
    /// are merged into the existing entry's Bloom sketch.
    pub fn insert_row<K: FilterKey>(
        &mut self,
        key: K,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        let key = key.lower(&self.key_lower);
        self.insert_row_prehashed(key, attrs)
    }

    /// [`BloomCcf::insert_row`] on already-lowered key material (see
    /// [`BloomCcf::key_lower_hasher`]). For `u64` keys the two are identical.
    pub fn insert_row_prehashed(
        &mut self,
        key: u64,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        let result = match self.params.check_arity(attrs) {
            Ok(()) => self.try_insert_row(key, attrs),
            Err(e) => Err(e),
        };
        self.instruments.record_insert(&result);
        result
    }

    fn try_insert_row(&mut self, key: u64, attrs: &[u64]) -> Result<InsertOutcome, InsertFailure> {
        let (fp, l) = self
            .fingerprinter
            .fingerprint_and_bucket(key, self.buckets.len());
        let l_alt = self.alt_bucket(l, fp);
        self.rows_absorbed += 1;

        // Merge into an existing entry for this fingerprint (duplicate key, or a
        // colliding key — either way no false negatives are introduced).
        let buckets: &[usize] = if l == l_alt { &[l] } else { &[l, l_alt] };
        for &bkt in buckets {
            if let Some(e) = self.buckets[bkt].iter_mut().find(|e| e.fp == fp) {
                e.sketch.insert_row(attrs);
                return Ok(InsertOutcome::Merged);
            }
        }

        // Otherwise create a fresh entry, kicking as needed.
        let mut sketch = self.new_sketch();
        sketch.insert_row(attrs);
        let entry = Entry { fp, sketch };
        let b = self.params.entries_per_bucket;
        if self.buckets[l].len() < b {
            self.buckets[l].push(entry);
            self.occupied += 1;
            self.instruments.kick_depth.observe(0);
            return Ok(InsertOutcome::Inserted);
        }
        if self.buckets[l_alt].len() < b {
            self.buckets[l_alt].push(entry);
            self.occupied += 1;
            self.instruments.kick_depth.observe(0);
            return Ok(InsertOutcome::Inserted);
        }
        let mut carried = entry;
        let mut bucket = if self.rng.gen_bool(0.5) { l } else { l_alt };
        let mut swaps: Vec<(usize, usize)> = Vec::new();
        for _ in 0..self.params.max_kicks {
            let slot = self.rng.gen_range(0..b);
            std::mem::swap(&mut self.buckets[bucket][slot], &mut carried);
            swaps.push((bucket, slot));
            bucket = self.alt_bucket(bucket, carried.fp);
            if self.buckets[bucket].len() < b {
                self.buckets[bucket].push(carried);
                self.occupied += 1;
                self.instruments.kick_depth.observe(swaps.len() as u64);
                return Ok(InsertOutcome::Inserted);
            }
        }
        self.instruments.kick_depth.observe(swaps.len() as u64);
        self.instruments.rollbacks.inc();
        for (bucket, slot) in swaps.into_iter().rev() {
            std::mem::swap(&mut self.buckets[bucket][slot], &mut carried);
        }
        self.rows_absorbed -= 1;
        Err(InsertFailure::kicks_exhausted_at(self.load_factor()))
    }

    /// Deletion is structurally unsupported: every row of a key is merged into one
    /// per-entry Bloom sketch, and Bloom bits cannot be unmerged without breaking the
    /// other rows' no-false-negative guarantee. Always returns
    /// [`DeleteFailure::Unsupported`] as a value (never panics), so churn-capable
    /// deployments can detect the misconfiguration and pick a deletable variant.
    pub fn delete_row<K: FilterKey>(
        &mut self,
        _key: K,
        _attrs: &[u64],
    ) -> Result<bool, DeleteFailure> {
        Err(DeleteFailure::Unsupported)
    }

    /// [`BloomCcf::delete_row`] on already-lowered key material (also unsupported).
    pub fn delete_row_prehashed(
        &mut self,
        _key: u64,
        _attrs: &[u64],
    ) -> Result<bool, DeleteFailure> {
        self.instruments
            .record_delete(&Err(DeleteFailure::Unsupported));
        Err(DeleteFailure::Unsupported)
    }

    /// Key deletion is unsupported for the same reason as [`BloomCcf::delete_row`]:
    /// removing the key's entry would also erase every row merged into its sketch,
    /// including rows the caller did not ask to delete (colliding fingerprints merge
    /// *different* keys into one entry).
    pub fn delete_key<K: FilterKey>(&mut self, _key: K) -> Result<bool, DeleteFailure> {
        Err(DeleteFailure::Unsupported)
    }

    /// [`BloomCcf::delete_key`] on already-lowered key material (also unsupported).
    pub fn delete_key_prehashed(&mut self, _key: u64) -> Result<bool, DeleteFailure> {
        self.instruments
            .record_delete(&Err(DeleteFailure::Unsupported));
        Err(DeleteFailure::Unsupported)
    }

    /// Batched row deletion: one [`DeleteFailure::Unsupported`] per row.
    pub fn delete_row_batch<K: FilterKey, A: AsRef<[u64]>>(
        &mut self,
        rows: &[(K, A)],
    ) -> Vec<Result<bool, DeleteFailure>> {
        rows.iter()
            .map(|_| {
                self.instruments
                    .record_delete(&Err(DeleteFailure::Unsupported));
                Err(DeleteFailure::Unsupported)
            })
            .collect()
    }

    /// [`BloomCcf::delete_row_batch`] on already-lowered key material.
    pub fn delete_row_batch_prehashed(
        &mut self,
        rows: &[(u64, &[u64])],
    ) -> Vec<Result<bool, DeleteFailure>> {
        rows.iter()
            .map(|&(key, attrs)| self.delete_row_prehashed(key, attrs))
            .collect()
    }

    /// Batched key deletion: one [`DeleteFailure::Unsupported`] per key.
    pub fn delete_key_batch<K: FilterKey>(
        &mut self,
        keys: &[K],
    ) -> Vec<Result<bool, DeleteFailure>> {
        keys.iter()
            .map(|_| {
                self.instruments
                    .record_delete(&Err(DeleteFailure::Unsupported));
                Err(DeleteFailure::Unsupported)
            })
            .collect()
    }

    /// [`BloomCcf::delete_key_batch`] on already-lowered key material.
    pub fn delete_key_batch_prehashed(&mut self, keys: &[u64]) -> Vec<Result<bool, DeleteFailure>> {
        keys.iter()
            .map(|&key| self.delete_key_prehashed(key))
            .collect()
    }

    /// Query for a key under a predicate (Algorithm 1): true if some entry in the key's
    /// bucket pair carries the key's fingerprint and its Bloom sketch matches every
    /// constrained column.
    pub fn query<K: FilterKey>(&self, key: K, pred: &Predicate) -> bool {
        self.query_prehashed(key.lower(&self.key_lower), pred)
    }

    /// [`BloomCcf::query`] on already-lowered key material.
    pub fn query_prehashed(&self, key: u64, pred: &Predicate) -> bool {
        let (fp, l, l_alt) = self.pair_of(key);
        let hit = self.query_pair(fp, l, l_alt, pred);
        self.instruments.record_query(hit);
        hit
    }

    /// The probe shared by [`BloomCcf::query`] and [`BloomCcf::query_batch`], so the
    /// two can never diverge.
    fn query_pair(&self, fp: u16, l: usize, l_alt: usize, pred: &Predicate) -> bool {
        let buckets: &[usize] = if l == l_alt { &[l] } else { &[l, l_alt] };
        buckets.iter().any(|&bkt| {
            self.buckets[bkt]
                .iter()
                .any(|e| e.fp == fp && match_raw_bloom(pred, &e.sketch))
        })
    }

    /// Batched predicate query: bit-identical to calling [`BloomCcf::query`] per key,
    /// using the chunked hash→prefetch→probe driver ([`ccf_cuckoo::geometry::probe_chunked`]).
    /// `u64` key batches are lowered copy-free.
    pub fn query_batch<K: FilterKey>(&self, keys: &[K], pred: &Predicate) -> Vec<bool> {
        self.query_batch_prehashed(&K::lower_batch(keys, &self.key_lower), pred)
    }

    /// [`BloomCcf::query_batch`] on already-lowered key material.
    pub fn query_batch_prehashed(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
        let hits = probe_chunked(
            keys,
            |key| self.pair_of(key),
            |bucket| prefetch_index(&self.buckets, bucket),
            |fp, l, l_alt| self.query_pair(fp, l, l_alt, pred),
        );
        self.instruments.record_query_batch(&hits);
        hits
    }

    /// Key-only membership query — identical to a regular cuckoo filter (§7.1).
    pub fn contains_key<K: FilterKey>(&self, key: K) -> bool {
        self.contains_key_prehashed(key.lower(&self.key_lower))
    }

    /// [`BloomCcf::contains_key`] on already-lowered key material.
    pub fn contains_key_prehashed(&self, key: u64) -> bool {
        let (fp, l) = self
            .fingerprinter
            .fingerprint_and_bucket(key, self.buckets.len());
        let l_alt = self.alt_bucket(l, fp);
        self.buckets[l].iter().any(|e| e.fp == fp) || self.buckets[l_alt].iter().any(|e| e.fp == fp)
    }

    /// Batched key-only membership query (see [`BloomCcf::query_batch`]).
    pub fn contains_key_batch<K: FilterKey>(&self, keys: &[K]) -> Vec<bool> {
        self.contains_key_batch_prehashed(&K::lower_batch(keys, &self.key_lower))
    }

    /// [`BloomCcf::contains_key_batch`] on already-lowered key material.
    pub fn contains_key_batch_prehashed(&self, keys: &[u64]) -> Vec<bool> {
        probe_chunked(
            keys,
            |key| self.pair_of(key),
            |bucket| prefetch_index(&self.buckets, bucket),
            |fp, l, l_alt| {
                self.buckets[l].iter().any(|e| e.fp == fp)
                    || self.buckets[l_alt].iter().any(|e| e.fp == fp)
            },
        )
    }

    /// The `(κ, ℓ, ℓ′)` triple for a key (this variant never grows, so the full
    /// bucket mask is the base mask).
    #[inline]
    fn pair_of(&self, key: u64) -> (u16, usize, usize) {
        let (fp, l) = self
            .fingerprinter
            .fingerprint_and_bucket(key, self.buckets.len());
        (fp, l, self.alt_bucket(l, fp))
    }

    /// Predicate-only query (Algorithm 2): erase entries whose sketch cannot match the
    /// predicate and return the surviving key fingerprints as a standard cuckoo filter
    /// with the same geometry.
    pub fn predicate_filter(&self, pred: &Predicate) -> CuckooFilter {
        let mut out = CuckooFilter::with_geometry(
            self.buckets.len(),
            self.params.entries_per_bucket,
            self.params.fingerprint_bits,
            self.params.seed,
            self.params.storage,
        );
        for (bucket_idx, bucket) in self.buckets.iter().enumerate() {
            for e in bucket {
                if match_raw_bloom(pred, &e.sketch) {
                    // Entries are copied in place (H′_{ℓ,i} = κ): the surviving
                    // fingerprint is inserted with the same bucket as its current home,
                    // which is always one of its two legal buckets.
                    out.insert_fingerprint(e.fp, bucket_idx)
                        .expect("derived filter has identical geometry, insertion cannot fail");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> CcfParams {
        CcfParams {
            num_buckets: 1 << 10,
            entries_per_bucket: 4,
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 2,
            bloom_bits: 24,
            bloom_hashes: 2,
            seed,
            ..CcfParams::default()
        }
    }

    #[test]
    fn no_false_negatives_across_duplicates() {
        let mut f = BloomCcf::new(params(1));
        for key in 0..500u64 {
            for i in 0..5u64 {
                f.insert_row(key, &[i, key % 7]).unwrap();
            }
        }
        for key in 0..500u64 {
            for i in 0..5u64 {
                assert!(
                    f.query(key, &Predicate::any(2).and_eq(0, i).and_eq(1, key % 7)),
                    "false negative for key {key}, row {i}"
                );
            }
        }
    }

    #[test]
    fn occupied_entries_equal_distinct_keys() {
        // Table 1: the Bloom variant's non-empty entries are nk regardless of
        // duplication (modulo rare fingerprint collisions that merge keys).
        let mut f = BloomCcf::new(params(2));
        for key in 0..300u64 {
            for i in 0..10u64 {
                f.insert_row(key, &[i, i * 2]).unwrap();
            }
        }
        assert!(f.occupied_entries() <= 300);
        assert!(
            f.occupied_entries() >= 295,
            "unexpectedly many fingerprint merges"
        );
    }

    #[test]
    fn non_matching_predicates_are_rejected_with_bloom_fpr() {
        let mut f = BloomCcf::new(params(3));
        for key in 0..1000u64 {
            f.insert_row(key, &[3, 40]).unwrap();
        }
        // Probe present keys with an attribute value that was never inserted; the only
        // false positives are Bloom collisions inside the 24-bit sketch.
        let fp = (0..1000u64)
            .filter(|&k| f.query(k, &Predicate::any(2).and_eq(0, 999)))
            .count();
        let rate = fp as f64 / 1000.0;
        assert!(
            rate < 0.30,
            "attribute FPR {rate} unreasonably high for a 24-bit sketch"
        );
    }

    #[test]
    fn key_only_fpr_matches_cuckoo_filter_regime() {
        let mut f = BloomCcf::new(params(4));
        for key in 0..3000u64 {
            f.insert_row(key, &[1, 2]).unwrap();
        }
        let fp = (1_000_000..1_050_000u64)
            .filter(|&k| f.contains_key(k))
            .count();
        assert!((fp as f64 / 50_000.0) < 0.01);
    }

    #[test]
    fn cross_row_combinations_are_false_positives() {
        // §5.2: the Bloom sketch cannot encode co-occurrence.
        let mut f = BloomCcf::new(params(5));
        f.insert_row(9, &[1, 10]).unwrap();
        f.insert_row(9, &[2, 20]).unwrap();
        assert!(f.query(9, &Predicate::any(2).and_eq(0, 1).and_eq(1, 20)));
    }

    #[test]
    fn predicate_filter_keeps_matching_keys_and_drops_most_others() {
        let mut f = BloomCcf::new(params(6));
        for key in 0..2000u64 {
            f.insert_row(key, &[key % 4, 7]).unwrap();
        }
        let derived = f.predicate_filter(&Predicate::any(2).and_eq(0, 2));
        let mut misses = 0;
        let mut kept_non_matching = 0;
        for key in 0..2000u64 {
            let should_match = key % 4 == 2;
            let does = derived.contains(key);
            if should_match && !does {
                misses += 1;
            }
            if !should_match && does {
                kept_non_matching += 1;
            }
        }
        assert_eq!(misses, 0, "Algorithm 2 must not introduce false negatives");
        // Bloom sketches over a single small value are sparse; most non-matching keys
        // should be erased.
        assert!(
            (kept_non_matching as f64 / 1500.0) < 0.5,
            "derived filter kept {kept_non_matching} non-matching keys"
        );
    }

    #[test]
    fn merge_behaviour_reports_outcomes() {
        let mut f = BloomCcf::new(params(7));
        assert_eq!(f.insert_row(1, &[1, 1]).unwrap(), InsertOutcome::Inserted);
        assert_eq!(f.insert_row(1, &[2, 2]).unwrap(), InsertOutcome::Merged);
        assert_eq!(f.occupied_entries(), 1);
        assert_eq!(f.rows_absorbed(), 2);
    }

    #[test]
    fn deletion_is_a_typed_error_and_leaves_the_filter_untouched() {
        let mut f = BloomCcf::new(params(9));
        f.insert_row(1u64, &[2, 3]).unwrap();
        assert_eq!(f.delete_row(1u64, &[2, 3]), Err(DeleteFailure::Unsupported));
        assert_eq!(f.delete_key(1u64), Err(DeleteFailure::Unsupported));
        assert_eq!(
            f.delete_row_batch(&[(1u64, [2u64, 3])]),
            vec![Err(DeleteFailure::Unsupported)]
        );
        assert_eq!(
            f.delete_key_batch(&[1u64, 2u64]),
            vec![Err(DeleteFailure::Unsupported); 2]
        );
        assert!(f.contains_key(1u64));
        assert_eq!(f.occupied_entries(), 1);
    }

    #[test]
    fn size_bits_reflects_bloom_budget() {
        let f = BloomCcf::new(params(8));
        assert_eq!(f.size_bits(), 1024 * 4 * (12 + 24));
    }
}
