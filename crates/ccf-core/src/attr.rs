//! Attribute sketches (§5): fingerprint vectors and Bloom attribute sketches.
//!
//! Every CCF entry pairs a key fingerprint κ with a sketch of the row's attribute
//! values. This module holds the sketch representations and the predicate-matching
//! logic shared by the CCF variants:
//!
//! * [`match_fingerprint_vector`] — a predicate matches a stored fingerprint vector if,
//!   for every constrained column, some candidate value's fingerprint equals the stored
//!   fingerprint (§5.1).
//! * [`match_raw_bloom`] — matching against a per-entry Bloom sketch of raw
//!   (column, value) pairs (§5.2).
//! * [`match_fingerprint_bloom`] — matching against a converted Bloom sketch that
//!   stores (column, attribute-fingerprint) pairs (§6.1), which therefore collides both
//!   at the fingerprinting step and inside the Bloom filter.

use ccf_bloom::TinyBloom;
use ccf_hash::AttrFingerprinter;

use crate::predicate::Predicate;

/// Whether a predicate matches a stored attribute fingerprint vector.
///
/// For each constrained column the predicate's candidate values are fingerprinted with
/// the same [`AttrFingerprinter`] the filter used at insert time; the column matches if
/// any candidate fingerprint equals the stored one. Unconstrained columns always match.
pub fn match_fingerprint_vector(
    pred: &Predicate,
    stored: &[u16],
    attr_fp: &AttrFingerprinter,
) -> bool {
    debug_assert!(stored.len() >= pred.num_attrs());
    pred.conditions()
        .iter()
        .enumerate()
        .all(|(col, cond)| match cond.candidate_values() {
            None => true,
            Some(values) => values
                .iter()
                .any(|&v| attr_fp.fingerprint(col, v) == stored[col]),
        })
}

/// Whether a predicate matches a Bloom attribute sketch storing raw (column, value)
/// pairs (the direct Bloom sketch of §5.2).
pub fn match_raw_bloom(pred: &Predicate, bloom: &TinyBloom) -> bool {
    pred.conditions()
        .iter()
        .enumerate()
        .all(|(col, cond)| match cond.candidate_values() {
            None => true,
            Some(values) => values.iter().any(|&v| bloom.contains_pair(col, v)),
        })
}

/// Whether a predicate matches a converted Bloom sketch storing (column,
/// attribute-fingerprint) pairs (§6.1): candidate values are fingerprinted first, then
/// probed in the Bloom filter.
pub fn match_fingerprint_bloom(
    pred: &Predicate,
    bloom: &TinyBloom,
    attr_fp: &AttrFingerprinter,
) -> bool {
    pred.conditions()
        .iter()
        .enumerate()
        .all(|(col, cond)| match cond.candidate_values() {
            None => true,
            Some(values) => values
                .iter()
                .any(|&v| bloom.contains_pair(col, u64::from(attr_fp.fingerprint(col, v)))),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ColumnPredicate, Predicate};
    use ccf_hash::HashFamily;

    fn attr_fp() -> AttrFingerprinter {
        AttrFingerprinter::new(&HashFamily::new(11), 8, true)
    }

    #[test]
    fn vector_match_requires_every_constrained_column() {
        let af = attr_fp();
        let row = [5u64, 300u64];
        let stored = af.fingerprint_vector(&row);
        // Matching both columns.
        assert!(match_fingerprint_vector(
            &Predicate::any(2).and_eq(0, 5).and_eq(1, 300),
            &stored,
            &af
        ));
        // One column wrong → no match (values 5 and 6 are stored exactly thanks to the
        // small-value optimisation, so no hash collision is possible).
        assert!(!match_fingerprint_vector(
            &Predicate::any(2).and_eq(0, 6).and_eq(1, 300),
            &stored,
            &af
        ));
        // Unconstrained predicate always matches.
        assert!(match_fingerprint_vector(&Predicate::any(2), &stored, &af));
    }

    #[test]
    fn vector_match_in_list_any_candidate() {
        let af = attr_fp();
        let stored = af.fingerprint_vector(&[7]);
        let pred = Predicate::new(vec![ColumnPredicate::InList(vec![1, 7, 9])]);
        assert!(match_fingerprint_vector(&pred, &stored, &af));
        let pred_miss = Predicate::new(vec![ColumnPredicate::InList(vec![1, 2, 3])]);
        assert!(!match_fingerprint_vector(&pred_miss, &stored, &af));
        let pred_empty = Predicate::new(vec![ColumnPredicate::InList(vec![])]);
        assert!(!match_fingerprint_vector(&pred_empty, &stored, &af));
    }

    #[test]
    fn raw_bloom_match_tracks_inserted_pairs() {
        let family = HashFamily::new(3);
        let mut bloom = TinyBloom::new(128, 2, &family);
        bloom.insert_row(&[4, 1995]);
        assert!(match_raw_bloom(&Predicate::any(2).and_eq(0, 4), &bloom));
        assert!(match_raw_bloom(
            &Predicate::any(2).and_eq(0, 4).and_eq(1, 1995),
            &bloom
        ));
        assert!(!match_raw_bloom(&Predicate::any(2).and_eq(0, 5), &bloom));
        assert!(match_raw_bloom(&Predicate::any(2), &bloom));
    }

    #[test]
    fn raw_bloom_cannot_rule_out_cross_row_combinations() {
        // §5.2: if rows (a1, a2) and (a1', a2') share a key, the predicate
        // A0 = a1 ∧ A1 = a2' is a guaranteed false positive on the Bloom sketch.
        let family = HashFamily::new(4);
        let mut bloom = TinyBloom::new(256, 2, &family);
        bloom.insert_row(&[1, 10]);
        bloom.insert_row(&[2, 20]);
        assert!(match_raw_bloom(
            &Predicate::any(2).and_eq(0, 1).and_eq(1, 20),
            &bloom
        ));
    }

    #[test]
    fn fingerprint_bloom_match_uses_fingerprints() {
        let af = attr_fp();
        let family = HashFamily::new(5);
        let mut bloom = TinyBloom::new(64, 2, &family);
        let row = [123_456u64, 9u64];
        for (col, &v) in row.iter().enumerate() {
            bloom.insert_pair(col, u64::from(af.fingerprint(col, v)));
        }
        assert!(match_fingerprint_bloom(
            &Predicate::any(2).and_eq(0, 123_456).and_eq(1, 9),
            &bloom,
            &af
        ));
        assert!(!match_fingerprint_bloom(
            &Predicate::any(2).and_eq(1, 10),
            &bloom,
            &af
        ));
    }
}
