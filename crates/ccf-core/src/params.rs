//! Parameters for Conditional Cuckoo Filters (§8).
//!
//! A CCF has more parameters than a regular cuckoo filter: besides the number of
//! buckets `m` and entries per bucket `b`, it needs the maximum number of duplicates
//! per bucket pair `d`, the maximum chain length `Lmax`, the attribute-sketch
//! configuration (fingerprint width |α| or Bloom bits), and the key fingerprint width
//! |κ|. §8 derives the sizing rules this module implements as convenience constructors:
//! `b ≈ 2d`, capacity `m·b ≈ E[Z′]/β`, and d = 3 as the recommended default.

/// Why a parameter combination is impossible. Each variant mirrors one rule of
/// [`CcfParams::try_validate`]; the panicking [`CcfParams::validate`] is a thin
/// wrapper that formats the same error. [`ZeroShards`](ParamsError::ZeroShards) and
/// [`TargetLoadOutOfRange`](ParamsError::TargetLoadOutOfRange) are produced by the
/// sizing and service layers (`CcfBuilder`, `ShardedCcf`), which report through the
/// same type so callers handle one error for all construction paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamsError {
    /// `num_buckets == 0`.
    ZeroBuckets,
    /// `entries_per_bucket == 0`.
    ZeroEntriesPerBucket,
    /// Key fingerprint width |κ| outside `1..=16`.
    FingerprintBitsOutOfRange {
        /// The rejected width.
        got: u32,
    },
    /// Attribute fingerprint width |α| outside `1..=16`.
    AttrBitsOutOfRange {
        /// The rejected width.
        got: u32,
    },
    /// `max_dupes == 0`.
    ZeroMaxDupes,
    /// `max_dupes` exceeds the `2b` entries of a bucket pair.
    MaxDupesExceedPair {
        /// The configured duplicate cap d.
        max_dupes: usize,
        /// The pair's `2b` entry slots.
        pair_slots: usize,
    },
    /// `bloom_hashes == 0`.
    ZeroBloomHashes,
    /// `bloom_bits == 0` on the Bloom variant, whose per-entry attribute sketches
    /// need at least one bit. (The mixed variant's conversion budget is derived from
    /// entry sizes instead and does not consult `bloom_bits`.)
    ZeroBloomBits,
    /// `max_chain == Some(0)`, which would fail every insertion.
    ZeroMaxChain,
    /// `max_kicks == 0`, which would refuse any insertion that misses both direct
    /// buckets.
    ZeroMaxKicks,
    /// The mixed variant's conversion group of `max_dupes` slots does not fit in one
    /// bucket of `entries_per_bucket` entries (§6.1 repacks a group in place).
    ConversionGroupTooWide {
        /// The configured duplicate cap d (= conversion group width).
        max_dupes: usize,
        /// Entries per bucket b.
        entries_per_bucket: usize,
    },
    /// A sizing target load factor outside `(0, 1]`.
    TargetLoadOutOfRange {
        /// The rejected load factor.
        got: f64,
    },
    /// A sharded service was requested with zero shards.
    ZeroShards,
    /// Semisort storage was selected with `entries_per_bucket` above
    /// [`ccf_cuckoo::MAX_SEMISORT_ENTRIES`] (the rank table grows combinatorially
    /// with bucket width).
    SemisortBucketTooWide {
        /// The rejected entries per bucket b.
        entries_per_bucket: usize,
    },
    /// `CCF_STORAGE` is set to a value no backend recognizes (strict resolution via
    /// [`ccf_cuckoo::StorageKind::try_from_env`], used by
    /// [`crate::CcfBuilder::storage_from_env`] and daemon startup). `ParamsError` is
    /// `Copy`, so the offending spelling is not carried here; the detailed
    /// [`ccf_cuckoo::UnknownStorageKind`] is reported where the variable is read.
    UnknownStorageEnv,
}

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamsError::ZeroBuckets => write!(f, "num_buckets must be positive"),
            ParamsError::ZeroEntriesPerBucket => {
                write!(f, "entries_per_bucket must be positive")
            }
            ParamsError::FingerprintBitsOutOfRange { got } => {
                write!(f, "fingerprint_bits must be 1..=16, got {got}")
            }
            ParamsError::AttrBitsOutOfRange { got } => {
                write!(f, "attr_bits must be 1..=16, got {got}")
            }
            ParamsError::ZeroMaxDupes => write!(f, "max_dupes must be at least 1"),
            ParamsError::MaxDupesExceedPair {
                max_dupes,
                pair_slots,
            } => write!(
                f,
                "max_dupes {max_dupes} cannot exceed the 2b = {pair_slots} entries of a \
                 bucket pair"
            ),
            ParamsError::ZeroBloomHashes => write!(f, "bloom_hashes must be at least 1"),
            ParamsError::ZeroBloomBits => {
                write!(f, "bloom_bits must be positive for the Bloom variant")
            }
            ParamsError::ZeroMaxChain => write!(
                f,
                "max_chain of 0 would make every insertion fail; use Some(1) or None"
            ),
            ParamsError::ZeroMaxKicks => write!(f, "max_kicks must be positive"),
            ParamsError::ConversionGroupTooWide {
                max_dupes,
                entries_per_bucket,
            } => write!(
                f,
                "Bloom conversion stores a group of max_dupes = {max_dupes} slots, which must \
                 fit in one bucket of {entries_per_bucket} entries"
            ),
            ParamsError::TargetLoadOutOfRange { got } => {
                write!(f, "target load factor must be in (0, 1], got {got}")
            }
            ParamsError::ZeroShards => write!(f, "a sharded filter needs at least one shard"),
            ParamsError::SemisortBucketTooWide { entries_per_bucket } => write!(
                f,
                "semisort storage supports at most {} entries per bucket, got \
                 {entries_per_bucket}; use packed storage for wider buckets",
                ccf_cuckoo::MAX_SEMISORT_ENTRIES
            ),
            ParamsError::UnknownStorageEnv => write!(
                f,
                "CCF_STORAGE is set to an unrecognized storage backend; expected \
                 \"packed\", \"semisort\" or \"compressed\""
            ),
        }
    }
}

impl std::error::Error for ParamsError {}

/// How attribute values are sketched inside each entry (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrSketchKind {
    /// A vector of per-column attribute fingerprints of `attr_bits` bits each (§5.1).
    FingerprintVector,
    /// A small Bloom filter over (column, value) pairs of `bloom_bits` bits (§5.2).
    Bloom,
}

/// Parameters shared by every CCF variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcfParams {
    /// Number of buckets `m` (rounded up to a power of two on construction).
    pub num_buckets: usize,
    /// Entries per bucket `b`. §8's rule of thumb is `b ≈ 2d`.
    pub entries_per_bucket: usize,
    /// Key fingerprint width |κ| in bits (the paper evaluates 7, 8 and 12).
    pub fingerprint_bits: u32,
    /// Attribute fingerprint width |α| in bits (the paper evaluates 4 and 8).
    pub attr_bits: u32,
    /// Number of attribute columns #α stored per row.
    pub num_attrs: usize,
    /// Maximum number `d` of duplicated key fingerprints per bucket pair (§6).
    pub max_dupes: usize,
    /// Maximum chain length `Lmax` (§6.2). `None` means uncapped, as in the multiset
    /// experiments of §10.1.
    pub max_chain: Option<usize>,
    /// Maximum number of kick (evict-and-reinsert) rounds per insertion before the
    /// attempt is declared failed. Defaults to 500, the budget used throughout the
    /// cuckoo-filter literature; must be positive. Lowering it bounds insertion tail
    /// latency (and makes the `cuckoo_kick_depth` telemetry histogram directly
    /// checkable against the configured budget) at the cost of a lower achievable
    /// load factor.
    pub max_kicks: usize,
    /// Bits of the per-entry Bloom attribute sketch (§5.2); only used by the Bloom
    /// variant. The paper evaluates 4–24 bits.
    pub bloom_bits: usize,
    /// Number of hash functions for Bloom attribute sketches. The paper fixes this at
    /// 2 after finding "optimized" counts uniformly worse (§10.4).
    pub bloom_hashes: usize,
    /// Enable the small-value optimisation of §9 (store attribute values `< 2^|α|`
    /// exactly instead of hashing them).
    pub small_value_opt: bool,
    /// When `true`, an insertion failing with `KicksExhausted` doubles the filter
    /// (capacity-doubling growth, migrating entries by their stored fingerprints — no
    /// original keys needed) and retries transparently. Supported by the plain,
    /// chained and mixed variants; the Bloom variant ignores it.
    pub auto_grow: bool,
    /// Seed for the hash family; §10.1 averages runs over random salts.
    pub seed: u64,
    /// Which bucket-storage backend holds derived key-only filters (Algorithm 2's
    /// predicate filters and the CCF-internal cuckoo filters). Purely
    /// representational — membership behavior is identical across backends. Defaults
    /// to the [`ccf_cuckoo::StorageKind::from_env`] resolution (packed unless
    /// `CCF_STORAGE` says otherwise).
    pub storage: ccf_cuckoo::StorageKind,
}

impl Default for CcfParams {
    fn default() -> Self {
        Self {
            num_buckets: 1 << 16,
            entries_per_bucket: 6,
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 1,
            max_dupes: 3,
            max_chain: None,
            max_kicks: 500,
            bloom_bits: 16,
            bloom_hashes: 2,
            small_value_opt: true,
            auto_grow: false,
            seed: 0,
            storage: ccf_cuckoo::StorageKind::from_env(),
        }
    }
}

impl CcfParams {
    /// The paper's "large" JOB-light configuration: 12-bit key fingerprints and 8-bit
    /// attribute fingerprints (§10.5).
    pub fn large(num_attrs: usize) -> Self {
        Self {
            fingerprint_bits: 12,
            attr_bits: 8,
            bloom_bits: 24,
            bloom_hashes: 4,
            num_attrs,
            ..Self::default()
        }
    }

    /// The paper's "small" JOB-light configuration: 7-bit key fingerprints and 4-bit
    /// attribute fingerprints, with 2 Bloom hash functions (§10.5).
    pub fn small(num_attrs: usize) -> Self {
        Self {
            fingerprint_bits: 7,
            attr_bits: 4,
            bloom_bits: 8,
            bloom_hashes: 2,
            num_attrs,
            ..Self::default()
        }
    }

    /// Size the filter for an expected number of occupied entries at a target load
    /// factor, following §8: choose `m` so that `m · b ≈ E[Z′] / β`.
    ///
    /// # Panics
    /// Panics if the target load factor is outside `(0, 1]`; use
    /// [`CcfParams::try_sized_for_entries`] (or the `CcfBuilder` facade) to get a
    /// [`ParamsError`] instead.
    pub fn sized_for_entries(self, expected_entries: usize, target_load_factor: f64) -> Self {
        self.try_sized_for_entries(expected_entries, target_load_factor)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`CcfParams::sized_for_entries`].
    pub fn try_sized_for_entries(
        mut self,
        expected_entries: usize,
        target_load_factor: f64,
    ) -> Result<Self, ParamsError> {
        if !(target_load_factor > 0.0 && target_load_factor <= 1.0) {
            return Err(ParamsError::TargetLoadOutOfRange {
                got: target_load_factor,
            });
        }
        if self.entries_per_bucket == 0 {
            return Err(ParamsError::ZeroEntriesPerBucket);
        }
        let slots = (expected_entries as f64 / target_load_factor).ceil() as usize;
        self.num_buckets = slots
            .div_ceil(self.entries_per_bucket)
            .next_power_of_two()
            .max(1);
        Ok(self)
    }

    /// Apply the `b ≈ 2d` rule of thumb from §8 for the configured `max_dupes`.
    pub fn with_rule_of_thumb_bucket_size(mut self) -> Self {
        self.entries_per_bucket = (2 * self.max_dupes).max(2);
        self
    }

    /// Enable transparent grow-and-retry on insertion failure.
    pub fn with_auto_grow(mut self) -> Self {
        self.auto_grow = true;
        self
    }

    /// Size of one entry in bits for a fingerprint-vector sketch: |κ| + #α·|α|.
    pub fn vector_entry_bits(&self) -> usize {
        self.fingerprint_bits as usize + self.num_attrs * self.attr_bits as usize
    }

    /// Size of one entry in bits for a Bloom attribute sketch: |κ| + bloom bits.
    pub fn bloom_entry_bits(&self) -> usize {
        self.fingerprint_bits as usize + self.bloom_bits
    }

    /// Size of one entry in bits for the mixed (conversion) variant: |κ| + #α·|α| + 1,
    /// the extra bit tracking whether the entry holds a Bloom filter (§6.1).
    pub fn mixed_entry_bits(&self) -> usize {
        self.vector_entry_bits() + 1
    }

    /// Bit budget available to a converted Bloom filter (§6.1):
    /// `d·s − 2(|κ| + ceil(log2 d))` where `s` is the single-entry size.
    pub fn conversion_bloom_bits(&self) -> usize {
        let s = self.mixed_entry_bits();
        let d = self.max_dupes;
        let header = 2
            * (self.fingerprint_bits as usize + usize::BITS as usize
                - (d.max(2) - 1).leading_zeros() as usize);
        (d * s).saturating_sub(header).max(4)
    }

    /// Validate parameter combinations, reporting the first impossible configuration
    /// as a typed [`ParamsError`]. This is what every `try_new` constructor and the
    /// `CcfBuilder` facade call; nothing on the construction path panics on bad
    /// parameters.
    pub fn try_validate(&self) -> Result<(), ParamsError> {
        if self.num_buckets == 0 {
            return Err(ParamsError::ZeroBuckets);
        }
        if self.entries_per_bucket == 0 {
            return Err(ParamsError::ZeroEntriesPerBucket);
        }
        if !(1..=16).contains(&self.fingerprint_bits) {
            return Err(ParamsError::FingerprintBitsOutOfRange {
                got: self.fingerprint_bits,
            });
        }
        if !(1..=16).contains(&self.attr_bits) {
            return Err(ParamsError::AttrBitsOutOfRange {
                got: self.attr_bits,
            });
        }
        if self.max_dupes == 0 {
            return Err(ParamsError::ZeroMaxDupes);
        }
        if self.max_dupes > 2 * self.entries_per_bucket {
            return Err(ParamsError::MaxDupesExceedPair {
                max_dupes: self.max_dupes,
                pair_slots: 2 * self.entries_per_bucket,
            });
        }
        if self.bloom_hashes == 0 {
            return Err(ParamsError::ZeroBloomHashes);
        }
        if self.max_chain == Some(0) {
            return Err(ParamsError::ZeroMaxChain);
        }
        if self.max_kicks == 0 {
            return Err(ParamsError::ZeroMaxKicks);
        }
        if self.storage == ccf_cuckoo::StorageKind::Semisort
            && self.entries_per_bucket > ccf_cuckoo::MAX_SEMISORT_ENTRIES
        {
            return Err(ParamsError::SemisortBucketTooWide {
                entries_per_bucket: self.entries_per_bucket,
            });
        }
        Ok(())
    }

    /// Validate parameter combinations, panicking with a descriptive message on
    /// impossible configurations. A thin wrapper over [`CcfParams::try_validate`] for
    /// contexts (tests, experiment harnesses) where aborting is the right response.
    pub fn validate(&self) {
        self.try_validate().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Check a row's attribute vector against `num_attrs` — the guard every
    /// variant's insertion path runs before touching the table (and before any
    /// auto-grow retry, so an arity error can never trigger growth).
    pub fn check_arity(&self, attrs: &[u64]) -> Result<(), crate::outcome::InsertFailure> {
        if attrs.len() != self.num_attrs {
            return Err(crate::outcome::InsertFailure::AttrArityMismatch {
                expected: self.num_attrs,
                got: attrs.len(),
            });
        }
        Ok(())
    }

    /// [`CcfParams::check_arity`] for the deletion paths, reporting the mismatch as a
    /// [`crate::outcome::DeleteFailure`] so delete results stay a single error type.
    pub fn check_delete_arity(&self, attrs: &[u64]) -> Result<(), crate::outcome::DeleteFailure> {
        if attrs.len() != self.num_attrs {
            return Err(crate::outcome::DeleteFailure::AttrArityMismatch {
                expected: self.num_attrs,
                got: attrs.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper_recommendations() {
        let p = CcfParams::default();
        assert_eq!(p.max_dupes, 3);
        assert_eq!(p.entries_per_bucket, 6); // b = 2d
        assert_eq!(p.bloom_hashes, 2);
        assert!(!p.auto_grow, "growth is opt-in");
        assert!(CcfParams::default().with_auto_grow().auto_grow);
        p.validate();
    }

    #[test]
    fn large_and_small_presets_match_section_10_5() {
        let large = CcfParams::large(2);
        assert_eq!(large.fingerprint_bits, 12);
        assert_eq!(large.attr_bits, 8);
        let small = CcfParams::small(2);
        assert_eq!(small.fingerprint_bits, 7);
        assert_eq!(small.attr_bits, 4);
        assert_eq!(small.bloom_hashes, 2);
        large.validate();
        small.validate();
    }

    #[test]
    fn sized_for_entries_gives_enough_slots() {
        let p = CcfParams::default().sized_for_entries(100_000, 0.85);
        assert!(p.num_buckets * p.entries_per_bucket >= (100_000f64 / 0.85) as usize);
        assert!(p.num_buckets.is_power_of_two());
    }

    #[test]
    fn rule_of_thumb_sets_b_to_2d() {
        let p = CcfParams {
            max_dupes: 5,
            ..CcfParams::default()
        }
        .with_rule_of_thumb_bucket_size();
        assert_eq!(p.entries_per_bucket, 10);
    }

    #[test]
    fn entry_bit_formulas() {
        let p = CcfParams {
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 2,
            bloom_bits: 20,
            ..CcfParams::default()
        };
        assert_eq!(p.vector_entry_bits(), 12 + 16);
        assert_eq!(p.bloom_entry_bits(), 12 + 20);
        assert_eq!(p.mixed_entry_bits(), 12 + 16 + 1);
    }

    #[test]
    fn conversion_bloom_budget_matches_algorithm_3() {
        // d = 3, |κ| = 12, #α = 2, |α| = 8 → s = 29, budget = 3·29 − 2·(12 + 2) = 59.
        let p = CcfParams {
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 2,
            max_dupes: 3,
            ..CcfParams::default()
        };
        assert_eq!(p.conversion_bloom_bits(), 3 * 29 - 2 * (12 + 2));
    }

    #[test]
    #[should_panic(expected = "max_dupes")]
    fn validate_rejects_d_larger_than_pair() {
        CcfParams {
            max_dupes: 9,
            entries_per_bucket: 4,
            ..CcfParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "fingerprint_bits")]
    fn validate_rejects_wide_fingerprints() {
        CcfParams {
            fingerprint_bits: 32,
            ..CcfParams::default()
        }
        .validate();
    }

    /// One `ParamsError` case per `validate()` panic, in rule order.
    #[test]
    fn try_validate_mirrors_every_panic_as_a_typed_error() {
        let ok = CcfParams::default();
        assert_eq!(ok.try_validate(), Ok(()));
        let cases: Vec<(CcfParams, ParamsError)> = vec![
            (
                CcfParams {
                    num_buckets: 0,
                    ..ok
                },
                ParamsError::ZeroBuckets,
            ),
            (
                CcfParams {
                    entries_per_bucket: 0,
                    ..ok
                },
                ParamsError::ZeroEntriesPerBucket,
            ),
            (
                CcfParams {
                    fingerprint_bits: 0,
                    ..ok
                },
                ParamsError::FingerprintBitsOutOfRange { got: 0 },
            ),
            (
                CcfParams {
                    fingerprint_bits: 17,
                    ..ok
                },
                ParamsError::FingerprintBitsOutOfRange { got: 17 },
            ),
            (
                CcfParams {
                    attr_bits: 32,
                    ..ok
                },
                ParamsError::AttrBitsOutOfRange { got: 32 },
            ),
            (CcfParams { max_dupes: 0, ..ok }, ParamsError::ZeroMaxDupes),
            (
                CcfParams {
                    max_dupes: 9,
                    entries_per_bucket: 4,
                    ..ok
                },
                ParamsError::MaxDupesExceedPair {
                    max_dupes: 9,
                    pair_slots: 8,
                },
            ),
            (
                CcfParams {
                    bloom_hashes: 0,
                    ..ok
                },
                ParamsError::ZeroBloomHashes,
            ),
            (
                CcfParams {
                    max_chain: Some(0),
                    ..ok
                },
                ParamsError::ZeroMaxChain,
            ),
            (CcfParams { max_kicks: 0, ..ok }, ParamsError::ZeroMaxKicks),
            (
                CcfParams {
                    storage: ccf_cuckoo::StorageKind::Semisort,
                    entries_per_bucket: 9,
                    ..ok
                },
                ParamsError::SemisortBucketTooWide {
                    entries_per_bucket: 9,
                },
            ),
        ];
        for (params, expected) in cases {
            assert_eq!(params.try_validate(), Err(expected));
            // The panicking wrapper formats the same error, so `should_panic`
            // substrings keep matching.
            let msg = std::panic::catch_unwind(|| params.validate())
                .expect_err("validate() must panic where try_validate errors");
            let msg = msg
                .downcast_ref::<String>()
                .expect("panic payload is the formatted ParamsError");
            assert_eq!(msg, &expected.to_string());
        }
    }

    #[test]
    fn try_sized_for_entries_rejects_bad_load_factors() {
        for bad in [0.0, -0.5, 1.01, f64::NAN] {
            let err = CcfParams::default()
                .try_sized_for_entries(1000, bad)
                .unwrap_err();
            assert!(matches!(err, ParamsError::TargetLoadOutOfRange { .. }));
        }
        let sized = CcfParams::default()
            .try_sized_for_entries(100_000, 0.85)
            .unwrap();
        assert_eq!(
            sized.num_buckets,
            CcfParams::default()
                .sized_for_entries(100_000, 0.85)
                .num_buckets
        );
    }

    #[test]
    #[should_panic(expected = "target load factor")]
    fn sized_for_entries_panics_on_bad_load_factor() {
        let _ = CcfParams::default().sized_for_entries(1000, 0.0);
    }
}
