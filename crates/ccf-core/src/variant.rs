//! A uniform interface over the four CCF variants.
//!
//! The evaluation (§10.4) runs every experiment for Plain, Chained, Bloom and Mixed
//! filters under identical workloads; [`AnyCcf`] lets the harness (and applications
//! that want to pick a variant at run time) treat them interchangeably. The
//! [`ConditionalFilter`] trait captures the common operations; the concrete types
//! remain available for variant-specific features (chained predicate filters,
//! conversion statistics, ...).

use ccf_cuckoo::{GrowthStats, OccupancyStats};

use crate::bloom_ccf::BloomCcf;
use crate::chained::ChainedCcf;
use crate::mixed::MixedCcf;
use crate::outcome::{InsertFailure, InsertOutcome};
use crate::params::CcfParams;
use crate::plain::PlainCcf;
use crate::predicate::Predicate;
use crate::sizing::VariantKind;

/// Operations every conditional cuckoo filter supports.
pub trait ConditionalFilter {
    /// Insert a row (key plus attribute vector).
    fn insert_row(&mut self, key: u64, attrs: &[u64]) -> Result<InsertOutcome, InsertFailure>;
    /// Query for a key under a predicate.
    fn query(&self, key: u64, pred: &Predicate) -> bool;
    /// Key-only membership query.
    fn contains_key(&self, key: u64) -> bool;
    /// Batched predicate query: results are bit-identical to calling
    /// [`ConditionalFilter::query`] per key. Variants override the default per-key
    /// loop with a two-pass implementation that hashes all `(κ, ℓ, ℓ′)` triples
    /// before probing.
    fn query_batch(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
        keys.iter().map(|&k| self.query(k, pred)).collect()
    }
    /// Batched key-only membership query: bit-identical to a per-key
    /// [`ConditionalFilter::contains_key`] loop.
    fn contains_key_batch(&self, keys: &[u64]) -> Vec<bool> {
        keys.iter().map(|&k| self.contains_key(k)).collect()
    }
    /// Number of occupied entry slots.
    fn occupied_entries(&self) -> usize;
    /// Load factor β.
    fn load_factor(&self) -> f64;
    /// Serialized size in bits.
    fn size_bits(&self) -> usize;
    /// The filter's parameters.
    fn params(&self) -> &CcfParams;
    /// Per-bucket occupancy summary (for monitoring / shard aggregation).
    fn occupancy(&self) -> OccupancyStats;
    /// Resize-history summary (the Bloom variant never grows, so its history is
    /// always empty).
    fn growth_stats(&self) -> GrowthStats;
}

macro_rules! impl_conditional_filter {
    ($ty:ty) => {
        impl ConditionalFilter for $ty {
            fn insert_row(
                &mut self,
                key: u64,
                attrs: &[u64],
            ) -> Result<InsertOutcome, InsertFailure> {
                <$ty>::insert_row(self, key, attrs)
            }
            fn query(&self, key: u64, pred: &Predicate) -> bool {
                <$ty>::query(self, key, pred)
            }
            fn contains_key(&self, key: u64) -> bool {
                <$ty>::contains_key(self, key)
            }
            fn query_batch(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
                <$ty>::query_batch(self, keys, pred)
            }
            fn contains_key_batch(&self, keys: &[u64]) -> Vec<bool> {
                <$ty>::contains_key_batch(self, keys)
            }
            fn occupied_entries(&self) -> usize {
                <$ty>::occupied_entries(self)
            }
            fn load_factor(&self) -> f64 {
                <$ty>::load_factor(self)
            }
            fn size_bits(&self) -> usize {
                <$ty>::size_bits(self)
            }
            fn params(&self) -> &CcfParams {
                <$ty>::params(self)
            }
            fn occupancy(&self) -> OccupancyStats {
                <$ty>::occupancy(self)
            }
            fn growth_stats(&self) -> GrowthStats {
                <$ty>::growth_stats(self)
            }
        }
    };
}

impl_conditional_filter!(PlainCcf);
impl_conditional_filter!(ChainedCcf);
impl_conditional_filter!(BloomCcf);
impl_conditional_filter!(MixedCcf);

/// A conditional cuckoo filter of any variant, chosen at run time.
#[derive(Debug, Clone)]
pub enum AnyCcf {
    /// Plain multiset CCF.
    Plain(PlainCcf),
    /// CCF with chaining.
    Chained(ChainedCcf),
    /// CCF with Bloom attribute sketches.
    Bloom(BloomCcf),
    /// CCF with Bloom conversion.
    Mixed(MixedCcf),
}

impl AnyCcf {
    /// Construct an empty filter of the requested variant.
    pub fn new(kind: VariantKind, params: CcfParams) -> Self {
        match kind {
            VariantKind::Plain => AnyCcf::Plain(PlainCcf::new(params)),
            VariantKind::Chained => AnyCcf::Chained(ChainedCcf::new(params)),
            VariantKind::Bloom => AnyCcf::Bloom(BloomCcf::new(params)),
            VariantKind::Mixed => AnyCcf::Mixed(MixedCcf::new(params)),
        }
    }

    /// Which variant this is.
    pub fn kind(&self) -> VariantKind {
        match self {
            AnyCcf::Plain(_) => VariantKind::Plain,
            AnyCcf::Chained(_) => VariantKind::Chained,
            AnyCcf::Bloom(_) => VariantKind::Bloom,
            AnyCcf::Mixed(_) => VariantKind::Mixed,
        }
    }

    fn as_dyn(&self) -> &dyn ConditionalFilter {
        match self {
            AnyCcf::Plain(f) => f,
            AnyCcf::Chained(f) => f,
            AnyCcf::Bloom(f) => f,
            AnyCcf::Mixed(f) => f,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn ConditionalFilter {
        match self {
            AnyCcf::Plain(f) => f,
            AnyCcf::Chained(f) => f,
            AnyCcf::Bloom(f) => f,
            AnyCcf::Mixed(f) => f,
        }
    }
}

impl ConditionalFilter for AnyCcf {
    fn insert_row(&mut self, key: u64, attrs: &[u64]) -> Result<InsertOutcome, InsertFailure> {
        self.as_dyn_mut().insert_row(key, attrs)
    }
    fn query(&self, key: u64, pred: &Predicate) -> bool {
        self.as_dyn().query(key, pred)
    }
    fn contains_key(&self, key: u64) -> bool {
        self.as_dyn().contains_key(key)
    }
    fn query_batch(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
        self.as_dyn().query_batch(keys, pred)
    }
    fn contains_key_batch(&self, keys: &[u64]) -> Vec<bool> {
        self.as_dyn().contains_key_batch(keys)
    }
    fn occupied_entries(&self) -> usize {
        self.as_dyn().occupied_entries()
    }
    fn load_factor(&self) -> f64 {
        self.as_dyn().load_factor()
    }
    fn size_bits(&self) -> usize {
        self.as_dyn().size_bits()
    }
    fn params(&self) -> &CcfParams {
        self.as_dyn().params()
    }
    fn occupancy(&self) -> OccupancyStats {
        self.as_dyn().occupancy()
    }
    fn growth_stats(&self) -> GrowthStats {
        self.as_dyn().growth_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CcfParams {
        CcfParams {
            num_buckets: 1 << 9,
            entries_per_bucket: 6,
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 2,
            max_dupes: 3,
            seed: 77,
            ..CcfParams::default()
        }
    }

    #[test]
    fn all_variants_round_trip_through_the_uniform_interface() {
        for kind in [
            VariantKind::Plain,
            VariantKind::Chained,
            VariantKind::Bloom,
            VariantKind::Mixed,
        ] {
            let mut f = AnyCcf::new(kind, params());
            assert_eq!(f.kind(), kind);
            for key in 0..200u64 {
                f.insert_row(key, &[key % 5, key % 9])
                    .unwrap_or_else(|e| panic!("{kind:?}: insert failed: {e}"));
            }
            for key in 0..200u64 {
                let pred = Predicate::any(2).and_eq(0, key % 5).and_eq(1, key % 9);
                assert!(f.query(key, &pred), "{kind:?}: false negative for {key}");
                assert!(f.contains_key(key), "{kind:?}: key lost for {key}");
            }
            assert!(f.occupied_entries() > 0);
            assert!(f.load_factor() > 0.0);
            assert!(f.size_bits() > 0);
            assert_eq!(f.params().num_attrs, 2);
        }
    }

    #[test]
    fn variant_sizes_reflect_entry_layouts() {
        // Same geometry, different per-entry budgets: Bloom entries carry bloom_bits,
        // mixed entries carry one extra flag bit relative to plain/chained.
        let p = params();
        let plain = AnyCcf::new(VariantKind::Plain, p).size_bits();
        let chained = AnyCcf::new(VariantKind::Chained, p).size_bits();
        let mixed = AnyCcf::new(VariantKind::Mixed, p).size_bits();
        let bloom = AnyCcf::new(VariantKind::Bloom, p).size_bits();
        assert_eq!(plain, chained);
        assert_eq!(mixed, plain + 512 * 6);
        assert_eq!(bloom, 512 * 6 * (12 + p.bloom_bits));
    }

    #[test]
    fn batch_queries_agree_with_per_key_loops_for_every_variant() {
        for kind in [
            VariantKind::Plain,
            VariantKind::Chained,
            VariantKind::Bloom,
            VariantKind::Mixed,
        ] {
            let mut f = AnyCcf::new(kind, params());
            for key in 0..400u64 {
                f.insert_row(key, &[key % 5, key % 9]).unwrap();
            }
            let keys: Vec<u64> = (0..1200u64).collect();
            let pred = Predicate::any(2).and_eq(0, 2);
            let queried = f.query_batch(&keys, &pred);
            let contained = f.contains_key_batch(&keys);
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(queried[i], f.query(k, &pred), "{kind:?}: query mismatch");
                assert_eq!(
                    contained[i],
                    f.contains_key(k),
                    "{kind:?}: contains mismatch"
                );
            }
        }
    }

    #[test]
    fn auto_grow_via_the_uniform_interface() {
        // The growable variants absorb 4× their sized capacity through AnyCcf.
        for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Mixed] {
            let mut f = AnyCcf::new(
                kind,
                CcfParams {
                    num_buckets: 1 << 6,
                    ..params()
                }
                .with_auto_grow(),
            );
            let four_n = 4 * (f.params().num_buckets * f.params().entries_per_bucket) as u64;
            for key in 0..four_n {
                f.insert_row(key, &[key % 5, key % 9])
                    .unwrap_or_else(|e| panic!("{kind:?}: auto-grow insert failed: {e}"));
            }
            for key in 0..four_n {
                assert!(f.contains_key(key), "{kind:?}: key {key} lost after growth");
            }
            assert!(f.params().num_buckets > 1 << 6, "{kind:?}: never grew");
        }
    }

    #[test]
    fn trait_objects_are_usable() {
        let mut filters: Vec<Box<dyn ConditionalFilter>> = vec![
            Box::new(PlainCcf::new(params())),
            Box::new(ChainedCcf::new(params())),
            Box::new(BloomCcf::new(params())),
            Box::new(MixedCcf::new(params())),
        ];
        for f in &mut filters {
            f.insert_row(1, &[2, 3]).unwrap();
            assert!(f.query(1, &Predicate::any(2).and_eq(0, 2)));
        }
    }
}
