//! A uniform interface over the four CCF variants.
//!
//! The evaluation (§10.4) runs every experiment for Plain, Chained, Bloom and Mixed
//! filters under identical workloads; [`AnyCcf`] lets the harness (and applications
//! that want to pick a variant at run time) treat them interchangeably. The
//! [`ConditionalFilter`] trait captures the common operations; the concrete types
//! remain available for variant-specific features (chained predicate filters,
//! conversion statistics, ...).

use ccf_cuckoo::{GrowthStats, OccupancyStats};
use ccf_hash::SaltedHasher;

use crate::bloom_ccf::BloomCcf;
use crate::builder::CcfBuilder;
use crate::chained::ChainedCcf;
use crate::key::FilterKey;
use crate::mixed::MixedCcf;
use crate::outcome::{DeleteFailure, InsertFailure, InsertOutcome};
use crate::params::{CcfParams, ParamsError};
use crate::plain::PlainCcf;
use crate::predicate::Predicate;
use crate::sizing::VariantKind;

/// Operations every conditional cuckoo filter supports.
///
/// The trait is split in two layers:
///
/// * an **object-safe prehashed core** (`*_prehashed` plus the metadata methods) that
///   operates on already-lowered 64-bit key material, usable through
///   `dyn ConditionalFilter`;
/// * **generic extension methods** (`insert_row`, `query`, `contains_key` and their
///   `_batch` forms, `where Self: Sized`) that accept any [`FilterKey`] — `u64`,
///   `&str`, `String`, byte slices, `(u64, u64)` composites — lower it with
///   [`ConditionalFilter::key_lower_hasher`] and call the core. `u64` keys lower to
///   themselves, so the generic layer is bit-identical to calling the core directly.
pub trait ConditionalFilter {
    /// Insert a row (already-lowered key plus attribute vector).
    fn insert_row_prehashed(
        &mut self,
        key: u64,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure>;
    /// Query for an already-lowered key under a predicate.
    fn query_prehashed(&self, key: u64, pred: &Predicate) -> bool;
    /// Key-only membership query on an already-lowered key.
    fn contains_key_prehashed(&self, key: u64) -> bool;
    /// Batched predicate query on already-lowered keys: results are bit-identical to
    /// calling [`ConditionalFilter::query_prehashed`] per key. Variants override the
    /// default per-key loop with a two-pass implementation that hashes all
    /// `(κ, ℓ, ℓ′)` triples before probing.
    fn query_batch_prehashed(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
        keys.iter()
            .map(|&k| self.query_prehashed(k, pred))
            .collect()
    }
    /// Batched key-only membership query on already-lowered keys: bit-identical to a
    /// per-key [`ConditionalFilter::contains_key_prehashed`] loop.
    fn contains_key_batch_prehashed(&self, keys: &[u64]) -> Vec<bool> {
        keys.iter()
            .map(|&k| self.contains_key_prehashed(k))
            .collect()
    }
    /// Delete one stored copy of a row (already-lowered key plus attribute vector).
    /// `Ok(true)` removed a copy, `Ok(false)` found no match; variants that cannot
    /// delete (Bloom always, mixed for converted keys) refuse with a typed
    /// [`DeleteFailure`] and leave the filter unchanged.
    fn delete_row_prehashed(&mut self, key: u64, attrs: &[u64]) -> Result<bool, DeleteFailure>;
    /// Delete one stored entry carrying the key's fingerprint, regardless of its
    /// attribute vector (same result contract as
    /// [`ConditionalFilter::delete_row_prehashed`]).
    fn delete_key_prehashed(&mut self, key: u64) -> Result<bool, DeleteFailure>;
    /// Batched row deletion on already-lowered keys: equivalent to calling
    /// [`ConditionalFilter::delete_row_prehashed`] per row in input order.
    fn delete_row_batch_prehashed(
        &mut self,
        rows: &[(u64, &[u64])],
    ) -> Vec<Result<bool, DeleteFailure>> {
        rows.iter()
            .map(|&(k, a)| self.delete_row_prehashed(k, a))
            .collect()
    }
    /// Batched key deletion on already-lowered keys: equivalent to calling
    /// [`ConditionalFilter::delete_key_prehashed`] per key in input order.
    fn delete_key_batch_prehashed(&mut self, keys: &[u64]) -> Vec<Result<bool, DeleteFailure>> {
        keys.iter().map(|&k| self.delete_key_prehashed(k)).collect()
    }
    /// The hasher typed keys are lowered with before they reach the prehashed core.
    fn key_lower_hasher(&self) -> SaltedHasher;
    /// Number of occupied entry slots.
    fn occupied_entries(&self) -> usize;
    /// Load factor β.
    fn load_factor(&self) -> f64;
    /// Serialized size in bits.
    fn size_bits(&self) -> usize;
    /// The filter's parameters.
    fn params(&self) -> &CcfParams;
    /// Per-bucket occupancy summary (for monitoring / shard aggregation).
    fn occupancy(&self) -> OccupancyStats;
    /// Resize-history summary (the Bloom variant never grows, so its history is
    /// always empty).
    fn growth_stats(&self) -> GrowthStats;

    /// An unconstrained predicate spanning this filter's attribute columns — the
    /// arity-safe starting point for building query predicates
    /// (`filter.predicate().and_eq(0, v)`), equivalent to
    /// [`Predicate::for_params`]`(self.params())`.
    fn predicate(&self) -> Predicate {
        Predicate::for_params(self.params())
    }

    // --- generic typed-key layer -------------------------------------------------

    /// Insert a row (typed key plus attribute vector).
    fn insert_row<K: FilterKey>(
        &mut self,
        key: K,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure>
    where
        Self: Sized,
    {
        let key = key.lower(&self.key_lower_hasher());
        self.insert_row_prehashed(key, attrs)
    }

    /// Query for a typed key under a predicate.
    fn query<K: FilterKey>(&self, key: K, pred: &Predicate) -> bool
    where
        Self: Sized,
    {
        self.query_prehashed(key.lower(&self.key_lower_hasher()), pred)
    }

    /// Key-only membership query for a typed key.
    fn contains_key<K: FilterKey>(&self, key: K) -> bool
    where
        Self: Sized,
    {
        self.contains_key_prehashed(key.lower(&self.key_lower_hasher()))
    }

    /// Batched predicate query over typed keys (`u64` batches are lowered copy-free).
    fn query_batch<K: FilterKey>(&self, keys: &[K], pred: &Predicate) -> Vec<bool>
    where
        Self: Sized,
    {
        self.query_batch_prehashed(&K::lower_batch(keys, &self.key_lower_hasher()), pred)
    }

    /// Batched key-only membership query over typed keys.
    fn contains_key_batch<K: FilterKey>(&self, keys: &[K]) -> Vec<bool>
    where
        Self: Sized,
    {
        self.contains_key_batch_prehashed(&K::lower_batch(keys, &self.key_lower_hasher()))
    }

    /// Delete one stored copy of a row (typed key plus attribute vector).
    fn delete_row<K: FilterKey>(&mut self, key: K, attrs: &[u64]) -> Result<bool, DeleteFailure>
    where
        Self: Sized,
    {
        let key = key.lower(&self.key_lower_hasher());
        self.delete_row_prehashed(key, attrs)
    }

    /// Delete one stored entry carrying the typed key's fingerprint.
    fn delete_key<K: FilterKey>(&mut self, key: K) -> Result<bool, DeleteFailure>
    where
        Self: Sized,
    {
        let key = key.lower(&self.key_lower_hasher());
        self.delete_key_prehashed(key)
    }

    /// Batched row deletion over typed keys (equivalent to per-row
    /// [`ConditionalFilter::delete_row`] calls in input order).
    fn delete_row_batch<K: FilterKey, A: AsRef<[u64]>>(
        &mut self,
        rows: &[(K, A)],
    ) -> Vec<Result<bool, DeleteFailure>>
    where
        Self: Sized,
    {
        let hasher = self.key_lower_hasher();
        let lowered: Vec<(u64, &[u64])> = rows
            .iter()
            .map(|(k, a)| (k.lower(&hasher), a.as_ref()))
            .collect();
        self.delete_row_batch_prehashed(&lowered)
    }

    /// Batched key deletion over typed keys.
    fn delete_key_batch<K: FilterKey>(&mut self, keys: &[K]) -> Vec<Result<bool, DeleteFailure>>
    where
        Self: Sized,
    {
        let lowered = K::lower_batch(keys, &self.key_lower_hasher());
        self.delete_key_batch_prehashed(&lowered)
    }
}

macro_rules! impl_conditional_filter {
    ($ty:ty) => {
        impl ConditionalFilter for $ty {
            fn insert_row_prehashed(
                &mut self,
                key: u64,
                attrs: &[u64],
            ) -> Result<InsertOutcome, InsertFailure> {
                <$ty>::insert_row_prehashed(self, key, attrs)
            }
            fn query_prehashed(&self, key: u64, pred: &Predicate) -> bool {
                <$ty>::query_prehashed(self, key, pred)
            }
            fn contains_key_prehashed(&self, key: u64) -> bool {
                <$ty>::contains_key_prehashed(self, key)
            }
            fn query_batch_prehashed(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
                <$ty>::query_batch_prehashed(self, keys, pred)
            }
            fn contains_key_batch_prehashed(&self, keys: &[u64]) -> Vec<bool> {
                <$ty>::contains_key_batch_prehashed(self, keys)
            }
            fn delete_row_prehashed(
                &mut self,
                key: u64,
                attrs: &[u64],
            ) -> Result<bool, DeleteFailure> {
                <$ty>::delete_row_prehashed(self, key, attrs)
            }
            fn delete_key_prehashed(&mut self, key: u64) -> Result<bool, DeleteFailure> {
                <$ty>::delete_key_prehashed(self, key)
            }
            fn delete_row_batch_prehashed(
                &mut self,
                rows: &[(u64, &[u64])],
            ) -> Vec<Result<bool, DeleteFailure>> {
                <$ty>::delete_row_batch_prehashed(self, rows)
            }
            fn delete_key_batch_prehashed(
                &mut self,
                keys: &[u64],
            ) -> Vec<Result<bool, DeleteFailure>> {
                <$ty>::delete_key_batch_prehashed(self, keys)
            }
            fn key_lower_hasher(&self) -> SaltedHasher {
                <$ty>::key_lower_hasher(self)
            }
            fn occupied_entries(&self) -> usize {
                <$ty>::occupied_entries(self)
            }
            fn load_factor(&self) -> f64 {
                <$ty>::load_factor(self)
            }
            fn size_bits(&self) -> usize {
                <$ty>::size_bits(self)
            }
            fn params(&self) -> &CcfParams {
                <$ty>::params(self)
            }
            fn occupancy(&self) -> OccupancyStats {
                <$ty>::occupancy(self)
            }
            fn growth_stats(&self) -> GrowthStats {
                <$ty>::growth_stats(self)
            }
        }
    };
}

impl_conditional_filter!(PlainCcf);
impl_conditional_filter!(ChainedCcf);
impl_conditional_filter!(BloomCcf);
impl_conditional_filter!(MixedCcf);

/// A conditional cuckoo filter of any variant, chosen at run time.
#[derive(Debug, Clone)]
pub enum AnyCcf {
    /// Plain multiset CCF.
    Plain(PlainCcf),
    /// CCF with chaining.
    Chained(ChainedCcf),
    /// CCF with Bloom attribute sketches.
    Bloom(BloomCcf),
    /// CCF with Bloom conversion.
    Mixed(MixedCcf),
}

impl AnyCcf {
    /// Construct an empty filter of the requested variant.
    ///
    /// # Panics
    /// Panics on impossible parameters; use [`AnyCcf::try_new`] or the
    /// [`AnyCcf::builder`] facade to get a [`ParamsError`] instead.
    pub fn new(kind: VariantKind, params: CcfParams) -> Self {
        Self::try_new(kind, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Construct an empty filter of the requested variant, reporting impossible
    /// parameters as a [`ParamsError`].
    pub fn try_new(kind: VariantKind, params: CcfParams) -> Result<Self, ParamsError> {
        Ok(match kind {
            VariantKind::Plain => AnyCcf::Plain(PlainCcf::try_new(params)?),
            VariantKind::Chained => AnyCcf::Chained(ChainedCcf::try_new(params)?),
            VariantKind::Bloom => AnyCcf::Bloom(BloomCcf::try_new(params)?),
            VariantKind::Mixed => AnyCcf::Mixed(MixedCcf::try_new(params)?),
        })
    }

    /// The fallible, typed construction facade:
    /// `AnyCcf::builder().variant(VariantKind::Mixed).expected_rows(1_000_000)
    /// .target_load(0.85).auto_grow().seed(s).build()?`.
    pub fn builder() -> CcfBuilder {
        CcfBuilder::new()
    }

    /// Which variant this is.
    pub fn kind(&self) -> VariantKind {
        match self {
            AnyCcf::Plain(_) => VariantKind::Plain,
            AnyCcf::Chained(_) => VariantKind::Chained,
            AnyCcf::Bloom(_) => VariantKind::Bloom,
            AnyCcf::Mixed(_) => VariantKind::Mixed,
        }
    }

    /// Resolve this filter's [`crate::CcfInstruments`] against `telemetry`; series
    /// are labelled with the concrete variant name plus `extra` labels. See
    /// [`crate::CcfBuilder::telemetry`] for attaching at construction time.
    pub fn attach_telemetry(
        &mut self,
        telemetry: &ccf_telemetry::Telemetry,
        extra: &[(&str, &str)],
    ) {
        match self {
            AnyCcf::Plain(f) => f.attach_telemetry(telemetry, extra),
            AnyCcf::Chained(f) => f.attach_telemetry(telemetry, extra),
            AnyCcf::Bloom(f) => f.attach_telemetry(telemetry, extra),
            AnyCcf::Mixed(f) => f.attach_telemetry(telemetry, extra),
        }
    }

    /// The telemetry bundle the underlying variant records into (disabled until
    /// [`AnyCcf::attach_telemetry`] is called).
    pub fn instruments(&self) -> &crate::CcfInstruments {
        match self {
            AnyCcf::Plain(f) => f.instruments(),
            AnyCcf::Chained(f) => f.instruments(),
            AnyCcf::Bloom(f) => f.instruments(),
            AnyCcf::Mixed(f) => f.instruments(),
        }
    }

    fn as_dyn(&self) -> &dyn ConditionalFilter {
        match self {
            AnyCcf::Plain(f) => f,
            AnyCcf::Chained(f) => f,
            AnyCcf::Bloom(f) => f,
            AnyCcf::Mixed(f) => f,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn ConditionalFilter {
        match self {
            AnyCcf::Plain(f) => f,
            AnyCcf::Chained(f) => f,
            AnyCcf::Bloom(f) => f,
            AnyCcf::Mixed(f) => f,
        }
    }
}

impl ConditionalFilter for AnyCcf {
    fn insert_row_prehashed(
        &mut self,
        key: u64,
        attrs: &[u64],
    ) -> Result<InsertOutcome, InsertFailure> {
        self.as_dyn_mut().insert_row_prehashed(key, attrs)
    }
    fn query_prehashed(&self, key: u64, pred: &Predicate) -> bool {
        self.as_dyn().query_prehashed(key, pred)
    }
    fn contains_key_prehashed(&self, key: u64) -> bool {
        self.as_dyn().contains_key_prehashed(key)
    }
    fn query_batch_prehashed(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
        self.as_dyn().query_batch_prehashed(keys, pred)
    }
    fn contains_key_batch_prehashed(&self, keys: &[u64]) -> Vec<bool> {
        self.as_dyn().contains_key_batch_prehashed(keys)
    }
    fn delete_row_prehashed(&mut self, key: u64, attrs: &[u64]) -> Result<bool, DeleteFailure> {
        self.as_dyn_mut().delete_row_prehashed(key, attrs)
    }
    fn delete_key_prehashed(&mut self, key: u64) -> Result<bool, DeleteFailure> {
        self.as_dyn_mut().delete_key_prehashed(key)
    }
    fn delete_row_batch_prehashed(
        &mut self,
        rows: &[(u64, &[u64])],
    ) -> Vec<Result<bool, DeleteFailure>> {
        self.as_dyn_mut().delete_row_batch_prehashed(rows)
    }
    fn delete_key_batch_prehashed(&mut self, keys: &[u64]) -> Vec<Result<bool, DeleteFailure>> {
        self.as_dyn_mut().delete_key_batch_prehashed(keys)
    }
    fn key_lower_hasher(&self) -> SaltedHasher {
        self.as_dyn().key_lower_hasher()
    }
    fn occupied_entries(&self) -> usize {
        self.as_dyn().occupied_entries()
    }
    fn load_factor(&self) -> f64 {
        self.as_dyn().load_factor()
    }
    fn size_bits(&self) -> usize {
        self.as_dyn().size_bits()
    }
    fn params(&self) -> &CcfParams {
        self.as_dyn().params()
    }
    fn occupancy(&self) -> OccupancyStats {
        self.as_dyn().occupancy()
    }
    fn growth_stats(&self) -> GrowthStats {
        self.as_dyn().growth_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CcfParams {
        CcfParams {
            num_buckets: 1 << 9,
            entries_per_bucket: 6,
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 2,
            max_dupes: 3,
            seed: 77,
            ..CcfParams::default()
        }
    }

    #[test]
    fn all_variants_round_trip_through_the_uniform_interface() {
        for kind in [
            VariantKind::Plain,
            VariantKind::Chained,
            VariantKind::Bloom,
            VariantKind::Mixed,
        ] {
            let mut f = AnyCcf::new(kind, params());
            assert_eq!(f.kind(), kind);
            for key in 0..200u64 {
                f.insert_row(key, &[key % 5, key % 9])
                    .unwrap_or_else(|e| panic!("{kind:?}: insert failed: {e}"));
            }
            for key in 0..200u64 {
                let pred = Predicate::any(2).and_eq(0, key % 5).and_eq(1, key % 9);
                assert!(f.query(key, &pred), "{kind:?}: false negative for {key}");
                assert!(f.contains_key(key), "{kind:?}: key lost for {key}");
            }
            assert!(f.occupied_entries() > 0);
            assert!(f.load_factor() > 0.0);
            assert!(f.size_bits() > 0);
            assert_eq!(f.params().num_attrs, 2);
        }
    }

    #[test]
    fn variant_sizes_reflect_entry_layouts() {
        // Same geometry, different per-entry budgets: Bloom entries carry bloom_bits,
        // mixed entries carry one extra flag bit relative to plain/chained.
        let p = params();
        let plain = AnyCcf::new(VariantKind::Plain, p).size_bits();
        let chained = AnyCcf::new(VariantKind::Chained, p).size_bits();
        let mixed = AnyCcf::new(VariantKind::Mixed, p).size_bits();
        let bloom = AnyCcf::new(VariantKind::Bloom, p).size_bits();
        assert_eq!(plain, chained);
        assert_eq!(mixed, plain + 512 * 6);
        assert_eq!(bloom, 512 * 6 * (12 + p.bloom_bits));
    }

    #[test]
    fn batch_queries_agree_with_per_key_loops_for_every_variant() {
        for kind in [
            VariantKind::Plain,
            VariantKind::Chained,
            VariantKind::Bloom,
            VariantKind::Mixed,
        ] {
            let mut f = AnyCcf::new(kind, params());
            for key in 0..400u64 {
                f.insert_row(key, &[key % 5, key % 9]).unwrap();
            }
            let keys: Vec<u64> = (0..1200u64).collect();
            let pred = Predicate::any(2).and_eq(0, 2);
            let queried = f.query_batch(&keys, &pred);
            let contained = f.contains_key_batch(&keys);
            for (i, &k) in keys.iter().enumerate() {
                assert_eq!(queried[i], f.query(k, &pred), "{kind:?}: query mismatch");
                assert_eq!(
                    contained[i],
                    f.contains_key(k),
                    "{kind:?}: contains mismatch"
                );
            }
        }
    }

    #[test]
    fn auto_grow_via_the_uniform_interface() {
        // The growable variants absorb 4× their sized capacity through AnyCcf.
        for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Mixed] {
            let mut f = AnyCcf::new(
                kind,
                CcfParams {
                    num_buckets: 1 << 6,
                    ..params()
                }
                .with_auto_grow(),
            );
            let four_n = 4 * (f.params().num_buckets * f.params().entries_per_bucket) as u64;
            for key in 0..four_n {
                f.insert_row(key, &[key % 5, key % 9])
                    .unwrap_or_else(|e| panic!("{kind:?}: auto-grow insert failed: {e}"));
            }
            for key in 0..four_n {
                assert!(f.contains_key(key), "{kind:?}: key {key} lost after growth");
            }
            assert!(f.params().num_buckets > 1 << 6, "{kind:?}: never grew");
        }
    }

    #[test]
    fn trait_objects_are_usable_through_the_prehashed_core() {
        let mut filters: Vec<Box<dyn ConditionalFilter>> = vec![
            Box::new(PlainCcf::new(params())),
            Box::new(ChainedCcf::new(params())),
            Box::new(BloomCcf::new(params())),
            Box::new(MixedCcf::new(params())),
        ];
        for f in &mut filters {
            // Trait objects expose the object-safe prehashed core; typed keys are
            // lowered by hand with the filter's own hasher.
            f.insert_row_prehashed(1, &[2, 3]).unwrap();
            assert!(f.query_prehashed(1, &f.predicate().and_eq(0, 2)));
            let lowered = "alice".lower(&f.key_lower_hasher());
            f.insert_row_prehashed(lowered, &[4, 5]).unwrap();
            assert!(f.contains_key_prehashed(lowered));
        }
    }

    #[test]
    fn typed_keys_agree_between_generic_and_prehashed_layers() {
        for kind in [
            VariantKind::Plain,
            VariantKind::Chained,
            VariantKind::Bloom,
            VariantKind::Mixed,
        ] {
            let mut f = AnyCcf::new(kind, params());
            f.insert_row("user-1", &[1, 2]).unwrap();
            f.insert_row(String::from("user-2"), &[3, 4]).unwrap();
            f.insert_row((7u64, 8u64), &[5, 6]).unwrap();
            f.insert_row(77u64, &[7, 8]).unwrap();
            let h = f.key_lower_hasher();
            assert!(f.contains_key("user-1"), "{kind:?}");
            assert!(f.contains_key_prehashed("user-1".lower(&h)), "{kind:?}");
            assert!(f.query("user-2", &f.predicate().and_eq(0, 3)), "{kind:?}");
            assert!(f.contains_key((7u64, 8u64)), "{kind:?}");
            // u64 keys lower to themselves: generic and prehashed layers coincide.
            assert!(f.contains_key_prehashed(77));
            let string_keys = vec![String::from("user-1"), String::from("nope")];
            assert_eq!(
                f.contains_key_batch(&string_keys),
                vec![true, f.contains_key("nope")],
                "{kind:?}"
            );
        }
    }

    #[test]
    fn deletion_round_trips_through_the_uniform_interface() {
        use crate::outcome::DeleteFailure;
        for kind in [VariantKind::Plain, VariantKind::Chained, VariantKind::Mixed] {
            assert!(kind.supports_deletion());
            let mut f = AnyCcf::new(kind, params());
            for key in 0..200u64 {
                f.insert_row(key, &[key % 5, key % 9]).unwrap();
            }
            for key in (0..200u64).step_by(2) {
                assert_eq!(
                    f.delete_row(key, &[key % 5, key % 9]),
                    Ok(true),
                    "{kind:?}: delete missed key {key}"
                );
            }
            for key in (1..200u64).step_by(2) {
                let pred = Predicate::any(2).and_eq(0, key % 5).and_eq(1, key % 9);
                assert!(f.query(key, &pred), "{kind:?}: survivor {key} lost");
            }
            // Batch deletes agree with what a sequential loop would report.
            let rows: Vec<(u64, [u64; 2])> =
                (1..9u64).step_by(2).map(|k| (k, [k % 5, k % 9])).collect();
            let batch = f.delete_row_batch(&rows);
            assert_eq!(batch, vec![Ok(true); 4], "{kind:?}");
            assert_eq!(f.delete_key_batch(&[1u64]), vec![Ok(false)], "{kind:?}");
        }
        // The Bloom variant reports a typed refusal through every layer.
        assert!(!VariantKind::Bloom.supports_deletion());
        let mut f = AnyCcf::new(VariantKind::Bloom, params());
        f.insert_row(1u64, &[1, 2]).unwrap();
        assert_eq!(f.delete_row(1u64, &[1, 2]), Err(DeleteFailure::Unsupported));
        assert_eq!(f.delete_key(1u64), Err(DeleteFailure::Unsupported));
        assert!(f.contains_key(1u64));
    }

    #[test]
    fn trait_object_deletion_uses_the_prehashed_core() {
        use crate::outcome::DeleteFailure;
        let mut filters: Vec<(bool, Box<dyn ConditionalFilter>)> = vec![
            (true, Box::new(PlainCcf::new(params()))),
            (true, Box::new(ChainedCcf::new(params()))),
            (false, Box::new(BloomCcf::new(params()))),
            (true, Box::new(MixedCcf::new(params()))),
        ];
        for (deletable, f) in &mut filters {
            let lowered = "carol".lower(&f.key_lower_hasher());
            f.insert_row_prehashed(lowered, &[4, 5]).unwrap();
            if *deletable {
                assert_eq!(f.delete_row_prehashed(lowered, &[4, 5]), Ok(true));
                assert!(!f.contains_key_prehashed(lowered));
                assert_eq!(f.delete_key_batch_prehashed(&[lowered]), vec![Ok(false)]);
            } else {
                assert_eq!(
                    f.delete_row_prehashed(lowered, &[4, 5]),
                    Err(DeleteFailure::Unsupported)
                );
            }
        }
    }

    #[test]
    fn telemetry_labels_series_by_variant_and_tracks_outcomes() {
        use ccf_telemetry::Telemetry;
        let t = Telemetry::enabled();
        for kind in [
            VariantKind::Plain,
            VariantKind::Chained,
            VariantKind::Bloom,
            VariantKind::Mixed,
        ] {
            let mut f = AnyCcf::new(kind, params());
            f.attach_telemetry(&t, &[]);
            assert!(f.instruments().is_enabled(), "{kind:?}");
            for key in 0..100u64 {
                f.insert_row(key, &[key % 5, key % 9]).unwrap();
            }
            let pred = Predicate::any(2).and_eq(0, 2);
            let _ = f.query(3u64, &pred);
            let _ = f.query_batch(&(0..50u64).collect::<Vec<_>>(), &pred);
            let _ = f.delete_key(0u64);
        }
        let snap = t.snapshot();
        for variant in ["plain", "chained", "bloom", "mixed"] {
            let v = [("variant", variant)];
            let outcome_sum: u64 = [
                "inserted",
                "deduplicated",
                "merged",
                "converted",
                "dropped_chain_cap",
            ]
            .iter()
            .filter_map(|o| {
                snap.counter("ccf_inserts_total", &[("variant", variant), ("outcome", o)])
            })
            .sum();
            assert_eq!(outcome_sum, 100, "{variant}");
            assert_eq!(snap.counter("ccf_queries_total", &v), Some(51), "{variant}");
            let delete_sum: u64 = ["removed", "missing"]
                .iter()
                .filter_map(|r| {
                    snap.counter("ccf_deletes_total", &[("variant", variant), ("result", r)])
                })
                .chain(
                    ["unsupported", "converted_group", "attr_arity_mismatch"]
                        .iter()
                        .filter_map(|k| {
                            snap.counter(
                                "ccf_delete_failures_total",
                                &[("variant", variant), ("kind", k)],
                            )
                        }),
                )
                .sum();
            assert_eq!(delete_sum, 1, "{variant}");
            // Every variant observed one kick-depth sample per stored entry.
            assert!(
                snap.histogram("ccf_kick_depth", &v)
                    .map(|h| h.count())
                    .unwrap_or(0)
                    > 0,
                "{variant}"
            );
        }
        // Only the chained variant emits the chain-walk series.
        assert!(snap
            .histogram("ccf_chain_walk_depth", &[("variant", "chained")])
            .is_some());
        assert!(snap
            .histogram("ccf_chain_walk_depth", &[("variant", "plain")])
            .is_none());
    }

    #[test]
    fn telemetry_counts_mixed_conversions_and_chained_drops() {
        use ccf_telemetry::Telemetry;
        // Mixed: a hot key converts once, then merges.
        let t = Telemetry::enabled();
        let mut f = MixedCcf::new(params());
        f.attach_telemetry(&t, &[]);
        for i in 0..10u64 {
            f.insert_row(42u64, &[i, 0]).unwrap();
        }
        let snap = t.snapshot();
        let m = |outcome| {
            snap.counter(
                "ccf_inserts_total",
                &[("variant", "mixed"), ("outcome", outcome)],
            )
            .unwrap_or(0)
        };
        assert_eq!(m("inserted"), 3);
        assert_eq!(m("converted"), 1);
        assert_eq!(m("merged"), 6);
        assert_eq!(
            f.delete_key(42u64),
            Err(DeleteFailure::ConvertedGroup),
            "hot key must be converted"
        );
        assert_eq!(
            t.snapshot().counter(
                "ccf_delete_failures_total",
                &[("variant", "mixed"), ("kind", "converted_group")]
            ),
            Some(1)
        );

        // Chained: a capped chain drops rows past its capacity and records the walk.
        let t2 = Telemetry::enabled();
        let mut c = ChainedCcf::new(CcfParams {
            max_chain: Some(2),
            ..params()
        });
        c.attach_telemetry(&t2, &[]);
        for i in 0..50u64 {
            c.insert_row(7u64, &[i, 0]).unwrap();
        }
        let snap2 = t2.snapshot();
        let dropped = snap2
            .counter(
                "ccf_inserts_total",
                &[("variant", "chained"), ("outcome", "dropped_chain_cap")],
            )
            .unwrap_or(0);
        assert_eq!(dropped as usize, c.rows_dropped());
        assert!(dropped > 0, "Lmax=2 must drop some of 50 duplicate rows");
        assert!(
            snap2
                .histogram("ccf_chain_walk_depth", &[("variant", "chained")])
                .map(|h| h.sum)
                .unwrap_or(0)
                > 0,
            "deep chains must register non-zero walk depths"
        );
    }

    #[test]
    fn try_new_surfaces_params_errors_for_every_variant() {
        for kind in [
            VariantKind::Plain,
            VariantKind::Chained,
            VariantKind::Bloom,
            VariantKind::Mixed,
        ] {
            let err = AnyCcf::try_new(
                kind,
                CcfParams {
                    attr_bits: 99,
                    ..params()
                },
            )
            .unwrap_err();
            assert_eq!(err, ParamsError::AttrBitsOutOfRange { got: 99 }, "{kind:?}");
        }
    }
}
