//! Insertion/deletion outcomes and failures shared by all CCF variants.

/// What happened when a row was (successfully) absorbed by a CCF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// A new entry was created for the row.
    Inserted,
    /// The exact (key fingerprint, attribute sketch) pair was already present — nothing
    /// was stored. The multiset experiments (§10.1) count only *unique* (key,
    /// attribute) pairs, so callers can distinguish this case.
    Deduplicated,
    /// The row was merged into an existing entry's Bloom attribute sketch (Bloom and
    /// mixed variants).
    Merged,
    /// The row triggered a Bloom conversion (§6.1): the bucket pair's `d` fingerprint
    /// vectors plus this row were repacked into a Bloom attribute sketch.
    Converted,
    /// The chained variant exhausted its maximum chain length `Lmax` and discarded the
    /// row (§6.2). This is *not* an error: Theorem 3's no-false-negative guarantee
    /// still holds, because queries that walk a saturated chain to its end return true.
    DroppedChainCap,
}

impl InsertOutcome {
    /// Whether the row consumed a new entry slot.
    pub fn consumed_entry(&self) -> bool {
        matches!(self, InsertOutcome::Inserted)
    }
}

/// Why an insertion failed. A failed insertion leaves the filter unchanged (the kick
/// chain is rolled back), so earlier insertions keep their no-false-negative guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertFailure {
    /// The kick loop ran for the maximum number of rounds without freeing a slot. This
    /// is the "failed insertion" event measured in Figure 4; a production deployment
    /// would resize the filter and re-insert.
    KicksExhausted {
        /// Load factor at the time of failure.
        load_factor_millis: u32,
    },
    /// The row's attribute vector does not have the filter's `num_attrs` columns. The
    /// filter is left unchanged; a hot serving path reports this as a value instead of
    /// aborting the process. Use [`crate::Predicate::for_params`] on the query side to
    /// keep arities aligned by construction.
    AttrArityMismatch {
        /// The filter's configured number of attribute columns.
        expected: usize,
        /// The row's number of attributes.
        got: usize,
    },
}

impl InsertFailure {
    /// [`InsertFailure::KicksExhausted`] at the given load factor, rounded (not
    /// floored) to thousandths. Every variant constructs its kick failure through
    /// here, so the reported granularity cannot drift between variants — the same
    /// fix [`ccf_cuckoo::chained_table::TableFull::at`] applies on the table side.
    pub fn kicks_exhausted_at(load_factor: f64) -> Self {
        Self::KicksExhausted {
            load_factor_millis: (load_factor * 1000.0).round() as u32,
        }
    }
}

impl std::fmt::Display for InsertFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertFailure::KicksExhausted { load_factor_millis } => write!(
                f,
                "insertion failed after exhausting cuckoo kicks at load factor {:.3}",
                *load_factor_millis as f64 / 1000.0
            ),
            InsertFailure::AttrArityMismatch { expected, got } => {
                write!(f, "row has {got} attributes, filter expects {expected}")
            }
        }
    }
}

impl std::error::Error for InsertFailure {}

/// Why a deletion was refused. A refused deletion leaves the filter unchanged.
///
/// A deletion that simply finds no matching entry is *not* a failure — the point
/// deletes return `Ok(false)` for that case — so every variant of this enum marks a
/// structural reason the variant cannot honor the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteFailure {
    /// The filter variant cannot delete at all. The Bloom variant merges every row of
    /// a key into one per-entry Bloom sketch; bits cannot be unmerged, so removing a
    /// row (or key) would silently break other rows' no-false-negative guarantee.
    Unsupported,
    /// The key's rows were converted into a Bloom group (§6.1, mixed variant). The
    /// group's sketch covers every row of the key collectively, so individual rows can
    /// no longer be separated out. Callers that need hot keys deletable should use the
    /// chained variant (or rebuild the filter without the key).
    ConvertedGroup,
    /// The row's attribute vector does not have the filter's `num_attrs` columns, so
    /// no stored entry could possibly match it. Reported as a typed error (rather than
    /// `Ok(false)`) because it is a caller bug worth surfacing.
    AttrArityMismatch {
        /// The filter's configured number of attribute columns.
        expected: usize,
        /// The row's number of attributes.
        got: usize,
    },
}

impl std::fmt::Display for DeleteFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeleteFailure::Unsupported => {
                write!(
                    f,
                    "this filter variant merges rows into Bloom sketches and cannot delete"
                )
            }
            DeleteFailure::ConvertedGroup => {
                write!(
                    f,
                    "the key's rows were converted into a Bloom group and can no longer be \
                     deleted individually"
                )
            }
            DeleteFailure::AttrArityMismatch { expected, got } => {
                write!(f, "row has {got} attributes, filter expects {expected}")
            }
        }
    }
}

impl std::error::Error for DeleteFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumed_entry_only_for_inserted() {
        assert!(InsertOutcome::Inserted.consumed_entry());
        assert!(!InsertOutcome::Deduplicated.consumed_entry());
        assert!(!InsertOutcome::Merged.consumed_entry());
        assert!(!InsertOutcome::Converted.consumed_entry());
        assert!(!InsertOutcome::DroppedChainCap.consumed_entry());
    }

    #[test]
    fn kicks_exhausted_rounds_load_factor_at_the_half_milli_boundary() {
        // 1/16 = 62.5 thousandths, exactly representable in binary: rounding reports
        // 63 where a flooring cast would report 62.
        assert_eq!(
            InsertFailure::kicks_exhausted_at(1.0 / 16.0),
            InsertFailure::KicksExhausted {
                load_factor_millis: 63
            }
        );
        assert_eq!(
            InsertFailure::kicks_exhausted_at(0.9994),
            InsertFailure::KicksExhausted {
                load_factor_millis: 999
            }
        );
    }

    #[test]
    fn failures_format_readably() {
        let msg = InsertFailure::KicksExhausted {
            load_factor_millis: 873,
        }
        .to_string();
        assert!(msg.contains("0.873"));
        let msg = InsertFailure::AttrArityMismatch {
            expected: 2,
            got: 1,
        }
        .to_string();
        assert!(msg.contains("1 attributes") && msg.contains("expects 2"));
    }

    #[test]
    fn delete_failures_format_readably() {
        assert!(DeleteFailure::Unsupported
            .to_string()
            .contains("cannot delete"));
        assert!(DeleteFailure::ConvertedGroup
            .to_string()
            .contains("Bloom group"));
        let msg = DeleteFailure::AttrArityMismatch {
            expected: 3,
            got: 2,
        }
        .to_string();
        assert!(msg.contains("2 attributes") && msg.contains("expects 3"));
    }
}
