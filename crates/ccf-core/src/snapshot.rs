//! Variant-level snapshot persistence: a sealed, checksummed image of any
//! [`AnyCcf`] that reloads into a *bit-identical* filter.
//!
//! The image reuses the [`ccf_cuckoo::snapshot`] envelope (magic `"CCFS"`, format
//! version, trailing FNV-1a 64 checksum) and stores only what the hashers cannot
//! re-derive: the full parameter set, the growth state, the exact RNG words, the
//! maintained counters, and every bucket's entries — attribute fingerprint vectors,
//! Bloom sketch bits, or conversion-group records, depending on the variant. All
//! hash machinery (fingerprinters, salted hashers, Bloom hash families, the split
//! geometry's index derivation) is a pure function of `params.seed` and is rebuilt
//! on load, which keeps images small and makes corruption of persisted state
//! detectable by the structural cross-checks (occupancy recounts, arity and width
//! bounds) that run after the checksum.
//!
//! Bit-identity is the contract the `ccf-service` daemon's kill/restart cycle is
//! pinned on: a reloaded filter answers every query, accepts every insert, and
//! draws every kick victim exactly as the never-persisted original would.

use ccf_cuckoo::snapshot::{ByteReader, ByteWriter, SnapshotError};
use ccf_cuckoo::StorageKind;

use crate::params::CcfParams;
use crate::sizing::VariantKind;
use crate::variant::{AnyCcf, ConditionalFilter};

/// Magic of an [`AnyCcf`] snapshot image: `"CCFS"`.
pub const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"CCFS");
/// Current [`AnyCcf`] snapshot format version.
pub const SNAPSHOT_VERSION: u8 = 1;

fn variant_tag(kind: VariantKind) -> u8 {
    match kind {
        VariantKind::Plain => 0,
        VariantKind::Chained => 1,
        VariantKind::Bloom => 2,
        VariantKind::Mixed => 3,
    }
}

fn variant_from_tag(tag: u8) -> Option<VariantKind> {
    match tag {
        0 => Some(VariantKind::Plain),
        1 => Some(VariantKind::Chained),
        2 => Some(VariantKind::Bloom),
        3 => Some(VariantKind::Mixed),
        _ => None,
    }
}

/// Encode the full parameter set. Field order is part of the format.
pub(crate) fn put_params(w: &mut ByteWriter, p: &CcfParams) {
    w.put_usize(p.num_buckets);
    w.put_usize(p.entries_per_bucket);
    w.put_u32(p.fingerprint_bits);
    w.put_u32(p.attr_bits);
    w.put_usize(p.num_attrs);
    w.put_usize(p.max_dupes);
    match p.max_chain {
        None => w.put_u8(0),
        Some(l) => {
            w.put_u8(1);
            w.put_usize(l);
        }
    }
    w.put_usize(p.max_kicks);
    w.put_usize(p.bloom_bits);
    w.put_usize(p.bloom_hashes);
    w.put_u8(u8::from(p.small_value_opt));
    w.put_u8(u8::from(p.auto_grow));
    w.put_u64(p.seed);
    w.put_u8(p.storage.tag());
}

/// Decode a parameter set written by [`put_params`]. Only structural decoding
/// happens here; semantic validation is each variant's `try_new`.
pub(crate) fn get_params(r: &mut ByteReader<'_>) -> Result<CcfParams, SnapshotError> {
    let num_buckets = r.get_usize()?;
    let entries_per_bucket = r.get_usize()?;
    let fingerprint_bits = r.get_u32()?;
    let attr_bits = r.get_u32()?;
    let num_attrs = r.get_usize()?;
    let max_dupes = r.get_usize()?;
    let max_chain = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_usize()?),
        t => return Err(SnapshotError::Invalid(format!("max_chain flag byte {t}"))),
    };
    let max_kicks = r.get_usize()?;
    let bloom_bits = r.get_usize()?;
    let bloom_hashes = r.get_usize()?;
    let small_value_opt = get_bool(r, "small_value_opt")?;
    let auto_grow = get_bool(r, "auto_grow")?;
    let seed = r.get_u64()?;
    let storage = StorageKind::from_tag(r.get_u8()?)
        .ok_or_else(|| SnapshotError::Invalid("unknown storage-backend tag".into()))?;
    Ok(CcfParams {
        num_buckets,
        entries_per_bucket,
        fingerprint_bits,
        attr_bits,
        num_attrs,
        max_dupes,
        max_chain,
        max_kicks,
        bloom_bits,
        bloom_hashes,
        small_value_opt,
        auto_grow,
        seed,
        storage,
    })
}

pub(crate) fn get_bool(r: &mut ByteReader<'_>, field: &str) -> Result<bool, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(SnapshotError::Invalid(format!("{field} flag byte {t}"))),
    }
}

/// Split a persisted *current* bucket count into (base_buckets, growth_bits),
/// rejecting geometries no growth sequence can produce.
pub(crate) fn split_growth(num_buckets: usize, growth_bits: u32) -> Result<usize, SnapshotError> {
    if growth_bits >= usize::BITS || num_buckets >> growth_bits << growth_bits != num_buckets {
        return Err(SnapshotError::Invalid(format!(
            "num_buckets {num_buckets} cannot result from {growth_bits} doublings"
        )));
    }
    let base = num_buckets >> growth_bits;
    if !base.is_power_of_two() {
        return Err(SnapshotError::Invalid(format!(
            "base bucket count {base} is not a power of two"
        )));
    }
    Ok(base)
}

impl AnyCcf {
    /// Serialize the filter into a sealed snapshot image. The inverse,
    /// [`AnyCcf::from_snapshot_bytes`], rebuilds a bit-identical filter: identical
    /// membership answers, identical post-reload insertion behaviour (the RNG
    /// resumes its exact stream), identical growth state. Telemetry attachment is
    /// process state and is not persisted; reloaded filters start detached.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new(SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        w.put_u8(variant_tag(self.kind()));
        put_params(&mut w, self.params());
        match self {
            AnyCcf::Plain(f) => f.snapshot_payload(&mut w),
            AnyCcf::Chained(f) => f.snapshot_payload(&mut w),
            AnyCcf::Bloom(f) => f.snapshot_payload(&mut w),
            AnyCcf::Mixed(f) => f.snapshot_payload(&mut w),
        }
        w.seal()
    }

    /// Rebuild a filter from an [`AnyCcf::to_snapshot_bytes`] image. The envelope
    /// (checksum, magic, version) is verified before any field is interpreted, and
    /// every structural invariant the live filter maintains — bucket widths, entry
    /// arities, occupancy counters, growth geometry — is re-validated, so a
    /// corrupted image yields a typed [`SnapshotError`], never a panic or a
    /// silently wrong filter.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = ByteReader::open(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let kind = variant_from_tag(r.get_u8()?)
            .ok_or_else(|| SnapshotError::Invalid("unknown variant tag".into()))?;
        let params = get_params(&mut r)?;
        let filter = match kind {
            VariantKind::Plain => {
                AnyCcf::Plain(crate::PlainCcf::from_snapshot_payload(params, &mut r)?)
            }
            VariantKind::Chained => {
                AnyCcf::Chained(crate::ChainedCcf::from_snapshot_payload(params, &mut r)?)
            }
            VariantKind::Bloom => {
                AnyCcf::Bloom(crate::BloomCcf::from_snapshot_payload(params, &mut r)?)
            }
            VariantKind::Mixed => {
                AnyCcf::Mixed(crate::MixedCcf::from_snapshot_payload(params, &mut r)?)
            }
        };
        r.finish()?;
        Ok(filter)
    }
}
