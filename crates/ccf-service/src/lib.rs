//! Network service layer for conditional cuckoo filters.
//!
//! The paper's filters live in-process; this crate is the deployment shell around
//! them: a std-only TCP daemon ([`daemon`]) hosting per-tenant filters — each a
//! [`ccf_core::AnyCcf`] or [`ccf_shard::ShardedCcf`] built from a [`config`] spec —
//! behind a small length-prefixed binary protocol ([`wire`]), with a blocking
//! [`client`] library, snapshot-on-exit persistence ([`persist`]) and golden-digest
//! helpers ([`digest`]) for pinning kill/restart losslessness.
//!
//! Everything runs on `std` alone: `std::net::TcpListener`, thread-per-connection,
//! no async runtime, no external dependencies. Batched operations served over the
//! wire are bit-identical to the same calls made in-process — the wire encodes
//! transport, never semantics — and a daemon restarted from its snapshot directory
//! answers every request exactly as the process it replaced would have.
//!
//! Two bins ship with the crate:
//!
//! * `ccf-serviced` — the daemon. `--listen`, repeated `--tenant` specs,
//!   `--snapshot-dir`; prints `listening on <addr>` once bound, exits 0 after a
//!   graceful shutdown.
//! * `ccf-loadgen` — drives batched inserts/queries/deletes over loopback (or
//!   `--embedded` against an in-process daemon), reporting throughput, latency
//!   quantiles from telemetry histograms, and the stream digest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod daemon;
pub mod digest;
pub mod error;
pub mod persist;
pub mod tenant;
pub mod wire;

pub use client::{Client, RemoteStats};
pub use config::{DaemonConfig, TenantSpec};
pub use daemon::{start, RunningDaemon};
pub use digest::StreamDigest;
pub use error::{ProtocolError, ServiceError};
pub use tenant::Tenant;
