//! A hosted tenant: one filter (single or sharded) behind the daemon.
//!
//! `shards=1` tenants host a bare [`AnyCcf`] behind an `RwLock`; larger shard counts
//! host a [`ShardedCcf`], whose locking is per shard. Either way every batched
//! operation processes its batch in input order, so results are bit-identical to the
//! same calls made in-process against the same filter — the wire adds transport, not
//! semantics.

use std::sync::RwLock;

use ccf_core::{AnyCcf, ConditionalFilter, DeleteFailure, InsertFailure, InsertOutcome, Predicate};
use ccf_cuckoo::SnapshotError;
use ccf_shard::{ShardSnapshot, ShardStats, ShardedCcf};
use ccf_telemetry::Telemetry;

use crate::config::TenantSpec;
use crate::error::ServiceError;

/// Lock-poisoning message: a worker panicked while holding the write lock.
const POISONED: &str = "tenant filter lock poisoned: a writer panicked mid-mutation";

/// Snapshot-image tag for a single-filter tenant.
const TAG_SINGLE: u8 = 0;
/// Snapshot-image tag for a sharded tenant.
const TAG_SHARDED: u8 = 1;

/// One tenant's filter, single or sharded.
#[derive(Debug)]
pub enum Tenant {
    /// A single filter behind one lock (boxed: an `AnyCcf` inlines the whole
    /// variant, hundreds of bytes next to `ShardedCcf`'s `Arc`).
    Single(Box<RwLock<AnyCcf>>),
    /// A hash-partitioned service with per-shard locks.
    Sharded(ShardedCcf),
}

impl Tenant {
    /// Build a fresh (empty) tenant from its spec.
    pub fn from_spec(spec: &TenantSpec) -> Result<Self, ServiceError> {
        Ok(if spec.shards == 1 {
            Tenant::Single(Box::new(RwLock::new(AnyCcf::try_new(
                spec.variant,
                spec.params,
            )?)))
        } else {
            Tenant::Sharded(ShardedCcf::try_new(spec.variant, spec.params, spec.shards)?)
        })
    }

    /// Attach (or detach, with a disabled handle) telemetry to the tenant's filters.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry, labels: &[(&str, &str)]) {
        match self {
            Tenant::Single(f) => f
                .get_mut()
                .expect(POISONED)
                .attach_telemetry(telemetry, labels),
            Tenant::Sharded(s) => s.attach_telemetry(telemetry, labels),
        }
    }

    /// Batched row insert, in input order.
    pub fn insert_batch(
        &self,
        rows: &[(u64, Vec<u64>)],
    ) -> Vec<Result<InsertOutcome, InsertFailure>> {
        match self {
            Tenant::Single(f) => {
                let mut f = f.write().expect(POISONED);
                rows.iter().map(|(k, a)| f.insert_row(*k, a)).collect()
            }
            Tenant::Sharded(s) => s.insert_batch(rows),
        }
    }

    /// Batched predicate query, in input order.
    pub fn query_batch(&self, keys: &[u64], pred: &Predicate) -> Vec<bool> {
        match self {
            Tenant::Single(f) => {
                let f = f.read().expect(POISONED);
                keys.iter().map(|&k| f.query(k, pred)).collect()
            }
            Tenant::Sharded(s) => s.query_batch(keys, pred),
        }
    }

    /// Batched key-only membership, in input order.
    pub fn contains_batch(&self, keys: &[u64]) -> Vec<bool> {
        match self {
            Tenant::Single(f) => {
                let f = f.read().expect(POISONED);
                keys.iter().map(|&k| f.contains_key(k)).collect()
            }
            Tenant::Sharded(s) => s.contains_key_batch(keys),
        }
    }

    /// Batched row deletion, in input order.
    pub fn delete_row_batch(&self, rows: &[(u64, Vec<u64>)]) -> Vec<Result<bool, DeleteFailure>> {
        match self {
            Tenant::Single(f) => {
                let mut f = f.write().expect(POISONED);
                rows.iter().map(|(k, a)| f.delete_row(*k, a)).collect()
            }
            Tenant::Sharded(s) => s.delete_row_batch(rows),
        }
    }

    /// Batched key deletion, in input order.
    pub fn delete_key_batch(&self, keys: &[u64]) -> Vec<Result<bool, DeleteFailure>> {
        match self {
            Tenant::Single(f) => {
                let mut f = f.write().expect(POISONED);
                keys.iter().map(|&k| f.delete_key(k)).collect()
            }
            Tenant::Sharded(s) => s.delete_key_batch(keys),
        }
    }

    /// An unconstrained predicate spanning the tenant's attribute columns.
    pub fn predicate(&self) -> Predicate {
        match self {
            Tenant::Single(f) => f.read().expect(POISONED).predicate(),
            Tenant::Sharded(s) => s.predicate(),
        }
    }

    /// Occupancy/growth statistics in the [`ShardStats`] vocabulary; a single-filter
    /// tenant reports as a one-shard service.
    pub fn stats(&self) -> ShardStats {
        match self {
            Tenant::Single(f) => {
                let f = f.read().expect(POISONED);
                let p = f.params();
                ShardStats::aggregate(vec![ShardSnapshot {
                    occupancy: f.occupancy(),
                    growth: f.growth_stats(),
                    size_bits: f.size_bits(),
                    expected_key_fpr: ccf_core::fpr::key_only_fpr(
                        2.0 * f.load_factor() * p.entries_per_bucket as f64,
                        p.fingerprint_bits,
                    ),
                }])
            }
            Tenant::Sharded(s) => s.stats(),
        }
    }

    /// Serialize to a tagged snapshot image (the payload `crate::persist` wraps into
    /// the on-disk envelope).
    pub fn to_snapshot_bytes(&self) -> (u8, Vec<u8>) {
        match self {
            Tenant::Single(f) => (TAG_SINGLE, f.read().expect(POISONED).to_snapshot_bytes()),
            Tenant::Sharded(s) => (TAG_SHARDED, s.to_snapshot_bytes()),
        }
    }

    /// Rebuild from a tagged snapshot image.
    pub fn from_snapshot_bytes(tag: u8, image: &[u8]) -> Result<Self, ServiceError> {
        match tag {
            TAG_SINGLE => Ok(Tenant::Single(Box::new(RwLock::new(
                AnyCcf::from_snapshot_bytes(image)?,
            )))),
            TAG_SHARDED => Ok(Tenant::Sharded(ShardedCcf::from_snapshot_bytes(image)?)),
            other => Err(ServiceError::Snapshot(SnapshotError::Invalid(format!(
                "unknown tenant snapshot tag {other}"
            )))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(s: &str) -> TenantSpec {
        TenantSpec::parse(s).unwrap()
    }

    #[test]
    fn single_and_sharded_tenants_agree_with_in_process_filters() {
        let rows: Vec<(u64, Vec<u64>)> = (0..500u64).map(|k| (k, vec![k % 5, k % 9])).collect();
        let keys: Vec<u64> = (0..1000).collect();
        let single = Tenant::from_spec(&spec("id=1,buckets=256,seed=5")).unwrap();
        let sharded = Tenant::from_spec(&spec("id=2,buckets=64,shards=4,seed=5")).unwrap();
        for tenant in [&single, &sharded] {
            let outcomes = tenant.insert_batch(&rows);
            assert!(outcomes.iter().all(|o| o.is_ok()));
            let pred = tenant.predicate().and_eq(0, 3);
            let hits = tenant.query_batch(&keys, &pred);
            let members = tenant.contains_batch(&keys);
            // In-process reference: same params, same insert stream, per-key loop.
            for (i, &k) in keys.iter().enumerate() {
                if k < 500 {
                    assert!(members[i], "lost key {k}");
                    if k % 5 == 3 {
                        assert!(hits[i], "false negative for {k}");
                    }
                }
            }
            assert!(tenant.stats().occupied_entries() > 0);
        }
    }

    #[test]
    fn tenant_snapshots_round_trip_by_tag() {
        for s in ["id=1,buckets=128,seed=3", "id=2,buckets=64,shards=3,seed=3"] {
            let tenant = Tenant::from_spec(&spec(s)).unwrap();
            let rows: Vec<(u64, Vec<u64>)> = (0..300u64).map(|k| (k, vec![k % 5, k % 9])).collect();
            tenant.insert_batch(&rows);
            let (tag, image) = tenant.to_snapshot_bytes();
            let reloaded = Tenant::from_snapshot_bytes(tag, &image).unwrap();
            let keys: Vec<u64> = (0..600).collect();
            assert_eq!(tenant.contains_batch(&keys), reloaded.contains_batch(&keys));
            let (tag2, image2) = reloaded.to_snapshot_bytes();
            assert_eq!((tag, image), (tag2, image2));
        }
        assert!(Tenant::from_snapshot_bytes(9, &[]).is_err());
    }
}
