//! Daemon configuration: tenant specifications and listener settings.
//!
//! A tenant spec is a comma-separated `key=value` string, the shape a `--tenant`
//! flag carries:
//!
//! ```text
//! id=1,variant=mixed,shards=4,buckets=1024,attrs=2,seed=42,grow=true
//! ```
//!
//! `id` is required; everything else defaults sensibly. `shards=1` (the default)
//! hosts a single [`ccf_core::AnyCcf`]; more hosts a [`ccf_shard::ShardedCcf`].
//! Filter construction goes through [`ccf_core::CcfBuilder`], including
//! [`ccf_core::CcfBuilder::storage_from_env`] — an unrecognized `CCF_STORAGE`
//! spelling is a typed startup error, not a silent fallback.

use ccf_core::{CcfBuilder, CcfParams, VariantKind};

use crate::error::ServiceError;

/// One tenant's filter configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Wire-visible tenant id.
    pub id: u32,
    /// Filter variant every shard uses.
    pub variant: VariantKind,
    /// Shard count; `1` hosts a plain `AnyCcf`.
    pub shards: usize,
    /// Per-shard (or whole-filter) parameters.
    pub params: CcfParams,
}

fn parse_variant(v: &str) -> Result<VariantKind, ServiceError> {
    Ok(match v {
        "plain" => VariantKind::Plain,
        "chained" => VariantKind::Chained,
        "bloom" => VariantKind::Bloom,
        "mixed" => VariantKind::Mixed,
        other => {
            return Err(ServiceError::Config(format!(
                "unknown variant {other:?}; expected plain|chained|bloom|mixed"
            )))
        }
    })
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, ServiceError> {
    v.parse()
        .map_err(|_| ServiceError::Config(format!("{key}={v:?} is not a valid number")))
}

impl TenantSpec {
    /// Parse a `key=value,...` spec. Unknown keys are rejected so a typo'd flag
    /// cannot silently configure nothing.
    pub fn parse(spec: &str) -> Result<Self, ServiceError> {
        let mut id = None;
        let mut variant = VariantKind::Chained;
        let mut shards = 1usize;
        let mut buckets = 1usize << 10;
        let mut attrs = 2usize;
        let mut seed = 0u64;
        let mut grow = true;
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=').ok_or_else(|| {
                ServiceError::Config(format!("tenant spec part {part:?} is not key=value"))
            })?;
            match key {
                "id" => id = Some(parse_num("id", value)?),
                "variant" => variant = parse_variant(value)?,
                "shards" => shards = parse_num("shards", value)?,
                "buckets" => buckets = parse_num("buckets", value)?,
                "attrs" => attrs = parse_num("attrs", value)?,
                "seed" => seed = parse_num("seed", value)?,
                "grow" => {
                    grow = match value {
                        "true" => true,
                        "false" => false,
                        _ => {
                            return Err(ServiceError::Config(format!(
                                "grow={value:?} is not true|false"
                            )))
                        }
                    }
                }
                other => {
                    return Err(ServiceError::Config(format!(
                        "unknown tenant spec key {other:?}"
                    )))
                }
            }
        }
        let id = id.ok_or_else(|| ServiceError::Config("tenant spec needs id=<n>".into()))?;
        if shards == 0 {
            return Err(ServiceError::Config("shards must be >= 1".into()));
        }
        let mut builder = CcfBuilder::new()
            .variant(variant)
            .num_buckets(buckets)
            .num_attrs(attrs)
            .seed(seed)
            // Strict env resolution: a typo'd CCF_STORAGE aborts startup with a typed
            // error instead of silently serving from the default backend.
            .storage_from_env()?;
        if grow {
            builder = builder.auto_grow();
        }
        let params = builder.build_params()?;
        Ok(TenantSpec {
            id,
            variant,
            shards,
            params,
        })
    }
}

/// Everything the daemon needs to start.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// Listen address; `127.0.0.1:0` picks an ephemeral loopback port.
    pub listen: String,
    /// Hosted tenants.
    pub tenants: Vec<TenantSpec>,
    /// Where snapshots are written on shutdown (and warm-loaded from on start).
    pub snapshot_dir: Option<std::path::PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            listen: "127.0.0.1:0".into(),
            tenants: Vec::new(),
            snapshot_dir: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_with_defaults_and_overrides() {
        let t = TenantSpec::parse("id=3").unwrap();
        assert_eq!(t.id, 3);
        assert_eq!(t.variant, VariantKind::Chained);
        assert_eq!(t.shards, 1);
        assert!(t.params.auto_grow);

        let t =
            TenantSpec::parse("id=7,variant=mixed,shards=4,buckets=512,attrs=3,seed=9").unwrap();
        assert_eq!(t.variant, VariantKind::Mixed);
        assert_eq!(t.shards, 4);
        assert_eq!(t.params.num_buckets, 512);
        assert_eq!(t.params.num_attrs, 3);
        assert_eq!(t.params.seed, 9);
    }

    #[test]
    fn malformed_specs_are_typed_config_errors() {
        for bad in [
            "",                     // no id
            "variant=plain",        // no id
            "id=x",                 // non-numeric
            "id=1,variant=quantum", // unknown variant
            "id=1,shards=0",        // zero shards
            "id=1,bogus=3",         // unknown key
            "id=1,grow=maybe",      // bad bool
            "id=1,oops",            // not key=value
        ] {
            assert!(
                matches!(TenantSpec::parse(bad), Err(ServiceError::Config(_))),
                "spec {bad:?} should be rejected"
            );
        }
    }
}
