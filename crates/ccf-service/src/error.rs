//! Typed errors for the service layer.
//!
//! [`ProtocolError`] covers everything a malformed byte stream can do — truncated
//! frames, oversized length prefixes, wrong magic, unknown opcodes, garbage payloads.
//! The daemon maps every one of them to an error response (or a clean connection
//! close) and keeps serving; none of them can panic or hang a connection thread.
//! [`ServiceError`] is the client/daemon umbrella: protocol trouble, socket I/O,
//! unknown tenants, bad configuration, and snapshot corruption.

use ccf_core::ParamsError;
use ccf_cuckoo::SnapshotError;

/// A malformed or unacceptable wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame ended before the announced (or structurally required) bytes.
    Truncated,
    /// The length prefix exceeds [`crate::wire::MAX_FRAME`].
    FrameTooLarge {
        /// Announced frame length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// A frame shorter than the fixed header can never be valid.
    FrameTooShort {
        /// Announced frame length.
        len: u32,
    },
    /// The frame does not start with the protocol magic.
    BadMagic {
        /// The bytes found where the magic belongs.
        got: u32,
    },
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion {
        /// Version this build speaks.
        supported: u8,
        /// Version byte received.
        got: u8,
    },
    /// The opcode byte names no known operation.
    UnknownOpcode(u8),
    /// The status byte names no known response status.
    UnknownStatus(u8),
    /// The frame decoded structurally but its payload is inconsistent.
    BadPayload(String),
    /// Payload bytes were left over after a complete decode.
    TrailingBytes {
        /// How many bytes remained.
        remaining: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::FrameTooShort { len } => {
                write!(f, "frame of {len} bytes is shorter than the fixed header")
            }
            ProtocolError::BadMagic { got } => {
                write!(f, "bad frame magic {got:#010x}")
            }
            ProtocolError::UnsupportedVersion { supported, got } => {
                write!(
                    f,
                    "peer speaks protocol version {got}, this build speaks {supported}"
                )
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            ProtocolError::UnknownStatus(s) => write!(f, "unknown response status {s}"),
            ProtocolError::BadPayload(msg) => write!(f, "bad payload: {msg}"),
            ProtocolError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Anything that can go wrong in the client library or the daemon.
#[derive(Debug)]
pub enum ServiceError {
    /// A malformed frame (either direction).
    Protocol(ProtocolError),
    /// Socket or filesystem I/O failed.
    Io(std::io::Error),
    /// The request named a tenant the daemon does not host.
    UnknownTenant(u32),
    /// The daemon refused the request and said why.
    Remote {
        /// Machine-readable status byte from the response header.
        status: u8,
        /// Human-readable reason from the response body.
        message: String,
    },
    /// A tenant specification or daemon flag could not be parsed.
    Config(String),
    /// Filter construction from a tenant spec failed.
    Params(ParamsError),
    /// A persisted snapshot image was corrupt or incompatible.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            ServiceError::Remote { status, message } => {
                write!(f, "daemon refused (status {status}): {message}")
            }
            ServiceError::Config(msg) => write!(f, "bad configuration: {msg}"),
            ServiceError::Params(e) => write!(f, "invalid tenant parameters: {e}"),
            ServiceError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Protocol(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            ServiceError::Params(e) => Some(e),
            ServiceError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ServiceError {
    fn from(e: ProtocolError) -> Self {
        ServiceError::Protocol(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<ParamsError> for ServiceError {
    fn from(e: ParamsError) -> Self {
        ServiceError::Params(e)
    }
}

impl From<SnapshotError> for ServiceError {
    fn from(e: SnapshotError) -> Self {
        ServiceError::Snapshot(e)
    }
}
