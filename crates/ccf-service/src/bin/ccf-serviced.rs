//! The conditional-cuckoo-filter daemon.
//!
//! ```text
//! ccf-serviced --listen 127.0.0.1:0 \
//!              --tenant id=1,variant=mixed,shards=4,buckets=1024,attrs=2,seed=42 \
//!              --snapshot-dir /var/lib/ccf
//! ```
//!
//! Prints `ccf-serviced listening on <addr>` once bound (the line a supervisor or
//! test harness parses for the resolved ephemeral port), serves until a `Shutdown`
//! frame arrives, snapshots every tenant to the snapshot directory, and exits 0.
//! Tenants warm-load from existing snapshot images at startup, bit-identically.

use std::io::Write;
use std::process::ExitCode;

use ccf_service::{daemon, DaemonConfig, TenantSpec};

const USAGE: &str = "usage: ccf-serviced [--listen ADDR] [--snapshot-dir DIR] \
                     --tenant id=<n>[,variant=..,shards=..,buckets=..,attrs=..,seed=..,grow=..] ...";

fn parse_args(args: &[String]) -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--listen" => {
                config.listen = value(i)?.clone();
                i += 2;
            }
            "--snapshot-dir" => {
                config.snapshot_dir = Some(value(i)?.into());
                i += 2;
            }
            "--tenant" => {
                config
                    .tenants
                    .push(TenantSpec::parse(value(i)?).map_err(|e| e.to_string())?);
                i += 2;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if config.tenants.is_empty() {
        return Err(format!("at least one --tenant is required\n{USAGE}"));
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return if msg == USAGE {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    let running = match daemon::start(config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ccf-serviced: startup failed: {e}");
            return ExitCode::from(1);
        }
    };
    println!("ccf-serviced listening on {}", running.local_addr());
    let _ = std::io::stdout().flush();
    match running.wait() {
        Ok(digests) => {
            for (id, digest) in digests {
                println!("ccf-serviced snapshot tenant={id} digest={digest:016x}");
            }
            println!("ccf-serviced shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ccf-serviced: shutdown failed: {e}");
            ExitCode::from(1)
        }
    }
}
