//! Loopback load generator for the filter daemon.
//!
//! ```text
//! ccf-loadgen --embedded --rows 20000 --queries 50000 --batch 512
//! ccf-loadgen --addr 127.0.0.1:4870 --tenant 1 --rows 20000
//! ```
//!
//! Drives batched inserts, predicate queries, membership probes and deletes against
//! a daemon — one started in-process with `--embedded` (and shut down gracefully at
//! the end), or a remote one via `--addr`. Every response folds into a
//! [`StreamDigest`], batch latencies land in telemetry histograms, and the run
//! prints throughput, p50/p99 latencies and the final digest. Any protocol error
//! fails the run with a non-zero exit code. `--shutdown` sends a graceful-shutdown
//! frame to a `--addr` daemon at the end of the run.

use std::process::ExitCode;
use std::time::Instant;

use ccf_service::{daemon, Client, DaemonConfig, StreamDigest, TenantSpec};
use ccf_telemetry::{buckets, HistogramSnapshot, Telemetry};

struct Args {
    addr: Option<String>,
    embedded: bool,
    shutdown: bool,
    tenant: u32,
    rows: u64,
    queries: u64,
    batch: usize,
    seed: u64,
}

const USAGE: &str = "usage: ccf-loadgen (--embedded | --addr HOST:PORT) [--shutdown] \
                     [--tenant N] [--rows N] [--queries N] [--batch N] [--seed N]";

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        addr: None,
        embedded: false,
        shutdown: false,
        tenant: 1,
        rows: 20_000,
        queries: 50_000,
        batch: 512,
        seed: 42,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |field: &mut dyn FnMut(&str) -> Result<(), String>| -> Result<(), String> {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))?;
            field(v)
        };
        match flag {
            "--embedded" => {
                out.embedded = true;
                i += 1;
            }
            "--shutdown" => {
                out.shutdown = true;
                i += 1;
            }
            "--addr" => {
                value(&mut |v| {
                    out.addr = Some(v.to_string());
                    Ok(())
                })?;
                i += 2;
            }
            "--tenant" => {
                value(&mut |v| {
                    out.tenant = v.parse().map_err(|_| format!("bad --tenant {v}"))?;
                    Ok(())
                })?;
                i += 2;
            }
            "--rows" => {
                value(&mut |v| {
                    out.rows = v.parse().map_err(|_| format!("bad --rows {v}"))?;
                    Ok(())
                })?;
                i += 2;
            }
            "--queries" => {
                value(&mut |v| {
                    out.queries = v.parse().map_err(|_| format!("bad --queries {v}"))?;
                    Ok(())
                })?;
                i += 2;
            }
            "--batch" => {
                value(&mut |v| {
                    out.batch = v.parse().map_err(|_| format!("bad --batch {v}"))?;
                    Ok(())
                })?;
                i += 2;
            }
            "--seed" => {
                value(&mut |v| {
                    out.seed = v.parse().map_err(|_| format!("bad --seed {v}"))?;
                    Ok(())
                })?;
                i += 2;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if out.embedded == out.addr.is_some() {
        return Err(format!(
            "exactly one of --embedded or --addr is required\n{USAGE}"
        ));
    }
    if out.batch == 0 {
        return Err("--batch must be >= 1".to_string());
    }
    Ok(out)
}

/// Upper-bound quantile estimate from a bucketed histogram.
fn quantile(h: &HistogramSnapshot, q: f64) -> u64 {
    let total = h.count();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil() as u64;
    let mut seen = 0;
    for (i, &c) in h.counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return h.bounds.get(i).copied().unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

fn run(args: Args) -> Result<(), String> {
    // Embedded mode: spin the daemon in-process on an ephemeral loopback port.
    let embedded = if args.embedded {
        let spec = TenantSpec::parse(&format!(
            "id={},variant=mixed,shards=4,buckets=1024,attrs=2,seed={}",
            args.tenant, args.seed
        ))
        .map_err(|e| e.to_string())?;
        let running = daemon::start(DaemonConfig {
            listen: "127.0.0.1:0".into(),
            tenants: vec![spec],
            snapshot_dir: None,
        })
        .map_err(|e| e.to_string())?;
        Some(running)
    } else {
        None
    };
    let addr = match (&embedded, &args.addr) {
        (Some(r), _) => r.local_addr().to_string(),
        (None, Some(a)) => a.clone(),
        _ => unreachable!("parse_args enforces the xor"),
    };

    let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
    client.ping().map_err(|e| format!("ping failed: {e}"))?;

    let telemetry = Telemetry::enabled();
    let lat = |op: &str| {
        telemetry.histogram(
            "loadgen_batch_latency_ns",
            "Wall-clock nanoseconds per wire batch",
            &buckets::latency_ns(),
            &[("op", op)],
        )
    };
    let insert_lat = lat("insert");
    let query_lat = lat("query");
    let contains_lat = lat("contains");
    let delete_lat = lat("delete");

    let mut digest = StreamDigest::new();
    let mix = |k: u64| k.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);

    // Inserts.
    let rows: Vec<(u64, Vec<u64>)> = (0..args.rows)
        .map(|i| (mix(i), vec![i % 7, i % 11]))
        .collect();
    let t0 = Instant::now();
    for chunk in rows.chunks(args.batch) {
        let timer = insert_lat.start_timer();
        let codes = client
            .insert_rows(args.tenant, chunk)
            .map_err(|e| format!("insert batch failed: {e}"))?;
        timer.observe_duration();
        digest.update(&codes);
    }
    let insert_secs = t0.elapsed().as_secs_f64();

    // Predicate queries over a hit/miss mix.
    let pred_keys: Vec<u64> = (0..args.queries)
        .map(|i| {
            if i % 2 == 0 {
                mix(i / 2 % args.rows.max(1))
            } else {
                u64::MAX - i
            }
        })
        .collect();
    let pred = ccf_core::Predicate::any(2).and_eq(0, 3);
    let t1 = Instant::now();
    for chunk in pred_keys.chunks(args.batch) {
        let timer = query_lat.start_timer();
        let hits = client
            .query(args.tenant, chunk, &pred)
            .map_err(|e| format!("query batch failed: {e}"))?;
        timer.observe_duration();
        digest.update_bools(&hits);
    }
    let query_secs = t1.elapsed().as_secs_f64();

    // Key-only membership.
    for chunk in pred_keys.chunks(args.batch) {
        let timer = contains_lat.start_timer();
        let hits = client
            .contains(args.tenant, chunk)
            .map_err(|e| format!("contains batch failed: {e}"))?;
        timer.observe_duration();
        digest.update_bools(&hits);
    }

    // Delete a slice of the inserted rows (mixed tenants may refuse converted
    // groups — the refusal codes are part of the digest, not an error).
    let victims: Vec<(u64, Vec<u64>)> = rows.iter().step_by(10).cloned().collect();
    for chunk in victims.chunks(args.batch) {
        let timer = delete_lat.start_timer();
        let codes = client
            .delete_rows(args.tenant, chunk)
            .map_err(|e| format!("delete batch failed: {e}"))?;
        timer.observe_duration();
        digest.update(&codes);
    }

    let stats = client
        .stats(args.tenant)
        .map_err(|e| format!("stats failed: {e}"))?;
    println!(
        "loadgen tenant={} rows={} queries={} batch={}",
        args.tenant, args.rows, args.queries, args.batch
    );
    println!(
        "  inserts:  {:>10.0} rows/s",
        args.rows as f64 / insert_secs.max(1e-9)
    );
    println!(
        "  queries:  {:>10.0} keys/s",
        args.queries as f64 / query_secs.max(1e-9)
    );
    let snap = telemetry.snapshot();
    for op in ["insert", "query", "contains", "delete"] {
        if let Some(h) = snap.histogram("loadgen_batch_latency_ns", &[("op", op)]) {
            println!(
                "  {op:>8} batch latency: p50 <= {} ns, p99 <= {} ns ({} batches)",
                quantile(h, 0.50),
                quantile(h, 0.99),
                h.count()
            );
        }
    }
    println!(
        "  tenant stats: shards={} occupied={} load_factor={:.3} doublings={}",
        stats.num_shards, stats.occupied, stats.load_factor, stats.doublings
    );
    println!("  stream digest: {:016x}", digest.value());
    println!("  protocol errors: 0");

    // Embedded daemons always shut down gracefully; `--shutdown` extends the same
    // courtesy to a remote daemon (CI uses it to assert the daemon's exit code).
    if args.embedded || args.shutdown {
        client
            .shutdown()
            .map_err(|e| format!("shutdown failed: {e}"))?;
    }
    if let Some(running) = embedded {
        running.wait().map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(parsed) => match run(parsed) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ccf-loadgen: {e}");
                ExitCode::from(1)
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            if msg == USAGE {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
    }
}
