//! Blocking client for the filter daemon.
//!
//! One [`Client`] wraps one TCP connection and issues request/response frames in
//! lockstep. Batched results come back as the same types the in-process filter APIs
//! produce where the information survives the wire (booleans, outcome codes), so a
//! caller can compare remote and in-process answers bit for bit.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ccf_core::Predicate;

use crate::error::{ProtocolError, ServiceError};
use crate::wire::{self, BodyReader, BodyWriter, Opcode, Request, Status};

/// Per-tenant statistics as reported by the `Stats` opcode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteStats {
    /// Shard count (1 for single-filter tenants).
    pub num_shards: u32,
    /// Occupied entry slots across shards.
    pub occupied: u64,
    /// Total entry capacity across shards.
    pub capacity: u64,
    /// Serialized size in bits.
    pub size_bits: u64,
    /// Total capacity doublings across shards.
    pub doublings: u64,
    /// Service-wide load factor.
    pub load_factor: f64,
    /// Expected key-only false-positive rate (§7.1).
    pub expected_key_fpr: f64,
}

/// A blocking connection to a filter daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServiceError> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Bound every read so a wedged daemon surfaces as an I/O timeout error instead
    /// of hanging the caller.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> Result<(), ServiceError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    fn call(
        &mut self,
        opcode: Opcode,
        tenant: u32,
        body: Vec<u8>,
    ) -> Result<Vec<u8>, ServiceError> {
        let frame = wire::encode_request(&Request {
            opcode,
            tenant,
            body,
        });
        wire::write_frame(&mut self.stream, &frame)?;
        let payload = wire::read_frame(&mut self.stream)?
            .ok_or(ServiceError::Protocol(ProtocolError::Truncated))?;
        let resp = wire::parse_response(&payload)?;
        match resp.status {
            Status::Ok => Ok(resp.body),
            status => Err(ServiceError::Remote {
                status: status as u8,
                message: String::from_utf8_lossy(&resp.body).into_owned(),
            }),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServiceError> {
        let body = self.call(Opcode::Ping, 0, Vec::new())?;
        if !body.is_empty() {
            return Err(ProtocolError::TrailingBytes {
                remaining: body.len(),
            }
            .into());
        }
        Ok(())
    }

    /// Batched row insert; returns one wire outcome code per row
    /// (see [`wire::insert_result_code`]).
    pub fn insert_rows(
        &mut self,
        tenant: u32,
        rows: &[(u64, Vec<u64>)],
    ) -> Result<Vec<u8>, ServiceError> {
        let num_attrs = rows.first().map_or(0, |(_, a)| a.len());
        let mut w = BodyWriter::new();
        wire::put_rows(&mut w, num_attrs, rows);
        let body = self.call(Opcode::Insert, tenant, w.into_bytes())?;
        let mut r = BodyReader::new(&body);
        let codes = wire::get_codes(&mut r)?;
        r.finish()?;
        if codes.len() != rows.len() {
            return Err(ProtocolError::BadPayload(format!(
                "sent {} rows, daemon answered {}",
                rows.len(),
                codes.len()
            ))
            .into());
        }
        Ok(codes)
    }

    /// Batched predicate query.
    pub fn query(
        &mut self,
        tenant: u32,
        keys: &[u64],
        pred: &Predicate,
    ) -> Result<Vec<bool>, ServiceError> {
        let mut w = BodyWriter::new();
        wire::put_predicate(&mut w, pred);
        wire::put_keys(&mut w, keys);
        let body = self.call(Opcode::Query, tenant, w.into_bytes())?;
        let mut r = BodyReader::new(&body);
        let bools = wire::get_bools(&mut r)?;
        r.finish()?;
        Ok(bools)
    }

    /// Batched key-only membership.
    pub fn contains(&mut self, tenant: u32, keys: &[u64]) -> Result<Vec<bool>, ServiceError> {
        let mut w = BodyWriter::new();
        wire::put_keys(&mut w, keys);
        let body = self.call(Opcode::Contains, tenant, w.into_bytes())?;
        let mut r = BodyReader::new(&body);
        let bools = wire::get_bools(&mut r)?;
        r.finish()?;
        Ok(bools)
    }

    /// Batched row deletion; wire codes per [`wire::delete_result_code`].
    pub fn delete_rows(
        &mut self,
        tenant: u32,
        rows: &[(u64, Vec<u64>)],
    ) -> Result<Vec<u8>, ServiceError> {
        let num_attrs = rows.first().map_or(0, |(_, a)| a.len());
        let mut w = BodyWriter::new();
        wire::put_rows(&mut w, num_attrs, rows);
        let body = self.call(Opcode::DeleteRow, tenant, w.into_bytes())?;
        let mut r = BodyReader::new(&body);
        let codes = wire::get_codes(&mut r)?;
        r.finish()?;
        Ok(codes)
    }

    /// Batched key deletion; wire codes per [`wire::delete_result_code`].
    pub fn delete_keys(&mut self, tenant: u32, keys: &[u64]) -> Result<Vec<u8>, ServiceError> {
        let mut w = BodyWriter::new();
        wire::put_keys(&mut w, keys);
        let body = self.call(Opcode::DeleteKey, tenant, w.into_bytes())?;
        let mut r = BodyReader::new(&body);
        let codes = wire::get_codes(&mut r)?;
        r.finish()?;
        Ok(codes)
    }

    /// Per-tenant occupancy/growth statistics.
    pub fn stats(&mut self, tenant: u32) -> Result<RemoteStats, ServiceError> {
        let body = self.call(Opcode::Stats, tenant, Vec::new())?;
        let mut r = BodyReader::new(&body);
        let stats = RemoteStats {
            num_shards: r.get_u32()?,
            occupied: r.get_u64()?,
            capacity: r.get_u64()?,
            size_bits: r.get_u64()?,
            doublings: r.get_u64()?,
            load_factor: f64::from_bits(r.get_u64()?),
            expected_key_fpr: f64::from_bits(r.get_u64()?),
        };
        r.finish()?;
        Ok(stats)
    }

    /// The daemon's Prometheus text exposition.
    pub fn metrics(&mut self) -> Result<String, ServiceError> {
        let body = self.call(Opcode::Metrics, 0, Vec::new())?;
        String::from_utf8(body)
            .map_err(|_| ProtocolError::BadPayload("metrics body is not UTF-8".into()).into())
    }

    /// Snapshot every tenant now; returns `(tenant id, file digest)` pairs.
    pub fn snapshot_now(&mut self) -> Result<Vec<(u32, u64)>, ServiceError> {
        let body = self.call(Opcode::SnapshotNow, 0, Vec::new())?;
        let mut r = BodyReader::new(&body);
        let count = r.get_u32()? as usize;
        let mut digests = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            digests.push((r.get_u32()?, r.get_u64()?));
        }
        r.finish()?;
        Ok(digests)
    }

    /// Request graceful shutdown (snapshot-on-exit happens daemon-side).
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        self.call(Opcode::Shutdown, 0, Vec::new())?;
        Ok(())
    }
}
