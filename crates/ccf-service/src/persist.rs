//! On-disk tenant persistence: versioned, checksummed snapshot files.
//!
//! Each tenant persists to `<dir>/tenant-<id>.ccfsnap`, a sealed
//! [`ccf_cuckoo::ByteWriter`] envelope (magic `"CSVC"`, format version, trailing
//! FNV-1a 64 checksum) wrapping the tenant id, the tenant kind tag and the tenant's
//! own nested snapshot image ([`Tenant::to_snapshot_bytes`]). Files are written to a
//! temporary sibling and renamed into place, so a crash mid-write leaves either the
//! old snapshot or none — never a torn file. Loading verifies the checksum before
//! interpreting a byte and re-validates every nested image, so a corrupt file is a
//! typed [`SnapshotError`], never a panic or a silently
//! wrong filter.

use std::path::{Path, PathBuf};

use ccf_cuckoo::snapshot::fnv64;
use ccf_cuckoo::{ByteReader, ByteWriter, SnapshotError};

use crate::error::ServiceError;
use crate::tenant::Tenant;

/// Magic of a tenant snapshot file: `"CSVC"`.
pub const FILE_MAGIC: u32 = u32::from_le_bytes(*b"CSVC");
/// Current tenant snapshot file format version.
pub const FILE_VERSION: u8 = 1;

/// The snapshot file path for a tenant id.
pub fn snapshot_path(dir: &Path, id: u32) -> PathBuf {
    dir.join(format!("tenant-{id}.ccfsnap"))
}

/// Serialize a tenant into its sealed file image (what [`save_tenant`] writes).
pub fn tenant_file_image(id: u32, tenant: &Tenant) -> Vec<u8> {
    let (tag, image) = tenant.to_snapshot_bytes();
    let mut w = ByteWriter::new(FILE_MAGIC, FILE_VERSION);
    w.put_u32(id);
    w.put_u8(tag);
    w.put_len_bytes(&image);
    w.seal()
}

/// Persist a tenant, atomically (write temp file, rename). Returns the FNV-1a 64
/// digest of the file bytes — the identity a warm reload must reproduce.
pub fn save_tenant(dir: &Path, id: u32, tenant: &Tenant) -> Result<u64, ServiceError> {
    std::fs::create_dir_all(dir)?;
    let bytes = tenant_file_image(id, tenant);
    let digest = fnv64(&bytes);
    let path = snapshot_path(dir, id);
    let tmp = dir.join(format!("tenant-{id}.ccfsnap.tmp"));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, &path)?;
    Ok(digest)
}

/// Load a tenant's snapshot if one exists. Returns the rebuilt tenant plus the file
/// digest (so a restart can assert identity against the digest reported at save
/// time). A missing file is `Ok(None)`; a corrupt or mismatched file is a typed
/// error.
pub fn load_tenant(dir: &Path, id: u32) -> Result<Option<(Tenant, u64)>, ServiceError> {
    let path = snapshot_path(dir, id);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let digest = fnv64(&bytes);
    let mut r = ByteReader::open(&bytes, FILE_MAGIC, FILE_VERSION)?;
    let stored_id = r.get_u32()?;
    if stored_id != id {
        return Err(ServiceError::Snapshot(SnapshotError::Invalid(format!(
            "snapshot file for tenant {stored_id} found where tenant {id} was expected"
        ))));
    }
    let tag = r.get_u8()?;
    let image = r.get_len_bytes()?;
    r.finish().map_err(ServiceError::Snapshot)?;
    let tenant = Tenant::from_snapshot_bytes(tag, image)?;
    Ok(Some((tenant, digest)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TenantSpec;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccf-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_cycle_is_digest_stable() {
        let dir = scratch("cycle");
        let spec = TenantSpec::parse("id=5,buckets=128,seed=11,shards=2").unwrap();
        let tenant = Tenant::from_spec(&spec).unwrap();
        tenant.insert_batch(
            &(0..200u64)
                .map(|k| (k, vec![k % 5, k % 9]))
                .collect::<Vec<_>>(),
        );
        let saved = save_tenant(&dir, 5, &tenant).unwrap();
        let (reloaded, loaded_digest) = load_tenant(&dir, 5).unwrap().expect("file exists");
        assert_eq!(
            saved, loaded_digest,
            "digest must survive the disk round trip"
        );
        // Re-saving the reloaded tenant reproduces the same bytes: bit-identity.
        let resaved = save_tenant(&dir, 5, &reloaded).unwrap();
        assert_eq!(saved, resaved);
        assert!(
            load_tenant(&dir, 99).unwrap().is_none(),
            "missing file is None"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_typed_errors() {
        let dir = scratch("corrupt");
        let spec = TenantSpec::parse("id=1,buckets=64,seed=2").unwrap();
        let tenant = Tenant::from_spec(&spec).unwrap();
        save_tenant(&dir, 1, &tenant).unwrap();
        let path = snapshot_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_tenant(&dir, 1),
            Err(ServiceError::Snapshot(
                SnapshotError::ChecksumMismatch { .. }
            ))
        ));
        // Wrong tenant id in the right slot is also refused.
        save_tenant(&dir, 2, &tenant).unwrap();
        std::fs::rename(snapshot_path(&dir, 2), snapshot_path(&dir, 3)).unwrap();
        assert!(matches!(
            load_tenant(&dir, 3),
            Err(ServiceError::Snapshot(SnapshotError::Invalid(_)))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
