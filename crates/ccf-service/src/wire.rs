//! The length-prefixed binary wire protocol.
//!
//! Every frame, both directions, is `u32 len (LE)` followed by `len` bytes:
//!
//! | bytes | request | response |
//! |-------|---------|----------|
//! | 0..4  | magic `"CCFW"` | magic `"CCFW"` |
//! | 4     | version | version |
//! | 5     | opcode  | status  |
//! | 6..10 | tenant id (LE) | — |
//! | rest  | opcode-specific body | status-specific body |
//!
//! All integers are little-endian. Frames are capped at [`MAX_FRAME`]; a peer
//! announcing more is a protocol error and the connection is closed. Bodies are
//! decoded with [`BodyReader`], which bounds every length against the bytes actually
//! present *before* allocating, so a hostile length field cannot balloon memory, and
//! decoding always ends with a trailing-bytes check — a frame must be consumed
//! exactly.
//!
//! The payload vocabulary (key batches, attribute rows, predicates, per-row outcome
//! codes) is shared by the client library and the daemon through the helpers here,
//! which is what makes remote batched calls bit-identical to in-process calls: both
//! sides agree on the encoding by construction, and the filters themselves are the
//! same code.

use std::io::{Read, Write};

use ccf_core::{ColumnPredicate, DeleteFailure, InsertFailure, InsertOutcome, Predicate};

use crate::error::{ProtocolError, ServiceError};

/// Frame magic: `"CCFW"` (conditional-cuckoo-filter wire).
pub const MAGIC: u32 = u32::from_le_bytes(*b"CCFW");
/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;
/// Hard cap on a frame's announced length: 16 MiB.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;
/// Fixed request header: magic + version + opcode + tenant id.
pub const REQUEST_HEADER: u32 = 10;
/// Fixed response header: magic + version + status.
pub const RESPONSE_HEADER: u32 = 6;

/// Operations the daemon serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; empty body, empty response.
    Ping = 0,
    /// Batched row insert.
    Insert = 1,
    /// Batched predicate query.
    Query = 2,
    /// Batched key-only membership.
    Contains = 3,
    /// Batched row deletion.
    DeleteRow = 4,
    /// Batched key deletion.
    DeleteKey = 5,
    /// Per-tenant occupancy/growth statistics.
    Stats = 6,
    /// Prometheus text exposition of the daemon's telemetry registry.
    Metrics = 7,
    /// Persist every tenant to the snapshot directory now.
    SnapshotNow = 8,
    /// Graceful shutdown: snapshot-on-exit, then the daemon exits 0.
    Shutdown = 9,
}

impl Opcode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Result<Self, ProtocolError> {
        Ok(match b {
            0 => Opcode::Ping,
            1 => Opcode::Insert,
            2 => Opcode::Query,
            3 => Opcode::Contains,
            4 => Opcode::DeleteRow,
            5 => Opcode::DeleteKey,
            6 => Opcode::Stats,
            7 => Opcode::Metrics,
            8 => Opcode::SnapshotNow,
            9 => Opcode::Shutdown,
            other => return Err(ProtocolError::UnknownOpcode(other)),
        })
    }
}

/// Response statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request was served; the body is the opcode's result encoding.
    Ok = 0,
    /// The frame was malformed; the body is a human-readable reason.
    BadRequest = 1,
    /// The tenant id names no hosted filter.
    UnknownTenant = 2,
    /// The daemon is shutting down and no longer accepts work.
    ShuttingDown = 3,
    /// The daemon hit an internal error serving the request.
    Internal = 4,
}

impl Status {
    /// Decode a status byte.
    pub fn from_u8(b: u8) -> Result<Self, ProtocolError> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::BadRequest,
            2 => Status::UnknownTenant,
            3 => Status::ShuttingDown,
            4 => Status::Internal,
            other => return Err(ProtocolError::UnknownStatus(other)),
        })
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The operation.
    pub opcode: Opcode,
    /// The tenant the operation targets (ignored by `Ping`/`Metrics`/admin ops).
    pub tenant: u32,
    /// Opcode-specific body bytes.
    pub body: Vec<u8>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Outcome class.
    pub status: Status,
    /// Status-specific body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// An `Ok` response with the given body.
    pub fn ok(body: Vec<u8>) -> Self {
        Response {
            status: Status::Ok,
            body,
        }
    }

    /// An error response carrying a human-readable reason.
    pub fn error(status: Status, reason: &str) -> Self {
        Response {
            status,
            body: reason.as_bytes().to_vec(),
        }
    }
}

/// Encode a request into a full frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let len = REQUEST_HEADER as usize + req.body.len();
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(req.opcode as u8);
    out.extend_from_slice(&req.tenant.to_le_bytes());
    out.extend_from_slice(&req.body);
    out
}

/// Encode a response into a full frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let len = RESPONSE_HEADER as usize + resp.body.len();
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(resp.status as u8);
    out.extend_from_slice(&resp.body);
    out
}

/// Read one frame's payload (the bytes after the length prefix). Returns `Ok(None)`
/// on a clean EOF at a frame boundary — the peer closed the connection. An EOF
/// mid-frame, an oversized announcement, or an impossible length is a typed
/// [`ProtocolError`]. Frame bytes are read in bounded chunks so the announced length
/// is never trusted for a single up-front allocation larger than what actually
/// arrives.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ServiceError> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..]).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ServiceError::Protocol(ProtocolError::Truncated)
            } else {
                ServiceError::Io(e)
            }
        })?,
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge {
            len,
            max: MAX_FRAME,
        }
        .into());
    }
    if len < RESPONSE_HEADER {
        return Err(ProtocolError::FrameTooShort { len }.into());
    }
    let mut frame = Vec::new();
    let mut remaining = len as usize;
    let mut chunk = [0u8; 64 * 1024];
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        let got = r.read(&mut chunk[..want])?;
        if got == 0 {
            return Err(ProtocolError::Truncated.into());
        }
        frame.extend_from_slice(&chunk[..got]);
        remaining -= got;
    }
    Ok(Some(frame))
}

/// Write a pre-encoded frame.
pub fn write_frame<W: Write>(w: &mut W, frame: &[u8]) -> Result<(), ServiceError> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Copy an exactly-`N`-byte slice into an array. Callers pass slices whose
/// length a bounds check already established; `copy_from_slice` re-asserts it
/// without routing through a fallible conversion.
fn copy_arr<const N: usize>(slice: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    out
}

fn check_envelope(frame: &[u8]) -> Result<(), ProtocolError> {
    if frame.len() < RESPONSE_HEADER as usize {
        return Err(ProtocolError::FrameTooShort {
            len: frame.len() as u32,
        });
    }
    let got = u32::from_le_bytes(copy_arr(&frame[0..4]));
    if got != MAGIC {
        return Err(ProtocolError::BadMagic { got });
    }
    if frame[4] != VERSION {
        return Err(ProtocolError::UnsupportedVersion {
            supported: VERSION,
            got: frame[4],
        });
    }
    Ok(())
}

/// Parse a request frame payload (bytes after the length prefix).
pub fn parse_request(frame: &[u8]) -> Result<Request, ProtocolError> {
    check_envelope(frame)?;
    if frame.len() < REQUEST_HEADER as usize {
        return Err(ProtocolError::FrameTooShort {
            len: frame.len() as u32,
        });
    }
    Ok(Request {
        opcode: Opcode::from_u8(frame[5])?,
        tenant: u32::from_le_bytes(copy_arr(&frame[6..10])),
        body: frame[10..].to_vec(),
    })
}

/// Parse a response frame payload (bytes after the length prefix).
pub fn parse_response(frame: &[u8]) -> Result<Response, ProtocolError> {
    check_envelope(frame)?;
    Ok(Response {
        status: Status::from_u8(frame[5])?,
        body: frame[6..].to_vec(),
    })
}

/// Append-only body encoder. Counts are `u32`, values `u64`, all little-endian.
#[derive(Debug, Default)]
pub struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    /// Start an empty body.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`-length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Finish and take the body.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked body cursor: every read is validated against the bytes present
/// before any allocation, so a hostile count cannot balloon memory.
#[derive(Debug)]
pub struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    /// Open a cursor over body bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if n > self.remaining() {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a byte.
    pub fn get_u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(copy_arr(self.take(4)?)))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(copy_arr(self.take(8)?)))
    }

    /// Read a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], ProtocolError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Require the body to be fully consumed.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if self.remaining() != 0 {
            return Err(ProtocolError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Encode a key batch: `u32 count` then `count` `u64` keys.
pub fn put_keys(w: &mut BodyWriter, keys: &[u64]) {
    w.put_u32(keys.len() as u32);
    for &k in keys {
        w.put_u64(k);
    }
}

/// Decode a key batch.
pub fn get_keys(r: &mut BodyReader<'_>) -> Result<Vec<u64>, ProtocolError> {
    let count = r.get_u32()? as usize;
    if count
        .checked_mul(8)
        .map_or(true, |need| need > r.remaining())
    {
        return Err(ProtocolError::Truncated);
    }
    (0..count).map(|_| r.get_u64()).collect()
}

/// Encode an attribute-row batch: `u32 count`, `u32 num_attrs`, then per row the
/// `u64` key followed by `num_attrs` `u64` attribute values.
pub fn put_rows(w: &mut BodyWriter, num_attrs: usize, rows: &[(u64, Vec<u64>)]) {
    w.put_u32(rows.len() as u32);
    w.put_u32(num_attrs as u32);
    for (key, attrs) in rows {
        w.put_u64(*key);
        for &a in attrs {
            w.put_u64(a);
        }
    }
}

/// Decode an attribute-row batch. Every row must carry exactly the announced arity
/// (the daemon still lets the filter enforce *its* arity, so a wrong-arity batch
/// surfaces as per-row [`InsertFailure::AttrArityMismatch`], not a protocol error).
pub fn get_rows(r: &mut BodyReader<'_>) -> Result<Vec<(u64, Vec<u64>)>, ProtocolError> {
    let count = r.get_u32()? as usize;
    let num_attrs = r.get_u32()? as usize;
    let per_row = 8usize
        .checked_mul(num_attrs + 1)
        .ok_or(ProtocolError::Truncated)?;
    if count
        .checked_mul(per_row)
        .map_or(true, |need| need > r.remaining())
    {
        return Err(ProtocolError::Truncated);
    }
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let key = r.get_u64()?;
        let attrs = (0..num_attrs)
            .map(|_| r.get_u64())
            .collect::<Result<_, _>>()?;
        rows.push((key, attrs));
    }
    Ok(rows)
}

/// Encode a predicate: `u32 num_attrs`, then per column a tag byte — `0` any, `1` eq
/// + `u64`, `2` in-list + `u32 count` + values.
pub fn put_predicate(w: &mut BodyWriter, pred: &Predicate) {
    w.put_u32(pred.num_attrs() as u32);
    for cond in pred.conditions() {
        match cond {
            ColumnPredicate::Any => w.put_u8(0),
            ColumnPredicate::Eq(v) => {
                w.put_u8(1);
                w.put_u64(*v);
            }
            ColumnPredicate::InList(vs) => {
                w.put_u8(2);
                w.put_u32(vs.len() as u32);
                for &v in vs {
                    w.put_u64(v);
                }
            }
        }
    }
}

/// Decode a predicate written by [`put_predicate`].
pub fn get_predicate(r: &mut BodyReader<'_>) -> Result<Predicate, ProtocolError> {
    let num_attrs = r.get_u32()? as usize;
    if num_attrs > r.remaining() {
        // Each column costs at least its tag byte; a bigger claim is a lie.
        return Err(ProtocolError::Truncated);
    }
    let mut conditions = Vec::with_capacity(num_attrs);
    for col in 0..num_attrs {
        conditions.push(match r.get_u8()? {
            0 => ColumnPredicate::Any,
            1 => ColumnPredicate::Eq(r.get_u64()?),
            2 => {
                let count = r.get_u32()? as usize;
                if count
                    .checked_mul(8)
                    .map_or(true, |need| need > r.remaining())
                {
                    return Err(ProtocolError::Truncated);
                }
                ColumnPredicate::InList((0..count).map(|_| r.get_u64()).collect::<Result<_, _>>()?)
            }
            tag => {
                return Err(ProtocolError::BadPayload(format!(
                    "unknown predicate tag {tag} for column {col}"
                )))
            }
        });
    }
    Ok(Predicate::new(conditions))
}

/// Encode a boolean batch, one byte per answer.
pub fn put_bools(w: &mut BodyWriter, bools: &[bool]) {
    w.put_u32(bools.len() as u32);
    for &b in bools {
        w.put_u8(u8::from(b));
    }
}

/// Decode a boolean batch.
pub fn get_bools(r: &mut BodyReader<'_>) -> Result<Vec<bool>, ProtocolError> {
    let count = r.get_u32()? as usize;
    if count > r.remaining() {
        return Err(ProtocolError::Truncated);
    }
    (0..count)
        .map(|_| match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(ProtocolError::BadPayload(format!("bool byte {b}"))),
        })
        .collect()
}

/// Wire code for one insert result. Success outcomes are `0..=4`; failures set the
/// high bit. The mapping is part of the protocol: both peers must encode identically
/// for remote results to be bit-comparable with in-process results.
pub fn insert_result_code(result: &Result<InsertOutcome, InsertFailure>) -> u8 {
    match result {
        Ok(InsertOutcome::Inserted) => 0,
        Ok(InsertOutcome::Deduplicated) => 1,
        Ok(InsertOutcome::Merged) => 2,
        Ok(InsertOutcome::Converted) => 3,
        Ok(InsertOutcome::DroppedChainCap) => 4,
        Err(InsertFailure::KicksExhausted { .. }) => 0x80,
        Err(InsertFailure::AttrArityMismatch { .. }) => 0x81,
    }
}

/// Wire code for one delete result: `0` not found, `1` deleted, failures with the
/// high bit set.
pub fn delete_result_code(result: &Result<bool, DeleteFailure>) -> u8 {
    match result {
        Ok(false) => 0,
        Ok(true) => 1,
        Err(DeleteFailure::Unsupported) => 0x80,
        Err(DeleteFailure::ConvertedGroup) => 0x81,
        Err(DeleteFailure::AttrArityMismatch { .. }) => 0x82,
    }
}

/// Encode a result-code batch.
pub fn put_codes(w: &mut BodyWriter, codes: &[u8]) {
    w.put_u32(codes.len() as u32);
    for &c in codes {
        w.put_u8(c);
    }
}

/// Decode a result-code batch.
pub fn get_codes(r: &mut BodyReader<'_>) -> Result<Vec<u8>, ProtocolError> {
    let count = r.get_u32()? as usize;
    if count > r.remaining() {
        return Err(ProtocolError::Truncated);
    }
    (0..count).map(|_| r.get_u8()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let req = Request {
            opcode: Opcode::Query,
            tenant: 7,
            body: vec![1, 2, 3],
        };
        let frame = encode_request(&req);
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(len, frame.len() - 4);
        assert_eq!(parse_request(&frame[4..]).unwrap(), req);
    }

    #[test]
    fn response_frames_round_trip() {
        let resp = Response::error(Status::UnknownTenant, "tenant 9");
        let frame = encode_response(&resp);
        assert_eq!(parse_response(&frame[4..]).unwrap(), resp);
    }

    #[test]
    fn envelope_violations_are_typed() {
        let good = encode_request(&Request {
            opcode: Opcode::Ping,
            tenant: 0,
            body: vec![],
        });
        let payload = &good[4..];
        assert!(matches!(
            parse_request(&payload[..3]),
            Err(ProtocolError::FrameTooShort { .. })
        ));
        let mut bad_magic = payload.to_vec();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            parse_request(&bad_magic),
            Err(ProtocolError::BadMagic { .. })
        ));
        let mut bad_version = payload.to_vec();
        bad_version[4] = 99;
        assert!(matches!(
            parse_request(&bad_version),
            Err(ProtocolError::UnsupportedVersion {
                supported: VERSION,
                got: 99
            })
        ));
        let mut bad_opcode = payload.to_vec();
        bad_opcode[5] = 200;
        assert!(matches!(
            parse_request(&bad_opcode),
            Err(ProtocolError::UnknownOpcode(200))
        ));
    }

    #[test]
    fn read_frame_rejects_oversized_and_truncated_streams() {
        // Oversized announcement.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(ServiceError::Protocol(ProtocolError::FrameTooLarge { .. }))
        ));
        // Announced more than delivered.
        let mut short = Vec::new();
        short.extend_from_slice(&100u32.to_le_bytes());
        short.extend_from_slice(&[0u8; 10]);
        assert!(matches!(
            read_frame(&mut short.as_slice()),
            Err(ServiceError::Protocol(ProtocolError::Truncated))
        ));
        // Sub-header length.
        let mut tiny = Vec::new();
        tiny.extend_from_slice(&2u32.to_le_bytes());
        tiny.extend_from_slice(&[0u8; 2]);
        assert!(matches!(
            read_frame(&mut tiny.as_slice()),
            Err(ServiceError::Protocol(ProtocolError::FrameTooShort { .. }))
        ));
        // Clean EOF at a boundary is a close, not an error.
        assert!(matches!(read_frame(&mut [].as_slice()), Ok(None)));
        // EOF inside the length prefix is truncation.
        assert!(matches!(
            read_frame(&mut [1u8, 0].as_slice()),
            Err(ServiceError::Protocol(ProtocolError::Truncated))
        ));
    }

    #[test]
    fn bodies_round_trip_and_bound_hostile_counts() {
        let mut w = BodyWriter::new();
        put_keys(&mut w, &[1, 2, 3]);
        let pred = Predicate::any(3).and_eq(0, 9).and_eq(2, 4);
        put_predicate(&mut w, &pred);
        put_rows(&mut w, 2, &[(5, vec![6, 7]), (8, vec![9, 10])]);
        put_bools(&mut w, &[true, false, true]);
        let body = w.into_bytes();
        let mut r = BodyReader::new(&body);
        assert_eq!(get_keys(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(get_predicate(&mut r).unwrap(), pred);
        assert_eq!(
            get_rows(&mut r).unwrap(),
            vec![(5, vec![6, 7]), (8, vec![9, 10])]
        );
        assert_eq!(get_bools(&mut r).unwrap(), vec![true, false, true]);
        r.finish().unwrap();

        // A count claiming more elements than bytes present fails before allocating.
        let mut w = BodyWriter::new();
        w.put_u32(u32::MAX);
        let body = w.into_bytes();
        assert!(matches!(
            get_keys(&mut BodyReader::new(&body)),
            Err(ProtocolError::Truncated)
        ));
        // Leftover bytes are a typed error.
        let mut w = BodyWriter::new();
        put_keys(&mut w, &[1]);
        w.put_u8(0xAA);
        let body = w.into_bytes();
        let mut r = BodyReader::new(&body);
        get_keys(&mut r).unwrap();
        assert!(matches!(
            r.finish(),
            Err(ProtocolError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn result_codes_cover_every_variant_distinctly() {
        let inserts = [
            insert_result_code(&Ok(InsertOutcome::Inserted)),
            insert_result_code(&Ok(InsertOutcome::Deduplicated)),
            insert_result_code(&Ok(InsertOutcome::Merged)),
            insert_result_code(&Ok(InsertOutcome::Converted)),
            insert_result_code(&Ok(InsertOutcome::DroppedChainCap)),
            insert_result_code(&Err(InsertFailure::kicks_exhausted_at(0.9))),
            insert_result_code(&Err(InsertFailure::AttrArityMismatch {
                expected: 2,
                got: 3,
            })),
        ];
        let mut dedup = inserts.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), inserts.len());
        assert_eq!(delete_result_code(&Ok(true)), 1);
        assert_eq!(delete_result_code(&Ok(false)), 0);
        assert!(delete_result_code(&Err(DeleteFailure::Unsupported)) & 0x80 != 0);
    }
}
