//! Golden-digest accumulation over result streams.
//!
//! The loadgen and the e2e harness fold every batched response (insert outcome
//! codes, query/membership booleans, delete result codes) into one incremental
//! FNV-1a 64 digest. Two runs that produce the same digest answered every request
//! identically — the compact form of the kill/restart losslessness check: drive a
//! stream before a snapshot, kill, warm-reload, drive the *same* stream, compare one
//! number.

/// Incremental FNV-1a 64 over an operation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDigest {
    state: u64,
}

impl Default for StreamDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDigest {
    /// FNV-1a 64 offset basis.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a 64 prime.
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Start a fresh digest.
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET,
        }
    }

    /// Fold raw bytes in.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Fold a boolean batch in (one byte per answer).
    pub fn update_bools(&mut self, bools: &[bool]) {
        for &b in bools {
            self.update(&[u8::from(b)]);
        }
    }

    /// The digest so far.
    pub fn value(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_order_and_content_sensitive() {
        let mut a = StreamDigest::new();
        a.update(&[1, 2, 3]);
        a.update_bools(&[true, false]);
        let mut b = StreamDigest::new();
        b.update(&[1, 2, 3]);
        b.update_bools(&[true, false]);
        assert_eq!(a.value(), b.value());
        let mut c = StreamDigest::new();
        c.update(&[1, 2, 3]);
        c.update_bools(&[false, true]);
        assert_ne!(a.value(), c.value());
        // Matches the one-shot reference implementation.
        let mut d = StreamDigest::new();
        d.update(b"hello");
        assert_eq!(d.value(), ccf_cuckoo::snapshot::fnv64(b"hello"));
    }
}
