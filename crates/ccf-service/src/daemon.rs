//! The filter daemon: a thread-per-connection TCP server over
//! [`std::net::TcpListener`] hosting per-tenant filters.
//!
//! # Lifecycle
//!
//! 1. **Startup** — each tenant warm-loads from the snapshot directory if a sealed
//!    image is present (bit-identical reload), else starts empty from its spec.
//!    Startup fails typed — bad `CCF_STORAGE`, bad specs and corrupt snapshots all
//!    surface as [`ServiceError`]s before the listener binds.
//! 2. **Serving** — each accepted connection gets a thread; frames are served in
//!    order per connection. Malformed frames get an error response where possible
//!    and close only that connection; the daemon never panics or hangs on garbage.
//! 3. **Shutdown** — a `Shutdown` frame flips the flag, the acceptor is poked awake,
//!    connection threads drain, and every tenant is snapshotted to disk
//!    (snapshot-on-exit). [`RunningDaemon::wait`] then returns the per-tenant
//!    digests, and the `ccf-serviced` bin exits 0.
//!
//! # Admin surface
//!
//! `Stats` returns per-tenant occupancy/growth/FPR in a fixed binary layout;
//! `Metrics` returns the whole telemetry registry as Prometheus text exposition —
//! filter-level series (PR 8) plus the daemon's own connection/request/error
//! counters, frame-size histograms and uptime gauge.

use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ccf_telemetry::{buckets, Counter, Gauge, Histogram, Telemetry};

use crate::config::DaemonConfig;
use crate::error::{ProtocolError, ServiceError};
use crate::persist;
use crate::tenant::Tenant;
use crate::wire::{self, BodyReader, BodyWriter, Opcode, Request, Response, Status};

/// The daemon's own instruments, resolved once at startup.
#[derive(Debug)]
struct ServerInstruments {
    connections: Counter,
    requests: Counter,
    protocol_errors: Counter,
    request_bytes: Histogram,
    response_bytes: Histogram,
    uptime_seconds: Gauge,
}

impl ServerInstruments {
    fn resolve(telemetry: &Telemetry) -> Self {
        ServerInstruments {
            connections: telemetry.counter(
                "ccf_service_connections_total",
                "TCP connections accepted by the daemon",
                &[],
            ),
            requests: telemetry.counter(
                "ccf_service_requests_total",
                "Request frames served (any status)",
                &[],
            ),
            protocol_errors: telemetry.counter(
                "ccf_service_protocol_errors_total",
                "Malformed frames received (truncated, oversized, bad magic, garbage)",
                &[],
            ),
            request_bytes: telemetry.histogram(
                "ccf_service_request_bytes",
                "Request frame sizes in bytes",
                &buckets::frame_bytes(),
                &[],
            ),
            response_bytes: telemetry.histogram(
                "ccf_service_response_bytes",
                "Response frame sizes in bytes",
                &buckets::frame_bytes(),
                &[],
            ),
            uptime_seconds: telemetry.gauge(
                "ccf_service_uptime_seconds",
                "Seconds since the daemon started",
                &[],
            ),
        }
    }
}

/// Shared server state every connection thread works against.
#[derive(Debug)]
struct ServerState {
    tenants: BTreeMap<u32, Tenant>,
    telemetry: Telemetry,
    instruments: ServerInstruments,
    started: Instant,
    shutdown: AtomicBool,
    snapshot_dir: Option<PathBuf>,
}

impl ServerState {
    fn serve(&self, req: &Request) -> Response {
        self.instruments.requests.inc();
        if self.shutdown.load(Ordering::SeqCst) && req.opcode != Opcode::Ping {
            return Response::error(Status::ShuttingDown, "daemon is shutting down");
        }
        match req.opcode {
            Opcode::Ping => Response::ok(Vec::new()),
            Opcode::Metrics => {
                self.instruments
                    .uptime_seconds
                    .set(self.started.elapsed().as_secs() as i64);
                Response::ok(self.telemetry.render_text().into_bytes())
            }
            Opcode::SnapshotNow => self.snapshot_all(),
            Opcode::Shutdown => {
                self.shutdown.store(true, Ordering::SeqCst);
                Response::ok(Vec::new())
            }
            Opcode::Insert
            | Opcode::Query
            | Opcode::Contains
            | Opcode::DeleteRow
            | Opcode::DeleteKey
            | Opcode::Stats => match self.tenants.get(&req.tenant) {
                None => Response::error(
                    Status::UnknownTenant,
                    &format!("tenant {} is not hosted", req.tenant),
                ),
                Some(tenant) => match self.serve_tenant(tenant, req) {
                    Ok(resp) => resp,
                    Err(e) => {
                        self.instruments.protocol_errors.inc();
                        Response::error(Status::BadRequest, &e.to_string())
                    }
                },
            },
        }
    }

    fn serve_tenant(&self, tenant: &Tenant, req: &Request) -> Result<Response, ProtocolError> {
        let mut r = BodyReader::new(&req.body);
        let mut w = BodyWriter::new();
        match req.opcode {
            Opcode::Insert => {
                let rows = wire::get_rows(&mut r)?;
                r.finish()?;
                let codes: Vec<u8> = tenant
                    .insert_batch(&rows)
                    .iter()
                    .map(wire::insert_result_code)
                    .collect();
                wire::put_codes(&mut w, &codes);
            }
            Opcode::Query => {
                let pred = wire::get_predicate(&mut r)?;
                let keys = wire::get_keys(&mut r)?;
                r.finish()?;
                wire::put_bools(&mut w, &tenant.query_batch(&keys, &pred));
            }
            Opcode::Contains => {
                let keys = wire::get_keys(&mut r)?;
                r.finish()?;
                wire::put_bools(&mut w, &tenant.contains_batch(&keys));
            }
            Opcode::DeleteRow => {
                let rows = wire::get_rows(&mut r)?;
                r.finish()?;
                let codes: Vec<u8> = tenant
                    .delete_row_batch(&rows)
                    .iter()
                    .map(wire::delete_result_code)
                    .collect();
                wire::put_codes(&mut w, &codes);
            }
            Opcode::DeleteKey => {
                let keys = wire::get_keys(&mut r)?;
                r.finish()?;
                let codes: Vec<u8> = tenant
                    .delete_key_batch(&keys)
                    .iter()
                    .map(wire::delete_result_code)
                    .collect();
                wire::put_codes(&mut w, &codes);
            }
            Opcode::Stats => {
                r.finish()?;
                let stats = tenant.stats();
                w.put_u32(stats.num_shards() as u32);
                w.put_u64(stats.occupied_entries() as u64);
                w.put_u64(stats.total_capacity as u64);
                w.put_u64(stats.total_size_bits as u64);
                w.put_u64(u64::from(stats.total_doublings()));
                w.put_u64(stats.load_factor().to_bits());
                w.put_u64(stats.expected_key_fpr().to_bits());
            }
            _ => unreachable!("serve() routes only tenant opcodes here"),
        }
        Ok(Response::ok(w.into_bytes()))
    }

    /// Persist every tenant now; the `SnapshotNow` response body is
    /// `u32 count` then per tenant `u32 id` + `u64 digest`.
    fn snapshot_all(&self) -> Response {
        let Some(dir) = &self.snapshot_dir else {
            return Response::error(Status::BadRequest, "daemon has no --snapshot-dir");
        };
        let mut w = BodyWriter::new();
        w.put_u32(self.tenants.len() as u32);
        for (&id, tenant) in &self.tenants {
            match persist::save_tenant(dir, id, tenant) {
                Ok(digest) => {
                    w.put_u32(id);
                    w.put_u64(digest);
                }
                Err(e) => {
                    return Response::error(
                        Status::Internal,
                        &format!("snapshotting tenant {id} failed: {e}"),
                    )
                }
            }
        }
        Response::ok(w.into_bytes())
    }
}

/// A started daemon: the bound address plus the handles needed to wait it out.
#[derive(Debug)]
pub struct RunningDaemon {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_handle: std::thread::JoinHandle<()>,
}

impl RunningDaemon {
    /// The address the daemon is listening on (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::SeqCst)
    }

    /// Request shutdown from in-process (the wire `Shutdown` opcode does the same).
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        poke(self.addr);
    }

    /// Block until the daemon has shut down, then snapshot every tenant
    /// (snapshot-on-exit). Returns the per-tenant file digests (empty when no
    /// snapshot directory is configured).
    pub fn wait(self) -> Result<Vec<(u32, u64)>, ServiceError> {
        self.accept_handle
            .join()
            .map_err(|_| ServiceError::Config("accept thread panicked".into()))?;
        let mut digests = Vec::new();
        if let Some(dir) = &self.state.snapshot_dir {
            for (&id, tenant) in &self.state.tenants {
                digests.push((id, persist::save_tenant(dir, id, tenant)?));
            }
        }
        Ok(digests)
    }
}

/// Wake the acceptor with a throwaway connection so it observes the shutdown flag.
fn poke(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

/// Close a connection being refused without losing the refusal: FIN our write
/// side, then drain whatever the peer already pipelined so `close()` doesn't turn
/// into an RST that destroys the in-flight error response. The drain is bounded by
/// the connection's idle-tick read timeout.
fn close_after_refusal(mut stream: &TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 4096];
    while matches!(stream.read(&mut scratch), Ok(n) if n > 0) {}
}

/// Build tenants (warm-loading from the snapshot directory where images exist),
/// bind the listener, and start serving. Telemetry is always enabled in the daemon:
/// the `Metrics` opcode is part of the admin surface.
pub fn start(config: DaemonConfig) -> Result<RunningDaemon, ServiceError> {
    let telemetry = Telemetry::enabled();
    let mut tenants = BTreeMap::new();
    for spec in &config.tenants {
        let mut tenant = match &config.snapshot_dir {
            Some(dir) => match persist::load_tenant(dir, spec.id)? {
                Some((warm, _digest)) => warm,
                None => Tenant::from_spec(spec)?,
            },
            None => Tenant::from_spec(spec)?,
        };
        let id = spec.id.to_string();
        tenant.attach_telemetry(&telemetry, &[("tenant", id.as_str())]);
        if tenants.insert(spec.id, tenant).is_some() {
            return Err(ServiceError::Config(format!(
                "tenant id {} specified twice",
                spec.id
            )));
        }
    }
    let instruments = ServerInstruments::resolve(&telemetry);
    let listener = TcpListener::bind(&config.listen)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        tenants,
        telemetry,
        instruments,
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        snapshot_dir: config.snapshot_dir,
    });

    let accept_state = Arc::clone(&state);
    let accept_handle = std::thread::spawn(move || {
        let workers: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        for conn in listener.incoming() {
            if accept_state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let conn_state = Arc::clone(&accept_state);
            let handle = std::thread::spawn(move || handle_connection(&conn_state, stream));
            workers.lock().expect("worker list lock").push(handle);
        }
        // Drain connection threads so snapshot-on-exit sees their final writes.
        for handle in workers.lock().expect("worker list lock").drain(..) {
            let _ = handle.join();
        }
    });

    Ok(RunningDaemon {
        addr,
        state,
        accept_handle,
    })
}

/// How often a worker parked on a silent connection wakes to re-check shutdown.
const IDLE_TICK: Duration = Duration::from_millis(500);

/// Serve one connection until the peer closes, a malformed envelope forces a close,
/// or shutdown is requested.
fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    state.instruments.connections.inc();
    // Workers must never pin the shutdown drain: an idle keepalive connection would
    // otherwise block `read_frame` forever and graceful shutdown with it. A read
    // timeout turns the park into a tick loop — `peek` waits up to one tick, an
    // idle tick re-checks the flag, and only a peer that stalls *mid-frame* for a
    // full tick is dropped as truncated.
    let _ = stream.set_read_timeout(Some(IDLE_TICK));
    loop {
        let mut peeked = [0u8; 1];
        match stream.peek(&mut peeked) {
            Ok(0) => return, // clean close
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let frame = match wire::read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean close
            Err(ServiceError::Protocol(e)) => {
                // Malformed stream: answer with a typed reason if the socket still
                // writes, then close this connection. The daemon keeps serving.
                state.instruments.protocol_errors.inc();
                let resp = Response::error(Status::BadRequest, &e.to_string());
                let _ = wire::write_frame(&mut stream, &wire::encode_response(&resp));
                close_after_refusal(&stream);
                return;
            }
            Err(_) => return, // I/O error: nothing to answer on
        };
        state.instruments.request_bytes.observe_len(frame.len());
        let response = match wire::parse_request(&frame) {
            Ok(req) => {
                let resp = state.serve(&req);
                if req.opcode == Opcode::Shutdown {
                    let encoded = wire::encode_response(&resp);
                    state.instruments.response_bytes.observe_len(encoded.len());
                    let _ = wire::write_frame(&mut stream, &encoded);
                    // Poke the acceptor awake on the daemon's own address so it
                    // re-checks the flag even with no other traffic.
                    if let Ok(local) = stream.local_addr() {
                        poke(local);
                    }
                    return;
                }
                resp
            }
            Err(e) => {
                state.instruments.protocol_errors.inc();
                let resp = Response::error(Status::BadRequest, &e.to_string());
                let encoded = wire::encode_response(&resp);
                state.instruments.response_bytes.observe_len(encoded.len());
                let _ = wire::write_frame(&mut stream, &encoded);
                close_after_refusal(&stream);
                return; // malformed envelope: close after answering
            }
        };
        let encoded = wire::encode_response(&response);
        state.instruments.response_bytes.observe_len(encoded.len());
        if wire::write_frame(&mut stream, &encoded).is_err() {
            return;
        }
    }
}
