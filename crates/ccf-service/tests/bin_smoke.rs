//! Smoke tests for the service bins. The daemon and loadgen are the deployment
//! artefacts of this crate; without these tests they would only be compiled, never
//! executed, and could silently rot. (`env!` uses string literals here because the
//! bin names contain hyphens, which an ident-based macro cannot spell.)

use std::process::Command;

const SERVICED: &str = env!("CARGO_BIN_EXE_ccf-serviced");
const LOADGEN: &str = env!("CARGO_BIN_EXE_ccf-loadgen");

#[test]
fn serviced_help_exits_zero() {
    let out = Command::new(SERVICED).arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: ccf-serviced"));
}

#[test]
fn serviced_rejects_bad_flags_and_bad_specs() {
    for args in [
        &["--bogus"][..],
        &[][..], // no tenants
        &["--tenant", "id=1,variant=tetrahedral"][..],
        &["--tenant", "variant=plain"][..], // id is required
    ] {
        let out = Command::new(SERVICED).args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
        assert!(
            !out.stderr.is_empty(),
            "args {args:?} must explain the error"
        );
    }
}

#[test]
fn loadgen_help_exits_zero() {
    let out = Command::new(LOADGEN).arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: ccf-loadgen"));
}

#[test]
fn loadgen_requires_exactly_one_target() {
    for args in [&[][..], &["--embedded", "--addr", "127.0.0.1:1"][..]] {
        let out = Command::new(LOADGEN).args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {args:?} must exit 2");
    }
}

/// The full loopback pipeline at smoke scale: embedded daemon, batched wire ops,
/// digest + zero protocol errors, graceful shutdown, exit 0.
#[test]
fn loadgen_embedded_smoke_run() {
    let out = Command::new(LOADGEN)
        .args([
            "--embedded",
            "--rows",
            "2000",
            "--queries",
            "4000",
            "--batch",
            "256",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "loadgen failed:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["rows/s", "keys/s", "stream digest:", "protocol errors: 0"] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
}
