//! Malformed-frame hardening: truncated, oversized and garbage frames must produce
//! typed errors and cleanly closed connections — the daemon must never panic, hang,
//! or stop serving other connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ccf_service::wire::{self, Opcode, Request};
use ccf_service::{daemon, Client, DaemonConfig, TenantSpec};

const TIMEOUT: Duration = Duration::from_secs(10);

fn start_daemon() -> daemon::RunningDaemon {
    daemon::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        tenants: vec![TenantSpec::parse("id=1,buckets=128,seed=7").unwrap()],
        snapshot_dir: None,
    })
    .expect("daemon starts")
}

fn raw_conn(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.set_write_timeout(Some(TIMEOUT)).unwrap();
    s
}

/// Drain whatever the daemon answers (possibly nothing) until it closes the
/// connection; panics (via the read timeout) if the daemon hangs instead.
fn read_until_close(s: &mut TcpStream) -> Vec<u8> {
    let mut all = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => return all,
            Ok(n) => all.extend_from_slice(&buf[..n]),
            Err(e) => panic!("daemon neither answered nor closed: {e}"),
        }
    }
}

/// The daemon must still serve a well-formed request on a *fresh* connection.
fn assert_still_alive(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).expect("daemon still accepting");
    client.set_timeout(Some(TIMEOUT)).unwrap();
    client.ping().expect("daemon still serving");
}

#[test]
fn garbage_frames_get_typed_errors_and_clean_closes() {
    let running = start_daemon();
    let addr = running.local_addr();

    // 1. Pure garbage bytes (valid length prefix, garbage payload): the daemon
    //    answers BadRequest (bad magic) and closes.
    let mut s = raw_conn(addr);
    let mut frame = Vec::new();
    frame.extend_from_slice(&16u32.to_le_bytes());
    frame.extend_from_slice(&[0xDE; 16]);
    s.write_all(&frame).unwrap();
    let answer = read_until_close(&mut s);
    assert!(!answer.is_empty(), "expected a BadRequest response");
    let resp = wire::parse_response(&answer[4..]).expect("well-formed error response");
    assert_eq!(resp.status, wire::Status::BadRequest);
    assert!(String::from_utf8_lossy(&resp.body).contains("magic"));
    assert_still_alive(addr);

    // 2. Truncated frame: announce 100 bytes, send 10, close. Daemon must just
    //    drop the connection (nothing useful to answer) without hanging.
    let mut s = raw_conn(addr);
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[0u8; 10]).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let _ = read_until_close(&mut s);
    assert_still_alive(addr);

    // 3. Oversized announcement: the daemon must refuse without allocating or
    //    waiting for the bytes.
    let mut s = raw_conn(addr);
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let answer = read_until_close(&mut s);
    if !answer.is_empty() {
        let resp = wire::parse_response(&answer[4..]).unwrap();
        assert_eq!(resp.status, wire::Status::BadRequest);
    }
    assert_still_alive(addr);

    // 4. Sub-header length.
    let mut s = raw_conn(addr);
    s.write_all(&2u32.to_le_bytes()).unwrap();
    s.write_all(&[0u8; 2]).unwrap();
    let _ = read_until_close(&mut s);
    assert_still_alive(addr);

    // 5. Wrong version, unknown opcode: typed errors.
    type FrameMutation = (fn(&mut Vec<u8>), &'static str);
    let cases: [FrameMutation; 2] = [(|f| f[8] = 99, "version"), (|f| f[9] = 200, "opcode")];
    for (mutate, needle) in cases {
        let mut frame = wire::encode_request(&Request {
            opcode: Opcode::Ping,
            tenant: 0,
            body: vec![],
        });
        mutate(&mut frame);
        let mut s = raw_conn(addr);
        s.write_all(&frame).unwrap();
        let answer = read_until_close(&mut s);
        let resp = wire::parse_response(&answer[4..]).expect("typed error response");
        assert_eq!(resp.status, wire::Status::BadRequest);
        assert!(
            String::from_utf8_lossy(&resp.body).contains(needle),
            "expected {needle} in {:?}",
            String::from_utf8_lossy(&resp.body)
        );
        assert_still_alive(addr);
    }

    running.request_shutdown();
    running.wait().expect("graceful shutdown");
}

#[test]
fn garbage_bodies_are_refused_without_closing_the_daemon() {
    let running = start_daemon();
    let addr = running.local_addr();

    // A structurally valid envelope whose body lies about its counts: the daemon
    // answers BadRequest on the same connection and keeps serving it.
    let mut s = raw_conn(addr);
    let mut body = Vec::new();
    body.extend_from_slice(&u32::MAX.to_le_bytes()); // row count nobody sent
    body.extend_from_slice(&2u32.to_le_bytes());
    let frame = wire::encode_request(&Request {
        opcode: Opcode::Insert,
        tenant: 1,
        body,
    });
    s.write_all(&frame).unwrap();
    let payload = wire::read_frame(&mut s).unwrap().expect("a response");
    let resp = wire::parse_response(&payload).unwrap();
    assert_eq!(resp.status, wire::Status::BadRequest);

    // Unknown tenant: typed status, connection stays usable.
    let frame = wire::encode_request(&Request {
        opcode: Opcode::Contains,
        tenant: 99,
        body: {
            let mut w = wire::BodyWriter::new();
            wire::put_keys(&mut w, &[1, 2, 3]);
            w.into_bytes()
        },
    });
    s.write_all(&frame).unwrap();
    let payload = wire::read_frame(&mut s).unwrap().expect("a response");
    let resp = wire::parse_response(&payload).unwrap();
    assert_eq!(resp.status, wire::Status::UnknownTenant);

    // Same connection, now a good request: still served.
    let frame = wire::encode_request(&Request {
        opcode: Opcode::Ping,
        tenant: 0,
        body: vec![],
    });
    s.write_all(&frame).unwrap();
    let payload = wire::read_frame(&mut s).unwrap().expect("a response");
    assert_eq!(
        wire::parse_response(&payload).unwrap().status,
        wire::Status::Ok
    );

    // The daemon's protocol-error counter saw the garbage.
    let mut client = Client::connect(addr).unwrap();
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("ccf_service_protocol_errors_total"),
        "admin exposition must carry the protocol-error counter"
    );

    running.request_shutdown();
    running.wait().expect("graceful shutdown");
}
