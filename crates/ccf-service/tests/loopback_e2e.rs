//! Loopback end-to-end: the real `ccf-serviced` bin, a real TCP client, and the
//! full lifecycle — serve, snapshot, kill, restart, warm-reload — pinned by golden
//! digests. The remote results are also compared bit for bit against an in-process
//! filter fed the same streams: the wire must add transport, never semantics.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

use ccf_core::{AnyCcf, ConditionalFilter, Predicate};
use ccf_service::wire;
use ccf_service::{Client, StreamDigest, TenantSpec};

const TENANT_SINGLE: &str = "id=1,variant=chained,buckets=256,seed=9";
const TENANT_SHARDED: &str = "id=2,variant=mixed,buckets=64,shards=4,seed=9";

fn spawn_daemon(snapshot_dir: &std::path::Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ccf-serviced"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--tenant",
            TENANT_SINGLE,
            "--tenant",
            TENANT_SHARDED,
            "--snapshot-dir",
            snapshot_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("daemon bin spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("daemon prints its address")
        .expect("readable stdout");
    let addr = banner
        .strip_prefix("ccf-serviced listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .parse()
        .expect("parsable address");
    // Keep draining stdout in the background so the child never blocks on a full
    // pipe once it starts printing snapshot digests.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn rows() -> Vec<(u64, Vec<u64>)> {
    (0..2_000u64)
        .map(|i| (i.wrapping_mul(0x9E37).rotate_left(9), vec![i % 7, i % 11]))
        .collect()
}

fn probe_keys() -> Vec<u64> {
    let data = rows();
    (0..5_000u64)
        .map(|i| {
            if i % 2 == 0 {
                data[(i as usize / 2) % data.len()].0
            } else {
                u64::MAX - i
            }
        })
        .collect()
}

/// Drive the full read-only probe suite and fold every answer into one digest.
fn probe_digest(client: &mut Client, pred: &Predicate) -> u64 {
    let mut digest = StreamDigest::new();
    let keys = probe_keys();
    for tenant in [1, 2] {
        for chunk in keys.chunks(512) {
            digest.update_bools(&client.query(tenant, chunk, pred).expect("query"));
            digest.update_bools(&client.contains(tenant, chunk).expect("contains"));
        }
    }
    digest.value()
}

#[test]
fn kill_restart_cycle_is_lossless_and_bit_identical_to_in_process() {
    let dir = std::env::temp_dir().join(format!("ccf-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let pred = Predicate::any(2).and_eq(0, 3);

    // In-process reference for tenant 1: same spec, same streams, never restarted.
    let spec = TenantSpec::parse(TENANT_SINGLE).unwrap();
    let mut reference = AnyCcf::try_new(spec.variant, spec.params).unwrap();

    // ---- First daemon: insert, probe, snapshot, graceful shutdown. ----
    let (mut child, addr) = spawn_daemon(&dir);
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");

    let data = rows();
    let mut insert_digest = StreamDigest::new();
    for chunk in data.chunks(512) {
        let remote = client.insert_rows(1, chunk).expect("insert tenant 1");
        // Bit-identity with in-process inserts, outcome by outcome.
        let local: Vec<u8> = chunk
            .iter()
            .map(|(k, a)| wire::insert_result_code(&reference.insert_row(*k, a)))
            .collect();
        assert_eq!(remote, local, "remote inserts diverge from in-process");
        insert_digest.update(&remote);
        insert_digest.update(&client.insert_rows(2, chunk).expect("insert tenant 2"));
    }
    // Remote reads match the in-process filter exactly.
    let keys = probe_keys();
    for chunk in keys.chunks(512) {
        let remote = client.query(1, chunk, &pred).expect("query");
        let local: Vec<bool> = chunk.iter().map(|&k| reference.query(k, &pred)).collect();
        assert_eq!(remote, local, "remote queries diverge from in-process");
        let remote = client.contains(1, chunk).expect("contains");
        let local: Vec<bool> = chunk.iter().map(|&k| reference.contains_key(k)).collect();
        assert_eq!(remote, local, "remote membership diverges from in-process");
    }
    let probe_before = probe_digest(&mut client, &pred);
    let admin_digests = client.snapshot_now().expect("snapshot now");
    assert_eq!(admin_digests.len(), 2);
    client.shutdown().expect("graceful shutdown request");
    let status = child.wait().expect("daemon exits");
    assert!(
        status.success(),
        "graceful shutdown must exit 0, got {status:?}"
    );

    // ---- Second daemon: warm-reload, digests must be identical. ----
    let (mut child, addr) = spawn_daemon(&dir);
    let mut client = Client::connect(addr).expect("reconnect");
    let probe_after = probe_digest(&mut client, &pred);
    assert_eq!(
        probe_before, probe_after,
        "warm-reloaded daemon answers differently"
    );
    // Snapshotting the reloaded state reproduces the same file digests: the reload
    // was bit-identical, not merely answer-compatible.
    let redigests = client.snapshot_now().expect("snapshot again");
    assert_eq!(
        admin_digests, redigests,
        "snapshot digests drifted across restart"
    );

    // Continued mutation stays in lockstep with the never-restarted reference.
    let victims: Vec<(u64, Vec<u64>)> = data.iter().step_by(5).cloned().collect();
    for chunk in victims.chunks(512) {
        let remote = client.delete_rows(1, chunk).expect("delete");
        let local: Vec<u8> = chunk
            .iter()
            .map(|(k, a)| wire::delete_result_code(&reference.delete_row(*k, a)))
            .collect();
        assert_eq!(
            remote, local,
            "post-restart deletes diverge from in-process"
        );
    }

    // ---- Hard-kill leg: snapshot, SIGKILL, restart, reload from the snapshot. ----
    let kill_digests = client.snapshot_now().expect("snapshot before kill");
    let probe_killpoint = probe_digest(&mut client, &pred);
    child.kill().expect("hard kill");
    let _ = child.wait();

    let (mut child, addr) = spawn_daemon(&dir);
    let mut client = Client::connect(addr).expect("reconnect after kill");
    assert_eq!(
        probe_digest(&mut client, &pred),
        probe_killpoint,
        "state lost across hard kill + snapshot reload"
    );
    assert_eq!(client.snapshot_now().expect("snapshot"), kill_digests);

    // Metrics admin surface is live and carries daemon + filter series.
    let metrics = client.metrics().expect("metrics");
    for series in [
        "ccf_service_connections_total",
        "ccf_service_requests_total",
        "ccf_service_uptime_seconds",
        "ccf_inserts_total",
    ] {
        assert!(metrics.contains(series), "missing {series} in exposition");
    }
    let stats = client.stats(2).expect("stats");
    assert_eq!(stats.num_shards, 4);
    assert!(stats.occupied > 0);

    client.shutdown().expect("final shutdown");
    assert!(child.wait().expect("exit").success());
    let _ = std::fs::remove_dir_all(&dir);
}
