//! Smoke tests for the experiment binaries (the 13 paper artefacts plus the
//! growth/batch, sharded-throughput, churn, telemetry-report and service-loopback
//! harnesses): each one must run to completion at a minimal workload scale
//! and produce non-empty tabular output. For `growth_batch` this also re-verifies the
//! bit-identity and zero-failure contracts at smoke scale, so the growth/batch bench
//! cannot silently rot.
//!
//! `--scale` is a *divisor* of the synthetic IMDB size (scale N ⇒ 1/N of the full
//! dataset), so "minimal" means a large value. Binaries that don't take a given flag
//! simply ignore it, letting every binary share one argument list. Without these
//! tests the binaries would only be compiled, never executed, and could silently rot.

use std::process::Command;

/// Flags that make every binary's workload as small as it supports.
const SMOKE_ARGS: &[&str] = &[
    "--scale",
    "4096",
    "--runs",
    "1",
    "--rows",
    "2",
    "--buckets",
    "512",
    "--keys",
    "64",
    "--probes",
    "64",
    "--seed",
    "7",
];

fn run_smoke(name: &str, exe: &str) {
    let output = Command::new(exe)
        .args(SMOKE_ARGS)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {name} ({exe}): {e}"));
    assert!(
        output.status.success(),
        "{name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.lines().count() >= 3,
        "{name} produced suspiciously little output:\n{stdout}"
    );
}

macro_rules! bin_smoke_tests {
    ($($name:ident),+ $(,)?) => {
        $(
            #[test]
            fn $name() {
                run_smoke(stringify!($name), env!(concat!("CARGO_BIN_EXE_", stringify!($name))));
            }
        )+
    };
}

bin_smoke_tests!(
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
    aggregate,
    growth_batch,
    packed_probe,
    compressed_probe,
    sharded_throughput,
    churn,
    telemetry_report,
    service_loopback,
);

/// The workspace lint gate, in-process. `CARGO_BIN_EXE_*` variables only cover
/// this package's own bins, so the `ccf-lint` binary (owned by `ccf-analysis`)
/// can't be spawned here; `lint_workspace` is the exact code path the binary
/// runs, and the binary itself is smoke-tested in `ccf-analysis/tests/bin_smoke.rs`.
#[test]
fn ccf_lint() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root is two levels up");
    let run = ccf_analysis::lint_workspace(root).expect("lint run completes");
    let rendered: Vec<String> = run.findings.iter().map(|f| f.render()).collect();
    assert!(
        run.findings.is_empty(),
        "ccf-lint findings:\n{}",
        rendered.join("\n")
    );
}
