//! Growth and batched-probe experiments (beyond the paper: the production-hardening
//! additions of the growable-filter work).
//!
//! Two questions the paper leaves open for a deployed system are answered here with
//! honest wall-clock measurements:
//!
//! 1. **Batched probing** — how much throughput does splitting a probe loop into a
//!    hash pass plus a probe pass buy ([`cuckoo_probe_comparison`],
//!    [`ccf_probe_comparison`])? The comparison also cross-checks that the batched
//!    results are bit-identical to the per-key loop, which is the correctness
//!    contract of the batch API.
//! 2. **Growth cost** — what does it cost to insert into a filter sized for `n` until
//!    it holds `factor·n` keys with `auto_grow` doing the doubling
//!    ([`cuckoo_growth_experiment`], [`ccf_growth_experiment`])? The report counts
//!    doublings and verifies the zero failure / zero false-negative contract along
//!    the way.

use std::time::Instant;

use ccf_core::{CcfParams, ChainedCcf, Predicate};
use ccf_cuckoo::{CuckooFilter, CuckooFilterParams};

/// Results of one per-key vs batched probe comparison.
#[derive(Debug, Clone, Copy)]
pub struct ProbeComparison {
    /// Number of keys probed.
    pub probes: usize,
    /// Wall-clock seconds for the per-key loop.
    pub per_key_secs: f64,
    /// Wall-clock seconds for the batched path.
    pub batched_secs: f64,
    /// Number of positive responses (identical for both paths by construction).
    pub hits: usize,
    /// Whether the batched results were bit-identical to the per-key loop (always
    /// checked; `false` would be a correctness bug).
    pub identical: bool,
}

impl ProbeComparison {
    /// Probes per second of the per-key loop.
    pub fn per_key_throughput(&self) -> f64 {
        self.probes as f64 / self.per_key_secs.max(1e-12)
    }

    /// Probes per second of the batched path.
    pub fn batched_throughput(&self) -> f64 {
        self.probes as f64 / self.batched_secs.max(1e-12)
    }

    /// Batched over per-key throughput.
    pub fn speedup(&self) -> f64 {
        self.batched_throughput() / self.per_key_throughput().max(1e-12)
    }
}

/// A mixed hit/miss probe stream: even indices are inserted keys, odd indices absent.
fn probe_stream(num_keys: u64, probes: usize) -> Vec<u64> {
    (0..probes as u64)
        .map(|i| {
            if i % 2 == 0 {
                (i / 2) % num_keys.max(1)
            } else {
                1_000_000_000 + i
            }
        })
        .collect()
}

/// Fill a cuckoo filter with `num_keys` unique keys and time a per-key `contains`
/// loop against `contains_batch` over `probes` mixed hit/miss probes.
pub fn cuckoo_probe_comparison(num_keys: usize, probes: usize, seed: u64) -> ProbeComparison {
    let mut filter = CuckooFilter::new(CuckooFilterParams::for_capacity(num_keys, 12, seed));
    for k in 0..num_keys as u64 {
        let _ = filter.insert(k);
    }
    let stream = probe_stream(num_keys as u64, probes);

    let start = Instant::now();
    let per_key: Vec<bool> = stream.iter().map(|&k| filter.contains(k)).collect();
    let per_key_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let batched = filter.contains_batch(&stream);
    let batched_secs = start.elapsed().as_secs_f64();

    ProbeComparison {
        probes: stream.len(),
        per_key_secs,
        batched_secs,
        hits: per_key.iter().filter(|&&h| h).count(),
        identical: per_key == batched,
    }
}

/// Fill a chained CCF with `num_keys` keys (two rows each) and time a per-key
/// predicate `query` loop against `query_batch` over `probes` mixed hit/miss probes.
pub fn ccf_probe_comparison(num_keys: usize, probes: usize, seed: u64) -> ProbeComparison {
    let mut filter = ChainedCcf::new(
        CcfParams {
            num_attrs: 2,
            seed,
            ..CcfParams::default()
        }
        .sized_for_entries(2 * num_keys.max(1), 0.8),
    );
    for k in 0..num_keys as u64 {
        filter
            .insert_row(k, &[k % 7, k % 11])
            .expect("sized filter");
        filter
            .insert_row(k, &[k % 7 + 20, k % 11])
            .expect("sized filter");
    }
    let stream = probe_stream(num_keys as u64, probes);
    let pred = Predicate::any(2).and_eq(0, 3);

    let start = Instant::now();
    let per_key: Vec<bool> = stream.iter().map(|&k| filter.query(k, &pred)).collect();
    let per_key_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let batched = filter.query_batch(&stream, &pred);
    let batched_secs = start.elapsed().as_secs_f64();

    ProbeComparison {
        probes: stream.len(),
        per_key_secs,
        batched_secs,
        hits: per_key.iter().filter(|&&h| h).count(),
        identical: per_key == batched,
    }
}

/// Results of one insert-to-`factor`×-capacity growth run.
#[derive(Debug, Clone, Copy)]
pub struct GrowthReport {
    /// Keys the filter was originally sized for.
    pub sized_for: usize,
    /// Keys actually inserted (`factor · sized_for`).
    pub inserted: usize,
    /// Insert failures observed (the auto-grow contract demands 0).
    pub failures: usize,
    /// Capacity doublings performed.
    pub growths: u32,
    /// False negatives among all inserted keys after the run (contract: 0).
    pub false_negatives: usize,
    /// Wall-clock seconds for the whole insert stream, growth included.
    pub insert_secs: f64,
    /// Load factor at the end of the run.
    pub final_load_factor: f64,
}

impl GrowthReport {
    /// Inserts per second, amortizing every doubling.
    pub fn insert_throughput(&self) -> f64 {
        self.inserted as f64 / self.insert_secs.max(1e-12)
    }
}

/// Size a cuckoo filter for `sized_for` keys, enable `auto_grow`, insert
/// `factor · sized_for` unique keys, and report the cost and the contract checks.
pub fn cuckoo_growth_experiment(sized_for: usize, factor: usize, seed: u64) -> GrowthReport {
    let mut filter =
        CuckooFilter::new(CuckooFilterParams::for_capacity(sized_for, 12, seed).with_auto_grow());
    let total = sized_for * factor;
    let mut failures = 0usize;
    let start = Instant::now();
    for k in 0..total as u64 {
        if filter.insert(k).is_err() {
            failures += 1;
        }
    }
    let insert_secs = start.elapsed().as_secs_f64();
    let false_negatives = (0..total as u64).filter(|&k| !filter.contains(k)).count();
    GrowthReport {
        sized_for,
        inserted: total,
        failures,
        growths: filter.growth_bits(),
        false_negatives,
        insert_secs,
        final_load_factor: filter.load_factor(),
    }
}

/// The same growth run for a chained CCF storing (key, 2-attribute) rows.
pub fn ccf_growth_experiment(sized_for: usize, factor: usize, seed: u64) -> GrowthReport {
    let mut filter = ChainedCcf::new(
        CcfParams {
            num_attrs: 2,
            seed,
            ..CcfParams::default()
        }
        .sized_for_entries(sized_for.max(1), 0.8)
        .with_auto_grow(),
    );
    let total = sized_for * factor;
    let mut failures = 0usize;
    let start = Instant::now();
    for k in 0..total as u64 {
        if filter.insert_row(k, &[k % 7, k % 11]).is_err() {
            failures += 1;
        }
    }
    let insert_secs = start.elapsed().as_secs_f64();
    let false_negatives = (0..total as u64)
        .filter(|&k| !filter.query(k, &Predicate::any(2).and_eq(0, k % 7).and_eq(1, k % 11)))
        .count();
    GrowthReport {
        sized_for,
        inserted: total,
        failures,
        growths: filter.growth_bits(),
        false_negatives,
        insert_secs,
        final_load_factor: filter.load_factor(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuckoo_probe_comparison_is_bit_identical() {
        let cmp = cuckoo_probe_comparison(2000, 10_000, 1);
        assert!(cmp.identical, "batched results diverged from per-key loop");
        assert_eq!(cmp.probes, 10_000);
        // Half the probes are inserted keys, so at least those must hit.
        assert!(cmp.hits >= 5000);
    }

    #[test]
    fn ccf_probe_comparison_is_bit_identical() {
        let cmp = ccf_probe_comparison(1000, 5000, 2);
        assert!(cmp.identical);
        assert_eq!(cmp.probes, 5000);
    }

    #[test]
    fn growth_experiments_meet_the_zero_failure_contract() {
        let cuckoo = cuckoo_growth_experiment(1500, 4, 3);
        assert_eq!(cuckoo.failures, 0, "{cuckoo:?}");
        assert_eq!(cuckoo.false_negatives, 0, "{cuckoo:?}");
        assert!(
            cuckoo.growths >= 2,
            "4× the sized capacity needs ≥ 2 doublings"
        );

        let ccf = ccf_growth_experiment(1000, 4, 4);
        assert_eq!(ccf.failures, 0, "{ccf:?}");
        assert_eq!(ccf.false_negatives, 0, "{ccf:?}");
        assert!(ccf.growths >= 1);
    }

    #[test]
    fn tiny_scales_do_not_panic() {
        // The smoke harness runs the binary with --rows 2; the library paths must
        // cope with degenerate sizes.
        let cmp = cuckoo_probe_comparison(1, 2, 5);
        assert!(cmp.identical);
        let report = cuckoo_growth_experiment(1, 4, 6);
        assert_eq!(report.false_negatives, 0);
    }
}
