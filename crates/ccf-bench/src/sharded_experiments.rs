//! Sharded-service throughput experiments (beyond the paper: the concurrency work).
//!
//! The question a sharded front end must answer with wall-clock numbers: how does
//! batch-probe throughput scale with shard count × thread count × batch size, and
//! what does the fan-out cost when parallelism is *not* available? Two workloads:
//!
//! * **Zipf** — probe keys drawn from a truncated Zipf-Mandelbrot distribution over
//!   the keyspace (hot keys dominate, the adversarial case for a partitioned design:
//!   a hot key concentrates on one shard but routing stays uniform *per distinct
//!   key*, so shard loads stay balanced while probe traffic is skewed).
//! * **Multiset** — a §10.1-style multiset insert stream (Zipf-distributed duplicate
//!   counts) with a uniform mixed hit/miss probe stream.
//!
//! Every comparison re-checks the service's determinism contract: the sharded,
//! multi-threaded batch results must be bit-identical to a sequential per-key loop
//! over the same service. Timings are honest wall clocks; on a single-core machine
//! the sharded path shows its fan-out overhead instead of a speedup, which is exactly
//! what an operator needs to know before deploying shards there.

use std::time::Instant;

use ccf_core::{CcfParams, ChainedCcf, Predicate, VariantKind};
use ccf_shard::ShardedCcf;
use ccf_workloads::multiset::{DuplicateDistribution, MultisetStream, Row};
use ccf_workloads::zipf::ZipfMandelbrot;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which probe workload a report was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeWorkload {
    /// Zipf-Mandelbrot-distributed probe keys (hot-key skew).
    Zipf,
    /// Uniform mixed hit/miss probes over a multiset insert stream.
    Multiset,
}

impl std::fmt::Display for ProbeWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeWorkload::Zipf => write!(f, "zipf"),
            ProbeWorkload::Multiset => write!(f, "multiset"),
        }
    }
}

/// One (shards × threads × batch) cell of the throughput sweep.
#[derive(Debug, Clone, Copy)]
pub struct ShardedThroughputReport {
    /// Probe workload.
    pub workload: ProbeWorkload,
    /// Shard count of the service.
    pub shards: usize,
    /// Worker-thread cap of the service.
    pub threads: usize,
    /// Probe batch size (the stream is chunked into batches of this many keys).
    pub batch: usize,
    /// Total probes.
    pub probes: usize,
    /// Wall-clock seconds for the single-filter, single-threaded `contains_key_batch`
    /// baseline over the same batches.
    pub baseline_secs: f64,
    /// Wall-clock seconds for the sharded `contains_key_batch` path.
    pub sharded_secs: f64,
    /// Wall-clock seconds for the sharded predicate `query_batch` path.
    pub sharded_query_secs: f64,
    /// Whether the sharded batch results were bit-identical to a sequential per-key
    /// loop over the same service (always checked; `false` is a correctness bug).
    pub identical: bool,
    /// Positive responses from the sharded path.
    pub hits: usize,
}

impl ShardedThroughputReport {
    /// Baseline probes per second.
    pub fn baseline_throughput(&self) -> f64 {
        self.probes as f64 / self.baseline_secs.max(1e-12)
    }

    /// Sharded probes per second.
    pub fn sharded_throughput(&self) -> f64 {
        self.probes as f64 / self.sharded_secs.max(1e-12)
    }

    /// Sharded over baseline throughput.
    pub fn speedup(&self) -> f64 {
        self.sharded_throughput() / self.baseline_throughput().max(1e-12)
    }
}

/// A built probe experiment: insert stream, probe stream, and the single-filter
/// baseline, reusable across every (shards × threads × batch) cell.
pub struct ShardedProbeExperiment {
    workload: ProbeWorkload,
    rows: Vec<Row>,
    probes: Vec<u64>,
    baseline: ChainedCcf,
    shard_seed: u64,
}

/// Parameters for a chained filter sized for the experiment's rows.
fn filter_params(expected_entries: usize, seed: u64) -> CcfParams {
    CcfParams {
        num_attrs: 2,
        seed,
        ..CcfParams::default()
    }
    .sized_for_entries(expected_entries.max(1), 0.8)
    .with_auto_grow()
}

impl ShardedProbeExperiment {
    /// Generate the workload and build the single-filter baseline.
    ///
    /// * `num_keys` — distinct keys inserted (the filters are sized for the resulting
    ///   row count).
    /// * `num_probes` — length of the probe stream.
    /// * Zipf probes are drawn over `[1, 2·num_keys]` ranks, so roughly the top half
    ///   of the mass hits inserted keys and the cold tail misses.
    pub fn new(workload: ProbeWorkload, num_keys: usize, num_probes: usize, seed: u64) -> Self {
        let num_keys = num_keys.max(1);
        let rows: Vec<Row> = match workload {
            ProbeWorkload::Zipf => {
                // Unique keys, two attribute columns; the skew lives in the probes.
                (0..num_keys as u64)
                    .map(|k| Row {
                        key: k,
                        attrs: vec![k % 7, k % 11],
                    })
                    .collect()
            }
            ProbeWorkload::Multiset => {
                MultisetStream::new(DuplicateDistribution::zipf_with_mean(3.0), 2, seed)
                    .generate(num_keys)
            }
        };
        let probes = match workload {
            ProbeWorkload::Zipf => {
                let alpha = 1.05;
                let zipf =
                    ZipfMandelbrot::new(alpha, ZipfMandelbrot::PAPER_OFFSET, (2 * num_keys) as u64);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x51F7);
                (0..num_probes)
                    .map(|_| {
                        let rank = zipf.sample(&mut rng);
                        if rank <= num_keys as u64 {
                            rank - 1 // hot ranks hit inserted keys
                        } else {
                            (1 << 40) + rank // cold tail misses
                        }
                    })
                    .collect()
            }
            ProbeWorkload::Multiset => (0..num_probes as u64)
                .map(|i| {
                    if i % 2 == 0 {
                        rows[(i as usize / 2) % rows.len()].key
                    } else {
                        (1 << 40) + i
                    }
                })
                .collect(),
        };
        let mut baseline = ChainedCcf::new(filter_params(rows.len(), seed));
        for row in &rows {
            baseline
                .insert_row(row.key, &row.attrs)
                .expect("auto-grow baseline absorbs the stream");
        }
        Self {
            workload,
            rows,
            probes,
            baseline,
            shard_seed: seed,
        }
    }

    /// Number of probes in the stream.
    pub fn num_probes(&self) -> usize {
        self.probes.len()
    }

    /// The probe stream (for callers timing the batch kernels directly, e.g. the
    /// Criterion bench).
    pub fn probe_stream(&self) -> &[u64] {
        &self.probes
    }

    /// Build the sharded service for one shard count (shares the baseline's sizing:
    /// each shard gets the per-slice bucket budget and `auto_grow`).
    pub fn build_service(&self, shards: usize) -> ShardedCcf {
        let service = ShardedCcf::sized_for_entries(
            VariantKind::Chained,
            filter_params(self.rows.len(), self.shard_seed),
            shards,
            self.rows.len(),
            0.8,
        );
        let rows: Vec<(u64, &[u64])> = self
            .rows
            .iter()
            .map(|r| (r.key, r.attrs.as_slice()))
            .collect();
        let outcomes = service.insert_batch(&rows);
        assert!(
            outcomes.iter().all(|o| o.is_ok()),
            "auto-grow shards must absorb the whole stream"
        );
        service
    }

    /// Measure one (service × threads × batch) cell. The service is mutated only in
    /// its thread cap; pass the value returned by [`Self::build_service`].
    pub fn run_cell(
        &self,
        service: &mut ShardedCcf,
        threads: usize,
        batch: usize,
    ) -> ShardedThroughputReport {
        service.set_threads(threads);
        let batch = batch.max(1);
        let pred = Predicate::any(2).and_eq(0, 3);

        // Baseline: single filter, single thread, same batch boundaries.
        let start = Instant::now();
        let mut baseline_results = Vec::with_capacity(self.probes.len());
        for chunk in self.probes.chunks(batch) {
            baseline_results.extend(self.baseline.contains_key_batch(chunk));
        }
        let baseline_secs = start.elapsed().as_secs_f64();

        // Sharded key-only path.
        let start = Instant::now();
        let mut sharded_results = Vec::with_capacity(self.probes.len());
        for chunk in self.probes.chunks(batch) {
            sharded_results.extend(service.contains_key_batch(chunk));
        }
        let sharded_secs = start.elapsed().as_secs_f64();

        // Sharded predicate path (same batches, CCF query semantics).
        let start = Instant::now();
        let mut query_hits = 0usize;
        for chunk in self.probes.chunks(batch) {
            query_hits += service
                .query_batch(chunk, &pred)
                .iter()
                .filter(|&&h| h)
                .count();
        }
        let sharded_query_secs = start.elapsed().as_secs_f64();
        // The predicate path can only shrink the hit set.
        let hits = sharded_results.iter().filter(|&&h| h).count();
        assert!(
            query_hits <= hits,
            "predicate probes exceeded key-only hits"
        );

        // Determinism contract: parallel batches == sequential per-key loop.
        let identical = self
            .probes
            .iter()
            .zip(&sharded_results)
            .all(|(&k, &hit)| service.contains_key(k) == hit);

        ShardedThroughputReport {
            workload: self.workload,
            shards: service.num_shards(),
            threads: service.threads(),
            batch,
            probes: self.probes.len(),
            baseline_secs,
            sharded_secs,
            sharded_query_secs,
            identical,
            hits,
        }
    }
}

/// Results of one full sweep: the throughput cells plus the per-shard-count
/// [`ccf_shard::ShardStats`] of the services the cells were measured on.
pub struct ShardedSweep {
    /// One report per (shards × threads × batch) cell, best-of-`runs` each.
    pub reports: Vec<ShardedThroughputReport>,
    /// `(shard_count, stats)` for each service built by the sweep.
    pub stats: Vec<(usize, ccf_shard::ShardStats)>,
}

/// Sweep shard count × thread count × batch size over a prebuilt experiment. Each
/// shard-count service is built exactly once and reused across every thread/batch
/// cell; each cell is timed `runs` times and the fastest sharded measurement kept
/// (same data every time, so timings are comparable and the bit-identity and
/// hit-count invariants are asserted on every candidate run, not just survivors).
pub fn sharded_throughput_sweep(
    experiment: &ShardedProbeExperiment,
    shard_counts: &[usize],
    thread_counts: &[usize],
    batch_sizes: &[usize],
    runs: usize,
) -> ShardedSweep {
    let runs = runs.max(1);
    let mut reports = Vec::new();
    let mut stats = Vec::new();
    for &shards in shard_counts {
        let shards = shards.max(1);
        let mut service = experiment.build_service(shards);
        for &threads in thread_counts {
            // The thread cap clamps to the shard count, so cells with more threads
            // than shards would duplicate the threads == shards cell.
            if threads > shards {
                continue;
            }
            for &batch in batch_sizes {
                let mut best = experiment.run_cell(&mut service, threads, batch);
                assert!(best.identical, "sharded results diverged from reference");
                for _ in 1..runs {
                    let candidate = experiment.run_cell(&mut service, threads, batch);
                    assert!(candidate.identical);
                    assert_eq!(
                        candidate.hits, best.hits,
                        "same data must reproduce the same hits"
                    );
                    if candidate.sharded_throughput() > best.sharded_throughput() {
                        best = candidate;
                    }
                }
                reports.push(best);
            }
        }
        stats.push((shards, service.stats()));
    }
    ShardedSweep { reports, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_experiment_is_bit_identical_across_configs() {
        let experiment = ShardedProbeExperiment::new(ProbeWorkload::Zipf, 2000, 6000, 7);
        for shards in [1, 4] {
            let mut service = experiment.build_service(shards);
            for threads in [1, 4] {
                let report = experiment.run_cell(&mut service, threads, 512);
                assert!(report.identical, "{shards} shards / {threads} threads");
                assert_eq!(report.probes, 6000);
                assert!(report.hits > 0, "hot Zipf ranks must hit inserted keys");
            }
        }
    }

    #[test]
    fn multiset_experiment_is_bit_identical_and_half_hits() {
        let experiment = ShardedProbeExperiment::new(ProbeWorkload::Multiset, 3000, 4000, 9);
        let mut service = experiment.build_service(3);
        let report = experiment.run_cell(&mut service, 2, 1000);
        assert!(report.identical);
        // Even probe indices are inserted keys, so at least half must hit.
        assert!(report.hits >= 2000, "hits {} < 2000", report.hits);
    }

    #[test]
    fn sweep_covers_the_grid() {
        let experiment = ShardedProbeExperiment::new(ProbeWorkload::Zipf, 500, 1000, 11);
        let sweep = sharded_throughput_sweep(&experiment, &[1, 2], &[1, 2], &[64, 256], 2);
        // shards=1 keeps only threads=1 (2 batch cells); shards=2 keeps both thread
        // counts (4 cells).
        assert_eq!(sweep.reports.len(), 2 + 4);
        assert!(sweep.reports.iter().all(|r| r.identical));
        // Same service, same probes: hit counts must agree across every cell of a
        // shard count.
        let reports = &sweep.reports;
        assert!(reports[..2].iter().all(|r| r.hits == reports[0].hits));
        assert!(reports[2..].iter().all(|r| r.hits == reports[2].hits));
        // One stats snapshot per shard count, with every row inserted.
        assert_eq!(sweep.stats.len(), 2);
        assert!(sweep
            .stats
            .iter()
            .all(|(_, s)| s.occupied_entries() > 0 && s.load_imbalance() >= 1.0));
    }

    #[test]
    fn tiny_scales_do_not_panic() {
        // The smoke harness runs the binary with --rows 2.
        let experiment = ShardedProbeExperiment::new(ProbeWorkload::Multiset, 1, 4, 5);
        let sweep = sharded_throughput_sweep(&experiment, &[1, 2], &[1], &[1], 1);
        assert!(sweep.reports.iter().all(|r| r.identical));
    }
}
