//! Figure 7: per-instance reduction factors for large and small CCFs against the
//! *Exact Semijoin After Binning* baseline — isolating how much of the gap in Figure 6
//! is explained by the 16-bin `production_year` binning rather than by sketching error.
//!
//! Usage: `cargo run --release -p ccf-bench --bin figure7 [--scale N] [--seed N]`

use ccf_bench::joblight_experiments::{evaluate_config, figure6_configs, JobLightContext};
use ccf_bench::report::{f3, header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 256);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "Figure 7 — reduction factors vs the exact semijoin AFTER binning production_year",
        &[("scale", format!("1/{scale}")), ("seed", seed.to_string())],
    );
    let ctx = JobLightContext::generate(scale, seed);

    for (panel, large) in [("large filters", true), ("small filters", false)] {
        println!("== {panel} ==");
        let mut table = TextTable::new([
            "variant",
            "aggregate RF",
            "exact RF",
            "exact-after-binning RF",
            "FPR vs exact",
            "FPR vs binned",
        ]);
        for (label, cfg) in figure6_configs(large) {
            let res = evaluate_config(&ctx, label, cfg);
            table.row([
                label.to_string(),
                f3(res.summary.rf_ccf),
                f3(res.summary.rf_exact),
                f3(res.summary.rf_exact_binned),
                f3(res.summary.fpr_vs_exact),
                f3(res.summary.fpr_vs_binned),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "Paper shape: measured against the after-binning baseline, the CCFs' apparent FPR\n\
         drops substantially — roughly half of the gap to the exact semijoin in Figure 6 is\n\
         binning error, not sketching error (§10.6)."
    );
}
