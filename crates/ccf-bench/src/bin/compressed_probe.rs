//! Packed vs semisort storage backend comparison: space and probe throughput.
//!
//! Usage: `cargo run --release -p ccf-bench --bin compressed_probe
//! [--rows N] [--runs N] [--seed N]`
//!
//! Builds the same cuckoo filter twice — once on the bit-packed lane store, once on
//! the semisort-compressed store (§4.2: sorted 4-bit prefixes shared per bucket) —
//! feeds both the identical key stream, and sweeps the working set from
//! cache-resident to (at the default `--rows`) DRAM-resident. At every size the run
//! asserts the two backends are *behaviorally* bit-identical: every insert outcome
//! matches and every batched membership answer matches. The tables then report what
//! the compression buys (stored bits per slot via `heap_bytes()`, 1.0 bit saved at
//! b = 4) and what it costs (batched `contains` throughput relative to packed).

use std::time::Instant;

use ccf_bench::report::{header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_cuckoo::{CuckooFilter, CuckooFilterParams, StorageKind};

/// Build a filter of `kind` storage sized for `n` keys and insert `keys`, panicking
/// on any failed insert (for_capacity sizing leaves headroom, so a failure means the
/// backends could silently diverge).
fn build(kind: StorageKind, n: usize, keys: &[u64], seed: u64) -> CuckooFilter {
    let mut f = CuckooFilter::new(CuckooFilterParams::for_capacity(n, 12, seed).with_storage(kind));
    for &k in keys {
        f.insert(k)
            .unwrap_or_else(|e| panic!("{kind} backend failed to insert {k}: {e:?}"));
    }
    f
}

/// One timed batched-`contains` pass: throughput in probes/second plus the answers.
fn timed_contains(f: &CuckooFilter, probes: &[u64]) -> (f64, Vec<bool>) {
    let start = Instant::now();
    let answers = f.contains_batch(probes);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (probes.len() as f64 / secs, answers)
}

/// Best-of-`runs` throughput for both backends, with the packed and semisort passes
/// *interleaved* rep by rep so scheduler noise on a shared box lands on both sides
/// of the ratio instead of tanking whichever backend owned the noisy window.
/// Returns `(packed_best, semisort_best, packed_answers, semisort_answers)`.
fn bench_pair(
    packed: &CuckooFilter,
    semisort: &CuckooFilter,
    probes: &[u64],
    runs: usize,
) -> (f64, f64, Vec<bool>, Vec<bool>) {
    let (mut packed_best, mut semisort_best) = (0.0f64, 0.0f64);
    let (mut packed_answers, mut semisort_answers) = (Vec::new(), Vec::new());
    for _ in 0..runs {
        let (tp, a) = timed_contains(packed, probes);
        packed_best = packed_best.max(tp);
        packed_answers = a;
        let (tp, a) = timed_contains(semisort, probes);
        semisort_best = semisort_best.max(tp);
        semisort_answers = a;
    }
    (packed_best, semisort_best, packed_answers, semisort_answers)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows: usize = arg_value(&args, "--rows", 250_000).max(1);
    let runs: usize = arg_value(&args, "--runs", 3).max(1);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);
    let probes_len = 4 * rows;

    header(
        "Semisort-compressed buckets vs packed lanes (b = 4)",
        &[
            ("keys (sized-for n)", rows.to_string()),
            ("probes (half hits)", probes_len.to_string()),
            ("runs (best-of)", runs.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let mut space = TextTable::new([
        "filter keys",
        "packed bits/slot",
        "semisort bits/slot",
        "saved",
    ]);
    let mut speed = TextTable::new(["filter keys", "packed M/s", "semisort M/s", "ratio"]);

    let mut worst_ratio = f64::INFINITY;
    for factor in [16usize, 4, 1] {
        let n = (rows / factor).max(1);
        let keys: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed)
            .collect();
        // Half present keys, half absent material, interleaved.
        let probes: Vec<u64> = (0..probes_len as u64)
            .map(|i| {
                if i % 2 == 0 {
                    keys[(i as usize / 2) % keys.len()]
                } else {
                    i.wrapping_mul(0xA24B_AED4_963E_E407)
                }
            })
            .collect();

        let packed = build(StorageKind::Packed, n, &keys, seed);
        let semisort = build(StorageKind::Semisort, n, &keys, seed);
        assert_eq!(
            packed.len(),
            semisort.len(),
            "n={n}: backends absorbed different key counts"
        );

        let (packed_tp, semisort_tp, packed_answers, semisort_answers) =
            bench_pair(&packed, &semisort, &probes, runs);
        assert_eq!(
            packed_answers, semisort_answers,
            "n={n}: batched contains answers diverged between backends"
        );

        let slots = |f: &CuckooFilter| f.num_buckets() * f.entries_per_bucket();
        let bits_per_slot =
            |f: &CuckooFilter| f.occupancy().heap_bytes as f64 * 8.0 / slots(f) as f64;
        let (pb, sb) = (bits_per_slot(&packed), bits_per_slot(&semisort));
        // The semisort store carries one fixed pad word; below ~128 buckets (smoke
        // scale) it isn't amortized and the bits/slot comparison is meaningless.
        if semisort.num_buckets() >= 128 {
            assert!(
                pb - sb >= 0.75,
                "n={n}: semisort saves only {:.2} bits/slot (need >= 0.75)",
                pb - sb
            );
        }
        space.row([
            format!("{n}"),
            format!("{pb:.2}"),
            format!("{sb:.2}"),
            format!("{:.2} bits/slot", pb - sb),
        ]);

        let ratio = semisort_tp / packed_tp;
        worst_ratio = worst_ratio.min(ratio);
        speed.row([
            format!("{n}"),
            format!("{:.1}", packed_tp / 1e6),
            format!("{:.1}", semisort_tp / 1e6),
            format!("{ratio:.2}x"),
        ]);
    }

    println!("{}", space.render());
    println!();
    println!("{}", speed.render());
    println!();
    // Throughput is only meaningful at real workload sizes; smoke runs (tiny --rows)
    // are pure timer noise, so the 25 % envelope is enforced on full-scale runs only.
    if probes_len >= 1_000_000 {
        assert!(
            worst_ratio >= 0.75,
            "semisort batched contains fell to {worst_ratio:.2}x of packed (need >= 0.75x)"
        );
    }
    println!(
        "Contracts verified this run: insert outcomes and batched membership answers\n\
         bit-identical between backends at every size; semisort stores >= 0.75 fewer\n\
         bits per slot than packed at b = 4."
    );
}
