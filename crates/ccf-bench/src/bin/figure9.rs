//! Figure 9: reduction factor by the number of joins in the query — the multiplicative
//! compounding of CCF benefits as more filters apply to a scan.
//!
//! Usage: `cargo run --release -p ccf-bench --bin figure9 [--scale N] [--seed N]`

use ccf_bench::joblight_experiments::{evaluate_config, figure9_rows, JobLightContext};
use ccf_bench::report::{f3, header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_core::sizing::VariantKind;
use ccf_join::filters::FilterConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 256);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "Figure 9 — reduction factor by number of joins",
        &[
            ("scale", format!("1/{scale}")),
            ("seed", seed.to_string()),
            ("filter", "Chained CCF, small configuration".to_string()),
        ],
    );
    let ctx = JobLightContext::generate(scale, seed);
    let results = evaluate_config(
        &ctx,
        "Chained CCF (small)",
        FilterConfig::small(VariantKind::Chained),
    );

    let mut table = TextTable::new([
        "number of joins",
        "instances",
        "optimal RF",
        "RF with CCF",
        "RF no predicate (cuckoo filter)",
    ]);
    for row in figure9_rows(&results) {
        table.row([
            row.num_joins.to_string(),
            row.instances.to_string(),
            f3(row.rf_optimal),
            f3(row.rf_ccf),
            f3(row.rf_no_predicate),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper shape: reduction factors shrink (improve) as more joins — and therefore more\n\
         CCFs — apply to each scan; the CCF curve tracks the optimal curve while the\n\
         no-predicate baseline improves far more slowly."
    );
}
