//! Table 1: supported queries and sizing for the different conditional cuckoo filters,
//! with the entry bounds verified empirically against the synthetic IMDB tables.
//!
//! Usage: `cargo run --release -p ccf-bench --bin table1 [--scale N] [--seed N]`

use ccf_bench::report::{header, TextTable};
use ccf_bench::sizing_experiments::{entries_point, table1_rows};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_core::sizing::VariantKind;
use ccf_workloads::imdb::{SyntheticImdb, TableId};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 512);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "Table 1 — supported queries and sizing per filter variant",
        &[("scale", format!("1/{scale}")), ("seed", seed.to_string())],
    );

    let check = |b: bool| if b { "yes" } else { "no" };
    let mut taxonomy = TextTable::new([
        "filter",
        "key query",
        "key+predicate query",
        "predicate query",
        "# non-empty entries (upper bound)",
    ]);
    for row in table1_rows() {
        taxonomy.row([
            row.filter.to_string(),
            check(row.key_queries).to_string(),
            check(row.key_predicate_queries).to_string(),
            check(row.predicate_queries).to_string(),
            row.entry_bound.to_string(),
        ]);
    }
    println!("{}", taxonomy.render());

    // Empirical verification of the entry bounds on one heavily duplicated table.
    let db = SyntheticImdb::generate(scale, seed);
    println!("entry bounds measured on movie_keyword (the most duplicated table):");
    let mut measured = TextTable::new(["variant", "predicted (bound)", "actual entries"]);
    for variant in [VariantKind::Bloom, VariantKind::Mixed, VariantKind::Chained] {
        let p = entries_point(&db, TableId::MovieKeyword, variant, seed);
        measured.row([
            format!("{variant:?}"),
            p.predicted.to_string(),
            p.actual.to_string(),
        ]);
    }
    println!("{}", measured.render());
}
