//! Table 2: summary of the tables and predicate columns of the (synthetic) JOB-light
//! workload — row counts and column cardinalities, next to the paper's values for the
//! real IMDB snapshot.
//!
//! Usage: `cargo run --release -p ccf-bench --bin table2 [--scale N] [--seed N]`

use ccf_bench::joblight_experiments::table2_rows;
use ccf_bench::report::{header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_workloads::imdb::{spec_of, SyntheticImdb, TableId};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 256);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "Table 2 — tables and predicates of the JOB-light workload (synthetic IMDB)",
        &[("scale", format!("1/{scale}")), ("seed", seed.to_string())],
    );
    let db = SyntheticImdb::generate(scale, seed);

    let mut table = TextTable::new([
        "table",
        "rows (synthetic)",
        "rows (paper, full IMDB)",
        "predicate column",
        "cardinality (synthetic)",
        "cardinality (paper)",
    ]);
    for row in table2_rows(&db) {
        let full_rows = TableId::ALL
            .iter()
            .find(|id| id.name() == row.table)
            .map(|id| spec_of(*id).full_rows)
            .unwrap_or(0);
        table.row([
            row.table.to_string(),
            row.rows.to_string(),
            full_rows.to_string(),
            row.column.to_string(),
            row.cardinality.to_string(),
            row.paper_cardinality.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Synthetic row counts are the paper's divided by the scale factor; cardinalities of\n\
         low-cardinality columns match exactly, high-cardinality columns are capped by the\n\
         (smaller) number of synthetic rows."
    );
}
