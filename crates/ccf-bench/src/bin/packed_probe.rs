//! Packed-layout probe-kernel experiment: throughput of the bit-packed contiguous
//! bucket store and the hash→prefetch→probe batch driver, across working-set sizes.
//!
//! Usage: `cargo run --release -p ccf-bench --bin packed_probe
//! [--rows N] [--runs N] [--seed N]`
//!
//! The first table reruns the per-key vs batched comparison of `growth_batch` on the
//! packed layout (cuckoo `contains` and chained-CCF predicate `query`); EXPERIMENTS.md
//! records these numbers against the ones measured on the pre-packing word-sized
//! layout, which is the before/after evidence for the storage refactor. The second
//! table sweeps the filter size from cache-resident to DRAM-resident at a fixed probe
//! count, where the prefetch pass's overlap of cache-line fills is expected to matter
//! most. Every run asserts the batched results are bit-identical to the per-key loop.

use ccf_bench::growth_experiments::{ccf_probe_comparison, cuckoo_probe_comparison};
use ccf_bench::report::{header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_cuckoo::{CuckooFilter, CuckooFilterParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows: usize = arg_value(&args, "--rows", 250_000);
    let runs: usize = arg_value(&args, "--runs", 3).max(1);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);
    let rows = rows.max(1);
    let probes = 4 * rows;

    header(
        "Packed buckets — SWAR probe kernel throughput",
        &[
            ("keys (sized-for n)", rows.to_string()),
            ("probes (half hits)", probes.to_string()),
            ("runs (best-of)", runs.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let mut table = TextTable::new(["filter", "probes", "per-key M/s", "batched M/s", "speedup"]);
    // Best-of-N to damp scheduler noise; every run still checks bit-identity.
    let cuckoo = (0..runs)
        .map(|r| cuckoo_probe_comparison(rows, probes, seed ^ r as u64))
        .max_by(|a, b| a.batched_throughput().total_cmp(&b.batched_throughput()))
        .expect("at least one run");
    assert!(
        cuckoo.identical,
        "cuckoo: batched results are not bit-identical to the per-key loop"
    );
    table.row([
        "cuckoo contains".to_string(),
        format!("{}", cuckoo.probes),
        format!("{:.1}", cuckoo.per_key_throughput() / 1e6),
        format!("{:.1}", cuckoo.batched_throughput() / 1e6),
        format!("{:.2}x", cuckoo.speedup()),
    ]);
    let ccf = (0..runs)
        .map(|r| ccf_probe_comparison(rows, probes, seed ^ r as u64))
        .max_by(|a, b| a.batched_throughput().total_cmp(&b.batched_throughput()))
        .expect("at least one run");
    assert!(
        ccf.identical,
        "chained ccf: batched results are not bit-identical to the per-key loop"
    );
    table.row([
        "chained ccf query".to_string(),
        format!("{}", ccf.probes),
        format!("{:.1}", ccf.per_key_throughput() / 1e6),
        format!("{:.1}", ccf.batched_throughput() / 1e6),
        format!("{:.2}x", ccf.speedup()),
    ]);
    println!("{}", table.render());
    println!();

    // Size sweep: same probe volume against filters from cache-resident to (at the
    // default --rows) DRAM-resident, ~95 % load each. The batched/per-key gap is the
    // prefetch pass's contribution, which should widen as the store outgrows cache.
    let mut sweep = TextTable::new([
        "filter keys",
        "store KiB",
        "per-key M/s",
        "batched M/s",
        "speedup",
    ]);
    for factor in [16usize, 4, 1] {
        let n = (rows / factor).max(1);
        let best = (0..runs)
            .map(|r| cuckoo_probe_comparison(n, probes, seed ^ (0xA0 + r as u64)))
            .max_by(|a, b| a.batched_throughput().total_cmp(&b.batched_throughput()))
            .expect("at least one run");
        assert!(best.identical, "size sweep n={n}: batch not bit-identical");
        let store_kib = CuckooFilter::new(CuckooFilterParams::for_capacity(n, 12, seed))
            .num_buckets()
            * 8 // one 64-bit word per b=4 bucket
            / 1024;
        sweep.row([
            format!("{n}"),
            format!("{store_kib}"),
            format!("{:.1}", best.per_key_throughput() / 1e6),
            format!("{:.1}", best.batched_throughput() / 1e6),
            format!("{:.2}x", best.speedup()),
        ]);
    }
    println!("{}", sweep.render());
    println!();
    println!(
        "Contracts verified this run: every batched probe stream bit-identical to its\n\
         per-key loop, at every filter size."
    );
}
