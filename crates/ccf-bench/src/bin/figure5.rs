//! Figure 5: bit efficiency (eq. 8) of the chained CCF as a function of the fill level,
//! for several settings of d = maxDupe, on constant and Zipf duplicate distributions.
//!
//! Usage: `cargo run --release -p ccf-bench --bin figure5 [--seed N]`

use ccf_bench::multiset_experiments::{bit_efficiency_point_with, StreamKind};
use ccf_bench::report::{f3, header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_telemetry::Telemetry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);
    let telemetry = Telemetry::enabled();

    header(
        "Figure 5 — bit efficiency vs fill, by maxDupe (d)",
        &[
            (
                "efficiency",
                "size_bits / (n · log2(1/FPR)), eq. 8".to_string(),
            ),
            (
                "reference",
                "Bloom filter ≈ 1.44; information-theoretic optimum = 1".to_string(),
            ),
            ("seed", seed.to_string()),
        ],
    );

    let fills = [0.25f64, 0.5, 0.75, 0.9];
    for stream in [StreamKind::Constant, StreamKind::Zipf] {
        println!(
            "-- {} duplicates (avg 8 per key) --",
            match stream {
                StreamKind::Constant => "constant",
                StreamKind::Zipf => "zipf",
            }
        );
        let mut table = TextTable::new([
            "maxDupe d",
            "target fill",
            "achieved fill %",
            "FPR",
            "bit efficiency",
        ]);
        for d in [2usize, 4, 6, 8, 10] {
            for &fill in &fills {
                let p = bit_efficiency_point_with(stream, 8.0, d, fill, 1 << 11, seed, &telemetry);
                table.row([
                    d.to_string(),
                    format!("{:.0}%", fill * 100.0),
                    format!("{:.1}", p.fill_pct),
                    f3(p.fpr),
                    f3(p.bit_efficiency),
                ]);
            }
        }
        println!("{}", table.render());
    }
    println!(
        "Paper shape: efficiency improves (decreases) as fill grows; small d settings reach the\n\
         best efficiency (the paper reports ≈1.9 for an optimized chained filter), and very low\n\
         fill wastes bits regardless of d."
    );
    println!("--- telemetry (aggregated across the whole sweep) ---");
    print!("{}", telemetry.render_table());
}
