//! §10.6 aggregate results: overall reduction factors of the CCF, the cuckoo-filter
//! baseline, the exact semijoin and the exact semijoin after binning, plus the CCF FPR
//! against both exact baselines.
//!
//! The paper reports (small chained CCFs): CCF ≈ 0.28, cuckoo filter ≈ 0.68, optimal
//! 0.20, optimal after binning 0.24; the largest chained CCF reaches an FPR of 0.8 %
//! against the binned semijoin and 6.1 % including binning error.
//!
//! Usage: `cargo run --release -p ccf-bench --bin aggregate [--scale N] [--seed N]`

use ccf_bench::joblight_experiments::{evaluate_config, JobLightContext};
use ccf_bench::report::{f3, header, mb, pct, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_core::sizing::VariantKind;
use ccf_join::filters::FilterConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 256);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "§10.6 — aggregate reduction factors and FPRs over the JOB-light workload",
        &[("scale", format!("1/{scale}")), ("seed", seed.to_string())],
    );
    let ctx = JobLightContext::generate(scale, seed);

    let configs = [
        (
            "Chained CCF (small)",
            FilterConfig::small(VariantKind::Chained),
        ),
        (
            "Chained CCF (large)",
            FilterConfig::large(VariantKind::Chained),
        ),
        ("Mixed CCF (small)", FilterConfig::small(VariantKind::Mixed)),
        ("Bloom CCF (small)", FilterConfig::small(VariantKind::Bloom)),
    ];

    let mut table = TextTable::new([
        "configuration",
        "total CCF size",
        "RF (CCF)",
        "RF (cuckoo filter)",
        "RF (optimal)",
        "RF (optimal, binned)",
        "FPR vs exact",
        "FPR vs binned",
    ]);
    for (label, cfg) in configs {
        let res = evaluate_config(&ctx, label, cfg);
        table.row([
            label.to_string(),
            mb(res.total_ccf_bits),
            f3(res.summary.rf_ccf),
            f3(res.summary.rf_key_filter),
            f3(res.summary.rf_exact),
            f3(res.summary.rf_exact_binned),
            pct(res.summary.fpr_vs_exact),
            pct(res.summary.fpr_vs_binned),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper values (full IMDB): CCF ≈ 0.28, cuckoo filter ≈ 0.68, optimal 0.20, optimal after\n\
         binning 0.24; largest chained CCF: FPR 0.8% vs binned baseline, 6.1% including binning.\n\
         Expect the same ordering and rough ratios, not identical absolute numbers: the synthetic\n\
         dataset preserves the statistics of Tables 2–3, not every correlation of the raw IMDB data."
    );
}
