//! Sharded-service throughput experiment (beyond the paper): batch-probe scaling over
//! shard count × thread count × batch size on Zipf and multiset workloads.
//!
//! Usage: `cargo run --release -p ccf-bench --bin sharded_throughput
//! [--rows N] [--probes N] [--runs N] [--seed N]`
//!
//! `--rows` is the number of distinct keys inserted (default 1 000 000; probes default
//! to 4× that). Each workload and each shard-count service is built once; every cell
//! is timed `--runs` times on the same data with the fastest sharded measurement
//! kept, and every run re-verifies the determinism contract — sharded, parallel
//! batch results bit-identical to a sequential per-key loop — aborting loudly on any
//! divergence. The headline cell (4 shards × 4 threads) is additionally required to
//! beat the single-threaded single-filter baseline by ≥ 2× *when the machine has
//! ≥ 4 CPUs*; on smaller machines the sweep still prints the honest (possibly < 1×)
//! ratios so fan-out overhead stays visible, but the speedup assertion would be
//! demanding the physically impossible and is skipped with a note.

use ccf_bench::report::{header, TextTable};
use ccf_bench::sharded_experiments::{
    sharded_throughput_sweep, ProbeWorkload, ShardedProbeExperiment, ShardedSweep,
    ShardedThroughputReport,
};
use ccf_bench::{arg_value, DEFAULT_SEED};

fn render(reports: &[ShardedThroughputReport]) -> TextTable {
    let mut table = TextTable::new([
        "workload",
        "shards",
        "threads",
        "batch",
        "baseline M/s",
        "sharded M/s",
        "query M/s",
        "speedup",
    ]);
    for r in reports {
        assert!(
            r.identical,
            "{} {}x{}: sharded results are not bit-identical to the sequential reference",
            r.workload, r.shards, r.threads
        );
        table.row([
            r.workload.to_string(),
            r.shards.to_string(),
            r.threads.to_string(),
            r.batch.to_string(),
            format!("{:.1}", r.baseline_throughput() / 1e6),
            format!("{:.1}", r.sharded_throughput() / 1e6),
            format!(
                "{:.1}",
                r.probes as f64 / r.sharded_query_secs.max(1e-12) / 1e6
            ),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    table
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows: usize = arg_value(&args, "--rows", 1_000_000);
    let rows = rows.max(1);
    let probes: usize = arg_value(&args, "--probes", 4 * rows);
    let runs: usize = arg_value(&args, "--runs", 2).max(1);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    header(
        "Sharded service — batch-probe throughput, shards x threads x batch",
        &[
            ("keys (distinct)", rows.to_string()),
            ("probes", probes.to_string()),
            ("runs (best-of, per cell)", runs.to_string()),
            ("cpus available", cpus.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let shard_counts = [1usize, 2, 4, 8];
    let thread_counts = [1usize, 2, 4];
    // Two batch regimes: small batches expose per-batch fan-out overhead, large
    // batches amortize it (the regime a batching front end would run).
    let batch_sizes = [4096usize, 65_536];

    let run_workload = |workload: ProbeWorkload| -> ShardedSweep {
        let experiment = ShardedProbeExperiment::new(workload, rows, probes, seed);
        sharded_throughput_sweep(
            &experiment,
            &shard_counts,
            &thread_counts,
            &batch_sizes,
            runs,
        )
    };

    let zipf = run_workload(ProbeWorkload::Zipf);
    println!("{}", render(&zipf.reports).render());
    let multiset = run_workload(ProbeWorkload::Multiset);
    println!("{}", render(&multiset.reports).render());

    // Shard-metric aggregation (ShardStats): balance and growth per shard count, from
    // the very services the Zipf cells were measured on.
    let mut stats_table = TextTable::new([
        "shards",
        "occupied",
        "load",
        "doublings",
        "imbalance",
        "exp. key FPR",
    ]);
    for (shards, stats) in &zipf.stats {
        stats_table.row([
            shards.to_string(),
            stats.occupied_entries().to_string(),
            format!("{:.3}", stats.load_factor()),
            stats.total_doublings().to_string(),
            format!("{:.3}", stats.load_imbalance()),
            format!("{:.2e}", stats.expected_key_fpr()),
        ]);
    }
    println!("{}", stats_table.render());

    // Headline: the best 4-shard / 4-thread cell vs the single-threaded baseline on
    // Zipf (the large-batch regime is the one a batching front end deploys).
    let headline = zipf
        .reports
        .iter()
        .filter(|r| r.shards == 4 && r.threads == 4)
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("sweep covers 4x4");
    println!(
        "Headline (zipf, 4 shards / 4 threads): {:.1} M/s sharded vs {:.1} M/s \
         single-threaded baseline = {:.2}x",
        headline.sharded_throughput() / 1e6,
        headline.baseline_throughput() / 1e6,
        headline.speedup()
    );
    if cpus >= 4 && rows >= 100_000 {
        assert!(
            headline.speedup() >= 2.0,
            "4 shards / 4 threads must reach 2x the single-threaded batch baseline \
             on a >=4-cpu machine (got {:.2}x)",
            headline.speedup()
        );
        println!("Scaling contract verified: >= 2x at 4 shards / 4 threads.");
    } else {
        println!(
            "Scaling assertion skipped: needs >= 4 cpus and >= 100k keys \
             (have {cpus} cpu(s), {rows} keys); ratios above are still honest."
        );
    }
    println!(
        "Contracts verified this run: every cell's sharded batch results were \
         bit-identical to the sequential per-key reference."
    );
}
