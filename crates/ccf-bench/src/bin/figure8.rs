//! Figure 8: overall reduction factor and FPR as a function of the total size of all
//! CCFs, by filter type and attribute size, with the optimal / optimal-after-binning /
//! plain-cuckoo-filter reference lines.
//!
//! Usage: `cargo run --release -p ccf-bench --bin figure8 [--scale N] [--seed N]`

use ccf_bench::joblight_experiments::{evaluate_config, figure8_sweep, JobLightContext};
use ccf_bench::report::{f3, header, pct, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_core::sizing::VariantKind;
use ccf_join::filters::FilterConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 256);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "Figure 8 — overall RF and FPR by filter type and total size",
        &[("scale", format!("1/{scale}")), ("seed", seed.to_string())],
    );
    let ctx = JobLightContext::generate(scale, seed);

    // Reference lines: optimal, optimal after binning, and the plain cuckoo filter,
    // all independent of the sweep (taken from any one evaluation).
    let reference = evaluate_config(&ctx, "reference", FilterConfig::large(VariantKind::Chained));
    println!("reference lines:");
    println!(
        "  optimal (exact semijoin) RF        : {}",
        f3(reference.summary.rf_exact)
    );
    println!(
        "  optimal after binning RF           : {}",
        f3(reference.summary.rf_exact_binned)
    );
    println!(
        "  plain cuckoo filter (no preds) RF  : {}",
        f3(reference.summary.rf_key_filter)
    );
    println!();

    let mut table = TextTable::new([
        "configuration",
        "attr size",
        "total size (MB)",
        "reduction factor",
        "FPR (vs binned exact)",
    ]);
    let mut points = figure8_sweep(&ctx);
    points.sort_by(|a, b| a.total_mb.partial_cmp(&b.total_mb).unwrap());
    for p in &points {
        table.row([
            p.label.clone(),
            p.attr_size.to_string(),
            format!("{:.2}", p.total_mb),
            f3(p.reduction_factor),
            pct(p.fpr),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper shape: CCFs approach the optimal-after-binning reduction factor at a fraction of\n\
         the raw data's size; larger attribute sketches buy more accuracy than larger key\n\
         fingerprints; Bloom CCFs give the smallest sketches but the highest FPR."
    );
}
