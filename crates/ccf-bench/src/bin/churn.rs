//! Sliding-window churn experiment (beyond the paper): sustained insert/delete
//! traffic against filters sized for the window, verifying the churn contracts —
//! zero false negatives for live rows, zero delete misses, exact occupancy
//! accounting, and (for variants whose deletes never refuse) a filter bounded by the
//! window no matter how many rows stream through.
//!
//! Usage: `cargo run --release -p ccf-bench --bin churn
//! [--rows N] [--window N] [--seed N]`
//!
//! `--rows` is the total number of arrivals (default 200 000); `--window` the live-set
//! bound (default rows/8). Two key distributions are replayed per variant: *dispersed*
//! (keyspace 4× the window — about one live row per key) and *hot* (keyspace
//! window/8 — several live rows per key, exercising chains and conversions). The
//! mixed variant's hot run demonstrates the documented trade-off: converted keys
//! refuse deletion with a typed error, so its live set is not bounded — pick the
//! chained variant for hot-key churn.

use ccf_bench::churn_experiments::{churn_experiment, sharded_churn_experiment, ChurnReport};
use ccf_bench::report::{header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_core::VariantKind;

fn churn_row(table: &mut TextTable, name: &str, r: &ChurnReport) {
    assert_eq!(
        r.insert_failures, 0,
        "{name}: sized run saw insert failures"
    );
    // Cross-key fingerprint collisions entangle chained hot keys (see
    // ChainedCcf::delete_row); the casualty rate must stay far below a percent —
    // zero in collision-free runs.
    let casualties = r.delete_misses + r.false_negatives;
    assert!(
        r.collision_casualty_rate() <= 0.005,
        "{name}: collision casualty rate {:.4} is not collision-scale ({r:?})",
        r.collision_casualty_rate()
    );
    if r.delete_refusals == 0 {
        // Leaked entries from collision-missed deletes stay in the filter; the
        // bound accounts for them exactly.
        assert!(
            r.peak_occupied <= r.window + 1 + casualties,
            "{name}: churn was not bounded by the window ({r:?})"
        );
    }
    table.row([
        name.to_string(),
        format!("{}", r.window),
        format!("{}", r.inserts + r.deletes),
        format!("{}", r.delete_refusals),
        format!("{}", casualties),
        format!("{:.2}", r.ops_throughput() / 1e6),
        format!("{}", r.peak_occupied),
        format!("{}", r.final_occupied),
        format!("{:.3}", r.final_load_factor),
        format!("{}", r.growths),
    ]);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows: usize = arg_value(&args, "--rows", 200_000).max(2);
    let window: usize = arg_value(&args, "--window", rows / 8).max(1);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);
    let dispersed = (window as u64 * 4).max(1);
    let hot = (window as u64 / 8).max(1);

    header(
        "Churn — sliding-window insert/delete traffic, bounded-filter contracts",
        &[
            ("arrivals", rows.to_string()),
            ("window (live rows)", window.to_string()),
            ("dispersed keyspace", dispersed.to_string()),
            ("hot keyspace", hot.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let mut table = TextTable::new([
        "filter / keys",
        "window",
        "ops",
        "refused",
        "collisions",
        "ops M/s",
        "peak occ",
        "final occ",
        "final load",
        "doublings",
    ]);
    for (kind, name) in [
        (VariantKind::Plain, "plain"),
        (VariantKind::Chained, "chained"),
        (VariantKind::Mixed, "mixed"),
    ] {
        churn_row(
            &mut table,
            &format!("{name} / dispersed"),
            &churn_experiment(kind, window, rows, dispersed, seed),
        );
    }
    for (kind, name) in [
        (VariantKind::Chained, "chained"),
        (VariantKind::Mixed, "mixed"),
    ] {
        churn_row(
            &mut table,
            &format!("{name} / hot"),
            &churn_experiment(kind, window, rows, hot, seed),
        );
    }
    churn_row(
        &mut table,
        "sharded chained x4 / hot",
        &sharded_churn_experiment(window, rows, hot, 4, seed),
    );
    println!("{}", table.render());

    println!(
        "Contracts verified this run: zero insert failures; filters with zero refused\n\
         deletes stayed within window+1 (+collisions) occupied entries; the collision\n\
         casualty rate (chained hot keys sharing a 12-bit fingerprint — the cuckoo\n\
         deletion caveat, amplified by chains) stayed below 0.5%. Refusals (mixed/hot\n\
         only) are converted Bloom groups reporting DeleteFailure::ConvertedGroup —\n\
         the typed signal to use the chained variant when hot keys must stay deletable."
    );
}
