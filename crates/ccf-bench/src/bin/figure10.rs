//! Figure 10: per-(table, predicate-column) CCF size relative to the raw data it
//! summarizes, for Bloom / Chained / Mixed variants of equal configuration.
//!
//! Usage: `cargo run --release -p ccf-bench --bin figure10 [--scale N] [--seed N]`

use ccf_bench::joblight_experiments::{figure10_overall, figure10_rows, JobLightContext};
use ccf_bench::report::{f3, header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_core::sizing::VariantKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 256);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "Figure 10 — CCF size relative to the raw data, per table and predicate column",
        &[("scale", format!("1/{scale}")), ("seed", seed.to_string())],
    );
    let ctx = JobLightContext::generate(scale, seed);
    let rows = figure10_rows(&ctx.db, seed);

    let mut table = TextTable::new(["table", "column", "Bloom", "Chained", "Mixed"]);
    let mut seen: Vec<(String, &'static str)> = Vec::new();
    for r in &rows {
        let key = (r.table.name().to_string(), r.column);
        if !seen.contains(&key) {
            seen.push(key);
        }
    }
    for (table_name, column) in &seen {
        let get = |variant: VariantKind| {
            rows.iter()
                .find(|r| {
                    r.table.name() == table_name && r.column == *column && r.variant == variant
                })
                .map(|r| f3(r.relative_size))
                .unwrap_or_else(|| "-".to_string())
        };
        table.row([
            table_name.clone(),
            column.to_string(),
            get(VariantKind::Bloom),
            get(VariantKind::Chained),
            get(VariantKind::Mixed),
        ]);
    }
    println!("{}", table.render());
    println!("overall (mean relative size):");
    for variant in [VariantKind::Bloom, VariantKind::Chained, VariantKind::Mixed] {
        println!("  {:?}: {}", variant, f3(figure10_overall(&rows, variant)));
    }
    println!(
        "\nPaper shape: every CCF is a fraction of its raw data; Bloom sketches give the largest\n\
         size reductions on heavily duplicated tables (movie_keyword, movie_info) while chaining\n\
         wins on tables with (nearly) unique keys (title)."
    );
}
