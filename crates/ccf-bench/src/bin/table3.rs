//! Table 3: average and maximum number of distinct duplicate predicate attribute values
//! per join key, measured on the synthetic IMDB dataset next to the paper's values.
//!
//! Usage: `cargo run --release -p ccf-bench --bin table3 [--scale N] [--seed N]`

use ccf_bench::joblight_experiments::table3_rows;
use ccf_bench::report::{f3, header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_workloads::imdb::SyntheticImdb;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 256);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "Table 3 — distinct duplicate predicate values per join key",
        &[("scale", format!("1/{scale}")), ("seed", seed.to_string())],
    );
    let db = SyntheticImdb::generate(scale, seed);

    let mut table = TextTable::new([
        "table",
        "join key",
        "predicate column",
        "avg dupes (synthetic)",
        "avg dupes (paper)",
        "max dupes (synthetic)",
        "max dupes (paper)",
    ]);
    for row in table3_rows(&db) {
        let join_key = if row.table == "title" {
            "id"
        } else {
            "movie_id"
        };
        table.row([
            row.table.to_string(),
            join_key.to_string(),
            row.column.to_string(),
            f3(row.avg_dupes),
            f3(row.paper_avg),
            row.max_dupes.to_string(),
            row.paper_max.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The heavy duplication of movie_keyword.keyword_id and the uniqueness of title's\n\
         columns — the structure that drives the paper's sizing and failure analysis — is\n\
         preserved; absolute maxima shrink with the scale factor."
    );
}
