//! Growth and batched-probe experiment (beyond the paper): per-key vs batched probe
//! throughput, and the cost of inserting to 4× a filter's sized capacity with
//! `auto_grow` doing the doubling.
//!
//! Usage: `cargo run --release -p ccf-bench --bin growth_batch
//! [--rows N] [--runs N] [--seed N]`
//!
//! `--rows` is the number of keys the filters are sized for (default 250 000; probes
//! are 4× that, half hits / half misses). The batched path must return bit-identical
//! results to the per-key loop — the run aborts loudly if it does not — and the growth
//! runs must finish with zero insert failures and zero false negatives.

use ccf_bench::growth_experiments::{
    ccf_growth_experiment, ccf_probe_comparison, cuckoo_growth_experiment, cuckoo_probe_comparison,
    GrowthReport, ProbeComparison,
};
use ccf_bench::report::{header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};

fn probe_row(table: &mut TextTable, name: &str, cmp: &ProbeComparison) {
    assert!(
        cmp.identical,
        "{name}: batched results are not bit-identical to the per-key loop"
    );
    table.row([
        name.to_string(),
        format!("{}", cmp.probes),
        format!("{:.1}", cmp.per_key_throughput() / 1e6),
        format!("{:.1}", cmp.batched_throughput() / 1e6),
        format!("{:.2}x", cmp.speedup()),
    ]);
}

fn growth_row(table: &mut TextTable, name: &str, report: &GrowthReport) {
    assert_eq!(
        report.failures, 0,
        "{name}: auto-grow run saw insert failures"
    );
    assert_eq!(
        report.false_negatives, 0,
        "{name}: auto-grow run produced false negatives"
    );
    table.row([
        name.to_string(),
        format!("{}", report.sized_for),
        format!("{}", report.inserted),
        format!("{}", report.growths),
        format!("{:.1}", report.insert_throughput() / 1e6),
        format!("{:.3}", report.final_load_factor),
    ]);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows: usize = arg_value(&args, "--rows", 250_000);
    let runs: usize = arg_value(&args, "--runs", 3);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);
    let rows = rows.max(1);
    let probes = 4 * rows;

    header(
        "Growth & batch — probe throughput and insert-to-4x-capacity cost",
        &[
            ("keys (sized-for n)", rows.to_string()),
            ("probes (half hits)", probes.to_string()),
            ("runs (best-of)", runs.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let mut probe_table =
        TextTable::new(["filter", "probes", "per-key M/s", "batched M/s", "speedup"]);
    // Best-of-N to damp scheduler noise; every run still checks bit-identity.
    let best = |f: &dyn Fn(u64) -> ProbeComparison| {
        (0..runs.max(1))
            .map(|r| f(seed ^ r as u64))
            .max_by(|a, b| a.batched_throughput().total_cmp(&b.batched_throughput()))
            .expect("at least one run")
    };
    let cuckoo = best(&|s| cuckoo_probe_comparison(rows, probes, s));
    probe_row(&mut probe_table, "cuckoo contains", &cuckoo);
    let ccf = best(&|s| ccf_probe_comparison(rows, probes, s));
    probe_row(&mut probe_table, "chained ccf query", &ccf);
    println!("{}", probe_table.render());

    let mut growth_table = TextTable::new([
        "filter",
        "sized for",
        "inserted",
        "doublings",
        "insert M/s",
        "final load",
    ]);
    growth_row(
        &mut growth_table,
        "cuckoo auto-grow",
        &cuckoo_growth_experiment(rows, 4, seed),
    );
    growth_row(
        &mut growth_table,
        "chained ccf auto-grow",
        &ccf_growth_experiment(rows, 4, seed),
    );
    println!("{}", growth_table.render());

    println!(
        "Contracts verified this run: batched probes bit-identical to per-key loops;\n\
         auto-grow absorbed 4x the sized capacity with zero failures and zero false\n\
         negatives. Growth is a pure fingerprint-driven remap, so no keys were kept."
    );
}
