//! Figure 3: predicted number of filled entries (Table 1 formulas) versus the number
//! actually used, for Bloom / Chained / Mixed CCFs over each synthetic-IMDB table.
//!
//! Usage: `cargo run --release -p ccf-bench --bin figure3 [--scale N] [--seed N]`

use ccf_bench::report::{f3, header, TextTable};
use ccf_bench::sizing_experiments::figure3_points;
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_workloads::imdb::SyntheticImdb;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 256);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "Figure 3 — predicted vs actual filled entries",
        &[("scale", format!("1/{scale}")), ("seed", seed.to_string())],
    );
    let db = SyntheticImdb::generate(scale, seed);

    let mut table = TextTable::new([
        "table",
        "variant",
        "predicted entries",
        "actual entries",
        "relative error",
        "failed rows",
    ]);
    for p in figure3_points(&db, seed) {
        table.row([
            p.table.name().to_string(),
            format!("{:?}", p.variant),
            p.predicted.to_string(),
            p.actual.to_string(),
            f3(p.relative_error()),
            p.failed_rows.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper shape: predictions lie on the diagonal (predicted ≈ actual) for all three\n\
         variants; predictions are slightly conservative where attribute fingerprints collide."
    );
}
