//! Figure 2: the §7 FPR bounds as predictors of the measured FPR, for attribute
//! fingerprint sizes of 4 and 8 bits, split by the component (key / attribute /
//! overall) the false positive is attributed to.
//!
//! Usage: `cargo run --release -p ccf-bench --bin figure2 [--seed N] [--dupes X]`

use ccf_bench::fpr_experiments::{fpr_experiment, FprComponent};
use ccf_bench::report::{f3, header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);
    let dupes: f64 = arg_value(&args, "--dupes", 4.0);

    header(
        "Figure 2 — estimated vs actual FPR (attribute fingerprint CCF)",
        &[
            ("seed", seed.to_string()),
            ("avg duplicates per key", dupes.to_string()),
            ("key fingerprint", "8 bits".to_string()),
        ],
    );

    let mut table = TextTable::new(["attr size", "component", "actual FPR", "estimated FPR"]);
    for attr_bits in [4u32, 8] {
        for point in fpr_experiment(attr_bits, dupes, seed) {
            let component = match point.component {
                FprComponent::DueToKey => "due to key",
                FprComponent::DueToAttribute => "due to attribute",
                FprComponent::Overall => "overall",
            };
            table.row([
                format!("{}", point.attr_bits),
                component.to_string(),
                f3(point.actual),
                f3(point.estimated),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Paper shape: the estimates track the measured FPR closely; at small attribute sizes\n\
         the FPR is dominated by spurious attribute matches, not key-fingerprint matches."
    );
}
