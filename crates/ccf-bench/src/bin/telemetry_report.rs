//! Telemetry exposition report (observability): run a Zipf churn + sharded probe
//! workload with a live registry attached across the stack and dump the rendered
//! exposition — Prometheus-style text plus the compact human table.
//!
//! Usage: `cargo run --release -p ccf-bench --bin telemetry_report
//! [--rows N] [--keys N] [--probes N] [--shards N] [--seed N]`
//!
//! `--rows` is the churn arrival count (default 100 000), `--keys` the distinct keys
//! loaded into the sharded service (default 50 000), `--probes` the Zipf probe count
//! (default 200 000), `--shards` the service shard count (default 4). The exposition
//! includes kick-depth / chain-walk histograms from the churn phase, per-shard op
//! counters, and the service's batch latency/size histograms — the series the
//! ROADMAP's admin endpoint would serve.

use ccf_bench::report::header;
use ccf_bench::telemetry_experiments::{run_telemetry_workload, TelemetryWorkload};
use ccf_bench::{arg_value, DEFAULT_SEED};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows: usize = arg_value(&args, "--rows", 100_000);
    let keys: usize = arg_value(&args, "--keys", 50_000);
    let probes: usize = arg_value(&args, "--probes", 200_000);
    let shards: usize = arg_value(&args, "--shards", 4);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    let workload = TelemetryWorkload::new(rows, keys, probes, shards, seed);
    header(
        "Telemetry — rendered exposition from a Zipf churn + sharded probe workload",
        &[
            ("churn arrivals", workload.rows.to_string()),
            ("sharded keys", workload.shard_keys.to_string()),
            ("probes", workload.probes.to_string()),
            ("shards", workload.shards.to_string()),
            ("seed", workload.seed.to_string()),
        ],
    );

    let telemetry = run_telemetry_workload(&workload);

    println!("--- exposition (Prometheus text format) ---");
    print!("{}", telemetry.render_text());
    println!("--- human summary ---");
    print!("{}", telemetry.render_table());

    let text = telemetry.render_text();
    assert!(
        text.contains("ccf_kick_depth_bucket"),
        "exposition must include the kick-depth histogram"
    );
    assert!(
        text.contains("ccf_shard_batch_latency_ns_bucket"),
        "exposition must include the sharded batch-latency histogram"
    );
    println!(
        "Contracts verified this run: the exposition contains kick-depth and \
         batch-latency histograms populated by a real sharded churn workload."
    );
}
