//! Figure 6 (a–d): per-instance reduction factors on the JOB-light workload for large
//! and small CCFs, against the Exact Semijoin baseline (a, c) and the predicate-blind
//! Cuckoo Filter baseline (b, d).
//!
//! The paper plots all 237 instances; this binary prints the series at a configurable
//! number of quantile rows (instances sorted by the baseline, as on the paper's x-axis)
//! plus the full-series aggregates.
//!
//! Usage: `cargo run --release -p ccf-bench --bin figure6 [--scale N] [--seed N] [--rows N]`

use ccf_bench::joblight_experiments::{evaluate_config, figure6_configs, JobLightContext};
use ccf_bench::report::{f3, header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};

fn print_panel(
    title: &str,
    baseline_name: &str,
    baseline: impl Fn(&ccf_join::InstanceResult) -> f64,
    configs: &[(String, Vec<ccf_join::InstanceResult>)],
    rows: usize,
) {
    println!("-- {title} --");
    // Sort instances by the baseline RF, as on the paper's x-axis, then print evenly
    // spaced quantile rows.
    let mut order: Vec<usize> = (0..configs[0].1.len()).collect();
    order.sort_by(|&a, &b| {
        baseline(&configs[0].1[a])
            .partial_cmp(&baseline(&configs[0].1[b]))
            .unwrap()
    });
    let mut headers = vec!["instance (sorted)".to_string(), baseline_name.to_string()];
    headers.extend(configs.iter().map(|(label, _)| label.clone()));
    let mut table = TextTable::new(headers);
    let n = order.len();
    for qi in 0..rows.min(n) {
        let idx = order[qi * (n - 1) / rows.max(1).min(n - 1).max(1)];
        let mut cells = vec![
            format!("{}", qi * n / rows.max(1)),
            f3(baseline(&configs[0].1[idx])),
        ];
        cells.extend(configs.iter().map(|(_, inst)| f3(inst[idx].rf_ccf())));
        table.row(cells);
    }
    println!("{}", table.render());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u64 = arg_value(&args, "--scale", 256);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);
    let rows: usize = arg_value(&args, "--rows", 12);

    header(
        "Figure 6 — per-instance reduction factors (JOB-light)",
        &[
            ("scale", format!("1/{scale}")),
            ("seed", seed.to_string()),
            ("quantile rows shown", rows.to_string()),
        ],
    );
    let ctx = JobLightContext::generate(scale, seed);

    for (panel, large) in [
        ("large filters (|κ|=12, |α|=8)", true),
        ("small filters (|κ|=7, |α|=4)", false),
    ] {
        let configs: Vec<(String, Vec<ccf_join::InstanceResult>)> = figure6_configs(large)
            .into_iter()
            .map(|(label, cfg)| {
                let res = evaluate_config(&ctx, label, cfg);
                (label.to_string(), res.instances)
            })
            .collect();
        println!("== {panel} ==");
        println!("instances evaluated: {}\n", configs[0].1.len());
        print_panel(
            "vs Exact Semijoin (Figures 6a / 6c)",
            "Exact Semijoin RF",
            |r| r.rf_exact(),
            &configs,
            rows,
        );
        print_panel(
            "vs Cuckoo Filter baseline (Figures 6b / 6d)",
            "Cuckoo Filter RF",
            |r| r.rf_key_filter(),
            &configs,
            rows,
        );
        // Aggregates per variant for this panel.
        let mut agg = TextTable::new(["variant", "aggregate RF", "exact RF", "cuckoo-filter RF"]);
        for (label, instances) in &configs {
            let s = ccf_join::WorkloadSummary::from_instances(instances);
            agg.row([
                label.clone(),
                f3(s.rf_ccf),
                f3(s.rf_exact),
                f3(s.rf_key_filter),
            ]);
        }
        println!("{}", agg.render());
    }
    println!(
        "Paper shape: CCF reduction factors hug the Exact Semijoin curve (slightly above it),\n\
         and sit far below the Cuckoo Filter baseline; small filters show visibly more\n\
         false-positive lift than large ones, Bloom CCFs more than Mixed/Chained."
    );
}
