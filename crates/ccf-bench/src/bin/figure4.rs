//! Figure 4: load factor at the first failed insertion versus the average number of
//! duplicates per key — chained vs plain filters, constant vs Zipf-Mandelbrot
//! duplicate distributions, bucket sizes b ∈ {4, 6, 8}.
//!
//! Usage: `cargo run --release -p ccf-bench --bin figure4 [--runs N] [--buckets N] [--seed N]`
//! (`--runs 20` reproduces the paper's averaging; the default of 5 keeps the run short.)

use ccf_bench::multiset_experiments::{
    averaged_load_factor_with, MultisetConfig, MultisetFilter, StreamKind,
};
use ccf_bench::report::{f3, header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_telemetry::Telemetry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let runs: usize = arg_value(&args, "--runs", 5);
    let num_buckets: usize = arg_value(&args, "--buckets", 1 << 10);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);
    let telemetry = Telemetry::enabled();

    header(
        "Figure 4 — load factor at first failed insertion",
        &[
            ("runs per point", runs.to_string()),
            ("buckets", num_buckets.to_string()),
            ("d (max dupes per pair)", "3".to_string()),
            ("Lmax", "uncapped".to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let duplicate_settings = [1.0f64, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0];
    for stream in [StreamKind::Constant, StreamKind::Zipf] {
        for entries_per_bucket in [4usize, 6, 8] {
            println!(
                "-- {} duplicates, b = {entries_per_bucket} --",
                match stream {
                    StreamKind::Constant => "constant",
                    StreamKind::Zipf => "zipf",
                }
            );
            let mut table =
                TextTable::new(["avg dupes", "chained load factor", "plain load factor"]);
            for &avg in &duplicate_settings {
                let run = |filter| {
                    averaged_load_factor_with(
                        &MultisetConfig {
                            filter,
                            stream,
                            avg_duplicates: avg,
                            entries_per_bucket,
                            num_buckets,
                            max_dupes: 3,
                            seed,
                        },
                        runs,
                        &telemetry,
                    )
                };
                let chained = run(MultisetFilter::Chained);
                let plain = run(MultisetFilter::Plain);
                table.row([
                    format!("{avg:.0}"),
                    f3(chained.load_factor),
                    f3(plain.load_factor),
                ]);
            }
            println!("{}", table.render());
        }
    }
    println!(
        "Paper shape: the chained filter holds a roughly constant load factor (≈0.75 at b=4,\n\
         ≈0.87 at b=6) as duplicates grow, while the plain filter collapses — almost\n\
         immediately under the Zipf-Mandelbrot distribution."
    );
    println!("--- telemetry (aggregated across the whole sweep) ---");
    print!("{}", telemetry.render_table());
}
