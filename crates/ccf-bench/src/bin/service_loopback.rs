//! Service-layer loopback experiment (beyond the paper): what does the wire cost?
//!
//! Usage: `cargo run --release -p ccf-bench --bin service_loopback
//! [--rows N] [--probes N] [--batch N] [--seed N]`
//!
//! Starts an in-process `ccf-service` daemon on an ephemeral loopback port, drives
//! batched inserts / predicate queries / membership probes / deletes through the
//! real TCP client, and reports throughput plus batch-latency quantiles from the
//! telemetry histograms. Every response stream folds into a golden digest; the run
//! then snapshots the tenant, restarts the daemon from the snapshot directory, and
//! re-drives the read-only probes — asserting the warm-reloaded daemon answers with
//! the *same* digest, the end-to-end losslessness contract the service tests pin.

use ccf_bench::report::{header, TextTable};
use ccf_bench::{arg_value, DEFAULT_SEED};
use ccf_core::Predicate;
use ccf_service::{daemon, Client, DaemonConfig, StreamDigest, TenantSpec};
use ccf_telemetry::{buckets, HistogramSnapshot, Telemetry};
use std::time::Instant;

const TENANT: u32 = 1;

/// Upper-bound quantile estimate from a bucketed histogram.
fn quantile(h: &HistogramSnapshot, q: f64) -> u64 {
    let total = h.count();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * q).ceil() as u64;
    let mut seen = 0;
    for (i, &c) in h.counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            return h.bounds.get(i).copied().unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

fn start(seed: u64, dir: &std::path::Path) -> daemon::RunningDaemon {
    let spec = TenantSpec::parse(&format!(
        "id={TENANT},variant=mixed,shards=4,buckets=1024,attrs=2,seed={seed}"
    ))
    .expect("valid tenant spec");
    daemon::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        tenants: vec![spec],
        snapshot_dir: Some(dir.to_path_buf()),
    })
    .expect("daemon starts")
}

fn probe_digest(client: &mut Client, keys: &[u64], pred: &Predicate, batch: usize) -> u64 {
    let mut digest = StreamDigest::new();
    for chunk in keys.chunks(batch) {
        digest.update_bools(&client.query(TENANT, chunk, pred).expect("query"));
        digest.update_bools(&client.contains(TENANT, chunk).expect("contains"));
    }
    digest.value()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rows: u64 = arg_value(&args, "--rows", 100_000u64).max(1);
    let probes: u64 = arg_value(&args, "--probes", 2 * rows);
    let batch: usize = arg_value(&args, "--batch", 512usize).max(1);
    let seed: u64 = arg_value(&args, "--seed", DEFAULT_SEED);

    header(
        "Service layer — loopback TCP daemon, batched wire ops",
        &[
            ("rows inserted", rows.to_string()),
            ("probe keys", probes.to_string()),
            ("batch size", batch.to_string()),
            ("seed", seed.to_string()),
        ],
    );

    let dir = std::env::temp_dir().join(format!("ccf-service-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let running = start(seed, &dir);
    let mut client = Client::connect(running.local_addr()).expect("connect");

    let telemetry = Telemetry::enabled();
    let lat = |op: &str| {
        telemetry.histogram(
            "loopback_batch_latency_ns",
            "Wall-clock nanoseconds per wire batch",
            &buckets::latency_ns(),
            &[("op", op)],
        )
    };

    let mix = |k: u64| k.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    let data: Vec<(u64, Vec<u64>)> = (0..rows).map(|i| (mix(i), vec![i % 7, i % 11])).collect();
    let keys: Vec<u64> = (0..probes)
        .map(|i| {
            if i % 2 == 0 {
                mix(i / 2 % rows)
            } else {
                u64::MAX - i
            }
        })
        .collect();
    let pred = Predicate::any(2).and_eq(0, 3);

    let mut digest = StreamDigest::new();
    let insert_lat = lat("insert");
    let t0 = Instant::now();
    for chunk in data.chunks(batch) {
        let timer = insert_lat.start_timer();
        digest.update(&client.insert_rows(TENANT, chunk).expect("insert"));
        timer.observe_duration();
    }
    let insert_secs = t0.elapsed().as_secs_f64();

    let query_lat = lat("query");
    let t1 = Instant::now();
    for chunk in keys.chunks(batch) {
        let timer = query_lat.start_timer();
        digest.update_bools(&client.query(TENANT, chunk, &pred).expect("query"));
        timer.observe_duration();
    }
    let query_secs = t1.elapsed().as_secs_f64();

    let contains_lat = lat("contains");
    let t2 = Instant::now();
    for chunk in keys.chunks(batch) {
        let timer = contains_lat.start_timer();
        digest.update_bools(&client.contains(TENANT, chunk).expect("contains"));
        timer.observe_duration();
    }
    let contains_secs = t2.elapsed().as_secs_f64();

    let mut table = TextTable::new(["op", "items", "M items/s", "p50 ns/batch", "p99 ns/batch"]);
    let snap = telemetry.snapshot();
    for (op, items, secs) in [
        ("insert", rows, insert_secs),
        ("query", probes, query_secs),
        ("contains", probes, contains_secs),
    ] {
        let h = snap
            .histogram("loopback_batch_latency_ns", &[("op", op)])
            .expect("histogram recorded");
        table.row([
            op.to_string(),
            items.to_string(),
            format!("{:.2}", items as f64 / secs.max(1e-9) / 1e6),
            format!("<= {}", quantile(h, 0.50)),
            format!("<= {}", quantile(h, 0.99)),
        ]);
    }
    println!("{}", table.render());

    // Kill/restart losslessness at experiment scale: snapshot, shut the daemon
    // down gracefully, restart from the snapshot directory, re-probe.
    let before = probe_digest(&mut client, &keys, &pred, batch);
    let snap_digests = client.snapshot_now().expect("snapshot");
    client.shutdown().expect("shutdown request");
    running.wait().expect("graceful shutdown");

    let running = start(seed, &dir);
    let mut client = Client::connect(running.local_addr()).expect("reconnect");
    let after = probe_digest(&mut client, &keys, &pred, batch);
    assert_eq!(
        before, after,
        "warm-reloaded daemon diverged from the pre-restart answers"
    );
    let redigests = client.snapshot_now().expect("re-snapshot");
    assert_eq!(
        snap_digests, redigests,
        "snapshot file digests drifted across restart"
    );
    client.shutdown().expect("final shutdown");
    running.wait().expect("final graceful shutdown");
    let _ = std::fs::remove_dir_all(&dir);

    println!("stream digest: {:016x}", digest.value());
    println!(
        "Contracts verified this run: probe digest and snapshot file digests \
         identical across a snapshot + restart cycle; zero protocol errors."
    );
}
