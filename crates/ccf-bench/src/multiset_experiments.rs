//! Multiset experiments: Figure 4 (load factor at first failed insertion) and Figure 5
//! (bit efficiency), per the setup of §10.1.
//!
//! "For each filter type and each setting for the average number of duplicates per key
//! in the input data, we generate a dataset that is approximately 20 % larger than the
//! capacity of the sketch and measure the number of items processed before the first
//! failed insertion and the load factor at that point. ... The results are averaged
//! over 20 runs using random salts for the hash functions."

use ccf_core::{CcfParams, ChainedCcf, ConditionalFilter, PlainCcf};
use ccf_telemetry::Telemetry;
use ccf_workloads::multiset::{DuplicateDistribution, MultisetStream, Row};

/// Which filter the multiset experiments compare (Figure 4's `type` facet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultisetFilter {
    /// A plain multiset cuckoo filter (duplicates capped by the bucket pair).
    Plain,
    /// The CCF with chaining.
    Chained,
}

/// Which duplicate distribution drives the stream (Figure 4's column facet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Every key has the same number of duplicates.
    Constant,
    /// Duplicates follow the truncated Zipf-Mandelbrot distribution.
    Zipf,
}

/// Result of inserting one stream until the first failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailurePoint {
    /// Load factor β at the first failed insertion (or at stream exhaustion).
    pub load_factor: f64,
    /// Number of rows successfully absorbed before the failure.
    pub rows_absorbed: usize,
    /// Whether a failure actually occurred (streams 20 % above capacity normally fail;
    /// if not, the stream was exhausted first).
    pub failed: bool,
}

/// Configuration of one Figure 4 cell.
#[derive(Debug, Clone, Copy)]
pub struct MultisetConfig {
    /// Filter under test.
    pub filter: MultisetFilter,
    /// Stream kind.
    pub stream: StreamKind,
    /// Target average duplicates per key.
    pub avg_duplicates: f64,
    /// Entries per bucket `b`.
    pub entries_per_bucket: usize,
    /// Number of buckets `m`.
    pub num_buckets: usize,
    /// Maximum duplicates per bucket pair `d` (chained filter only; the paper uses 3).
    pub max_dupes: usize,
    /// Random seed (one run per seed; Figure 4 averages 20).
    pub seed: u64,
}

impl MultisetConfig {
    fn params(&self) -> CcfParams {
        CcfParams {
            num_buckets: self.num_buckets,
            entries_per_bucket: self.entries_per_bucket,
            fingerprint_bits: 12,
            attr_bits: 8,
            num_attrs: 1,
            max_dupes: self.max_dupes,
            max_chain: None,
            seed: self.seed,
            // The Figure 4/5 sweeps widen buckets with d (b = 2d, up to 20), past the
            // semisort backend's b ≤ 8 limit, and measure entry-level bit efficiency
            // rather than storage representation — pin packed so the sweeps run
            // unchanged under the CCF_STORAGE matrix.
            storage: ccf_cuckoo::StorageKind::Packed,
            ..CcfParams::default()
        }
    }

    fn stream(&self) -> MultisetStream {
        let dist = match self.stream {
            StreamKind::Constant => {
                DuplicateDistribution::Constant(self.avg_duplicates.round().max(1.0) as u64)
            }
            StreamKind::Zipf => DuplicateDistribution::zipf_with_mean(self.avg_duplicates.max(1.0)),
        };
        MultisetStream::new(dist, 1, self.seed ^ 0x5EED)
    }
}

/// Insert rows until the first failure, returning the failure point.
fn run_until_failure<F: ConditionalFilter>(filter: &mut F, rows: &[Row]) -> FailurePoint {
    let mut absorbed = 0usize;
    for row in rows {
        match filter.insert_row(row.key, &row.attrs) {
            Ok(_) => absorbed += 1,
            Err(_) => {
                return FailurePoint {
                    load_factor: filter.load_factor(),
                    rows_absorbed: absorbed,
                    failed: true,
                }
            }
        }
    }
    FailurePoint {
        load_factor: filter.load_factor(),
        rows_absorbed: absorbed,
        failed: false,
    }
}

/// Run one Figure 4 cell: build the filter, generate a stream 20 % above capacity, and
/// insert until the first failure.
pub fn load_factor_at_failure(config: &MultisetConfig) -> FailurePoint {
    load_factor_at_failure_with(config, &Telemetry::disabled())
}

/// As [`load_factor_at_failure`], with the cell's filter attached to a telemetry
/// registry — the figure bins use this so kick-depth and outcome distributions print
/// alongside the load-factor table (variant labels keep plain/chained series apart).
pub fn load_factor_at_failure_with(config: &MultisetConfig, telemetry: &Telemetry) -> FailurePoint {
    let params = config.params();
    let capacity = params.num_buckets.next_power_of_two() * params.entries_per_bucket;
    let rows = config.stream().generate_for_capacity(capacity);
    match config.filter {
        MultisetFilter::Plain => {
            let mut filter = PlainCcf::new(params);
            if telemetry.is_enabled() {
                filter.attach_telemetry(telemetry, &[]);
            }
            run_until_failure(&mut filter, &rows)
        }
        MultisetFilter::Chained => {
            let mut filter = ChainedCcf::new(params);
            if telemetry.is_enabled() {
                filter.attach_telemetry(telemetry, &[]);
            }
            run_until_failure(&mut filter, &rows)
        }
    }
}

/// Run one Figure 4 cell averaged over `runs` random salts.
pub fn averaged_load_factor(config: &MultisetConfig, runs: usize) -> FailurePoint {
    averaged_load_factor_with(config, runs, &Telemetry::disabled())
}

/// As [`averaged_load_factor`], threading a telemetry registry through every run.
pub fn averaged_load_factor_with(
    config: &MultisetConfig,
    runs: usize,
    telemetry: &Telemetry,
) -> FailurePoint {
    assert!(runs >= 1);
    let mut load = 0.0;
    let mut rows = 0usize;
    let mut any_failed = false;
    for r in 0..runs {
        let point = load_factor_at_failure_with(
            &MultisetConfig {
                seed: config.seed.wrapping_add(r as u64 * 7919),
                ..*config
            },
            telemetry,
        );
        load += point.load_factor;
        rows += point.rows_absorbed;
        any_failed |= point.failed;
    }
    FailurePoint {
        load_factor: load / runs as f64,
        rows_absorbed: rows / runs,
        failed: any_failed,
    }
}

/// One point of Figure 5: bit efficiency of a chained CCF at a given fill level and
/// duplicate cap `d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyPoint {
    /// Duplicate cap `d` (Figure 5's `maxDupe`).
    pub max_dupes: usize,
    /// Fill (load factor) at which the measurement was taken, in percent.
    pub fill_pct: f64,
    /// Measured key-only FPR at that fill.
    pub fpr: f64,
    /// Bit efficiency (eq. 8): size / (n · log2(1/ρ)).
    pub bit_efficiency: f64,
}

/// Measure bit efficiency of a chained CCF (Figure 5): insert a stream with the given
/// duplicate distribution until the target fill, measure the key-only FPR empirically,
/// and apply eq. 8 with `n` = number of keys inserted (counting duplicates, §10.2).
pub fn bit_efficiency_point(
    stream_kind: StreamKind,
    avg_duplicates: f64,
    max_dupes: usize,
    target_fill: f64,
    num_buckets: usize,
    seed: u64,
) -> EfficiencyPoint {
    bit_efficiency_point_with(
        stream_kind,
        avg_duplicates,
        max_dupes,
        target_fill,
        num_buckets,
        seed,
        &Telemetry::disabled(),
    )
}

/// As [`bit_efficiency_point`], with the filter attached to a telemetry registry.
#[allow(clippy::too_many_arguments)]
pub fn bit_efficiency_point_with(
    stream_kind: StreamKind,
    avg_duplicates: f64,
    max_dupes: usize,
    target_fill: f64,
    num_buckets: usize,
    seed: u64,
    telemetry: &Telemetry,
) -> EfficiencyPoint {
    let params = CcfParams {
        num_buckets,
        entries_per_bucket: (2 * max_dupes).max(4),
        fingerprint_bits: 12,
        attr_bits: 8,
        num_attrs: 1,
        max_dupes,
        max_chain: None,
        seed,
        // b = 2d reaches 20 in the Figure 5 sweep — beyond the semisort backend's
        // b ≤ 8 limit — and this experiment measures entry-level bit efficiency, not
        // storage representation; pin packed so it runs under the CCF_STORAGE matrix.
        storage: ccf_cuckoo::StorageKind::Packed,
        ..CcfParams::default()
    };
    let mut filter = ChainedCcf::new(params);
    if telemetry.is_enabled() {
        filter.attach_telemetry(telemetry, &[]);
    }
    let dist = match stream_kind {
        StreamKind::Constant => {
            DuplicateDistribution::Constant(avg_duplicates.round().max(1.0) as u64)
        }
        StreamKind::Zipf => DuplicateDistribution::zipf_with_mean(avg_duplicates.max(1.0)),
    };
    let rows = MultisetStream::new(dist, 1, seed ^ 0xF111).generate_for_capacity(filter.capacity());
    let mut inserted_rows = 0usize;
    for row in &rows {
        if filter.load_factor() >= target_fill {
            break;
        }
        if filter.insert_row(row.key, &row.attrs).is_ok() {
            inserted_rows += 1;
        } else {
            break;
        }
    }
    // Empirical key-only FPR over keys never inserted.
    let probes = 200_000u64;
    let false_pos = (0..probes)
        .filter(|i| filter.contains_key(1_000_000_000 + i))
        .count();
    let fpr = (false_pos as f64 / probes as f64).clamp(1e-9, 0.999_999);
    EfficiencyPoint {
        max_dupes,
        fill_pct: filter.load_factor() * 100.0,
        fpr,
        bit_efficiency: ccf_core::sizing::bit_efficiency(
            filter.size_bits(),
            inserted_rows.max(1),
            fpr,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_config(
        filter: MultisetFilter,
        stream: StreamKind,
        avg: f64,
        b: usize,
    ) -> MultisetConfig {
        MultisetConfig {
            filter,
            stream,
            avg_duplicates: avg,
            entries_per_bucket: b,
            num_buckets: 1 << 9,
            max_dupes: 3,
            seed: 99,
        }
    }

    #[test]
    fn chained_sustains_high_load_with_many_duplicates() {
        // Figure 4, right-hand side of each panel: chaining keeps the load factor high
        // even at 12 duplicates per key.
        let point = load_factor_at_failure(&base_config(
            MultisetFilter::Chained,
            StreamKind::Constant,
            12.0,
            6,
        ));
        assert!(point.failed, "stream 20% above capacity should overflow");
        assert!(
            point.load_factor > 0.75,
            "chained load factor {} too low",
            point.load_factor
        );
    }

    #[test]
    fn plain_collapses_with_many_duplicates() {
        let chained = load_factor_at_failure(&base_config(
            MultisetFilter::Chained,
            StreamKind::Constant,
            12.0,
            4,
        ));
        let plain = load_factor_at_failure(&base_config(
            MultisetFilter::Plain,
            StreamKind::Constant,
            12.0,
            4,
        ));
        // Figure 4: the plain filter fails far below the chained filter once the
        // number of duplicates exceeds what a bucket pair can hold.
        assert!(plain.failed);
        assert!(
            plain.load_factor < chained.load_factor * 0.75,
            "plain {} vs chained {}",
            plain.load_factor,
            chained.load_factor
        );
    }

    #[test]
    fn plain_fails_almost_immediately_on_zipf_data() {
        // §10.2: "For Zipf-Mandelbrot data, the plain cuckoo hash encounters very few
        // items before it fails."
        let point = load_factor_at_failure(&base_config(
            MultisetFilter::Plain,
            StreamKind::Zipf,
            8.0,
            4,
        ));
        assert!(point.failed);
        assert!(
            point.load_factor < 0.3,
            "plain filter on zipf data reached load {}",
            point.load_factor
        );
    }

    #[test]
    fn few_duplicates_make_plain_and_chained_comparable() {
        // Figure 4, left edge: when duplicates per key are below 2b, both filters do
        // fine.
        let chained = load_factor_at_failure(&base_config(
            MultisetFilter::Chained,
            StreamKind::Constant,
            2.0,
            6,
        ));
        let plain = load_factor_at_failure(&base_config(
            MultisetFilter::Plain,
            StreamKind::Constant,
            2.0,
            6,
        ));
        assert!(plain.load_factor > 0.7);
        assert!((plain.load_factor - chained.load_factor).abs() < 0.2);
    }

    #[test]
    fn averaging_smooths_runs() {
        let cfg = base_config(MultisetFilter::Chained, StreamKind::Zipf, 6.0, 6);
        let avg = averaged_load_factor(&cfg, 3);
        assert!(avg.failed);
        assert!(avg.load_factor > 0.6 && avg.load_factor <= 1.0);
    }

    #[test]
    fn bit_efficiency_is_in_the_papers_range() {
        // §10.2: an optimized chained filter reaches ≈ 1.93 at high fill with
        // duplicates; poorly filled filters are much worse.
        let full = bit_efficiency_point(StreamKind::Constant, 8.0, 3, 0.85, 1 << 10, 5);
        assert!(full.fill_pct > 70.0);
        assert!(
            (1.2..4.0).contains(&full.bit_efficiency),
            "efficiency at high fill = {}",
            full.bit_efficiency
        );
        let sparse = bit_efficiency_point(StreamKind::Constant, 8.0, 3, 0.15, 1 << 10, 5);
        assert!(
            sparse.bit_efficiency > full.bit_efficiency,
            "lower fill must waste more bits per item"
        );
    }
}
