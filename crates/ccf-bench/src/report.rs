//! Plain-text table formatting shared by the experiment binaries.
//!
//! Every binary prints (a) a header describing the experiment and its parameters and
//! (b) one or more aligned tables whose rows mirror the series of the corresponding
//! figure or the rows of the corresponding table in the paper, so the output can be
//! diffed against EXPERIMENTS.md.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have the same arity as the header).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimal places (the precision the paper's figures resolve).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a fraction as a percentage with one decimal place.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a bit count as megabytes, matching the units of Figures 8 and 10.
pub fn mb(bits: usize) -> String {
    format!("{:.2} MB", bits as f64 / 8.0 / 1024.0 / 1024.0)
}

/// Print the standard experiment header.
pub fn header(title: &str, details: &[(&str, String)]) {
    println!("=== {title} ===");
    for (k, v) in details {
        println!("{k}: {v}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["a-much-longer-name", "22.5"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Both data rows start their second column at the same offset.
        let col = lines[3].find("22.5").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_arity_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn numeric_formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(mb(8 * 1024 * 1024), "1.00 MB");
    }
}
