//! Figure 3 (predicted vs actual filled entries) and Table 1 (supported queries and
//! sizing) — §8.
//!
//! The prediction uses only the dataset's duplication profile (distinct attribute
//! vectors per key) and the Table 1 formulas; the measurement builds the filter and
//! counts occupied entries. Figure 3 shows the two match closely across filter types
//! and tables.

use ccf_core::sizing::{predicted_entries, size_for_profile, DuplicationProfile, VariantKind};
use ccf_core::{AnyCcf, CcfParams, ConditionalFilter};
use ccf_workloads::imdb::{SyntheticImdb, TableId};

use ccf_join::bridge::ccf_attrs_for_row;

/// One point of Figure 3: a table × variant pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EntriesPoint {
    /// Which table the filter summarizes.
    pub table: TableId,
    /// Which CCF variant.
    pub variant: VariantKind,
    /// Predicted number of filled entries (Table 1 formula).
    pub predicted: usize,
    /// Actual number of filled entries after inserting every row.
    pub actual: usize,
    /// Rows the filter failed to absorb (should be zero when sized by the prediction).
    pub failed_rows: usize,
}

impl EntriesPoint {
    /// Relative error of the prediction (|predicted − actual| / actual).
    pub fn relative_error(&self) -> f64 {
        if self.actual == 0 {
            0.0
        } else {
            (self.predicted as f64 - self.actual as f64).abs() / self.actual as f64
        }
    }
}

/// Build the filter for one table and compare predicted vs actual entries.
pub fn entries_point(
    db: &SyntheticImdb,
    table_id: TableId,
    variant: VariantKind,
    seed: u64,
) -> EntriesPoint {
    let table = db.table(table_id);
    let spec = table.spec();
    let profile = DuplicationProfile::from_counts(table.distinct_attr_vectors_per_key());
    let base = CcfParams {
        fingerprint_bits: 12,
        attr_bits: 8,
        num_attrs: spec.columns.len(),
        max_dupes: 3,
        max_chain: None,
        bloom_bits: 16,
        bloom_hashes: 2,
        seed,
        ..CcfParams::default()
    };
    let params = size_for_profile(variant, &profile, base);
    let predicted = predicted_entries(variant, &profile, &params);
    let mut filter = AnyCcf::new(variant, params);
    let mut failed_rows = 0usize;
    for row in 0..table.num_rows() {
        let attrs = ccf_attrs_for_row(table, row);
        if filter.insert_row(table.join_keys[row], &attrs).is_err() {
            failed_rows += 1;
        }
    }
    EntriesPoint {
        table: table_id,
        variant,
        predicted,
        actual: filter.occupied_entries(),
        failed_rows,
    }
}

/// Run Figure 3 for every table × {Bloom, Chained, Mixed} combination (the three
/// series of the figure).
pub fn figure3_points(db: &SyntheticImdb, seed: u64) -> Vec<EntriesPoint> {
    let mut out = Vec::new();
    for &table in &TableId::ALL {
        for variant in [VariantKind::Bloom, VariantKind::Chained, VariantKind::Mixed] {
            out.push(entries_point(db, table, variant, seed));
        }
    }
    out
}

/// One row of Table 1: which query forms a variant supports and its entry bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Human-readable filter name as in the paper.
    pub filter: &'static str,
    /// Supports key-only queries.
    pub key_queries: bool,
    /// Supports key + predicate queries.
    pub key_predicate_queries: bool,
    /// Supports predicate-only queries.
    pub predicate_queries: bool,
    /// The entry bound, rendered as in Table 1.
    pub entry_bound: &'static str,
}

/// The static content of Table 1 (the paper's taxonomy; the numeric side is exercised
/// by [`figure3_points`]).
pub fn table1_rows() -> Vec<Table1Row> {
    vec![
        Table1Row {
            filter: "Cuckoo filter",
            key_queries: true,
            key_predicate_queries: false,
            predicate_queries: false,
            entry_bound: "n_k",
        },
        Table1Row {
            filter: "CCF w/ Bloom",
            key_queries: true,
            key_predicate_queries: true,
            predicate_queries: true,
            entry_bound: "n_k",
        },
        Table1Row {
            filter: "CCF w/ conversion",
            key_queries: true,
            key_predicate_queries: true,
            predicate_queries: true,
            entry_bound: "n_k · E[min(A, d)]",
        },
        Table1Row {
            filter: "CCF w/ chaining",
            key_queries: true,
            key_predicate_queries: true,
            predicate_queries: false,
            entry_bound: "n_k · E[min(A, d·Lmax)]",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> SyntheticImdb {
        SyntheticImdb::generate(1024, 61)
    }

    #[test]
    fn predictions_match_actual_entries_closely() {
        let db = db();
        for point in figure3_points(&db, 61) {
            assert_eq!(
                point.failed_rows, 0,
                "{:?}/{:?}: sized filter dropped rows",
                point.table, point.variant
            );
            // The prediction counts distinct raw attribute vectors; the filter stores
            // distinct *fingerprint* vectors, so fingerprint collisions make the
            // prediction slightly conservative (predicted ≥ actual) — the safe
            // direction for sizing. The gap is largest for movie_keyword, whose
            // 134k-value column is crushed into 8-bit fingerprints.
            assert!(
                point.predicted >= point.actual,
                "{:?}/{:?}: prediction {} is not conservative (actual {})",
                point.table,
                point.variant,
                point.predicted,
                point.actual
            );
            assert!(
                point.relative_error() < 0.15,
                "{:?}/{:?}: predicted {} vs actual {} (error {:.3})",
                point.table,
                point.variant,
                point.predicted,
                point.actual,
                point.relative_error()
            );
        }
    }

    #[test]
    fn bloom_variant_uses_fewest_entries_on_duplicated_tables() {
        let db = db();
        let bloom = entries_point(&db, TableId::MovieKeyword, VariantKind::Bloom, 1);
        let chained = entries_point(&db, TableId::MovieKeyword, VariantKind::Chained, 1);
        let mixed = entries_point(&db, TableId::MovieKeyword, VariantKind::Mixed, 1);
        assert!(bloom.actual < mixed.actual);
        assert!(mixed.actual < chained.actual);
    }

    #[test]
    fn table1_taxonomy_matches_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        // Only the plain cuckoo filter lacks predicate support; chaining cannot answer
        // predicate-only queries with plain erasure (it needs the marking variant).
        assert!(!rows[0].key_predicate_queries);
        assert!(rows[1].predicate_queries && rows[2].predicate_queries);
        assert!(!rows[3].predicate_queries);
    }
}
