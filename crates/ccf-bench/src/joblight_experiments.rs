//! JOB-light experiments: Figures 6–10, Tables 2–3 and the §10.6 aggregates.
//!
//! All experiments share the same pipeline: generate the synthetic IMDB dataset
//! (statistics of Tables 2–3), generate the 70-query workload, build per-table filter
//! banks for the configurations under test, and evaluate every (query, base-table)
//! instance with `ccf_join::evaluate_workload`. The individual figures are different
//! views of the resulting [`InstanceResult`]s:
//!
//! * Figure 6 — per-instance reduction factors, large and small filters, ordered by the
//!   exact-semijoin (a, c) or cuckoo-filter (b, d) baseline.
//! * Figure 7 — the same against the *after-binning* exact baseline.
//! * Figure 8 — aggregate reduction factor and FPR versus total filter size, across a
//!   sweep of parameter settings.
//! * Figure 9 — reduction factor grouped by the number of joins.
//! * Figure 10 — per-(table, column) CCF size relative to the raw data.
//! * Tables 2–3 — the dataset statistics themselves.

use ccf_core::sizing::{size_for_profile, DuplicationProfile, VariantKind};
use ccf_core::{AnyCcf, CcfParams, ConditionalFilter};
use ccf_join::filters::{FilterBank, FilterConfig};
use ccf_join::reduction::{evaluate_workload, InstanceResult, WorkloadSummary};
use ccf_workloads::imdb::{spec_of, SyntheticImdb, TableId};
use ccf_workloads::joblight::JobLightWorkload;

/// The experiment context shared by every JOB-light figure.
#[derive(Debug)]
pub struct JobLightContext {
    /// The synthetic dataset.
    pub db: SyntheticImdb,
    /// The 70-query workload.
    pub workload: JobLightWorkload,
}

impl JobLightContext {
    /// Generate dataset and workload at `1/scale` of the real row counts.
    pub fn generate(scale: u64, seed: u64) -> Self {
        let db = SyntheticImdb::generate(scale, seed);
        let workload = JobLightWorkload::generate(&db, seed);
        Self { db, workload }
    }

    /// Restrict the workload to its first `n` queries (for quick runs).
    pub fn with_query_limit(mut self, n: usize) -> Self {
        self.workload.queries.truncate(n);
        self
    }
}

/// The per-instance results for one filter configuration, plus the bank's size.
#[derive(Debug, Clone)]
pub struct ConfigResults {
    /// Human-readable label ("Chained CCF (large)", ...).
    pub label: String,
    /// The variant evaluated.
    pub variant: VariantKind,
    /// Total CCF size of the bank in bits.
    pub total_ccf_bits: usize,
    /// Per-instance counts.
    pub instances: Vec<InstanceResult>,
    /// Aggregate summary.
    pub summary: WorkloadSummary,
}

/// Evaluate one filter configuration over the workload.
pub fn evaluate_config(ctx: &JobLightContext, label: &str, config: FilterConfig) -> ConfigResults {
    let bank = FilterBank::build(&ctx.db, config);
    let instances = evaluate_workload(&ctx.db, &ctx.workload, &bank);
    let summary = WorkloadSummary::from_instances(&instances);
    ConfigResults {
        label: label.to_string(),
        variant: config.variant,
        total_ccf_bits: bank.total_ccf_bits(),
        instances,
        summary,
    }
}

/// Figure 6 / Figure 7 data: evaluate the three CCF variants at one size ("large" or
/// "small") so their per-instance reduction factors can be plotted against the exact
/// and cuckoo-filter baselines (which are embedded in every [`InstanceResult`]).
pub fn figure6_configs(large: bool) -> Vec<(&'static str, FilterConfig)> {
    let make = |variant| {
        if large {
            FilterConfig::large(variant)
        } else {
            FilterConfig::small(variant)
        }
    };
    vec![
        ("Bloom CCF", make(VariantKind::Bloom)),
        ("Mixed CCF", make(VariantKind::Mixed)),
        ("Chained CCF", make(VariantKind::Chained)),
    ]
}

/// One point of the Figure 8 sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Configuration label.
    pub label: String,
    /// Variant.
    pub variant: VariantKind,
    /// Attribute size |α| (or Bloom bits for the Bloom variant).
    pub attr_size: u32,
    /// Total size of all CCFs in megabytes.
    pub total_mb: f64,
    /// Aggregate reduction factor.
    pub reduction_factor: f64,
    /// FPR versus the binned exact semijoin.
    pub fpr: f64,
}

/// The Figure 8 parameter sweep: every variant at both the small and large settings
/// (the paper sweeps |κ| ∈ {7, 8, 12}, |α| ∈ {4, 8}, Bloom bits 4–24; the presets cover
/// the corners that define the figure's envelope).
pub fn figure8_sweep(ctx: &JobLightContext) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    let fingerprint_sizes = [7u32, 8, 12];
    let attr_sizes = [4u32, 8];
    for variant in [VariantKind::Bloom, VariantKind::Mixed, VariantKind::Chained] {
        for &fp_bits in &fingerprint_sizes {
            for &attr_bits in &attr_sizes {
                let config = FilterConfig {
                    variant,
                    fingerprint_bits: fp_bits,
                    attr_bits,
                    bloom_bits: (attr_bits as usize) * 3,
                    bloom_hashes: 2,
                    max_dupes: 3,
                    storage: ccf_cuckoo::StorageKind::from_env(),
                    seed: 0xF18,
                };
                let label = format!("{variant:?} |κ|={fp_bits} |α|={attr_bits}");
                let results = evaluate_config(ctx, &label, config);
                points.push(SweepPoint {
                    label,
                    variant,
                    attr_size: attr_bits,
                    total_mb: results.total_ccf_bits as f64 / 8.0 / 1024.0 / 1024.0,
                    reduction_factor: results.summary.rf_ccf,
                    fpr: results.summary.fpr_vs_binned,
                });
            }
        }
    }
    points
}

/// One row of Figure 9: reduction factors grouped by the number of joins in the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinCountRow {
    /// Number of joins.
    pub num_joins: usize,
    /// Number of instances in the group.
    pub instances: usize,
    /// Aggregate optimal (exact semijoin) reduction factor.
    pub rf_optimal: f64,
    /// Aggregate CCF reduction factor.
    pub rf_ccf: f64,
    /// Aggregate reduction factor with predicate-blind key filters.
    pub rf_no_predicate: f64,
}

/// Group a configuration's instances by join count (Figure 9).
pub fn figure9_rows(results: &ConfigResults) -> Vec<JoinCountRow> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<usize, Vec<&InstanceResult>> = BTreeMap::new();
    for r in &results.instances {
        groups.entry(r.num_joins).or_default().push(r);
    }
    groups
        .into_iter()
        .map(|(num_joins, rs)| {
            let sum =
                |f: fn(&InstanceResult) -> usize| -> f64 { rs.iter().map(|r| f(r) as f64).sum() };
            let m_pred = sum(|r| r.m_predicate).max(1.0);
            JoinCountRow {
                num_joins,
                instances: rs.len(),
                rf_optimal: sum(|r| r.m_exact) / m_pred,
                rf_ccf: sum(|r| r.m_ccf) / m_pred,
                rf_no_predicate: sum(|r| r.m_key_filter) / m_pred,
            }
        })
        .collect()
}

/// One bar of Figure 10: a per-(table, predicate-column) CCF's size relative to the raw
/// data it summarizes.
#[derive(Debug, Clone)]
pub struct RelativeSizeRow {
    /// Table.
    pub table: TableId,
    /// Predicate column name.
    pub column: &'static str,
    /// Variant.
    pub variant: VariantKind,
    /// CCF size / raw data size (the paper's y-axis).
    pub relative_size: f64,
}

/// Build single-column CCFs (one per row of Tables 2–3, as in Figure 10) and report
/// their size relative to the raw data.
pub fn figure10_rows(db: &SyntheticImdb, seed: u64) -> Vec<RelativeSizeRow> {
    let mut rows = Vec::new();
    for &table_id in &TableId::ALL {
        let table = db.table(table_id);
        let spec = spec_of(table_id);
        for (ci, col_spec) in spec.columns.iter().enumerate() {
            // Raw data for this (key, column) projection, per the §10.7 accounting.
            let key_bits = 32usize;
            let attr_bits_raw = if col_spec.cardinality > 256 { 32 } else { 8 };
            let raw_bits = table.num_rows() * (key_bits + attr_bits_raw);

            // Distinct values per key for this single column.
            use std::collections::{HashMap, HashSet};
            let mut per_key: HashMap<u64, HashSet<u64>> = HashMap::new();
            for row in 0..table.num_rows() {
                per_key
                    .entry(table.join_keys[row])
                    .or_default()
                    .insert(table.columns[ci][row]);
            }
            let profile = DuplicationProfile::from_counts(per_key.values().map(|s| s.len()));

            for variant in [VariantKind::Bloom, VariantKind::Chained, VariantKind::Mixed] {
                // Single-attribute CCFs: an 8-bit Bloom sketch per entry matches the
                // per-attribute budget of the fingerprint-vector variants.
                let base = CcfParams {
                    fingerprint_bits: 12,
                    attr_bits: 8,
                    num_attrs: 1,
                    max_dupes: 3,
                    bloom_bits: 8,
                    bloom_hashes: 2,
                    seed,
                    ..CcfParams::default()
                };
                let params = size_for_profile(variant, &profile, base);
                let mut filter = AnyCcf::new(variant, params);
                for row in 0..table.num_rows() {
                    let _ = filter.insert_row(table.join_keys[row], &[table.columns[ci][row]]);
                }
                rows.push(RelativeSizeRow {
                    table: table_id,
                    column: col_spec.name,
                    variant,
                    relative_size: filter.size_bits() as f64 / raw_bits as f64,
                });
            }
        }
    }
    rows
}

/// The "Overall" entry of Figure 10 for one variant: total CCF bits over total raw
/// bits across all (table, column) pairs.
pub fn figure10_overall(rows: &[RelativeSizeRow], variant: VariantKind) -> f64 {
    let filtered: Vec<&RelativeSizeRow> = rows.iter().filter(|r| r.variant == variant).collect();
    if filtered.is_empty() {
        return 0.0;
    }
    filtered.iter().map(|r| r.relative_size).sum::<f64>() / filtered.len() as f64
}

/// One row of Table 2 as measured on the synthetic dataset.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Table name.
    pub table: &'static str,
    /// Rows in the synthetic table.
    pub rows: usize,
    /// Predicate column name.
    pub column: &'static str,
    /// Distinct values observed in the column.
    pub cardinality: usize,
    /// Cardinality in the real data (for comparison).
    pub paper_cardinality: u64,
}

/// Measure Table 2 on the synthetic dataset.
pub fn table2_rows(db: &SyntheticImdb) -> Vec<Table2Row> {
    let mut out = Vec::new();
    for &id in &TableId::ALL {
        let table = db.table(id);
        let spec = spec_of(id);
        for (ci, col_spec) in spec.columns.iter().enumerate() {
            let mut values: Vec<u64> = table.columns[ci].clone();
            values.sort_unstable();
            values.dedup();
            out.push(Table2Row {
                table: id.name(),
                rows: table.num_rows(),
                column: col_spec.name,
                cardinality: values.len(),
                paper_cardinality: col_spec.cardinality,
            });
        }
    }
    out
}

/// One row of Table 3 as measured on the synthetic dataset.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Table name.
    pub table: &'static str,
    /// Predicate column name.
    pub column: &'static str,
    /// Measured average distinct values per join key.
    pub avg_dupes: f64,
    /// Measured maximum distinct values per join key.
    pub max_dupes: usize,
    /// The paper's values (for comparison).
    pub paper_avg: f64,
    /// The paper's maximum.
    pub paper_max: u64,
}

/// Measure Table 3 on the synthetic dataset.
pub fn table3_rows(db: &SyntheticImdb) -> Vec<Table3Row> {
    use std::collections::{HashMap, HashSet};
    let mut out = Vec::new();
    for &id in &TableId::ALL {
        let table = db.table(id);
        let spec = spec_of(id);
        for (ci, col_spec) in spec.columns.iter().enumerate() {
            let mut per_key: HashMap<u64, HashSet<u64>> = HashMap::new();
            for row in 0..table.num_rows() {
                per_key
                    .entry(table.join_keys[row])
                    .or_default()
                    .insert(table.columns[ci][row]);
            }
            let counts: Vec<usize> = per_key.values().map(|s| s.len()).collect();
            let avg = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
            let max = counts.iter().copied().max().unwrap_or(0);
            out.push(Table3Row {
                table: id.name(),
                column: col_spec.name,
                avg_dupes: avg,
                max_dupes: max,
                paper_avg: col_spec.avg_dupes,
                paper_max: col_spec.max_dupes,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> JobLightContext {
        JobLightContext::generate(1024, 71).with_query_limit(10)
    }

    #[test]
    fn evaluate_config_produces_consistent_summaries() {
        let ctx = ctx();
        let results = evaluate_config(
            &ctx,
            "small chained",
            FilterConfig::small(VariantKind::Chained),
        );
        assert!(!results.instances.is_empty());
        assert!(results.total_ccf_bits > 0);
        // The aggregate RF sits between the exact floor and the key-only baseline.
        assert!(results.summary.rf_ccf >= results.summary.rf_exact - 1e-9);
        assert!(results.summary.rf_ccf <= results.summary.rf_key_filter + 1e-9);
    }

    #[test]
    fn large_filters_are_at_least_as_accurate_as_small() {
        let ctx = ctx();
        let small = evaluate_config(&ctx, "small", FilterConfig::small(VariantKind::Chained));
        let large = evaluate_config(&ctx, "large", FilterConfig::large(VariantKind::Chained));
        assert!(large.total_ccf_bits > small.total_ccf_bits);
        assert!(large.summary.rf_ccf <= small.summary.rf_ccf + 0.02);
    }

    #[test]
    fn figure9_rows_cover_all_instances_and_show_compounding() {
        let ctx = ctx();
        let results = evaluate_config(&ctx, "chained", FilterConfig::large(VariantKind::Chained));
        let rows = figure9_rows(&results);
        let total: usize = rows.iter().map(|r| r.instances).sum();
        assert_eq!(total, results.instances.len());
        for row in &rows {
            assert!(row.rf_optimal <= row.rf_ccf + 1e-9);
            assert!(row.rf_ccf <= row.rf_no_predicate + 1e-9);
        }
    }

    #[test]
    fn figure10_ccfs_are_smaller_than_raw_data() {
        let db = SyntheticImdb::generate(1024, 71);
        let rows = figure10_rows(&db, 71);
        assert_eq!(rows.len(), 8 * 3); // 8 (table, column) pairs × 3 variants
        for r in &rows {
            assert!(
                r.relative_size < 1.0,
                "{:?}.{} ({:?}) not smaller than raw data: {}",
                r.table,
                r.column,
                r.variant,
                r.relative_size
            );
        }
        // Bloom collapses duplicates, so it wins on the most duplicated table.
        let mk_bloom = rows
            .iter()
            .find(|r| r.table == TableId::MovieKeyword && r.variant == VariantKind::Bloom)
            .unwrap();
        let mk_chained = rows
            .iter()
            .find(|r| r.table == TableId::MovieKeyword && r.variant == VariantKind::Chained)
            .unwrap();
        assert!(mk_bloom.relative_size < mk_chained.relative_size);
    }

    #[test]
    fn table_2_and_3_track_the_paper_statistics() {
        let db = SyntheticImdb::generate(512, 71);
        let t2 = table2_rows(&db);
        assert_eq!(t2.len(), 8);
        for row in &t2 {
            assert!(row.cardinality > 0);
            assert!(
                row.cardinality as u64 <= row.paper_cardinality.max(140),
                "{}.{} cardinality {} exceeds the real data's {}",
                row.table,
                row.column,
                row.cardinality,
                row.paper_cardinality
            );
        }
        let t3 = table3_rows(&db);
        assert_eq!(t3.len(), 8);
        for row in &t3 {
            assert!(
                row.max_dupes as u64 <= row.paper_max,
                "{}.{}: max dupes {} exceeds the paper's {}",
                row.table,
                row.column,
                row.max_dupes,
                row.paper_max
            );
            if row.paper_avg > 2.0 {
                assert!(
                    row.avg_dupes > 1.0,
                    "{}.{} lost its duplication structure",
                    row.table,
                    row.column
                );
            }
        }
    }
}
