//! Figure 2: the §7 FPR bounds as predictors of the measured FPR.
//!
//! The experiment builds a chained CCF over synthetic keyed data, issues key+predicate
//! queries with *no* matching row (so every positive is a false positive), and compares
//! the measured FPR with the §7 estimates — split, as in the figure, into the
//! component attributable to the key fingerprint (queries whose key is absent) and the
//! component attributable to the attribute sketch (queries whose key is present but
//! whose predicate matches no row), for attribute sizes of 4 and 8 bits.

use ccf_core::{CcfParams, ChainedCcf, Predicate};
use ccf_workloads::multiset::{DuplicateDistribution, MultisetStream};

/// One point of Figure 2: a (measured, estimated) FPR pair for one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FprPoint {
    /// Attribute fingerprint size |α| used.
    pub attr_bits: u32,
    /// Which component of the FPR this measures.
    pub component: FprComponent,
    /// Measured false-positive rate.
    pub actual: f64,
    /// §7 estimate.
    pub estimated: f64,
}

/// The decomposition used in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FprComponent {
    /// Queries whose key is absent from the data (FPR due to the key fingerprint).
    DueToKey,
    /// Queries whose key is present but whose predicate matches no row (FPR due to the
    /// attribute sketch).
    DueToAttribute,
    /// All no-match queries together.
    Overall,
}

/// Run the Figure 2 experiment for one attribute size. `avg_duplicates` controls how
/// many distinct rows each key has (more rows ⇒ more entries a predicate can
/// spuriously match).
pub fn fpr_experiment(attr_bits: u32, avg_duplicates: f64, seed: u64) -> Vec<FprPoint> {
    let params = CcfParams {
        num_buckets: 1 << 12,
        entries_per_bucket: 6,
        fingerprint_bits: 8,
        attr_bits,
        num_attrs: 2,
        max_dupes: 3,
        max_chain: None,
        small_value_opt: false, // hash every attribute so the 2^-|α| model applies
        seed,
        ..CcfParams::default()
    };
    let mut filter = ChainedCcf::new(params);
    let stream = MultisetStream::new(
        DuplicateDistribution::zipf_with_mean(avg_duplicates.max(1.0)),
        2,
        seed ^ 0xF16,
    );
    // Fill to roughly 60 % so D (occupied entries per pair) is substantial but
    // insertions never fail.
    let rows = stream.generate((filter.capacity() as f64 * 0.6) as usize);
    let mut max_key = 0u64;
    for row in &rows {
        filter.insert_row(row.key, &row.attrs).unwrap();
        max_key = max_key.max(row.key);
    }

    // Query predicates use attribute values below 2^20, which the generator never
    // produces, so none of the probed (key, predicate) pairs has a matching row and
    // every positive is a false positive. The values are *varied* across probes so the
    // measurement averages over the attribute-hash randomness the §7 model assumes.
    let probe_pred = |i: u64| {
        Predicate::any(2)
            .and_eq(0, 100 + i * 2)
            .and_eq(1, 200_000 + i * 3)
    };

    // --- Queries whose key is absent: FPR due to the key. -----------------------------
    let absent_probes = 200_000u64;
    let key_fp = (0..absent_probes)
        .filter(|&i| filter.query(2_000_000_000 + i, &probe_pred(i)))
        .count();
    let actual_key = key_fp as f64 / absent_probes as f64;
    // Estimate (eq. 4 restricted to entries that also pass the attribute test): the
    // probability a probed pair contains a matching fingerprint AND its attribute
    // vector matches both constrained columns.
    let occupied_per_pair = 2.0 * filter.load_factor() * params.entries_per_bucket as f64;
    let estimated_key = ccf_core::fpr::key_only_fpr(occupied_per_pair, params.fingerprint_bits)
        * ccf_core::fpr::vector_entry_match_prob(2, attr_bits);

    // --- Queries whose key is present but no row matches: FPR due to the attribute. ---
    let mut attr_fp = 0usize;
    let mut attr_probes = 0usize;
    for key in 1..=max_key {
        attr_probes += 1;
        if filter.query(key, &probe_pred(key)) {
            attr_fp += 1;
        }
    }
    let actual_attr = attr_fp as f64 / attr_probes.max(1) as f64;
    // Estimate (eq. 7 with d·Lmax replaced by the average number of entries a present
    // key actually occupies): every stored entry of the key mismatches both constrained
    // columns.
    let avg_entries_per_key = rows.len() as f64 / max_key as f64;
    let estimated_attr = avg_entries_per_key * ccf_core::fpr::vector_entry_match_prob(2, attr_bits);

    // --- Overall: mix of the two query populations (half absent, half present). -------
    let actual_overall = 0.5 * actual_key + 0.5 * actual_attr;
    let estimated_overall = 0.5 * estimated_key + 0.5 * estimated_attr;

    vec![
        FprPoint {
            attr_bits,
            component: FprComponent::DueToKey,
            actual: actual_key,
            estimated: estimated_key,
        },
        FprPoint {
            attr_bits,
            component: FprComponent::DueToAttribute,
            actual: actual_attr,
            estimated: estimated_attr.min(1.0),
        },
        FprPoint {
            attr_bits,
            component: FprComponent::Overall,
            actual: actual_overall,
            estimated: estimated_overall.min(1.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_measurements_for_both_attribute_sizes() {
        for attr_bits in [4u32, 8] {
            for point in fpr_experiment(attr_bits, 4.0, 3) {
                assert!(point.actual >= 0.0 && point.actual <= 1.0);
                assert!(point.estimated >= 0.0 && point.estimated <= 1.0);
                // Figure 2: the bounds are good predictors — within a small factor and
                // never wildly below the measurement.
                if point.actual > 0.005 {
                    assert!(
                        point.estimated > point.actual * 0.3,
                        "{attr_bits}-bit {:?}: estimate {} far below actual {}",
                        point.component,
                        point.estimated,
                        point.actual
                    );
                    assert!(
                        point.estimated < point.actual * 4.0 + 0.05,
                        "{attr_bits}-bit {:?}: estimate {} far above actual {}",
                        point.component,
                        point.estimated,
                        point.actual
                    );
                }
            }
        }
    }

    #[test]
    fn smaller_attribute_fingerprints_have_higher_attribute_fpr() {
        let fpr_of = |bits| {
            fpr_experiment(bits, 4.0, 9)
                .into_iter()
                .find(|p| p.component == FprComponent::DueToAttribute)
                .unwrap()
                .actual
        };
        let fpr4 = fpr_of(4);
        let fpr8 = fpr_of(8);
        assert!(
            fpr4 > fpr8,
            "4-bit attribute FPR ({fpr4}) should exceed 8-bit ({fpr8})"
        );
    }

    #[test]
    fn key_component_is_small_with_8_bit_fingerprints() {
        let key = fpr_experiment(8, 4.0, 1)
            .into_iter()
            .find(|p| p.component == FprComponent::DueToKey)
            .unwrap();
        // §7.2's headline bound: ≤ 5 % for |κ| = 8 — and much lower once the attribute
        // check is included.
        assert!(key.actual < 0.05, "key-component FPR {}", key.actual);
    }
}
