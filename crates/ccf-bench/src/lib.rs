//! Experiment harness regenerating every table and figure of the paper's evaluation.
//!
//! Each figure/table has a binary in `src/bin/` that prints the corresponding rows or
//! series (see EXPERIMENTS.md at the repository root for the index and the recorded
//! results); the heavy lifting lives here so the binaries stay thin and the logic is
//! unit-testable. Timing-sensitive results (§10.8 throughput) are measured by the
//! Criterion benches in `benches/`.
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`multiset_experiments`] | Figure 4 (load factor at first failure), Figure 5 (bit efficiency) |
//! | [`fpr_experiments`] | Figure 2 (estimated vs actual FPR) |
//! | [`sizing_experiments`] | Figure 3 (predicted vs actual entries), Table 1 |
//! | [`joblight_experiments`] | Figures 6–10, Tables 2–3, §10.6 aggregates |
//! | [`growth_experiments`] | beyond the paper: auto-grow cost and batched-probe throughput |
//! | [`sharded_experiments`] | beyond the paper: sharded-service batch-probe scaling |
//! | [`churn_experiments`] | beyond the paper: sliding-window insert/delete churn |
//! | [`telemetry_experiments`] | beyond the paper: the `telemetry_report` exposition workload |
//! | [`report`] | plain-text table formatting shared by the binaries |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn_experiments;
pub mod fpr_experiments;
pub mod growth_experiments;
pub mod joblight_experiments;
pub mod multiset_experiments;
pub mod report;
pub mod sharded_experiments;
pub mod sizing_experiments;
pub mod telemetry_experiments;

/// Default seed used by every experiment binary (override with `--seed N`).
pub const DEFAULT_SEED: u64 = 0xCCF_2020;

/// Parse a `--flag value` style argument from a binary's argv, falling back to a
/// default. Used by the experiment binaries for `--scale`, `--seed`, `--runs`.
pub fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_value_parses_flags_and_defaults() {
        let args: Vec<String> = ["prog", "--scale", "128", "--runs", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--scale", 64u64), 128);
        assert_eq!(arg_value(&args, "--runs", 20usize), 3);
        assert_eq!(arg_value(&args, "--seed", 7u64), 7);
        // Malformed values fall back to the default.
        let bad: Vec<String> = ["prog", "--scale", "banana"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&bad, "--scale", 64u64), 64);
    }
}
