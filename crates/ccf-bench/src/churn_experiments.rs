//! Sliding-window churn experiments (beyond the paper: the deletion work).
//!
//! The question a static evaluation cannot answer: does a filter stay *correct and
//! bounded* under sustained insert **and delete** traffic? Each experiment replays a
//! deterministic [`SlidingWindowChurn`] stream — every arrival inserts a fresh row,
//! every arrival beyond the window deletes the oldest live row — against a filter
//! sized for the window, and verifies the churn contracts as it goes:
//!
//! * **no false negatives**: every row still live at the end answers its exact
//!   (key, attributes) query and its key-only query;
//! * **no delete misses**: every delete of a live row finds its entry (`Ok(false)`
//!   would mean the filter lost it earlier);
//! * **exact accounting**: `occupied_entries` tracks the live set, never underflows,
//!   and is *bounded* near the window size for variants whose deletes never refuse;
//! * **typed refusals**: the mixed variant's converted hot keys refuse deletion with
//!   [`DeleteFailure::ConvertedGroup`] — counted, kept live, and still covered by the
//!   no-false-negative check (the documented churn trade-off that makes the chained
//!   variant the right pick for hot-key churn).
//!
//! One contract is *measured* rather than asserted to be zero: distinct keys that
//! share a fingerprint entangle their chains (see `ChainedCcf::delete_row`), so a
//! hot chained run can lose a small number of deletes/queries to collisions — the
//! **collision casualty rate**, ≈ `n²·c²∕(2^{|κ|}·m)`. The harness reports it and the
//! `churn` binary asserts it stays far below a fraction of a percent; collision-free
//! runs (pinned by property tests with unshared fingerprints) are exact.

use std::collections::VecDeque;
use std::time::Instant;

use ccf_core::{AnyCcf, CcfParams, ConditionalFilter, DeleteFailure, Predicate, VariantKind};
use ccf_shard::ShardedCcf;
use ccf_workloads::churn::{ChurnOp, SlidingWindowChurn};
use ccf_workloads::multiset::Row;

/// Results of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Sliding-window size the stream maintains (and the filter was sized for).
    pub window: usize,
    /// Total rows inserted over the run.
    pub inserts: usize,
    /// Deletes that removed an entry.
    pub deletes: usize,
    /// Deletes of live rows that found no entry — always a contract violation.
    pub delete_misses: usize,
    /// Deletes refused structurally — [`DeleteFailure::ConvertedGroup`] (mixed
    /// variant) or [`DeleteFailure::Unsupported`] (Bloom variant); the rows stay
    /// live and counted.
    pub delete_refusals: usize,
    /// Insert failures (kick exhaustion with growth exhausted) — zero in a sized run.
    pub insert_failures: usize,
    /// Live rows whose exact query or key query came back false at the end.
    pub false_negatives: usize,
    /// Highest `occupied_entries` observed during the run.
    pub peak_occupied: usize,
    /// `occupied_entries` at the end of the run.
    pub final_occupied: usize,
    /// Live rows (window remainder plus refused-delete rows) at the end.
    pub final_live: usize,
    /// Capacity doublings over the run (zero when deletes genuinely free space).
    pub growths: u32,
    /// Load factor at the end of the run.
    pub final_load_factor: f64,
    /// Wall-clock seconds for the insert/delete replay (final checks excluded).
    pub secs: f64,
}

impl ChurnReport {
    /// Insert + delete operations per second.
    pub fn ops_throughput(&self) -> f64 {
        (self.inserts + self.deletes) as f64 / self.secs.max(1e-12)
    }

    /// Whether every churn contract held *exactly*: no false negatives, no delete
    /// misses, no insert failures — and, when no deletes were refused, occupancy
    /// bounded by the window. Runs with cross-key fingerprint collisions among
    /// chained hot keys should use [`ChurnReport::collision_casualty_rate`] instead.
    pub fn contracts_hold(&self) -> bool {
        self.false_negatives == 0
            && self.delete_misses == 0
            && self.insert_failures == 0
            && (self.delete_refusals > 0 || self.peak_occupied <= self.window + 1)
    }

    /// Fraction of operations lost to cross-key fingerprint collisions: delete
    /// misses (a colliding key's deletion shortened this key's walk) plus end-of-run
    /// false negatives, over all delete attempts. Zero when no live keys share a
    /// fingerprint; ≈ `n²·c²∕(2^{|κ|}·m)` otherwise.
    pub fn collision_casualty_rate(&self) -> f64 {
        let attempts = (self.deletes + self.delete_misses + self.delete_refusals).max(1);
        (self.delete_misses + self.false_negatives) as f64 / attempts as f64
    }
}

/// The filter-side operations a churn replay needs; implemented for a single
/// [`AnyCcf`] and for the sharded service so both run the identical harness.
trait ChurnTarget {
    /// `None` = the insert failed; `Some(consumed)` = stored, with whether it
    /// consumed a new entry slot (the outcome arithmetic the replay's occupancy
    /// tracking rides on, so the timed loop never has to poll the filter).
    fn insert(&mut self, row: &Row) -> Option<bool>;
    fn delete(&mut self, row: &Row) -> Result<bool, DeleteFailure>;
    fn occupied(&self) -> usize;
    fn still_present(&self, row: &Row) -> bool;
    fn growth_and_load(&self) -> (u32, f64);
}

impl ChurnTarget for AnyCcf {
    fn insert(&mut self, row: &Row) -> Option<bool> {
        self.insert_row(row.key, &row.attrs)
            .ok()
            .map(|o| o.consumed_entry())
    }
    fn delete(&mut self, row: &Row) -> Result<bool, DeleteFailure> {
        self.delete_row(row.key, &row.attrs)
    }
    fn occupied(&self) -> usize {
        self.occupied_entries()
    }
    fn still_present(&self, row: &Row) -> bool {
        let pred = Predicate::any(2)
            .and_eq(0, row.attrs[0])
            .and_eq(1, row.attrs[1]);
        self.query(row.key, &pred) && self.contains_key(row.key)
    }
    fn growth_and_load(&self) -> (u32, f64) {
        (self.growth_stats().growth_bits, self.load_factor())
    }
}

impl ChurnTarget for ShardedCcf {
    fn insert(&mut self, row: &Row) -> Option<bool> {
        ShardedCcf::insert(self, row.key, &row.attrs)
            .ok()
            .map(|o| o.consumed_entry())
    }
    fn delete(&mut self, row: &Row) -> Result<bool, DeleteFailure> {
        self.delete_row(row.key, &row.attrs)
    }
    fn occupied(&self) -> usize {
        self.occupied_entries()
    }
    fn still_present(&self, row: &Row) -> bool {
        let pred = Predicate::any(2)
            .and_eq(0, row.attrs[0])
            .and_eq(1, row.attrs[1]);
        self.query(row.key, &pred) && self.contains_key(row.key)
    }
    fn growth_and_load(&self) -> (u32, f64) {
        let stats = self.stats();
        (stats.total_doublings(), stats.load_factor())
    }
}

/// Parameters sized for a churn window of `window` rows with two attribute columns.
fn churn_params(window: usize, seed: u64) -> CcfParams {
    CcfParams {
        num_attrs: 2,
        seed,
        ..CcfParams::default()
    }
    .sized_for_entries(window.max(1), 0.7)
    .with_auto_grow()
}

/// Replay `total_inserts` arrivals of a `window`-sized churn stream against a filter
/// of the given variant (keys drawn from `keyspace`; smaller keyspaces mean more
/// live rows per key, i.e. more chain/conversion pressure).
pub fn churn_experiment(
    kind: VariantKind,
    window: usize,
    total_inserts: usize,
    keyspace: u64,
    seed: u64,
) -> ChurnReport {
    let mut filter = AnyCcf::new(kind, churn_params(window, seed));
    run_churn(&mut filter, window, total_inserts, keyspace, seed)
}

/// The sharded counterpart: the same churn stream replayed against a chained
/// [`ShardedCcf`] (point inserts/deletes under per-shard write locks).
pub fn sharded_churn_experiment(
    window: usize,
    total_inserts: usize,
    keyspace: u64,
    num_shards: usize,
    seed: u64,
) -> ChurnReport {
    // The service's own sizing policy: each shard sized for its 1/num_shards slice
    // of the window at the same target load the single-filter runs use.
    let mut service = ShardedCcf::sized_for_entries(
        VariantKind::Chained,
        CcfParams {
            num_attrs: 2,
            seed,
            ..CcfParams::default()
        }
        .with_auto_grow(),
        num_shards,
        window.max(1),
        0.7,
    );
    run_churn(&mut service, window, total_inserts, keyspace, seed)
}

/// The shared replay loop: apply the op stream, keep the live-set model (including
/// refused-delete rows), and measure/verify the churn contracts.
fn run_churn(
    target: &mut impl ChurnTarget,
    window: usize,
    total_inserts: usize,
    keyspace: u64,
    seed: u64,
) -> ChurnReport {
    let ops = SlidingWindowChurn::new(window, 2, keyspace, seed).ops(total_inserts);
    let mut live: VecDeque<Row> = Default::default();
    let mut refused: Vec<Row> = Vec::new();
    let mut report = ChurnReport {
        window,
        inserts: 0,
        deletes: 0,
        delete_misses: 0,
        delete_refusals: 0,
        insert_failures: 0,
        false_negatives: 0,
        peak_occupied: 0,
        final_occupied: 0,
        final_live: 0,
        growths: 0,
        final_load_factor: 0.0,
        secs: 0.0,
    };
    // Occupancy is tracked by outcome arithmetic (the exact counters the variants
    // maintain), so the timed loop never polls the target — polling a sharded
    // service would read-lock every shard per op and skew its measured throughput.
    let mut occupied = 0usize;
    let start = Instant::now();
    for op in &ops {
        match op {
            ChurnOp::Insert(row) => {
                report.inserts += 1;
                match target.insert(row) {
                    None => report.insert_failures += 1,
                    Some(consumed) => {
                        if consumed {
                            occupied += 1;
                        }
                        live.push_back(row.clone());
                    }
                }
            }
            ChurnOp::Delete(row) => {
                // Rows whose insert failed were never stored; the stream still emits
                // their eviction, which there is nothing to delete for.
                let was_live = if live.front() == Some(row) {
                    live.pop_front();
                    true
                } else if let Some(pos) = live.iter().position(|r| r == row) {
                    live.remove(pos);
                    true
                } else {
                    false
                };
                if !was_live {
                    continue;
                }
                match target.delete(row) {
                    Ok(true) => {
                        report.deletes += 1;
                        occupied -= 1;
                    }
                    Ok(false) => report.delete_misses += 1,
                    // Structural refusals (converted groups, undeletable variants):
                    // the row stays live and counted — distinct from collision
                    // casualties.
                    Err(DeleteFailure::ConvertedGroup) | Err(DeleteFailure::Unsupported) => {
                        report.delete_refusals += 1;
                        refused.push(row.clone());
                    }
                    Err(_) => report.delete_misses += 1,
                }
            }
        }
        report.peak_occupied = report.peak_occupied.max(occupied);
    }
    report.secs = start.elapsed().as_secs_f64();
    report.final_occupied = target.occupied();
    debug_assert_eq!(
        report.final_occupied, occupied,
        "outcome arithmetic drifted from the filter's own accounting"
    );
    for row in live.iter().chain(refused.iter()) {
        if !target.still_present(row) {
            report.false_negatives += 1;
        }
    }
    report.final_live = live.len() + refused.len();
    let (growths, load) = target.growth_and_load();
    report.growths = growths;
    report.final_load_factor = load;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_churn_holds_every_contract_bounded() {
        let r = churn_experiment(VariantKind::Chained, 1000, 8000, 128, 11);
        assert!(r.contracts_hold(), "{r:?}");
        assert_eq!(r.delete_refusals, 0);
        assert_eq!(r.deletes, 7000);
        assert_eq!(r.final_occupied, 1000);
        assert_eq!(r.growths, 0, "bounded churn must not grow: {r:?}");
    }

    #[test]
    fn plain_churn_holds_contracts_at_low_duplication() {
        // Keyspace ≥ window keeps per-key copies far below the 2b cap.
        let r = churn_experiment(VariantKind::Plain, 800, 6000, 2048, 12);
        assert!(r.contracts_hold(), "{r:?}");
        assert_eq!(r.growths, 0, "{r:?}");
    }

    #[test]
    fn mixed_churn_refuses_converted_keys_but_never_lies() {
        // A hot keyspace converts keys; their deletes refuse, the rows stay counted,
        // and not one of them is a false negative.
        let r = churn_experiment(VariantKind::Mixed, 1000, 8000, 64, 13);
        assert!(
            r.delete_refusals > 0,
            "hot keys should have converted: {r:?}"
        );
        assert_eq!(r.false_negatives, 0, "{r:?}");
        assert_eq!(r.delete_misses, 0, "{r:?}");
    }

    #[test]
    fn sharded_churn_matches_the_contracts() {
        let r = sharded_churn_experiment(1000, 6000, 128, 4, 14);
        assert!(r.contracts_hold(), "{r:?}");
        assert_eq!(r.final_occupied, 1000);
    }
}
