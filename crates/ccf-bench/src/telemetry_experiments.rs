//! Telemetry-report workload (observability): exercise the whole instrumented stack
//! against one registry and dump the live exposition.
//!
//! Two phases share a single [`Telemetry`] registry:
//!
//! 1. **Zipf churn** — a sliding-window insert/delete stream with Zipf-hot keys
//!    replayed against a chained CCF built via [`CcfBuilder::telemetry`], populating
//!    the kick-depth / chain-walk histograms and the insert/delete outcome counters
//!    under real duplicate pressure.
//! 2. **Sharded probe** — a [`ShardedCcf`] with per-shard instruments attached,
//!    bulk-loaded and probed with Zipf-skewed batches, populating per-shard op
//!    counters and the service's batch latency/size histograms.
//!
//! The `telemetry_report` binary renders the result both as Prometheus-style text
//! exposition and as the compact human table; this module owns the workload so the
//! contents are unit-testable.

use ccf_core::{CcfBuilder, CcfParams, ConditionalFilter, Predicate, VariantKind};
use ccf_shard::ShardedCcf;
use ccf_telemetry::Telemetry;
use ccf_workloads::churn::{ChurnOp, SlidingWindowChurn};
use ccf_workloads::zipf::ZipfMandelbrot;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Knobs for the telemetry-report workload.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryWorkload {
    /// Churn arrivals (phase 1); the live window is `rows / 8`.
    pub rows: usize,
    /// Distinct keys loaded into the sharded service (phase 2).
    pub shard_keys: usize,
    /// Probe keys per sharded batch; four batches are issued.
    pub probes: usize,
    /// Shards in the phase-2 service.
    pub shards: usize,
    /// Deterministic seed for streams and filters.
    pub seed: u64,
}

impl TelemetryWorkload {
    /// A smoke-scale default (fast enough for CI; override via the binary's flags).
    pub fn new(rows: usize, shard_keys: usize, probes: usize, shards: usize, seed: u64) -> Self {
        Self {
            rows: rows.max(16),
            shard_keys: shard_keys.max(16),
            probes: probes.max(16),
            shards: shards.max(1),
            seed,
        }
    }
}

/// Run the two-phase workload against a fresh enabled registry and return it for
/// rendering. Everything is deterministic in `workload.seed`.
pub fn run_telemetry_workload(workload: &TelemetryWorkload) -> Telemetry {
    let telemetry = Telemetry::enabled();

    // Phase 1: Zipf-hot sliding-window churn against a chained CCF. A keyspace of
    // window/8 keeps several live rows per key, so chains, kicks, and delete repairs
    // all fire.
    let window = (workload.rows / 8).max(8);
    let mut filter = CcfBuilder::new()
        .variant(VariantKind::Chained)
        .num_attrs(2)
        .seed(workload.seed)
        .expected_rows(window)
        .target_load(0.7)
        .auto_grow()
        .telemetry(&telemetry)
        .build()
        .expect("churn filter params are valid");
    let keyspace = (window as u64 / 8).max(1);
    for op in SlidingWindowChurn::new(window, 2, keyspace, workload.seed).ops(workload.rows) {
        match op {
            ChurnOp::Insert(row) => {
                let _ = filter.insert_row(row.key, &row.attrs);
            }
            ChurnOp::Delete(row) => {
                let _ = filter.delete_row(row.key, &row.attrs);
            }
        }
    }

    // Phase 2: sharded probe service with per-shard instruments and batch
    // latency/size histograms.
    let mut service = ShardedCcf::sized_for_entries(
        VariantKind::Chained,
        CcfParams {
            num_attrs: 2,
            seed: workload.seed ^ 0x5AD,
            ..CcfParams::default()
        }
        .with_auto_grow(),
        workload.shards,
        workload.shard_keys,
        0.7,
    );
    service.attach_telemetry(&telemetry, &[]);
    let rows: Vec<(u64, [u64; 2])> = (0..workload.shard_keys as u64)
        .map(|k| (k.wrapping_mul(0x9E37_79B9), [k % 7, k % 11]))
        .collect();
    let outcomes = service.insert_batch(&rows);
    assert!(
        outcomes.iter().all(|o| o.is_ok()),
        "sized sharded service must absorb the load"
    );
    // Zipf-skewed probe ranks over twice the keyspace: the top half hits.
    let zipf = ZipfMandelbrot::new(
        1.2,
        ZipfMandelbrot::PAPER_OFFSET,
        (2 * workload.shard_keys) as u64,
    );
    let mut rng = StdRng::seed_from_u64(workload.seed ^ 0xBEEF);
    let probes: Vec<u64> = (0..workload.probes)
        .map(|_| (zipf.sample(&mut rng) - 1).wrapping_mul(0x9E37_79B9))
        .collect();
    let pred = Predicate::any(2).and_eq(0, 3);
    for chunk in probes.chunks(probes.len().div_ceil(2).max(1)) {
        service.contains_key_batch(chunk);
        service.query_batch(chunk, &pred);
    }

    telemetry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_the_headline_series() {
        let telemetry = run_telemetry_workload(&TelemetryWorkload::new(4000, 2000, 2000, 4, 0xCCF));
        let text = telemetry.render_text();
        // Acceptance criterion: kick-depth and batch-latency histograms from a real
        // sharded churn workload.
        assert!(text.contains("ccf_kick_depth_bucket"), "{text}");
        assert!(text.contains("ccf_shard_batch_latency_ns_bucket"), "{text}");
        // Outcome counters from the churn phase and per-shard series from the probe
        // phase.
        assert!(text.contains("ccf_inserts_total"), "{text}");
        assert!(text.contains("ccf_deletes_total"), "{text}");
        assert!(text.contains("shard=\"0\""), "{text}");
        assert!(text.contains("ccf_chain_walk_depth_bucket"), "{text}");

        let snap = telemetry.snapshot();
        assert!(snap.counter_sum("ccf_inserts_total") >= 4000 + 2000);
        assert!(snap.counter_sum("ccf_queries_total") > 0);
        let sizes = snap
            .histogram("ccf_shard_batch_keys", &[("op", "contains_key")])
            .expect("batch size series present");
        assert_eq!(sizes.sum, 2000, "every probe key counted exactly once");
    }

    #[test]
    fn workload_is_deterministic_modulo_latency() {
        let a = run_telemetry_workload(&TelemetryWorkload::new(2000, 1000, 500, 2, 7));
        let b = run_telemetry_workload(&TelemetryWorkload::new(2000, 1000, 500, 2, 7));
        let (sa, sb) = (a.snapshot(), b.snapshot());
        for name in [
            "ccf_inserts_total",
            "ccf_deletes_total",
            "ccf_queries_total",
            "ccf_query_hits_total",
            "ccf_grows_total",
        ] {
            assert_eq!(sa.counter_sum(name), sb.counter_sum(name), "{name} drifted");
        }
    }
}
